"""Tests for the BENCH trajectory ratchet."""

import json
import pathlib

import pytest

from repro.analysis.trajectory import (
    TRAJECTORY_FILE,
    append_entry,
    collect_values,
    diff_values,
    empty_trajectory,
    load_trajectory,
    parse_tolerance,
    reference_values,
    render_diff,
    run_diff,
    run_update,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def _write_bench_files(root, exec_eps=5000.0, speedup=2.0,
                       restore_us=20.0, makespan=4.0, efficiency=0.87,
                       reconnects=0, failed=0):
    (root / "BENCH_exec.json").write_text(json.dumps({
        "optimized": {"execs_per_second": exec_eps},
        "speedup_vs_legacy": speedup,
        "restore_vs_reboot_us": {"checkpoint_restore": restore_us},
    }))
    (root / "BENCH_fleet.json").write_text(json.dumps({
        "virtual_makespan_speedup": makespan,
        "scheduler": {"efficiency": efficiency},
    }))
    (root / "BENCH_remote.json").write_text(json.dumps({
        "reconnects": reconnects,
        "scheduler": {"failed": failed},
    }))


def test_parse_tolerance_forms():
    assert parse_tolerance("15%") == pytest.approx(0.15)
    assert parse_tolerance("0.15") == pytest.approx(0.15)
    assert parse_tolerance(0.1) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        parse_tolerance("-5%")
    with pytest.raises(ValueError):
        parse_tolerance("lots")


def test_collect_values_tolerates_missing_files(tmp_path):
    _write_bench_files(tmp_path)
    (tmp_path / "BENCH_remote.json").unlink()
    values = collect_values(tmp_path)
    assert values["exec.execs_per_second"] == 5000.0
    assert values["fleet.efficiency"] == 0.87
    assert "remote.reconnects" not in values


def test_reference_is_direction_aware_best():
    trajectory = empty_trajectory()
    append_entry(trajectory, {"exec.execs_per_second": 4000.0,
                              "exec.restore_us": 25.0}, label="a",
                 recorded="2026-01-01T00:00:00Z")
    append_entry(trajectory, {"exec.execs_per_second": 5000.0,
                              "exec.restore_us": 30.0}, label="b",
                 recorded="2026-01-02T00:00:00Z")
    best = reference_values(trajectory)
    assert best["exec.execs_per_second"] == 5000.0  # higher is better
    assert best["exec.restore_us"] == 25.0  # lower is better


def test_injected_exec_regression_fails_at_15_percent(tmp_path):
    _write_bench_files(tmp_path, exec_eps=5000.0)
    run_update(tmp_path, label="baseline")
    # A 20% exec-rate drop must trip the 15% gate ...
    _write_bench_files(tmp_path, exec_eps=4000.0)
    diffs, code = run_diff(tmp_path, tolerance=0.15)
    assert code == 1
    by_key = {d.key: d for d in diffs}
    assert by_key["exec.execs_per_second"].regressed
    assert by_key["exec.execs_per_second"].change_pct == pytest.approx(-20.0)
    assert "REGRESSED" in render_diff(diffs, 0.15)
    # ... while a 10% wobble stays inside the tolerance.
    _write_bench_files(tmp_path, exec_eps=4500.0)
    _, code = run_diff(tmp_path, tolerance=0.15)
    assert code == 0


def test_ungated_metric_never_fails(tmp_path):
    _write_bench_files(tmp_path, restore_us=20.0)
    run_update(tmp_path, label="baseline")
    _write_bench_files(tmp_path, restore_us=200.0)  # 10x worse
    diffs, code = run_diff(tmp_path, tolerance=0.15)
    assert code == 0
    by_key = {d.key: d for d in diffs}
    assert not by_key["exec.restore_us"].regressed
    assert by_key["exec.restore_us"].change_pct == pytest.approx(-900.0)


def test_zero_reference_allows_no_slack(tmp_path):
    _write_bench_files(tmp_path, reconnects=0)
    run_update(tmp_path, label="baseline")
    _write_bench_files(tmp_path, reconnects=1)
    diffs, code = run_diff(tmp_path, tolerance=0.15)
    assert code == 1
    assert {d.key for d in diffs if d.regressed} == {"remote.reconnects"}


def test_missing_bench_file_reports_but_never_fails(tmp_path):
    _write_bench_files(tmp_path)
    run_update(tmp_path, label="baseline")
    (tmp_path / "BENCH_exec.json").unlink()
    diffs, code = run_diff(tmp_path, tolerance=0.15)
    assert code == 0
    by_key = {d.key: d for d in diffs}
    assert by_key["exec.execs_per_second"].current is None
    assert "missing" in render_diff(diffs, 0.15)


def test_update_is_append_only(tmp_path):
    _write_bench_files(tmp_path, exec_eps=4000.0)
    run_update(tmp_path, label="first", recorded="2026-01-01T00:00:00Z")
    _write_bench_files(tmp_path, exec_eps=5000.0)
    run_update(tmp_path, label="second")
    trajectory = load_trajectory(tmp_path / TRAJECTORY_FILE)
    labels = [entry["label"] for entry in trajectory["entries"]]
    assert labels == ["first", "second"]
    assert trajectory["entries"][0]["values"][
        "exec.execs_per_second"] == 4000.0
    # The ratchet references the new best.
    assert reference_values(trajectory)[
        "exec.execs_per_second"] == 5000.0


def test_committed_trajectory_passes_the_gate():
    """Acceptance: ``repro bench diff`` exits 0 on the committed repo."""
    diffs, code = run_diff(REPO_ROOT, tolerance=0.15)
    assert code == 0
    assert any(d.current is not None for d in diffs)


def test_bench_cli_diff_and_update(tmp_path, capsys):
    from repro.cli import main

    _write_bench_files(tmp_path, exec_eps=5000.0)
    assert main(["bench", "update", "--root", str(tmp_path),
                 "--label", "baseline"]) == 0
    assert "appended 'baseline'" in capsys.readouterr().out
    assert main(["bench", "diff", "--root", str(tmp_path),
                 "--tolerance", "15%"]) == 0
    assert "no gated metric regressed" in capsys.readouterr().out
    _write_bench_files(tmp_path, exec_eps=3900.0)
    assert main(["bench", "diff", "--root", str(tmp_path),
                 "--tolerance", "15%"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "exec.execs_per_second" in out
    assert main(["bench", "diff", "--root", str(tmp_path),
                 "--tolerance", "nonsense"]) == 2
