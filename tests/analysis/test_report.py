"""Tests for campaign report rendering."""

from repro.analysis.report import campaign_report, strongest_relations
from repro.core.bugs import BugReport
from repro.core.engine import CampaignResult
from repro.core.relations import RelationGraph


def sample_result():
    return CampaignResult(
        tool="droidfuzz", device="A1", seed=3, duration_hours=48.0,
        timeline=[(0.0, 0), (3600.0, 100)],
        bugs=[BugReport(title="WARNING in tcpc", kind="WARNING",
                        component="kernel", device="A1", first_clock=7200.0,
                        count=3, reproducer="r0 = openat$tcpc0(2)")],
        kernel_coverage=100, joint_coverage=130,
        per_driver={"rt1711_tcpc": 50, "drm_gpu": 50},
        driver_totals={"rt1711_tcpc": 70, "drm_gpu": 90},
        executions=1234, corpus_size=55, interface_count=49, reboots=2)


def test_report_contains_headline_numbers():
    report = campaign_report(sample_result())
    assert "droidfuzz on device A1" in report
    assert "1234" in report
    assert "100 blocks" in report


def test_report_driver_table():
    report = campaign_report(sample_result())
    assert "rt1711_tcpc" in report
    assert "71%" in report  # 50/70


def test_report_bug_section_with_reproducer():
    report = campaign_report(sample_result())
    assert "WARNING in tcpc" in report
    assert "r0 = openat$tcpc0(2)" in report
    assert "2.0h" in report


def test_report_no_bugs():
    result = sample_result()
    result.bugs = []
    assert "none found" in campaign_report(result)


def test_report_relations_section():
    g = RelationGraph()
    g.add_vertex("a", 0.5)
    g.add_vertex("b", 0.5)
    g.learn("a", "b")
    report = campaign_report(sample_result(), g)
    assert "Strongest learned relations" in report
    assert "a" in report and "b" in report


def test_report_profiling_section_from_trace_summary():
    from repro.obs.stats import PhaseStat, TraceSummary

    summary = TraceSummary(
        directory="out",
        phases={"execute": PhaseStat(count=10, virtual_seconds=80.0,
                                     exclusive_seconds=60.0),
                "minimize": PhaseStat(count=2, virtual_seconds=40.0,
                                      exclusive_seconds=40.0)},
        metrics={"driver.vtime.drm_gpu": {"type": "counter", "value": 55.0},
                 "driver.vtime.ion_alloc": {"type": "counter",
                                            "value": 20.0}},
        snapshots=[{"t": 0.0, "execs_per_sec": 0.0},
                   {"t": 100.0, "execs_per_sec": 0.5}])
    report = campaign_report(sample_result(), trace_summary=summary)
    assert "## Profiling" in report
    assert "60.0%" in report  # execute's share of accounted time
    assert "drm_gpu" in report
    assert "mean throughput" in report


def test_report_without_trace_summary_has_no_profiling():
    assert "## Profiling" not in campaign_report(sample_result())


def test_strongest_relations_ordering():
    g = RelationGraph()
    for v in "abc":
        g.add_vertex(v, 0.5)
    g.learn("a", "b")
    g.learn("c", "b")  # halves a->b
    top = strongest_relations(g)
    assert top[0][2] >= top[-1][2]


def test_logcat_shows_tombstones():
    from repro.device import AdbConnection, AndroidDevice, profile_by_id
    from repro.errors import DeadObjectError
    import pytest as _pytest

    device = AndroidDevice(profile_by_id("A1"))
    adb = AdbConnection(device)
    assert adb.shell("logcat") == ""
    p = device.new_process("t")
    device.hal_transact(p.pid, "t", "vendor.graphics.composer",
                        "setPowerMode", (1,))
    _st, reply = device.hal_transact(p.pid, "t",
                                     "vendor.graphics.composer",
                                     "createLayer", ())
    layer = reply.read_i64()
    device.hal_transact(p.pid, "t", "vendor.graphics.composer",
                        "setLayerBuffer", (layer, 64, 64))
    with _pytest.raises(DeadObjectError):
        device.hal_transact(p.pid, "t", "vendor.graphics.composer",
                            "presentDisplay", ())
    out = adb.shell("logcat")
    assert "Fatal signal" in out
    assert "Graphics HAL" in out
