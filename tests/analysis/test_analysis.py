"""Tests for the analysis utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.coverage import average_increase, per_driver_increase
from repro.analysis.plots import ascii_chart, timeline_csv
from repro.analysis.stats import mann_whitney_u, mean, median
from repro.analysis.tables import render_table


def test_mean_median():
    assert mean([1, 2, 3]) == 2
    assert mean([]) == 0.0
    assert median([1, 3, 2]) == 2
    assert median([1, 2, 3, 4]) == 2.5
    assert median([]) == 0.0


def test_mwu_distinguishes_clear_separation():
    a = [100, 101, 102, 99, 98, 103, 100, 101, 99, 102]
    b = [50, 51, 49, 52, 48, 50, 51, 49, 50, 52]
    result = mann_whitney_u(a, b)
    assert result.significant()


def test_mwu_same_distribution_not_significant():
    a = [10, 11, 12, 13, 14]
    b = [10, 11, 12, 13, 14]
    result = mann_whitney_u(a, b)
    assert not result.significant()


def test_mwu_empty_rejected():
    with pytest.raises(ValueError):
        mann_whitney_u([], [1.0])


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=3, max_size=20),
       st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=3, max_size=20))
def test_mwu_pvalue_in_unit_interval(a, b):
    result = mann_whitney_u(a, b)
    assert 0.0 <= result.p_value <= 1.0


def test_render_table_alignment():
    out = render_table(["Device", "Cov"], [["A1", 123], ["B", 7]],
                       title="Coverage")
    lines = out.splitlines()
    assert lines[0] == "Coverage"
    assert "Device" in lines[1]
    assert all("|" in line for line in lines[1:] if "-" not in line)


def test_ascii_chart_renders_series():
    series = {"droidfuzz": [(0, 0), (3600, 100)],
              "syzkaller": [(0, 0), (3600, 60)]}
    out = ascii_chart(series, width=40, height=8, title="Fig 4")
    assert "Fig 4" in out
    assert "droidfuzz" in out and "syzkaller" in out
    assert "*" in out


def test_ascii_chart_empty():
    assert "(no data)" in ascii_chart({}, title="x")


def test_timeline_csv():
    out = timeline_csv({"a": [(0, 1), (60, 2)]})
    assert out.splitlines()[0] == "series,seconds,value"
    assert "a,60,2" in out


def test_per_driver_increase():
    ours = {"drm": 120, "tcpc": 50, "idle": 0}
    base = {"drm": 100, "tcpc": 0, "idle": 0}
    inc = per_driver_increase(ours, base)
    assert inc["drm"] == pytest.approx(0.2)
    assert inc["tcpc"] == pytest.approx(50.0)
    assert "idle" not in inc


def test_average_increase():
    assert average_increase({"a": 110}, {"a": 100}) == pytest.approx(0.1)
    assert average_increase({}, {}) == 0.0
