"""Tests for the ServiceManager registry."""

import pytest

from repro.errors import BinderError
from repro.hal.service import HalService
from repro.hal.service_manager import ServiceManager
from repro.kernel.kernel import VirtualKernel


class SvcA(HalService):
    interface_descriptor = "vendor.a@1.0::IA"
    instance_name = "vendor.a"


class SvcB(HalService):
    interface_descriptor = "vendor.b@1.0::IB"
    instance_name = "vendor.b"


def test_register_and_list():
    sm = ServiceManager(VirtualKernel())
    sm.add_service(SvcA())
    sm.add_service(SvcB())
    assert sm.list_services() == ["vendor.a", "vendor.b"]
    assert sm.list_hals() == [("vendor.a", "vendor.a@1.0::IA"),
                              ("vendor.b", "vendor.b@1.0::IB")]


def test_duplicate_rejected():
    sm = ServiceManager(VirtualKernel())
    sm.add_service(SvcA())
    with pytest.raises(BinderError):
        sm.add_service(SvcA())


def test_get_service_returns_proxy():
    sm = ServiceManager(VirtualKernel())
    sm.add_service(SvcA())
    proxy = sm.get_service("vendor.a", 1, "client")
    assert proxy.interface_descriptor == "vendor.a@1.0::IA"


def test_get_unknown_service():
    sm = ServiceManager(VirtualKernel())
    with pytest.raises(BinderError):
        sm.get_service("vendor.none", 1, "client")


def test_node_and_services_access():
    sm = ServiceManager(VirtualKernel())
    svc = SvcA()
    sm.add_service(svc)
    assert sm.node("vendor.a").service is svc
    assert sm.node("missing") is None
    assert sm.services() == [svc]
