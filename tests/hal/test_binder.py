"""Tests for Binder nodes, proxies, and crash semantics."""

import pytest

from repro.errors import DeadObjectError, NativeCrash
from repro.hal.binder import BinderNode, BinderProxy, Status
from repro.hal.parcel import Parcel
from repro.hal.process import HalProcess
from repro.hal.service import HalMethod, HalService
from repro.kernel.kernel import VirtualKernel


class ToyService(HalService):
    interface_descriptor = "vendor.toy@1.0::IToy"
    instance_name = "vendor.toy"

    def methods(self):
        return (
            HalMethod(1, "add", ("i32", "i32"), ("i32",)),
            HalMethod(2, "boom", (), ()),
            HalMethod(3, "echo", ("str",), ("str",)),
        )

    def _m_add(self, a, b):
        return Status.OK, a + b

    def _m_boom(self):
        raise NativeCrash("SIGSEGV", self.instance_name,
                          "Native crash in Toy HAL")

    def _m_echo(self, s):
        return Status.OK, s


@pytest.fixture
def setup():
    kernel = VirtualKernel()
    service = ToyService()
    process = HalProcess(kernel, "toy-service")
    service.attach(kernel, process)
    node = BinderNode(kernel, service)
    proxy = BinderProxy(node, client_pid=1, client_comm="test")
    return kernel, service, process, node, proxy


def test_transact_roundtrip(setup):
    _k, _s, _p, _n, proxy = setup
    data = Parcel()
    data.write_i32(2).write_i32(3)
    reply = proxy.transact(1, data)
    assert reply.read_i32() == int(Status.OK)
    assert reply.read_i32() == 5


def test_unknown_transaction_status(setup):
    _k, _s, _p, _n, proxy = setup
    reply = proxy.transact(99, Parcel())
    assert reply.read_i32() == int(Status.UNKNOWN_TRANSACTION)


def test_bad_parcel_returns_bad_value(setup):
    _k, _s, _p, _n, proxy = setup
    reply = proxy.transact(1, Parcel())  # missing both args
    assert reply.read_i32() == int(Status.BAD_VALUE)


def test_crash_marks_process_dead(setup):
    _k, _s, process, _n, proxy = setup
    with pytest.raises(DeadObjectError):
        proxy.transact(2, Parcel())
    assert process.dead
    stones = process.drain_tombstones()
    assert stones[0].title == "Native crash in Toy HAL"
    assert stones[0].signal == "SIGSEGV"


def test_dead_process_rejects_transactions(setup):
    _k, _s, process, _n, proxy = setup
    with pytest.raises(DeadObjectError):
        proxy.transact(2, Parcel())
    with pytest.raises(DeadObjectError):
        proxy.transact(1, Parcel())


def test_restart_revives(setup):
    _k, _s, process, _n, proxy = setup
    with pytest.raises(DeadObjectError):
        proxy.transact(2, Parcel())
    old_pid = process.pid
    process.restart()
    assert not process.dead
    assert process.pid != old_pid
    assert process.restart_count == 1
    data = Parcel()
    data.write_i32(1).write_i32(1)
    assert proxy.transact(1, data).read_i32() == 0


def test_binder_tracepoint_fired(setup):
    kernel, _s, _p, _n, proxy = setup
    records = []
    kernel.trace.attach("binder_transaction", records.append)
    data = Parcel()
    data.write_i32(1).write_i32(2)
    proxy.transact(1, data)
    assert len(records) == 1
    rec = records[0]
    assert rec.method == "add"
    assert rec.payload_types == ("i32", "i32")
    assert rec.payload_values == (1, 2)
    assert rec.reply_ok


def test_tracepoint_fired_even_on_crash(setup):
    kernel, _s, _p, _n, proxy = setup
    records = []
    kernel.trace.attach("binder_transaction", records.append)
    with pytest.raises(DeadObjectError):
        proxy.transact(2, Parcel())
    assert len(records) == 1
    assert not records[0].reply_ok


def test_proxy_interface_descriptor(setup):
    _k, _s, _p, _n, proxy = setup
    assert proxy.interface_descriptor == "vendor.toy@1.0::IToy"
