"""Tests for the HAL host-process model."""

from repro.errors import NativeCrash
from repro.hal.process import HalProcess
from repro.kernel.kernel import VirtualKernel


def test_process_owns_kernel_task():
    kernel = VirtualKernel()
    process = HalProcess(kernel, "vendor.x-service")
    assert kernel.process(process.pid) is not None
    assert kernel.process(process.pid).comm == "vendor.x-service"


def test_syscall_in_process_context():
    kernel = VirtualKernel()
    process = HalProcess(kernel, "svc")
    out = process.syscall("openat", "/dev/none", 0)
    assert out.ret == -2  # ENOENT, but attributed to this pid


def test_crash_tombstone_and_dead_flag():
    kernel = VirtualKernel()
    process = HalProcess(kernel, "svc")
    process.record_crash(NativeCrash("SIGSEGV", "svc", "Native crash in X",
                                     "deref"))
    assert process.dead
    stones = process.peek_tombstones()
    assert stones[0].component == "hal"
    assert stones[0].signal == "SIGSEGV"
    assert process.drain_tombstones() == stones
    assert process.drain_tombstones() == []


def test_restart_changes_pid_and_closes_files():
    kernel = VirtualKernel()

    from repro.kernel.chardev import CharDevice

    class Dev(CharDevice):
        name = "dev"
        paths = ("/dev/dev",)

        def __init__(self):
            self.released = 0

        def release(self, ctx, f):
            self.released += 1
            return 0

    driver = Dev()
    kernel.register_driver(driver)
    process = HalProcess(kernel, "svc")
    old_pid = process.pid
    assert process.syscall("openat", "/dev/dev", 0).ret >= 0
    process.record_crash(NativeCrash("SIGABRT", "svc", "t"))
    process.restart()
    assert process.pid != old_pid
    assert driver.released == 1
    assert kernel.process(old_pid) is None
    assert not process.dead


def test_tombstone_sequence_numbers():
    kernel = VirtualKernel()
    process = HalProcess(kernel, "svc")
    process.record_crash(NativeCrash("SIGSEGV", "svc", "a"))
    process.dead = False
    process.record_crash(NativeCrash("SIGSEGV", "svc", "b"))
    stones = process.drain_tombstones()
    assert stones[0].seq < stones[1].seq
