"""Behavioural tests for all nine vendor HAL services.

The services are exercised through the device's Binder surface (the way
the executor and Poke app reach them), so these double as integration
tests for marshal/dispatch.
"""

import pytest

from repro.device import AndroidDevice, profile_by_id
from repro.errors import DeadObjectError
from repro.hal.services import HAL_FACTORIES, build_hal


@pytest.fixture
def a1():
    device = AndroidDevice(profile_by_id("A1"))
    proc = device.new_process("test-client")

    def call(service, method, *args):
        return device.hal_transact(proc.pid, "test", service, method, args)

    return device, call


@pytest.fixture
def c1():
    device = AndroidDevice(profile_by_id("C1"))
    proc = device.new_process("test-client")

    def call(service, method, *args):
        return device.hal_transact(proc.pid, "test", service, method, args)

    return device, call


@pytest.fixture
def c2():
    device = AndroidDevice(profile_by_id("C2"))
    proc = device.new_process("test-client")

    def call(service, method, *args):
        return device.hal_transact(proc.pid, "test", service, method, args)

    return device, call


# -- registry ----------------------------------------------------------


def test_all_factories_build():
    for name in HAL_FACTORIES:
        service = build_hal(name)
        assert service.methods(), name
        codes = [m.code for m in service.methods()]
        assert len(codes) == len(set(codes))


def test_unknown_hal_rejected():
    with pytest.raises(KeyError):
        build_hal("nonexistent")


def test_sample_args_match_signatures():
    for name in HAL_FACTORIES:
        service = build_hal(name)
        for method in service.methods():
            args = service.sample_args(method.name)
            assert len(args) == len(method.signature), (name, method.name)


def test_framework_scenarios_name_real_methods():
    for name in HAL_FACTORIES:
        service = build_hal(name)
        for scenario in service.framework_scenarios():
            for method_name, args in scenario:
                stub = service.method_by_name(method_name)
                assert stub is not None, (name, method_name)
                assert len(args) == len(stub.signature)


# -- graphics ----------------------------------------------------------


def test_graphics_compose_cycle(a1):
    _device, call = a1
    assert call("vendor.graphics.composer", "setPowerMode", 1)[0] == 0
    st, reply = call("vendor.graphics.composer", "createLayer")
    layer = reply.read_i64()
    assert st == 0
    assert call("vendor.graphics.composer", "setLayerBuffer",
                layer, 640, 480)[0] == 0
    assert call("vendor.graphics.composer", "validateDisplay")[0] == 0
    assert call("vendor.graphics.composer", "presentDisplay")[0] == 0
    # Second present still valid (no layer change in between).
    assert call("vendor.graphics.composer", "presentDisplay")[0] == 0


def test_graphics_present_unpowered(a1):
    _device, call = a1
    assert call("vendor.graphics.composer", "presentDisplay")[0] == -38


def test_graphics_bug2_crash_on_skipped_validate(a1):
    device, call = a1
    call("vendor.graphics.composer", "setPowerMode", 1)
    st, reply = call("vendor.graphics.composer", "createLayer")
    layer = reply.read_i64()
    call("vendor.graphics.composer", "setLayerBuffer", layer, 64, 64)
    with pytest.raises(DeadObjectError):
        call("vendor.graphics.composer", "presentDisplay")
    crashes = device.drain_crashes()
    assert any(c.title == "Native crash in Graphics HAL" for c in crashes)


def test_graphics_destroy_unknown_layer(a1):
    _device, call = a1
    assert call("vendor.graphics.composer", "destroyLayer", 999)[0] == -22


# -- media -------------------------------------------------------------


def test_media_codec_lifecycle(a1):
    _device, call = a1
    st, reply = call("vendor.media.codec", "createCodec", 0)
    assert st == 0
    handle = reply.read_i32()
    assert call("vendor.media.codec", "configure", handle, 1280, 720,
                1_000_000, b"\x01\x02ab")[0] == 0
    assert call("vendor.media.codec", "start", handle)[0] == 0
    assert call("vendor.media.codec", "queueInputBuffer", handle,
                b"\xAA" * 32)[0] == 0
    st, reply = call("vendor.media.codec", "drainOutput", handle)
    assert st == 0
    assert call("vendor.media.codec", "releaseCodec", handle)[0] == 0


def test_media_rejects_bad_csd_without_quirk(a1):
    _device, call = a1
    st, reply = call("vendor.media.codec", "createCodec", 0)
    handle = reply.read_i32()
    # Declared TLV length larger than the blob: A1's media HAL is not
    # quirked, so this is a clean BAD_VALUE.
    assert call("vendor.media.codec", "configure", handle, 640, 480,
                1000, b"\x01\xFFxx")[0] == -22


def test_media_bug6_csd_overrun_crashes_on_a2():
    device = AndroidDevice(profile_by_id("A2"))
    proc = device.new_process("t")
    st, reply = device.hal_transact(proc.pid, "t", "vendor.media.codec",
                                    "createCodec", (0,))
    handle = reply.read_i32()
    with pytest.raises(DeadObjectError):
        device.hal_transact(proc.pid, "t", "vendor.media.codec",
                            "configure",
                            (handle, 640, 480, 1000, b"\x01\xFFxx"))
    assert any(c.title == "Native crash in Media HAL"
               for c in device.drain_crashes())


# -- camera ------------------------------------------------------------


def test_camera_capture_flow(c1):
    _device, call = c1
    assert call("vendor.camera.provider", "openSession", 0)[0] == 0
    st, reply = call("vendor.camera.provider", "configureStreams",
                     2, 1280, 720)
    assert st == 0
    base = reply.read_i32()
    st, reply = call("vendor.camera.provider", "processCaptureRequest",
                     base)
    assert st == 0
    assert call("vendor.camera.provider", "closeSession")[0] == 0


def test_camera_bug9_stale_stream_crash(c1):
    device, call = c1
    call("vendor.camera.provider", "openSession", 0)
    st, reply = call("vendor.camera.provider", "configureStreams",
                     2, 1280, 720)
    stale = reply.read_i32()
    call("vendor.camera.provider", "configureStreams", 1, 640, 480)
    with pytest.raises(DeadObjectError):
        call("vendor.camera.provider", "processCaptureRequest", stale)
    assert any(c.title == "Native crash in Camera HAL"
               for c in device.drain_crashes())


def test_camera_unknown_stream_is_bad_value(c1):
    _device, call = c1
    call("vendor.camera.provider", "openSession", 0)
    call("vendor.camera.provider", "configureStreams", 2, 1280, 720)
    assert call("vendor.camera.provider", "processCaptureRequest",
                424242)[0] == -22


# -- audio -------------------------------------------------------------


def test_audio_stream_lifecycle(a1):
    _device, call = a1
    st, reply = call("vendor.audio", "openOutputStream", 48000, 2, 2)
    assert st == 0
    handle = reply.read_i32()
    st, reply = call("vendor.audio", "writeAudio", handle, 256)
    assert st == 0 and reply.read_i32() == 256
    assert call("vendor.audio", "standby", handle)[0] == 0
    assert call("vendor.audio", "closeStream", handle)[0] == 0
    assert call("vendor.audio", "closeStream", handle)[0] == -22


def test_audio_validates_params(a1):
    _device, call = a1
    assert call("vendor.audio", "openOutputStream", 1234, 2, 2)[0] == -22
    assert call("vendor.audio", "setMasterVolume", 2.0)[0] == -22
    assert call("vendor.audio", "setMasterVolume", 0.3)[0] == 0


# -- bluetooth ---------------------------------------------------------


def test_bluetooth_enable_scan_bond(a1):
    _device, call = a1
    assert call("vendor.bluetooth", "enable")[0] == 0
    assert call("vendor.bluetooth", "enable")[0] == -38
    assert call("vendor.bluetooth", "startScan")[0] == 0
    assert call("vendor.bluetooth", "createBond",
                b"\x11\x22\x33\x44\x55\x66")[0] == 0
    st, reply = call("vendor.bluetooth", "connectChannel", 25)
    assert st == 0
    channel = reply.read_i32()
    st, reply = call("vendor.bluetooth", "sendData", channel, b"abc")
    assert st == 0
    assert call("vendor.bluetooth", "closeChannel", channel)[0] == 0
    assert call("vendor.bluetooth", "disable")[0] == 0


def test_bluetooth_requires_enable(a1):
    _device, call = a1
    assert call("vendor.bluetooth", "startScan")[0] == -38
    assert call("vendor.bluetooth", "readSupportedCodecs")[0] == -38


# -- sensors -----------------------------------------------------------


def test_sensors_activation_and_poll(a1):
    _device, call = a1
    assert call("vendor.sensors", "activate", 1, True)[0] == 0
    assert call("vendor.sensors", "batch", 1, 20)[0] == 0
    st, reply = call("vendor.sensors", "poll", 8)
    assert st == 0
    assert reply.read_i32() > 0
    assert call("vendor.sensors", "activate", 1, False)[0] == 0
    assert call("vendor.sensors", "poll", 8)[0] == -38


def test_sensors_bad_handle(a1):
    _device, call = a1
    assert call("vendor.sensors", "activate", 99, True)[0] == -22


# -- usb ----------------------------------------------------------------


def test_usb_negotiation_flow(a1):
    device, call = a1
    assert call("vendor.usb", "enablePort")[0] == 0
    assert call("vendor.usb", "connectPartner", 0)[0] == 0
    assert call("vendor.usb", "negotiate", 9000, 2000)[0] == 0
    st, reply = call("vendor.usb", "getPortStatus")
    assert st == 0
    assert reply.read_i32() == 1  # vbus
    assert reply.read_i32() == 9000  # contract mV
    device.drain_crashes()


def test_usb_bug1_via_reset_port(a1):
    device, call = a1
    call("vendor.usb", "enablePort")
    call("vendor.usb", "connectPartner", 0)
    call("vendor.usb", "negotiate", 9000, 2000)
    device.drain_crashes()
    call("vendor.usb", "resetPort")
    assert any(c.title == "WARNING in rt1711_i2c_probe"
               for c in device.drain_crashes())


# -- wifi ---------------------------------------------------------------


def test_wifi_sta_flow(c2):
    _device, call = c2
    assert call("vendor.wifi", "start")[0] == 0
    assert call("vendor.wifi", "startScan")[0] == 0
    st, reply = call("vendor.wifi", "getScanResults")
    assert st == 0 and reply.read_i32() == 2
    assert call("vendor.wifi", "connect", "homelan", 6)[0] == 0
    assert call("vendor.wifi", "disconnect")[0] == 0


def test_wifi_bug10_zero_caps_client(c2):
    device, call = c2
    call("vendor.wifi", "start")
    assert call("vendor.wifi", "startSoftAp", "kiosk", 6)[0] == 0
    mac = b"\x02\x00\x00\x00\x00\x01"
    assert call("vendor.wifi", "registerClient", mac, 0)[0] != 0
    assert any(c.title == "WARNING in rate_control_rate_init"
               for c in device.drain_crashes())


def test_wifi_good_client_admitted(c2):
    device, call = c2
    call("vendor.wifi", "start")
    call("vendor.wifi", "startSoftAp", "kiosk", 6)
    mac = b"\x02\x00\x00\x00\x00\x02"
    assert call("vendor.wifi", "registerClient", mac, 0x2F)[0] == 0
    assert call("vendor.wifi", "kickClient", mac)[0] == 0
    assert device.drain_crashes() == []


# -- thermal -------------------------------------------------------------


def test_thermal_flow(a1):
    _device, call = a1
    st, reply = call("vendor.thermal", "getTemperatures")
    assert st == 0
    assert reply.read_i32() >= 40000
    assert call("vendor.thermal", "setThrottling", 2)[0] == 0
    assert call("vendor.thermal", "setThrottling", 9)[0] == -22
    st, reply = call("vendor.thermal", "getCoolingDevices")
    assert "fan0" in reply.read_string()
