"""Tests for Parcel marshaling."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParcelError
from repro.hal.parcel import Parcel


def test_roundtrip_all_types():
    p = Parcel()
    p.write_i32(-5).write_u32(7).write_i64(1 << 40).write_f32(0.5)
    p.write_bool(True).write_string("héllo").write_bytes(b"\x00\x01")
    p.rewind()
    assert p.read_i32() == -5
    assert p.read_u32() == 7
    assert p.read_i64() == 1 << 40
    assert p.read_f32() == pytest.approx(0.5)
    assert p.read_bool() is True
    assert p.read_string() == "héllo"
    assert p.read_bytes() == b"\x00\x01"
    assert p.remaining() == 0


def test_i32_wraps_out_of_range():
    p = Parcel()
    p.write_i32(0xFFFFFFFF)
    p.rewind()
    assert p.read_i32() == -1


def test_under_read_raises():
    p = Parcel()
    p.write_i32(1)
    p.rewind()
    p.read_i32()
    with pytest.raises(ParcelError):
        p.read_i32()


def test_bad_string_length():
    p = Parcel()
    p.write_i32(9999)  # length prefix with no payload
    p.rewind()
    with pytest.raises(ParcelError):
        p.read_string()


def test_type_track():
    p = Parcel()
    p.write_i32(1).write_string("x").write_bytes(b"")
    assert p.type_track() == ("i32", "str", "bytes")


def test_value_track():
    p = Parcel()
    p.write_i32(3).write_string("abc").write_bool(False)
    assert p.value_track() == (3, "abc", False)


def test_rewind_resets_cursor():
    p = Parcel()
    p.write_i32(42)
    p.rewind()
    p.read_i32()
    p.rewind()
    assert p.read_i32() == 42


def test_size_and_to_bytes():
    p = Parcel()
    p.write_i32(1)
    assert p.size() == 4
    assert len(p.to_bytes()) == 4


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_i32_roundtrip_property(value):
    p = Parcel()
    p.write_i32(value)
    p.rewind()
    assert p.read_i32() == value


@given(st.text(max_size=64))
def test_string_roundtrip_property(text):
    p = Parcel()
    p.write_string(text)
    p.rewind()
    assert p.read_string() == text


@given(st.binary(max_size=128))
def test_bytes_roundtrip_property(data):
    p = Parcel()
    p.write_bytes(data)
    p.rewind()
    assert p.read_bytes() == data
