"""Tests for the pre-testing HAL probing pass."""

import pytest

from repro.core.probe import HalInterfaceModel, HalMethodModel, PokeApp, Prober
from repro.device import AndroidDevice, profile_by_id


@pytest.fixture(scope="module")
def probed():
    device = AndroidDevice(profile_by_id("A1"))
    model = Prober(device).probe()
    return device, model


def test_all_services_probed(probed):
    device, model = probed
    assert set(model.services()) == set(device.hal_services())


def test_interface_count_substantial(probed):
    _device, model = probed
    assert model.interface_count() >= 40


def test_signatures_recovered(probed):
    _device, model = probed
    negotiate = model.get("vendor.usb.negotiate")
    assert negotiate.signature == ("i32", "i32")
    set_buffer = model.get("vendor.graphics.composer.setLayerBuffer")
    assert set_buffer.signature == ("i64", "i32", "i32")


def test_weights_in_unit_interval(probed):
    _device, model = probed
    for method in model.methods.values():
        assert 0 < method.weight < 1


def test_hot_interfaces_weigh_more(probed):
    _device, model = probed
    present = model.get("vendor.graphics.composer.presentDisplay")
    dump = model.get("vendor.graphics.composer.dumpDebugInfo")
    assert present.weight > dump.weight


def test_links_inferred(probed):
    _device, model = probed
    write_audio = model.get("vendor.audio.writeAudio")
    assert write_audio.links.get(0) == ("vendor.audio", "openOutputStream")
    destroy = model.get("vendor.graphics.composer.destroyLayer")
    assert destroy.links.get(0) == ("vendor.graphics.composer",
                                    "createLayer")


def test_seen_args_recorded(probed):
    _device, model = probed
    open_stream = model.get("vendor.audio.openOutputStream")
    assert any(args and args[0] in (16000, 48000)
               for args in open_stream.seen_args)


def test_camera_links_with_warmup():
    device = AndroidDevice(profile_by_id("C1"))
    model = Prober(device).probe()
    capture = model.get("vendor.camera.provider.processCaptureRequest")
    assert capture.links.get(0) == ("vendor.camera.provider",
                                    "configureStreams")


def test_probe_without_links_faster():
    device = AndroidDevice(profile_by_id("C2"))
    model = Prober(device).probe(infer_links=False)
    assert model.interface_count() > 0
    assert all(not m.links for m in model.methods.values())


def test_poke_app_lists_and_reflects():
    device = AndroidDevice(profile_by_id("C2"))
    poke = PokeApp(device)
    hals = poke.list_hals()
    assert ("vendor.wifi", "vendor.wifi@1.5::IWifiChip") in hals
    methods = poke.reflect_methods("vendor.wifi")
    assert ("1", "start") not in methods  # codes are ints
    assert (1, "start") in methods


def test_poke_invoke_unknown():
    device = AndroidDevice(profile_by_id("C2"))
    poke = PokeApp(device)
    assert poke.invoke("vendor.none", "x") is None
    assert poke.invoke("vendor.wifi", "nope") is None


def test_remember_args_dedup_and_cap():
    m = HalMethodModel("s", "m", 1)
    for _ in range(3):
        m.remember_args((1, 2))
    assert m.seen_args == [(1, 2)]
    for i in range(40):
        m.remember_args((i,), cap=10)
    assert len(m.seen_args) == 10


def test_model_queries():
    model = HalInterfaceModel()
    model.add(HalMethodModel("svc", "a", 1))
    model.add(HalMethodModel("svc", "b", 2))
    assert model.labels() == ["svc.a", "svc.b"]
    assert len(model.by_service("svc")) == 2
    assert model.get("svc.c") is None
