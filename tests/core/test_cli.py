"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_devices(capsys):
    assert main(["list-devices"]) == 0
    out = capsys.readouterr().out
    for ident in ("A1", "A2", "B", "C1", "C2", "D", "E"):
        assert ident in out
    assert "Xiaomi" in out and "AAEON" in out


def test_probe_command(capsys):
    assert main(["probe", "C2", "--no-links"]) == 0
    out = capsys.readouterr().out
    assert "vendor.wifi.startSoftAp" in out
    assert "framework flows distilled" in out


def test_fuzz_command_with_state(tmp_path, capsys):
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--state-dir", str(tmp_path), "--repro"]) == 0
    out = capsys.readouterr().out
    assert "coverage" in out
    assert (tmp_path / "corpus.txt").exists()


def test_fuzz_tool_choice_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fuzz", "E", "--tool", "nonsense"])


def test_compare_command(capsys):
    assert main(["compare", "E", "--hours", "1",
                 "--tools", "droidfuzz", "difuze"]) == 0
    out = capsys.readouterr().out
    assert "droidfuzz" in out and "difuze" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_fuzz_with_telemetry_then_stats(tmp_path, capsys):
    telemetry_dir = tmp_path / "tel"
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--telemetry", str(telemetry_dir)]) == 0
    assert (telemetry_dir / "trace.jsonl").exists()
    assert (telemetry_dir / "snapshots.jsonl").exists()
    assert (telemetry_dir / "metrics.json").exists()
    capsys.readouterr()

    assert main(["stats", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert "exec/s" in out
    assert "Virtual time by campaign phase" in out
    assert "execute" in out


def test_compare_with_telemetry_adds_throughput_column(tmp_path, capsys):
    telemetry_dir = tmp_path / "cmp"
    assert main(["compare", "E", "--hours", "1",
                 "--tools", "droidfuzz", "syzkaller",
                 "--telemetry", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert "exec/s" in out
    assert (telemetry_dir / "droidfuzz" / "trace.jsonl").exists()
    assert (telemetry_dir / "syzkaller" / "trace.jsonl").exists()

    assert main(["stats", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert str(telemetry_dir / "droidfuzz") in out
    assert str(telemetry_dir / "syzkaller") in out


def test_stats_on_missing_dir_fails(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "nothing")]) == 1
    assert "no telemetry found" in capsys.readouterr().out


def test_telemetry_flag_does_not_change_results(tmp_path, capsys):
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2"]) == 0
    plain = capsys.readouterr().out.splitlines()[0]
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--telemetry", str(tmp_path / "t")]) == 0
    observed = capsys.readouterr().out.splitlines()[0]
    assert observed == plain


def test_fleet_command_inline(tmp_path, capsys):
    telemetry_dir = tmp_path / "fleet"
    assert main(["fleet", "--devices", "E", "--hours", "1",
                 "--telemetry", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert "[w0] E#0 start" in out
    assert "Fleet results" in out
    assert "parallel speedup" in out
    assert (telemetry_dir / "fleet.json").exists()
    assert (telemetry_dir / "E#0" / "trace.jsonl").exists()

    assert main(["stats", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert "# Fleet" in out  # fleet.json rendered ahead of campaigns
    assert "Virtual time by campaign phase" in out


def test_fleet_command_parallel_workers(tmp_path, capsys):
    assert main(["fleet", "--devices", "E", "B", "--hours", "1",
                 "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "[w1] E#0 start" in out
    assert "[w2] B#0 start" in out
    assert "E#0" in out and "B#0" in out


def test_fleet_command_unknown_device(capsys):
    assert main(["fleet", "--devices", "Z9"]) == 2
    assert "unknown device" in capsys.readouterr().out


def test_fuzz_multi_seed_fleet(capsys):
    assert main(["fuzz", "E", "--hours", "1", "--seeds", "2",
                 "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "droidfuzz on E-s0: coverage" in out
    assert "droidfuzz on E-s1: coverage" in out


def test_fuzz_multi_seed_matches_single_runs(capsys):
    assert main(["fuzz", "E", "--hours", "1", "--seed", "1"]) == 0
    single = capsys.readouterr().out.splitlines()[0]
    single_tail = single.split(":", 1)[1]
    assert main(["fuzz", "E", "--hours", "1", "--seeds", "2"]) == 0
    fleet_out = capsys.readouterr().out
    fleet_line = next(line for line in fleet_out.splitlines()
                      if line.startswith("droidfuzz on E-s1:"))
    assert fleet_line.split(":", 1)[1] == single_tail


def test_trace_max_mb_rotates_trace(tmp_path, capsys):
    telemetry_dir = tmp_path / "rot"
    assert main(["fuzz", "E", "--hours", "2", "--telemetry",
                 str(telemetry_dir), "--trace-max-mb", "0.001"]) == 0
    capsys.readouterr()
    assert (telemetry_dir / "trace.1.jsonl").exists()
    assert main(["stats", str(telemetry_dir)]) == 0
    assert "Virtual time by campaign phase" in capsys.readouterr().out


# ----------------------------------------------------------------------
# shared parent parsers, --stream, watch, deprecations
# ----------------------------------------------------------------------

@pytest.mark.parametrize("command", ["fuzz", "hunt", "compare", "fleet"])
def test_stream_flag_present_on_every_campaign_command(command):
    parser = build_parser()
    tail = {"fuzz": ["E"], "hunt": [], "compare": ["E"],
            "fleet": ["--devices", "E"]}[command]
    args = parser.parse_args([command, *tail,
                              "--stream", "127.0.0.1:7799"])
    assert args.stream == "127.0.0.1:7799"
    assert args.seed == 0          # shared campaign group
    assert args.trace_max_mb == 0.0  # shared telemetry group


def test_per_command_hours_defaults_survive_shared_parsers():
    parser = build_parser()
    assert parser.parse_args(["fuzz", "E"]).hours == 24.0
    assert parser.parse_args(["hunt"]).hours == 48.0
    assert parser.parse_args(["compare", "E"]).hours == 12.0


def test_hunt_seed_offsets_the_seed_range(capsys):
    assert main(["hunt", "--hours", "1", "--seeds", "1",
                 "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "E seed 5:" in out
    assert "seed 0:" not in out  # range starts at --seed, not 0


def test_watchdog_alias_is_deprecated_but_still_lands(capsys):
    args = build_parser().parse_args(
        ["fleet", "--devices", "E", "--watchdog", "17"])
    assert args.watchdog_seconds == 17.0
    assert "deprecated" in capsys.readouterr().err
    # The replacement spelling works without a warning.
    args = build_parser().parse_args(
        ["fleet", "--devices", "E", "--watchdog-seconds", "23"])
    assert args.watchdog_seconds == 23.0
    assert capsys.readouterr().err == ""


def test_watch_subcommand_parses():
    args = build_parser().parse_args(
        ["watch", "127.0.0.1:7799", "--sse", "--max-records", "5",
         "--duration", "2.5", "--follow"])
    assert args.address == "127.0.0.1:7799"
    assert args.sse and args.follow
    assert args.max_records == 5
    assert args.duration == 2.5


def test_stream_flag_announces_and_keeps_results_identical(capsys):
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2"]) == 0
    plain = capsys.readouterr().out.splitlines()[0]
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--stream", "127.0.0.1:0"]) == 0
    out = capsys.readouterr().out
    assert "streaming live telemetry on 127.0.0.1:" in out
    assert "repro watch" in out  # tells the user how to attach
    result_line = next(line for line in out.splitlines()
                       if line.startswith("droidfuzz on E:"))
    assert result_line == plain


def test_fleet_with_stream_flag_still_reports(capsys):
    assert main(["fleet", "--devices", "E", "--hours", "1",
                 "--stream", "127.0.0.1:0"]) == 0
    out = capsys.readouterr().out
    assert "streaming live telemetry" in out
    assert "Fleet results" in out


def test_compare_with_telemetry_prints_latency_quantiles(tmp_path, capsys):
    assert main(["compare", "E", "--hours", "1",
                 "--tools", "droidfuzz", "syzkaller",
                 "--telemetry", str(tmp_path / "cmp")]) == 0
    out = capsys.readouterr().out
    assert "Wire latency quantiles" in out
    assert "exec_vtime" in out and "payload_bytes" in out
    assert "p50" in out and "p90" in out and "p99" in out


def test_trace_sample_flag_is_deterministic_and_shrinks_trace(
        tmp_path, capsys):
    dirs = [tmp_path / name for name in ("a", "b", "full")]
    for directory in dirs[:2]:
        assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                     "--telemetry", str(directory),
                     "--trace-sample", "exec=0.05"]) == 0
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--telemetry", str(dirs[2])]) == 0
    capsys.readouterr()
    sampled = [(d / "trace.jsonl").read_bytes() for d in dirs[:2]]
    assert sampled[0] == sampled[1]  # byte-identical across runs
    full = (dirs[2] / "trace.jsonl").read_bytes()
    assert len(sampled[0]) < len(full)
    # Recorded sampled lines are a subset of the full trace's lines.
    full_lines = iter(full.splitlines())
    assert all(line in full_lines for line in sampled[0].splitlines())


def test_trace_sample_rejects_malformed_spec():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["fuzz", "E", "--trace-sample", "exec=lots"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["fuzz", "E", "--trace-sample", "exec=1.5"])


def test_stats_renders_latency_and_sampling_note(tmp_path, capsys):
    directory = tmp_path / "tel"
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--telemetry", str(directory),
                 "--trace-sample", "exec=0.1"]) == 0
    capsys.readouterr()
    assert main(["stats", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "Wire latency quantiles" in out
    assert "exec_vtime" in out
    assert "span sampling active: execute" in out


def test_stats_reads_watch_sse_capture(tmp_path, capsys):
    import json

    capture = tmp_path / "capture.ndjson"
    records = []
    for source in ("E#0", "E#1"):
        for step in range(3):
            records.append({
                "type": "snapshot", "source": source, "t": step * 600.0,
                "executions": step * 100, "execs_per_sec": 5.0 + step,
                "kernel_coverage": 40 + step, "corpus_size": step,
                "reboots": 0, "bugs": 0})
    records.append({"type": "bug", "source": "E#1", "t": 1300.0,
                    "title": "BUG: x", "total": 1})
    capture.write_text(
        "\n".join(json.dumps(r) for r in records) + "\n")
    assert main(["stats", str(capture)]) == 0
    out = capsys.readouterr().out
    assert "[E#0]" in out and "[E#1]" in out
    assert "exec/s" in out  # same sparkline view as a trace dir
    assert "crash" in out  # bug records fold into the event table


def test_stats_on_empty_stream_file_fails(tmp_path, capsys):
    capture = tmp_path / "empty.ndjson"
    capture.write_text("")
    assert main(["stats", str(capture)]) == 1
    assert "no stream records" in capsys.readouterr().out
