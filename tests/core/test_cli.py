"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_devices(capsys):
    assert main(["list-devices"]) == 0
    out = capsys.readouterr().out
    for ident in ("A1", "A2", "B", "C1", "C2", "D", "E"):
        assert ident in out
    assert "Xiaomi" in out and "AAEON" in out


def test_probe_command(capsys):
    assert main(["probe", "C2", "--no-links"]) == 0
    out = capsys.readouterr().out
    assert "vendor.wifi.startSoftAp" in out
    assert "framework flows distilled" in out


def test_fuzz_command_with_state(tmp_path, capsys):
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--state-dir", str(tmp_path), "--repro"]) == 0
    out = capsys.readouterr().out
    assert "coverage" in out
    assert (tmp_path / "corpus.txt").exists()


def test_fuzz_tool_choice_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fuzz", "E", "--tool", "nonsense"])


def test_compare_command(capsys):
    assert main(["compare", "E", "--hours", "1",
                 "--tools", "droidfuzz", "difuze"]) == 0
    out = capsys.readouterr().out
    assert "droidfuzz" in out and "difuze" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
