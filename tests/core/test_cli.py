"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_devices(capsys):
    assert main(["list-devices"]) == 0
    out = capsys.readouterr().out
    for ident in ("A1", "A2", "B", "C1", "C2", "D", "E"):
        assert ident in out
    assert "Xiaomi" in out and "AAEON" in out


def test_probe_command(capsys):
    assert main(["probe", "C2", "--no-links"]) == 0
    out = capsys.readouterr().out
    assert "vendor.wifi.startSoftAp" in out
    assert "framework flows distilled" in out


def test_fuzz_command_with_state(tmp_path, capsys):
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--state-dir", str(tmp_path), "--repro"]) == 0
    out = capsys.readouterr().out
    assert "coverage" in out
    assert (tmp_path / "corpus.txt").exists()


def test_fuzz_tool_choice_validated():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fuzz", "E", "--tool", "nonsense"])


def test_compare_command(capsys):
    assert main(["compare", "E", "--hours", "1",
                 "--tools", "droidfuzz", "difuze"]) == 0
    out = capsys.readouterr().out
    assert "droidfuzz" in out and "difuze" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_fuzz_with_telemetry_then_stats(tmp_path, capsys):
    telemetry_dir = tmp_path / "tel"
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--telemetry", str(telemetry_dir)]) == 0
    assert (telemetry_dir / "trace.jsonl").exists()
    assert (telemetry_dir / "snapshots.jsonl").exists()
    assert (telemetry_dir / "metrics.json").exists()
    capsys.readouterr()

    assert main(["stats", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert "exec/s" in out
    assert "Virtual time by campaign phase" in out
    assert "execute" in out


def test_compare_with_telemetry_adds_throughput_column(tmp_path, capsys):
    telemetry_dir = tmp_path / "cmp"
    assert main(["compare", "E", "--hours", "1",
                 "--tools", "droidfuzz", "syzkaller",
                 "--telemetry", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert "exec/s" in out
    assert (telemetry_dir / "droidfuzz" / "trace.jsonl").exists()
    assert (telemetry_dir / "syzkaller" / "trace.jsonl").exists()

    assert main(["stats", str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert str(telemetry_dir / "droidfuzz") in out
    assert str(telemetry_dir / "syzkaller") in out


def test_stats_on_missing_dir_fails(tmp_path, capsys):
    assert main(["stats", str(tmp_path / "nothing")]) == 1
    assert "no telemetry found" in capsys.readouterr().out


def test_telemetry_flag_does_not_change_results(tmp_path, capsys):
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2"]) == 0
    plain = capsys.readouterr().out.splitlines()[0]
    assert main(["fuzz", "E", "--hours", "1", "--seed", "2",
                 "--telemetry", str(tmp_path / "t")]) == 0
    observed = capsys.readouterr().out.splitlines()[0]
    assert observed == plain
