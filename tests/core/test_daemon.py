"""Daemon fleet coordination: result keys, rollups, aggregation."""

from repro.core.config import FuzzerConfig
from repro.core.daemon import Daemon
from repro.device.device import DeviceCosts
from repro.device.profiles import profile_by_id


def _fast_daemon(**kwargs) -> Daemon:
    return Daemon(
        config=FuzzerConfig(seed=0, campaign_hours=0.25),
        costs=DeviceCosts(syscall=1.0, binder=4.0, reboot=120.0,
                          shell=2.0),
        **kwargs)


def test_rerunning_same_profile_and_seed_keeps_both_results():
    daemon = _fast_daemon()
    profile = profile_by_id("E")
    first = daemon.run_device(profile, seed=1)
    second = daemon.run_device(profile, seed=1)
    third = daemon.run_device(profile, seed=1)
    assert set(daemon.results) == {"E#1", "E#1.r2", "E#1.r3"}
    assert daemon.results["E#1"] is first
    assert daemon.results["E#1.r2"] is second
    assert daemon.results["E#1.r3"] is third
    # Identical configuration ⇒ identical deterministic outcomes.
    assert first == second == third


def test_distinct_seeds_do_not_collide():
    daemon = _fast_daemon()
    profile = profile_by_id("E")
    daemon.run_device(profile, seed=1)
    daemon.run_device(profile, seed=2)
    assert set(daemon.results) == {"E#1", "E#2"}
    assert set(daemon.coverage_summary()) == {"E#1", "E#2"}


def test_daemon_records_telemetry_and_fleet_rollup(tmp_path):
    daemon = _fast_daemon(telemetry_dir=tmp_path)
    profile = profile_by_id("E")
    result = daemon.run_device(profile, seed=1)
    daemon.run_device(profile, seed=1)

    assert (tmp_path / "E#1" / "trace.jsonl").exists()
    assert (tmp_path / "E#1" / "snapshots.jsonl").exists()
    assert (tmp_path / "E#1" / "metrics.json").exists()
    assert (tmp_path / "E#1.r2" / "trace.jsonl").exists()

    assert set(daemon.rollups) == {"E#1", "E#1.r2"}
    assert daemon.rollups["E#1"]["executions"] == result.executions
    fleet = daemon.fleet_rollup()
    assert fleet["campaigns"] == 2
    assert fleet["executions"] == 2 * result.executions


def test_all_bugs_deduplicates_across_campaigns():
    daemon = _fast_daemon()
    daemon.config = daemon.config.variant(campaign_hours=1.0)
    profile = profile_by_id("A1")
    daemon.run_device(profile, seed=0)
    daemon.run_device(profile, seed=0)
    bugs = daemon.all_bugs()
    titles = [(b.device, b.title) for b in bugs]
    assert len(titles) == len(set(titles))
