"""Property-based tests over the generation/mutation/execution stack.

These check the invariants that keep campaigns sound: any generated or
mutated program must validate, serialize round-trip, and execute without
raising on any device.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.device import AndroidDevice, profile_by_id
from repro.dsl.text import parse_program, serialize_program


@pytest.fixture(scope="module")
def engine_a1():
    device = AndroidDevice(profile_by_id("A1"))
    return FuzzingEngine(device, FuzzerConfig(seed=0, campaign_hours=0.1))


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_generated_programs_roundtrip_and_execute(engine_a1, sub_seed):
    engine_a1.rng.seed(sub_seed)
    engine_a1.generator._rng.seed(sub_seed)
    program = engine_a1.generator.generate()
    program.validate()
    text = serialize_program(program)
    parsed = parse_program(text)
    assert serialize_program(parsed) == text
    outcome = engine_a1.broker.execute(parsed)
    assert len(outcome.statuses) == len(parsed)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_mutated_programs_stay_executable(engine_a1, sub_seed):
    engine_a1.generator._rng.seed(sub_seed)
    base = engine_a1.generator.generate()
    mutant = engine_a1.mutator.mutate(base)
    mutant.validate()
    outcome = engine_a1.broker.execute(mutant)
    assert len(outcome.statuses) == len(mutant)
    # The device never wedges silently: reboot requests are flagged.
    if not engine_a1.device.healthy:
        assert outcome.needs_reboot
        engine_a1.device.reboot()
        engine_a1.broker.on_reboot()


@given(st.integers(min_value=0, max_value=3_000))
@settings(max_examples=30, deadline=None)
def test_kernel_never_raises_on_junk_syscalls(sub_seed):
    rng = random.Random(sub_seed)
    device = AndroidDevice(profile_by_id("C2"))
    proc = device.new_process("junk")
    names = ["openat", "close", "read", "write", "ioctl", "mmap",
             "socket", "bind", "connect", "listen", "accept", "dup",
             "sendto", "recvfrom", "setsockopt", "getsockopt", "fcntl",
             "munmap", "ppoll"]
    junk_values = [0, -1, 2**31, b"\x00" * 3, "x", None, [1, 2],
                   b"\xff" * 40, 31, "/dev/nl80211"]
    for _ in range(50):
        name = rng.choice(names)
        args = tuple(rng.choice(junk_values)
                     for _ in range(rng.randint(0, 4)))
        try:
            outcome = device.syscall(proc.pid, name, *args)
        except TypeError:
            # Wrong arity is a harness-level mistake, not kernel input;
            # the dispatcher signature rejects it.
            continue
        assert isinstance(outcome.ret, int)
