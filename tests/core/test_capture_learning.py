"""Tests for HAL payload capture and cross-boundary relation learning."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.device import AndroidDevice, profile_by_id
from repro.dsl.model import HalCall, Program


@pytest.fixture(scope="module")
def engine_a2():
    device = AndroidDevice(profile_by_id("A2"))
    return FuzzingEngine(device, FuzzerConfig(seed=0, campaign_hours=0.1))


def test_capture_labels_map_to_descs(engine_a2):
    import repro.kernel.drivers.tcpc_rt1711 as tcpc
    labels = engine_a2._capture_labels([
        ("write", "/dev/hci0", b"\x01\x03\x0c\x00"),
        ("ioctl", "/dev/tcpc0", tcpc.TCPC_IOC_PROBE, None),
        ("ioctl", "/dev/tcpc0", 0xDEAD, None),
    ])
    # Vendor ioctls have no public typed desc: they map to the raw form.
    assert labels == ["write$hci0", "ioctl$raw_tcpc0", "ioctl$raw_tcpc0"]


def test_capture_labels_standard_ioctls_resolve(engine_a2):
    import repro.kernel.drivers.sensors_iio as iio
    labels = engine_a2._capture_labels([
        ("ioctl", "/dev/iio:device0", iio.IIO_IOC_BUFFER_ENABLE, None)])
    assert labels == ["ioctl$IIO_IOC_BUFFER_ENABLE"]


def test_bluetooth_enable_captures_hci_packets(engine_a2):
    # The probing pass may have left the stack enabled; reset first.
    program = Program([HalCall("vendor.bluetooth", "disable", ()),
                       HalCall("vendor.bluetooth", "enable", ())])
    outcome = engine_a2.broker.execute(program)
    writes = [c for c in outcome.captures if c[0] == "write"]
    assert any(c[1] == "/dev/hci0" for c in writes)
    payloads = {c[2] for c in writes}
    assert b"\x01\x03\x0c\x00" in payloads  # HCI_RESET
    # READ_SUPPORTED_CODECS is in the canonical init sequence.
    assert b"\x01\x0b\x10\x00" in payloads


def test_captured_payloads_enter_generator_pools(engine_a2):
    program = Program([HalCall("vendor.bluetooth", "disable", ()),
                       HalCall("vendor.bluetooth", "enable", ())])
    outcome = engine_a2.broker.execute(program)
    for capture in outcome.captures:
        engine_a2.generator.record_capture(capture)
    pool = engine_a2.generator._captured_writes.get("/dev/hci0")
    assert pool and len(pool) >= 5


def test_relations_learn_hal_call_order(engine_a2):
    import repro.kernel.drivers.bt_hci as hci
    labels = engine_a2._capture_labels([
        ("ioctl", "/dev/hci0", hci.HCIDEV_IOC_UP, None),
        ("write", "/dev/hci0", b"\x01\x03\x0c\x00"),
    ])
    engine_a2.relations.learn_program(labels)
    # Vendor ioctl maps to the raw form; the chain edge is learned.
    assert engine_a2.relations.edge_weight("ioctl$raw_hci0",
                                           "write$hci0") > 0
    # Self-edges are deliberately excluded (call repetition is handled
    # by the generator's repeat mechanism instead).
    engine_a2.relations.learn_program(["write$hci0", "write$hci0"])
    assert engine_a2.relations.edge_weight("write$hci0",
                                           "write$hci0") == 0


def test_capture_dedup(engine_a2):
    engine_a2.generator.record_capture(("write", "/dev/x", b"same"))
    engine_a2.generator.record_capture(("write", "/dev/x", b"same"))
    assert len(engine_a2.generator._captured_writes["/dev/x"]) == 1
