"""The typed result surface: CampaignResult serialization,
CampaignRecord, and the sequence-compatible FleetResult."""

from __future__ import annotations

import json

import pytest

from repro.core.bugs import BugReport
from repro.core.config import FuzzerConfig
from repro.core.daemon import Daemon
from repro.core.engine import CampaignResult
from repro.core.results import CampaignRecord, FleetResult, dedupe_bugs
from repro.device.profiles import profile_by_id

pytestmark = pytest.mark.timeout(120)


def _result(device="E", seed=0, coverage=100, bugs=()) -> CampaignResult:
    return CampaignResult(
        tool="droidfuzz", device=device, seed=seed, duration_hours=1.0,
        timeline=[(0.0, 0), (1800.0, coverage)],
        bugs=list(bugs), kernel_coverage=coverage, joint_coverage=coverage,
        per_driver={"ion": coverage}, driver_totals={"ion": 500},
        executions=1000, corpus_size=40, interface_count=12, reboots=2)


def _bug(device="E", title="UAF in ion_free", clock=100.0) -> BugReport:
    return BugReport(title=title, kind="kasan", component="kernel",
                     device=device, first_clock=clock)


# ----------------------------------------------------------------------
# CampaignResult <-> dict
# ----------------------------------------------------------------------

def test_campaign_result_roundtrips_through_dict():
    original = _result(bugs=[_bug()])
    data = original.to_dict()
    assert CampaignResult.from_dict(data) == original


def test_campaign_result_to_dict_is_json_serializable():
    data = _result(bugs=[_bug()]).to_dict()
    restored = json.loads(json.dumps(data, sort_keys=True))
    assert CampaignResult.from_dict(restored) == _result(bugs=[_bug()])


def test_real_campaign_result_roundtrips(fast_costs):
    daemon = Daemon(config=FuzzerConfig(seed=1, campaign_hours=0.4),
                    costs=fast_costs)
    result = daemon.run_device(profile_by_id("E"))
    assert CampaignResult.from_dict(
        json.loads(json.dumps(result.to_dict()))) == result


# ----------------------------------------------------------------------
# FleetResult: sequence back-compat + typed views
# ----------------------------------------------------------------------

def _fleet() -> FleetResult:
    records = [
        CampaignRecord(key="A1#0", result=_result("A1", coverage=50),
                       rollup={"snapshots": 3, "executions": 500},
                       telemetry_path="/tmp/t/A1#0", worker_id=1),
        CampaignRecord(key="E#0",
                       result=_result("E", coverage=80, bugs=[_bug()]),
                       rollup={"snapshots": 2, "executions": 800}),
    ]
    return FleetResult(records=records, fleet_stats={"jobs": 2})


def test_fleet_result_is_a_sequence_of_campaign_results():
    fleet = _fleet()
    assert len(fleet) == 2
    assert [r.device for r in fleet] == ["A1", "E"]
    assert fleet[0].device == "A1"
    assert [r.device for r in fleet[0:2]] == ["A1", "E"]


def test_fleet_result_typed_views():
    fleet = _fleet()
    assert set(fleet.by_key()) == {"A1#0", "E#0"}
    assert fleet.record("A1#0").worker_id == 1
    assert fleet.record("A1#0").telemetry_path == "/tmp/t/A1#0"
    with pytest.raises(KeyError):
        fleet.record("nope")
    assert fleet.coverage_summary() == {"A1#0": 50, "E#0": 80}
    assert fleet.rollups()["E#0"]["executions"] == 800
    assert fleet.rollup()["executions"] == 1300
    assert [b.title for b in fleet.all_bugs()] == ["UAF in ion_free"]


def test_fleet_result_to_dict_is_json_serializable():
    data = _fleet().to_dict()
    parsed = json.loads(json.dumps(data, sort_keys=True))
    assert parsed["bugs"] == 1
    assert len(parsed["campaigns"]) == 2
    assert parsed["coverage"] == {"A1#0": 50, "E#0": 80}


def test_dedupe_bugs_keeps_earliest_sighting_per_device():
    early = _bug(clock=10.0)
    late = _bug(clock=99.0)
    other = _bug(device="A1", clock=50.0)
    bugs = dedupe_bugs([_result(bugs=[late]), _result(bugs=[early]),
                        _result("A1", bugs=[other])])
    assert [(b.device, b.first_clock) for b in bugs] \
        == [("A1", 50.0), ("E", 10.0)]


# ----------------------------------------------------------------------
# daemon integration
# ----------------------------------------------------------------------

def test_run_fleet_returns_sequence_compatible_fleet_result(fast_costs):
    daemon = Daemon(config=FuzzerConfig(seed=0, campaign_hours=0.4),
                    costs=fast_costs)
    profiles = [profile_by_id("A1"), profile_by_id("E")]
    fleet = daemon.run_fleet(profiles)
    assert isinstance(fleet, FleetResult)
    assert len(fleet) == 2  # old list-consumers keep working
    assert fleet.by_key() == daemon.results
    assert fleet.all_bugs() == daemon.all_bugs()
    assert fleet.coverage_summary() == daemon.coverage_summary()
    assert fleet.fleet_stats == daemon.fleet_stats


def test_daemon_fleet_result_covers_run_device_too(fast_costs, tmp_path):
    daemon = Daemon(config=FuzzerConfig(seed=2, campaign_hours=0.4),
                    costs=fast_costs, telemetry_dir=tmp_path)
    daemon.run_device(profile_by_id("E"))
    fleet = daemon.fleet_result()
    assert len(fleet) == 1
    record = fleet.record("E#2")
    assert record.telemetry_path == str(tmp_path / "E#2")
    assert record.rollup.get("snapshots", 0) > 0
