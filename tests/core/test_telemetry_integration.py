"""Telemetry integration: behavioural identity, overhead, bridging.

The core guarantee: telemetry observes a campaign without perturbing it.
A telemetry-enabled run must produce exactly the same
:class:`CampaignResult` (same RNG stream, coverage, bugs, timeline) as a
disabled one, and the disabled path must be near-zero cost.
"""

import time

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.device.device import AndroidDevice
from repro.device.profiles import profile_by_id
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry


def _run_campaign(telemetry=None, ident="E", seed=3, hours=0.5):
    device = AndroidDevice(profile_by_id(ident))
    engine = FuzzingEngine(
        device, FuzzerConfig(seed=seed, campaign_hours=hours),
        telemetry=telemetry)
    return engine, engine.run()


def _memory_telemetry(interval=600.0) -> Telemetry:
    return Telemetry(trace_sink=MemorySink(), snapshot_sink=MemorySink(),
                     interval=interval)


def test_telemetry_does_not_change_campaign_results():
    _, baseline = _run_campaign(telemetry=None)
    telemetry = _memory_telemetry()
    _, observed = _run_campaign(telemetry=telemetry)
    assert observed == baseline  # every CampaignResult field identical
    # ... and the instrumented run actually recorded something.
    assert telemetry.tracer.sink.records
    assert telemetry.monitor.snapshots


def test_telemetry_disabled_attaches_no_probes():
    device = AndroidDevice(profile_by_id("E"))
    FuzzingEngine(device, FuzzerConfig(seed=0, campaign_hours=0.1))
    assert device.kernel.trace.probe_count() == 0


def test_telemetry_enabled_records_spans_events_and_snapshots():
    telemetry = _memory_telemetry()
    engine, result = _run_campaign(telemetry=telemetry, hours=1.0)
    records = telemetry.tracer.sink.records
    phases = {r["phase"] for r in records if r["type"] == "span"}
    assert {"probe", "seed", "execute", "generate"} <= phases
    executes = [r for r in records
                if r["type"] == "span" and r["phase"] == "execute"]
    assert len(executes) == result.executions
    kinds = {r["kind"] for r in records if r["type"] == "event"}
    assert "new-coverage" in kinds and "corpus-admit" in kinds
    snapshots = telemetry.monitor.snapshots
    assert snapshots[-1].executions == result.executions
    assert snapshots[-1].kernel_coverage == result.kernel_coverage
    # The kernel bridge attributed cost to real drivers.
    assert telemetry.metrics.with_prefix("driver.vtime")
    assert telemetry.metrics.with_prefix("device.syscalls")
    # The broker recorded wire metrics.
    assert telemetry.metrics.counter("broker.programs").value > 0
    assert telemetry.metrics.histogram("broker.payload_bytes").count > 0


def test_noop_telemetry_overhead_under_five_percent():
    start = time.perf_counter()
    engine, _ = _run_campaign(telemetry=None, hours=0.5)
    campaign_seconds = time.perf_counter() - start

    # Generously overestimate the instrumentation call volume: six
    # disabled span entries plus six suppressed events per execution.
    tracer = Telemetry.disabled().tracer
    calls = max(engine.executions, 1) * 6
    start = time.perf_counter()
    for _ in range(calls):
        with tracer.span("execute"):
            pass
        tracer.event("new-coverage", fresh=0)
    overhead_seconds = time.perf_counter() - start
    assert overhead_seconds < 0.05 * campaign_seconds, (
        f"disabled telemetry cost {overhead_seconds:.4f}s vs campaign "
        f"{campaign_seconds:.4f}s")


def test_bug_tracker_dedup_stats():
    from repro.core.bugs import BugTracker

    tracker = BugTracker("E")
    crash = {"kind": "BUG", "title": "BUG: x", "component": "kernel"}
    assert tracker.dedup_rate() == 0.0
    tracker.record([crash], clock=10.0)
    assert tracker.first_bug_clock == 10.0
    tracker.record([crash, crash], clock=20.0)
    assert tracker.dup_hits == 2
    assert tracker.first_bug_clock == 10.0
    assert tracker.dedup_rate() == 2 / 3


def test_dmesg_splats_bridge_into_trace():
    telemetry = _memory_telemetry()
    device = AndroidDevice(profile_by_id("E"))
    telemetry.attach_device(device)
    device.kernel.dmesg.warn("test_site", "detail")
    device.kernel.dmesg.log("benign line")
    telemetry.poll()
    events = [r for r in telemetry.tracer.sink.records
              if r["type"] == "event" and r["kind"] == "dmesg"]
    assert len(events) == 1
    assert "WARNING in test_site" in events[0]["line"]
    # Lines already surfaced are not re-emitted on the next poll.
    telemetry.poll()
    assert len([r for r in telemetry.tracer.sink.records
                if r.get("kind") == "dmesg"]) == 1
    # A reboot replaces the ring buffer; the cursor must reset with it.
    device.reboot()
    device.kernel.dmesg.warn("after_reboot")
    telemetry.poll()
    lines = [r["line"] for r in telemetry.tracer.sink.records
             if r.get("kind") == "dmesg"]
    assert any("after_reboot" in line for line in lines)


def test_campaign_result_carries_latency_quantiles():
    telemetry = _memory_telemetry()
    _, observed = _run_campaign(telemetry=telemetry, hours=1.0)
    _, baseline = _run_campaign(telemetry=None, hours=1.0)
    # Latency only exists on the observed run, yet results still
    # compare equal: the field is excluded from equality.
    assert baseline.latency == {}
    assert observed == baseline
    assert set(observed.latency) == {"exec_vtime", "payload_bytes"}
    for stats in observed.latency.values():
        assert stats["count"] == observed.executions
        assert 0 < stats["p50"] <= stats["p90"] <= stats["p99"]
        assert stats["p99"] <= stats["max"]
    # The wire-latency block round-trips the serialized result.
    from repro.core.engine import CampaignResult

    restored = CampaignResult.from_dict(observed.to_dict())
    assert restored.latency == observed.latency


def test_snapshots_carry_cumulative_latency():
    telemetry = _memory_telemetry()
    _, result = _run_campaign(telemetry=telemetry, hours=1.0)
    last = telemetry.monitor.snapshots[-1]
    assert last.latency["exec_vtime"]["count"] == result.executions
    assert "latency" in last.to_dict()
    # ... and the rollup surfaces the final cumulative summary.
    assert telemetry.rollup()["latency"] == {
        name: dict(stats) for name, stats
        in sorted(last.latency.items())}
