"""Tests for relational payload generation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generation.generator import PayloadGenerator
from repro.core.probe import Prober
from repro.core.relations import RelationGraph
from repro.device import AndroidDevice, profile_by_id
from repro.dsl.descriptions import build_descriptions
from repro.dsl.model import HalCall, Program, ResourceRef, StructValue


@pytest.fixture(scope="module")
def parts():
    profile = profile_by_id("A1")
    registry = build_descriptions(profile)
    device = AndroidDevice(profile)
    hal_model = Prober(device).probe(infer_links=False)
    return registry, hal_model


def make_generator(parts, seed=0, hal=True, relations_enabled=True):
    registry, hal_model = parts
    relations = RelationGraph()
    for name in registry.names():
        relations.add_vertex(name, 0.3)
    if hal:
        for label in hal_model.labels():
            relations.add_vertex(label, 0.3)
    return PayloadGenerator(registry, hal_model if hal else None,
                            relations, random.Random(seed),
                            relations_enabled=relations_enabled)


def test_generated_programs_validate(parts):
    gen = make_generator(parts)
    for _ in range(300):
        program = gen.generate()
        program.validate()
        assert len(program) >= 1


def test_fd_consumers_get_producers(parts):
    gen = make_generator(parts)
    found_chain = False
    for _ in range(300):
        program = gen.generate()
        for index, call in enumerate(program.calls):
            if call.is_hal or not call.args:
                continue
            arg = call.args[0]
            if isinstance(arg, ResourceRef):
                producer = program.calls[arg.index]
                assert not producer.is_hal
                found_chain = True
    assert found_chain


def test_no_unresolved_markers_leak(parts):
    gen = make_generator(parts)
    for _ in range(200):
        program = gen.generate()
        for call in program.calls:
            for ref in Program.arg_refs(call):
                assert ref.index >= 0


def test_relationless_mode_generates(parts):
    gen = make_generator(parts, relations_enabled=False)
    lengths = [len(gen.generate()) for _ in range(100)]
    assert max(lengths) > 1


def test_history_pool_reuse(parts):
    gen = make_generator(parts, seed=3)
    program = Program([HalCall("vendor.usb", "negotiate", (9000, 2000))])
    gen.record_history(program)
    hits = 0
    for _ in range(200):
        call = gen.instantiate("vendor.usb.negotiate")
        if call.args == (9000, 2000):
            hits += 1
    assert hits > 20


def test_history_refs_renormalized(parts):
    gen = make_generator(parts)
    program = Program([
        HalCall("vendor.graphics.composer", "createLayer", ()),
        HalCall("vendor.graphics.composer", "destroyLayer",
                (ResourceRef(0, "hal:vendor.graphics.composer.createLayer"),)),
    ])
    gen.record_history(program)
    for _ in range(100):
        out = gen.generate()
        out.validate()  # would raise on stale absolute refs


def test_capture_replay(parts):
    gen = make_generator(parts, seed=1)
    gen.record_capture(("write", "/dev/hci0", b"\x01\x03\x0c\x00"))
    desc = parts[0].get("write$hci0")
    hits = 0
    for _ in range(300):
        call = gen._instantiate_syscall(desc)
        if call.args[1] == b"\x01\x03\x0c\x00":
            hits += 1
    assert hits > 100


def test_capture_ioctl_replay(parts):
    gen = make_generator(parts, seed=1)
    gen.record_capture(("ioctl", "/dev/tcpc0", 0x5400, b"\x01"))
    desc = parts[0].get("ioctl$raw_tcpc0")
    hits = 0
    for _ in range(300):
        call = gen._instantiate_syscall(desc)
        if call.args[1] == 0x5400:
            hits += 1
    assert hits > 150


def test_observed_stale_values_used(parts):
    registry, hal_model = parts
    gen = make_generator(parts, seed=2)
    # Give the capture method a link so the stale path can trigger.
    model = hal_model.get("vendor.usb.swapRole")
    model.links[0] = ("vendor.usb", "getPortStatus")
    gen.observe_produced("hal:vendor.usb.getPortStatus", 777)
    stale_hits = 0
    for _ in range(400):
        call = gen._instantiate_hal(model)
        if call.args and call.args[0] == 777:
            stale_hits += 1
    assert stale_hits > 10


def test_sibling_label(parts):
    gen = make_generator(parts)
    for _ in range(20):
        sib = gen.sibling_label("openat$tcpc0")
        desc = parts[0].get(sib)
        assert desc.driver == "rt1711_tcpc"
    hal_sib = gen.sibling_label("vendor.usb.negotiate")
    assert hal_sib.startswith("vendor.usb.")


def test_seen_args_replayed(parts):
    registry, hal_model = parts
    model = hal_model.get("vendor.audio.openOutputStream")
    model.remember_args((48000, 2, 2))
    gen = make_generator(parts, seed=5)
    hits = sum(
        1 for _ in range(200)
        if gen._instantiate_hal(model).args == (48000, 2, 2))
    assert hits > 25


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=30)
def test_generation_deterministic_per_seed(seed):
    profile = profile_by_id("C2")
    registry = build_descriptions(profile)
    relations = RelationGraph()
    for name in registry.names():
        relations.add_vertex(name, 0.3)
    outs = []
    for _ in range(2):
        gen = PayloadGenerator(registry, None, relations,
                               random.Random(seed))
        outs.append([c.label for c in gen.generate().calls])
    assert outs[0] == outs[1]
