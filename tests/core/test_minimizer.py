"""Tests for program minimization."""

from repro.core.generation.minimizer import minimize
from repro.dsl.model import Program, ResourceRef, SyscallCall


def program_of(n):
    return Program([SyscallCall(f"call{i}", ()) for i in range(n)])


def test_minimize_to_single_essential_call():
    program = program_of(6)

    def interesting(candidate):
        return any(c.desc == "call3" for c in candidate.calls)

    out = minimize(program, interesting)
    assert [c.desc for c in out.calls] == ["call3"]


def test_minimize_keeps_pair():
    program = program_of(6)

    def interesting(candidate):
        names = [c.desc for c in candidate.calls]
        return "call1" in names and "call4" in names

    out = minimize(program, interesting)
    assert sorted(c.desc for c in out.calls) == ["call1", "call4"]


def test_minimize_respects_dependencies():
    program = Program([
        SyscallCall("open", ()),
        SyscallCall("junk", ()),
        SyscallCall("use", (ResourceRef(0),)),
    ])

    def interesting(candidate):
        return any(c.desc == "use" for c in candidate.calls)

    out = minimize(program, interesting)
    out.validate()
    assert [c.desc for c in out.calls] == ["open", "use"]


def test_minimize_execution_budget():
    program = program_of(30)
    calls = []

    def interesting(candidate):
        calls.append(1)
        return True

    minimize(program, interesting, max_executions=10)
    assert len(calls) <= 10


def test_minimize_never_returns_empty():
    program = program_of(3)
    out = minimize(program, lambda c: True)
    assert len(out) >= 1


def test_minimize_uninteresting_keeps_original():
    program = program_of(4)
    out = minimize(program, lambda c: len(c) == 4)
    assert len(out) == 4


def test_original_not_modified():
    program = program_of(5)
    minimize(program, lambda c: True)
    assert len(program) == 5


def test_group_bisection_strips_junk_suffix_cheaply():
    # 15 junk calls behind one essential call: group drops should clear
    # the suffix in far fewer predicate runs than one-at-a-time removal.
    program = program_of(16)
    executions = []

    def interesting(candidate):
        executions.append(1)
        return any(c.desc == "call0" for c in candidate.calls)

    out = minimize(program, interesting, max_executions=24)
    assert [c.desc for c in out.calls] == ["call0"]
    assert len(executions) < 15


def test_early_exit_on_stable_single_call_pass():
    # Every call is essential: after group drops fail, exactly one full
    # chunk=1 pass must run before the minimizer gives up — it may not
    # burn the whole budget re-confirming stability.
    program = program_of(8)
    executions = []

    def interesting(candidate):
        executions.append(1)
        return len(candidate) == 8

    out = minimize(program, interesting, max_executions=100)
    assert len(out) == 8
    assert len(executions) < 30
