"""Tests for the relation graph (Eq. 1, decay, traversal)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.relations import RelationGraph


def graph(labels=("a", "b", "c", "d")):
    g = RelationGraph()
    for label in labels:
        g.add_vertex(label, 0.5)
    return g


def test_vertex_weight_clamped():
    g = RelationGraph()
    g.add_vertex("x", 5.0)
    g.add_vertex("y", -1.0)
    assert 0 < g.vertex_weight("y") < g.vertex_weight("x") < 1


def test_first_edge_gets_full_weight():
    g = graph()
    g.learn("a", "b")
    assert g.edge_weight("a", "b") == 1.0


def test_eq1_new_edge_and_halving():
    g = graph()
    g.learn("a", "b")          # w(a,b) = 1
    g.learn("c", "b")          # w(c,b) = 1 - 1/2 = 0.5; w(a,b) halved
    assert g.edge_weight("c", "b") == pytest.approx(0.5)
    assert g.edge_weight("a", "b") == pytest.approx(0.5)
    g.learn("d", "b")          # w = 1 - (0.5+0.5)/2 = 0.5; others halved
    assert g.edge_weight("d", "b") == pytest.approx(0.5)
    assert g.edge_weight("a", "b") == pytest.approx(0.25)
    assert g.edge_weight("c", "b") == pytest.approx(0.25)


def test_relearn_same_edge():
    g = graph()
    g.learn("a", "b")
    g.learn("c", "b")
    g.learn("a", "b")  # reconfirm: others halve again
    assert g.edge_weight("c", "b") == pytest.approx(0.25)
    assert g.edge_weight("a", "b") == pytest.approx(0.75)


def test_self_edge_ignored():
    g = graph()
    g.learn("a", "a")
    assert g.edge_count() == 0


def test_unknown_vertices_ignored():
    g = graph()
    g.learn("a", "zzz")
    g.learn("zzz", "a")
    assert g.edge_count() == 0


def test_learn_program_adjacent_pairs():
    g = graph()
    g.learn_program(["a", "b", "c"])
    assert g.edge_weight("a", "b") > 0
    assert g.edge_weight("b", "c") > 0
    assert g.edge_weight("a", "c") == 0


def test_decay_reduces_and_prunes():
    g = graph()
    g.learn("a", "b")
    g.decay(0.5)
    assert g.edge_weight("a", "b") == pytest.approx(0.5)
    for _ in range(10):
        g.decay(0.2)
    assert g.edge_count() == 0


def test_pick_base_respects_weights():
    g = RelationGraph()
    g.add_vertex("heavy", 0.99)
    g.add_vertex("light", 0.0001)
    rng = random.Random(0)
    picks = [g.pick_base(rng) for _ in range(200)]
    assert picks.count("heavy") > 190


def test_pick_base_empty_graph():
    with pytest.raises(ValueError):
        RelationGraph().pick_base(random.Random(0))


def test_walk_follows_edges():
    g = graph()
    g.learn("a", "b")
    g.learn("b", "c")
    rng = random.Random(1)
    paths = {tuple(g.walk("a", rng, stop_probability=0.0))
             for _ in range(50)}
    assert ("a", "b", "c") in paths


def test_walk_stops_at_dead_end():
    g = graph()
    g.learn("a", "b")
    path = g.walk("a", random.Random(0), stop_probability=0.0)
    assert path[-1] == "b" or path == ["a"]
    assert len(path) <= 2


def test_walk_respects_max_steps():
    g = graph(("a",))
    g.add_vertex("b", 0.5)
    g.learn("a", "b")
    g.learn("b", "a")
    path = g.walk("a", random.Random(0), max_steps=3,
                  stop_probability=0.0)
    assert len(path) == 4


@given(st.lists(st.sampled_from(["a", "b", "c", "d", "e"]),
                min_size=2, max_size=30))
@settings(max_examples=50)
def test_incoming_weights_bounded_property(sequence):
    """Invariant: after any learning history, each destination's
    incoming weights stay within (0, 1] individually."""
    g = graph(("a", "b", "c", "d", "e"))
    g.learn_program(sequence)
    for dst in ("a", "b", "c", "d", "e"):
        for src in ("a", "b", "c", "d", "e"):
            w = g.edge_weight(src, dst)
            assert 0 <= w <= 1.0


@given(st.lists(st.tuples(st.sampled_from("abcde"),
                          st.sampled_from("abcde")), max_size=40))
@settings(max_examples=50)
def test_decay_monotone_property(pairs):
    g = graph(("a", "b", "c", "d", "e"))
    for src, dst in pairs:
        g.learn(src, dst)
    before = {(s, d): g.edge_weight(s, d)
              for s in "abcde" for d in "abcde"}
    g.decay(0.8)
    for key, weight in before.items():
        assert g.edge_weight(*key) <= weight
