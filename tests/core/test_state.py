"""Tests for campaign state persistence."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.core.relations import RelationGraph
from repro.core.state import load_state, save_state
from repro.device import AndroidDevice, profile_by_id


def test_relation_graph_roundtrip():
    g = RelationGraph()
    g.add_vertex("a", 0.4)
    g.add_vertex("b", 0.6)
    g.learn("a", "b")
    g.learn("b", "a")
    restored = RelationGraph.from_dict(g.to_dict())
    assert restored.vertex_weight("a") == pytest.approx(0.4)
    assert restored.edge_weight("a", "b") == g.edge_weight("a", "b")
    assert restored.edge_weight("b", "a") == g.edge_weight("b", "a")
    assert restored.updates == g.updates
    assert restored.out_edges("a") == g.out_edges("a")


@pytest.fixture(scope="module")
def finished_engine():
    device = AndroidDevice(profile_by_id("C2"))
    engine = FuzzingEngine(device, FuzzerConfig(seed=6, campaign_hours=1.5))
    engine.run()
    return engine


def test_save_and_load_state(finished_engine, tmp_path):
    save_state(finished_engine, tmp_path)
    for name in ("relations.json", "corpus.txt", "coverage.json",
                 "bugs.json"):
        assert (tmp_path / name).exists()

    device = AndroidDevice(profile_by_id("C2"))
    fresh = FuzzingEngine(device, FuzzerConfig(seed=7, campaign_hours=0.1))
    load_state(fresh, tmp_path)
    assert len(fresh.corpus) == len(finished_engine.corpus)
    assert fresh.relations.edge_count() == \
        finished_engine.relations.edge_count()
    assert fresh.coverage.kernel_total() == \
        finished_engine.coverage.kernel_total()
    assert fresh.bugs.titles() == finished_engine.bugs.titles()


def test_resumed_engine_keeps_fuzzing(finished_engine, tmp_path):
    save_state(finished_engine, tmp_path)
    device = AndroidDevice(profile_by_id("C2"))
    resumed = FuzzingEngine(device, FuzzerConfig(seed=9,
                                                 campaign_hours=0.5))
    load_state(resumed, tmp_path)
    result = resumed.run()
    # Coverage is cumulative over the restored baseline.
    assert result.kernel_coverage >= finished_engine.coverage.kernel_total()


def test_load_from_empty_dir_is_noop(tmp_path):
    device = AndroidDevice(profile_by_id("C2"))
    engine = FuzzingEngine(device, FuzzerConfig(seed=1,
                                                campaign_hours=0.1))
    before = len(engine.corpus)
    load_state(engine, tmp_path)
    assert len(engine.corpus) == before
