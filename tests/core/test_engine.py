"""Tests for the fuzzing engine and daemon."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.daemon import Daemon
from repro.core.engine import CampaignResult, FuzzingEngine
from repro.device import AndroidDevice, profile_by_id


@pytest.fixture(scope="module")
def short_run():
    device = AndroidDevice(profile_by_id("A1"))
    config = FuzzerConfig(seed=11, campaign_hours=1.0)
    engine = FuzzingEngine(device, config)
    result = engine.run()
    return engine, result


def test_campaign_produces_coverage(short_run):
    _engine, result = short_run
    assert result.kernel_coverage > 50
    assert result.joint_coverage >= result.kernel_coverage
    assert result.executions > 100
    assert result.corpus_size > 10


def test_timeline_monotone(short_run):
    _engine, result = short_run
    times = [t for t, _ in result.timeline]
    covs = [c for _, c in result.timeline]
    assert times == sorted(times)
    assert covs == sorted(covs)
    assert result.timeline[-1][0] == pytest.approx(3600.0)


def test_coverage_at(short_run):
    _engine, result = short_run
    assert result.coverage_at(0.0) <= result.coverage_at(1.0)
    assert result.coverage_at(1.0) == result.kernel_coverage


def test_relations_learned(short_run):
    engine, _result = short_run
    assert engine.relations.edge_count() > 10
    assert engine.relations.updates > 10


def test_probe_ran(short_run):
    _engine, result = short_run
    assert result.interface_count >= 40


def test_per_driver_coverage_populated(short_run):
    _engine, result = short_run
    assert "rt1711_tcpc" in result.per_driver
    assert result.driver_totals["drm_gpu"] == 90


def test_engine_deterministic():
    results = []
    for _ in range(2):
        device = AndroidDevice(profile_by_id("C2"))
        engine = FuzzingEngine(device, FuzzerConfig(seed=5,
                                                    campaign_hours=0.5))
        results.append(engine.run())
    assert results[0].kernel_coverage == results[1].kernel_coverage
    assert results[0].executions == results[1].executions
    assert results[0].bug_titles() == results[1].bug_titles()


def test_seeds_differ():
    covs = set()
    for seed in (1, 2):
        device = AndroidDevice(profile_by_id("C2"))
        engine = FuzzingEngine(device, FuzzerConfig(seed=seed,
                                                    campaign_hours=0.5))
        covs.add(engine.run().executions)
    assert len(covs) == 2


def test_no_hal_mode_runs():
    device = AndroidDevice(profile_by_id("C2"))
    config = FuzzerConfig(seed=1, campaign_hours=0.5, enable_hal=False,
                          enable_relations=False, enable_hcov=False)
    engine = FuzzingEngine(device, config)
    result = engine.run()
    assert result.interface_count == 0
    assert result.kernel_coverage > 0
    assert result.joint_coverage == result.kernel_coverage


def test_ioctl_only_mode_runs():
    device = AndroidDevice(profile_by_id("C2"))
    config = FuzzerConfig(seed=1, campaign_hours=0.5, ioctl_only=True)
    engine = FuzzingEngine(device, config)
    result = engine.run()
    assert result.kernel_coverage > 0


def test_daemon_fleet():
    daemon = Daemon(FuzzerConfig(seed=2, campaign_hours=0.3))
    results = daemon.run_fleet([profile_by_id("C2"), profile_by_id("E")])
    assert len(results) == 2
    assert set(daemon.coverage_summary()) == {"C2#2", "E#2"}
    assert isinstance(daemon.all_bugs(), list)


def test_campaign_result_bug_titles():
    result = CampaignResult(tool="t", device="d", seed=0,
                            duration_hours=1.0)
    assert result.bug_titles() == set()
