"""Tests for the cross-boundary feedback machinery."""

from repro.core.feedback import (
    CoverageAccumulator,
    JointFeedback,
    SpecializedSyscallTable,
    directional_coverage,
)
from repro.device.profiles import profile_by_id
from repro.dsl.descriptions import build_descriptions
import repro.kernel.drivers.drm_gpu as drm


def table():
    return SpecializedSyscallTable(build_descriptions(profile_by_id("A1")))


def test_specialized_ids_distinct_per_request():
    t = table()
    a = t.lookup("ioctl", drm.DRM_IOC_MODE_PAGE_FLIP)
    b = t.lookup("ioctl", drm.DRM_IOC_MODE_SETCRTC)
    assert a != b


def test_specialized_lookup_stable():
    t1, t2 = table(), table()
    req = drm.DRM_IOC_MODE_PAGE_FLIP
    assert t1.lookup("ioctl", req) == t2.lookup("ioctl", req)


def test_unknown_request_gets_stable_hashed_id():
    t = table()
    a = t.lookup("ioctl", 0xDEADBEEF)
    b = t.lookup("ioctl", 0xDEADBEEF)
    c = t.lookup("ioctl", 0xDEADBEEE)
    assert a == b
    assert a != c
    assert a >= 2_000_000


def test_generic_syscall_id():
    t = table()
    assert t.lookup("read", None) == t.lookup("read", None)
    assert t.lookup("read", None) != t.lookup("write", None)


def test_unknown_syscall_bucket():
    t = table()
    assert 1_000_000 <= t.lookup("frobnicate", None) < 2_000_000


def test_socket_specialized_by_domain():
    t = table()
    assert t.lookup("socket", 31) != t.lookup("socket", None)


def test_label_roundtrip():
    t = table()
    ident = t.lookup("ioctl", drm.DRM_IOC_MODE_PAGE_FLIP)
    assert t.label(ident) == "ioctl$DRM_IOC_MODE_PAGE_FLIP"


def test_directional_empty():
    assert directional_coverage([]) == frozenset()


def test_directional_head_plus_transitions():
    cov = directional_coverage([1, 2, 3])
    assert len(cov) == 3  # head + (1,2) + (2,3)


def test_directional_order_sensitive():
    assert directional_coverage([1, 2]) != directional_coverage([2, 1])


def test_directional_repeats_collapse():
    # (1,2),(2,1),(1,2): the repeated transition adds nothing new.
    assert len(directional_coverage([1, 2, 1, 2])) == 3


def test_directional_ids_tagged_out_of_kcov_range():
    for element in directional_coverage([5, 6]):
        assert element >> 60 == 0xF


def test_joint_feedback_merges():
    fb = JointFeedback(kernel_pcs=frozenset({1, 2}),
                       hal_elements=frozenset({10}))
    assert fb.merged() == {1, 2, 10}
    assert bool(fb)
    assert not JointFeedback()


def test_accumulator_novelty():
    acc = CoverageAccumulator()
    first = acc.merge(JointFeedback(frozenset({1}), frozenset({9})))
    assert first == {1, 9}
    second = acc.merge(JointFeedback(frozenset({1, 2}), frozenset({9})))
    assert second == {2}
    assert acc.total() == 3
    assert acc.kernel_total() == 2
