"""Unit tests for the execution hot-path caches.

Each cache must be invisible: identical picks, parses, and IDs to the
uncached code it replaced, with correct invalidation.
"""

from __future__ import annotations

import random

from repro.cli import warn_if_oversubscribed
from repro.core.corpus import Corpus
from repro.dsl.text import parse_program, serialize_program
from repro.kernel.kcov import PcInterner, stable_pc


def _program(n_calls: int = 3):
    text = "\n".join(f'r{i} = openat$x("/dev/gpiochip0")'
                     for i in range(n_calls))
    return parse_program(text)


# ---------------------------------------------------------------------------
# corpus cumulative-weight cache
# ---------------------------------------------------------------------------


def test_corpus_choose_matches_uncached_weights():
    """Cached cumulative weights draw the same seeds as per-call ones."""
    corpus = Corpus()
    for size in (1, 2, 5):
        corpus.add(_program(size), frozenset({size}), 0.0)

    def uncached_choice(rng):
        weights = [1.0 / (1 + len(s.program)) for s in corpus.seeds]
        return rng.choices(corpus.seeds, weights=weights, k=1)[0]

    for trial in range(50):
        if random.Random(trial).random() < 0.5:
            continue  # recency-biased branch: no weights involved
        rng_a, rng_b = random.Random(trial), random.Random(trial)
        rng_b.random()  # choose() draws its branch coin first
        assert corpus.choose(rng_a) is uncached_choice(rng_b)


def test_corpus_weight_cache_invalidated_on_add():
    corpus = Corpus()
    corpus.add(_program(1), frozenset({1}), 0.0)
    rng = random.Random(0)
    for _ in range(10):  # populate the cache via the weighted branch
        corpus.choose(rng)
    cached = corpus._cum_weights
    corpus.add(_program(4), frozenset({2}), 1.0)
    assert corpus._cum_weights is None
    for _ in range(10):
        corpus.choose(rng)
    assert corpus._cum_weights != cached


# ---------------------------------------------------------------------------
# parse / line caches
# ---------------------------------------------------------------------------


def test_parse_with_line_cache_is_equivalent():
    programs = [_program(n) for n in (1, 3, 5)]
    line_cache: dict = {}
    for program in programs:
        text = serialize_program(program)
        plain = parse_program(text)
        cached_once = parse_program(text, line_cache=line_cache)
        cached_twice = parse_program(text, line_cache=line_cache)
        assert plain == cached_once == cached_twice == program
    assert line_cache  # shared lines were actually memoized


def test_line_cached_programs_are_independent_copies():
    text = serialize_program(_program(2))
    line_cache: dict = {}
    first = parse_program(text, line_cache=line_cache)
    second = parse_program(text, line_cache=line_cache)
    assert first == second
    first.calls[0].args = ()  # mutate as the mutator would, on one copy
    assert second.calls[0].args != ()


# ---------------------------------------------------------------------------
# interned PCs
# ---------------------------------------------------------------------------


def test_stable_pc_is_memoized_and_stable():
    a = stable_pc("gpiochip", "open")
    b = stable_pc("gpiochip", "open")
    assert a == b
    assert stable_pc("gpiochip", "release") != a


def test_interner_assigns_dense_first_seen_indices():
    interner = PcInterner()
    pcs = [stable_pc("d", f"block{i}") for i in range(5)]
    indices = [interner.intern(pc) for pc in pcs]
    assert indices == list(range(5))
    assert [interner.intern(pc) for pc in pcs] == indices  # idempotent
    assert interner.pcs == pcs


# ---------------------------------------------------------------------------
# CLI oversubscription warning
# ---------------------------------------------------------------------------


def test_jobs_warning_only_when_oversubscribed():
    assert warn_if_oversubscribed(2, cpus=4) is None
    assert warn_if_oversubscribed(4, cpus=4) is None
    message = warn_if_oversubscribed(8, cpus=4)
    assert message is not None
    assert "--jobs 8" in message and "4" in message
