"""Tests for the corpus and bug triage."""

import random

from repro.core.bugs import BugTracker
from repro.core.corpus import Corpus
from repro.dsl.model import Program, SyscallCall


def program_named(name):
    return Program([SyscallCall(name, ())])


def test_corpus_add_and_len():
    c = Corpus()
    c.add(program_named("a"), frozenset({1}), 0.0)
    c.add(program_named("b"), frozenset({2}), 1.0)
    assert len(c) == 2


def test_corpus_add_copies_program():
    c = Corpus()
    p = program_named("a")
    c.add(p, frozenset(), 0.0)
    p.calls.clear()
    assert len(c.seeds[0].program) == 1


def test_corpus_choose_empty():
    assert Corpus().choose(random.Random(0)) is None
    assert Corpus().donor(random.Random(0)) is None


def test_corpus_choose_counts_mutations():
    c = Corpus()
    c.add(program_named("a"), frozenset(), 0.0)
    seed = c.choose(random.Random(0))
    assert seed.mutations == 1


def test_corpus_recency_bias():
    c = Corpus()
    for i in range(100):
        c.add(program_named(f"p{i}"), frozenset(), float(i))
    rng = random.Random(0)
    recent = sum(1 for _ in range(300)
                 if c.choose(rng).program.calls[0].desc >= "p75")
    assert recent > 100


def test_corpus_dump_load_roundtrip():
    c = Corpus()
    c.add(program_named("openat$x"), frozenset(), 0.0)
    c.add(Program([SyscallCall("openat$y", (1,)),
                   SyscallCall("read$y", ())]), frozenset(), 1.0)
    programs = Corpus.load(c.dump())
    assert len(programs) == 2
    assert programs[1].calls[0].desc == "openat$y"


def test_bug_tracker_dedup():
    t = BugTracker("A1")
    crash = {"kind": "WARNING", "title": "WARNING in x",
             "component": "kernel"}
    fresh = t.record([crash], 10.0)
    assert len(fresh) == 1
    again = t.record([crash], 20.0)
    assert again == []
    assert t.reports["WARNING in x"].count == 2
    assert t.reports["WARNING in x"].first_clock == 10.0


def test_bug_tracker_reproducer_serialized():
    t = BugTracker("A1")
    program = program_named("openat$x")
    t.record([{"kind": "KASAN", "title": "KASAN: x in y",
               "component": "kernel"}], 5.0, program)
    assert "openat$x" in t.reports["KASAN: x in y"].reproducer


def test_bug_tracker_component_split():
    t = BugTracker("A1")
    t.record([{"kind": "WARNING", "title": "k", "component": "kernel"},
              {"kind": "NATIVE", "title": "h", "component": "hal"}], 0.0)
    assert [b.title for b in t.kernel_bugs()] == ["k"]
    assert [b.title for b in t.hal_bugs()] == ["h"]
    assert t.hal_bugs()[0].is_hal()


def test_bug_tracker_ordering():
    t = BugTracker("A1")
    t.record([{"kind": "W", "title": "late", "component": "kernel"}], 9.0)
    t.record([{"kind": "W", "title": "early", "component": "kernel"}], 1.0)
    # Ordered by first discovery time.
    assert [b.title for b in t.all_reports()] == ["late", "early"] or \
           [b.title for b in t.all_reports()] == ["early", "late"]
    assert t.titles() == {"late", "early"}
