"""Tests for framework-flow distillation and corpus seeding."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.core.probe import Prober
from repro.device import AndroidDevice, profile_by_id
from repro.dsl.model import ResourceRef


@pytest.fixture(scope="module")
def a2_engine():
    device = AndroidDevice(profile_by_id("A2"))
    return FuzzingEngine(device, FuzzerConfig(seed=0, campaign_hours=0.1))


def test_flows_distilled_from_traffic():
    device = AndroidDevice(profile_by_id("A2"))
    model = Prober(device).probe(infer_links=False)
    assert model.flows
    # Every flow stays within one service and has real labels.
    for flow in model.flows:
        services = {label.rsplit(".", 1)[0] for label, _args in flow}
        assert len(services) == 1
        for label, _args in flow:
            assert model.get(label) is not None
        assert 2 <= len(flow) <= 12


def test_media_flow_contains_codec_lifecycle():
    device = AndroidDevice(profile_by_id("A2"))
    model = Prober(device).probe(infer_links=False)
    media_flows = [f for f in model.flows
                   if f[0][0].startswith("vendor.media.codec")]
    assert media_flows
    labels = [label for flow in media_flows for label, _ in flow]
    assert "vendor.media.codec.createCodec" in labels
    assert "vendor.media.codec.queueInputBuffer" in labels


def test_seed_programs_validate_and_relink(a2_engine):
    programs = a2_engine._flow_seed_programs()
    assert programs
    relinked = 0
    for program in programs:
        program.validate()
        for call in program.calls:
            relinked += sum(1 for ref in program.arg_refs(call)
                            if ref.kind.startswith("hal:"))
    assert relinked > 0


def test_seed_programs_enter_corpus():
    device = AndroidDevice(profile_by_id("A2"))
    engine = FuzzingEngine(device, FuzzerConfig(seed=0,
                                                campaign_hours=0.5))
    result = engine.run()
    labels = {call.label for seed in engine.corpus.seeds
              for call in seed.program.calls}
    assert "vendor.media.codec.queueInputBuffer" in labels
    assert result.corpus_size > 5
