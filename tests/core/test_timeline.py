"""CampaignResult.coverage_at and engine timeline sampling boundaries."""

import pytest

from repro.core.config import FuzzerConfig
from repro.core.engine import CampaignResult, FuzzingEngine
from repro.device.device import AndroidDevice
from repro.device.profiles import profile_by_id


def _result_with_timeline(timeline) -> CampaignResult:
    return CampaignResult(tool="droidfuzz", device="E", seed=0,
                          duration_hours=1.0, timeline=timeline)


# ----------------------------------------------------------------------
# coverage_at step interpolation
# ----------------------------------------------------------------------

def test_coverage_at_steps_between_samples():
    result = _result_with_timeline([(0.0, 0), (1800.0, 40), (3600.0, 90)])
    assert result.coverage_at(0.0) == 0
    assert result.coverage_at(0.25) == 0     # before the 1800s sample
    assert result.coverage_at(0.5) == 40     # exactly on a sample
    assert result.coverage_at(0.75) == 40    # holds until the next step
    assert result.coverage_at(1.0) == 90
    assert result.coverage_at(5.0) == 90     # past the end: last value


def test_coverage_at_empty_timeline_is_zero():
    assert _result_with_timeline([]).coverage_at(1.0) == 0


def test_coverage_at_before_first_sample_is_zero():
    result = _result_with_timeline([(1800.0, 25)])
    assert result.coverage_at(0.0) == 0
    assert result.coverage_at(0.5) == 25


# ----------------------------------------------------------------------
# engine timeline sampling loop
# ----------------------------------------------------------------------

def _run(config: FuzzerConfig):
    device = AndroidDevice(profile_by_id("E"))
    engine = FuzzingEngine(device, config)
    return engine.run()


def test_sample_interval_longer_than_campaign():
    # Only the t=0 sample plus the final closing sample are recorded.
    result = _run(FuzzerConfig(seed=4, campaign_hours=0.25,
                               sample_interval=7200.0))
    times = [t for t, _ in result.timeline]
    assert times[0] == 0.0
    assert times[-1] == pytest.approx(900.0)
    assert len(times) == 2


def test_clock_jump_emits_every_skipped_sample_point():
    # With a 60s sample interval, a single program execution (several
    # virtual seconds) and especially a reboot (90s) jump the clock
    # across multiple sample points; each must still be emitted.
    result = _run(FuzzerConfig(seed=4, campaign_hours=0.25,
                               sample_interval=60.0))
    times = [t for t, _ in result.timeline]
    assert times[0] == 0.0
    assert times[-1] == pytest.approx(900.0)
    # All intermediate points are exactly on the sampling grid, strictly
    # increasing, with no gaps.
    grid = times[:-1]
    assert grid == [i * 60.0 for i in range(len(grid))]
    # Coverage along the timeline is monotonically non-decreasing.
    coverage = [c for _, c in result.timeline]
    assert all(a <= b for a, b in zip(coverage, coverage[1:]))


def test_timeline_final_point_matches_result_coverage():
    result = _run(FuzzerConfig(seed=4, campaign_hours=0.25))
    assert result.timeline[-1][1] == result.kernel_coverage
    assert result.coverage_at(result.duration_hours) == \
        result.kernel_coverage
