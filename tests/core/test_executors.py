"""Tests for the native and HAL executors."""

import pytest

import repro.kernel.drivers.tcpc_rt1711 as tcpc
from repro.core.exec.hal_executor import HalExecutor
from repro.core.exec.native_executor import NativeExecutor, fields_for_spec
from repro.core.feedback import SpecializedSyscallTable
from repro.device import AndroidDevice, profile_by_id
from repro.dsl.descriptions import build_descriptions
from repro.dsl.model import HalCall, ResourceRef, StructValue, SyscallCall


@pytest.fixture
def native():
    device = AndroidDevice(profile_by_id("A1"))
    registry = build_descriptions(device.profile, vendor_interfaces=True)
    return device, registry, NativeExecutor(device, registry)


def test_open_produces_fd(native):
    _device, _registry, ex = native
    ret, produced = ex.run(SyscallCall("openat$tcpc0", (2,)), [])
    assert ret >= 0 and produced == ret


def test_unknown_desc_enosys(native):
    _device, _registry, ex = native
    ret, produced = ex.run(SyscallCall("openat$missing", ()), [])
    assert ret == -38 and produced is None


def test_ref_resolution_chain(native):
    _device, _registry, ex = native
    results = []
    ret, fd = ex.run(SyscallCall("openat$tcpc0", (2,)), results)
    results.append(fd)
    ret, _ = ex.run(SyscallCall(
        "ioctl$TCPC_IOC_PROBE", (ResourceRef(0, "fd_tcpc0"),)), results)
    assert ret == 0


def test_struct_packing(native):
    _device, _registry, ex = native
    results = []
    _, fd = ex.run(SyscallCall("openat$tcpc0", (2,)), results)
    results.append(fd)
    ex.run(SyscallCall("ioctl$TCPC_IOC_PROBE", (ResourceRef(0),)), results)
    results.append(0)
    arg = StructValue("ioctl$TCPC_IOC_VBUS", {})
    ret, _ = ex.run(SyscallCall("ioctl$TCPC_IOC_VBUS",
                                (ResourceRef(0), 1)), results)
    assert ret == 0


def test_produced_resource_from_out_data(native):
    device, _registry, ex = native
    results = []
    _, fd = ex.run(SyscallCall("openat$dri_card0", (2,)), results)
    results.append(fd)
    create = StructValue("ioctl$DRM_IOC_MODE_CREATE_DUMB",
                         {"width": 64, "height": 64, "bpp": 32, "flags": 0})
    ret, handle = ex.run(SyscallCall(
        "ioctl$DRM_IOC_MODE_CREATE_DUMB", (ResourceRef(0), create)),
        results)
    assert ret == 0 and handle and handle > 0


def test_ioctl_raw_uses_request_argument(native):
    _device, _registry, ex = native
    results = []
    _, fd = ex.run(SyscallCall("openat$tcpc0", (2,)), results)
    results.append(fd)
    ret, _ = ex.run(SyscallCall(
        "ioctl$raw_tcpc0",
        (ResourceRef(0), tcpc.TCPC_IOC_PROBE, None)), results)
    assert ret == 0


def test_bad_ref_degrades_to_ebadf(native):
    _device, _registry, ex = native
    ret, _ = ex.run(SyscallCall("close$tcpc0", (ResourceRef(0),)), [])
    assert ret == -9


def test_socket_flow(native):
    device = AndroidDevice(profile_by_id("D"))
    registry = build_descriptions(device.profile)
    ex = NativeExecutor(device, registry)
    results = []
    ret, sock = ex.run(SyscallCall("socket$bt_l2cap", (5, 0)), results)
    assert ret >= 0
    results.append(sock)
    addr = StructValue("bind$bt_l2cap", {"psm": 0x81, "bdaddr": b"",
                                         "cid": 0})
    ret, _ = ex.run(SyscallCall("bind$bt_l2cap",
                                (ResourceRef(0), addr)), results)
    assert ret == 0
    results.append(0)
    ret, _ = ex.run(SyscallCall("listen$bt_l2cap",
                                (ResourceRef(0), 2)), results)
    assert ret == 0


def test_fields_for_spec_lookup(native):
    _device, registry, _ex = native
    assert fields_for_spec(registry, "ioctl$TCPC_IOC_ATTACH")
    assert fields_for_spec(registry, "bind$bt_l2cap")  # addr layout
    assert fields_for_spec(registry, "nonsense") == ()


def test_hal_executor_traces_and_captures():
    device = AndroidDevice(profile_by_id("A1"))
    registry = build_descriptions(device.profile)
    table = SpecializedSyscallTable(registry)
    ex = HalExecutor(device, table)
    status, produced, seq, captures = ex.run(
        HalCall("vendor.usb", "enablePort", ()), [])
    assert status == 0
    assert seq  # the HAL issued syscalls
    labels = [table.label(i) for i in seq]
    assert "openat" in labels
    assert any(c[0] == "ioctl" and c[1] == "/dev/tcpc0" for c in captures)


def test_hal_executor_coerces_args():
    device = AndroidDevice(profile_by_id("A1"))
    registry = build_descriptions(device.profile)
    ex = HalExecutor(device, SpecializedSyscallTable(registry))
    # Strings where ints belong degrade to 0 rather than blowing up.
    status, _p, _s, _c = ex.run(
        HalCall("vendor.usb", "negotiate", ("x", "y")), [])
    assert status == -22  # BAD_VALUE from range check


def test_hal_executor_unknown_targets():
    device = AndroidDevice(profile_by_id("A1"))
    registry = build_descriptions(device.profile)
    ex = HalExecutor(device, SpecializedSyscallTable(registry))
    assert ex.run(HalCall("vendor.none", "x", ()), [])[0] == -38
    assert ex.run(HalCall("vendor.usb", "nope", ()), [])[0] == -74


def test_hal_executor_crash_reported_and_restart():
    device = AndroidDevice(profile_by_id("A1"))
    registry = build_descriptions(device.profile)
    ex = HalExecutor(device, SpecializedSyscallTable(registry))
    svc = "vendor.graphics.composer"
    ex.run(HalCall(svc, "setPowerMode", (1,)), [])
    _st, layer, _s, _c = ex.run(HalCall(svc, "createLayer", ()), [])
    ex.run(HalCall(svc, "setLayerBuffer", (layer, 64, 64)), [])
    status, _p, _s, _c = ex.run(HalCall(svc, "presentDisplay", ()), [])
    assert status == -32  # DEAD_OBJECT
    # Next call works against the restarted instance.
    status, _p, _s, _c = ex.run(HalCall(svc, "getDisplayAttributes", ()), [])
    assert status == 0
