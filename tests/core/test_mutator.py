"""Tests for program mutation operators."""

import random

import pytest

from repro.core.generation.generator import PayloadGenerator
from repro.core.generation.mutator import Mutator, _havoc_bytes
from repro.core.relations import RelationGraph
from repro.device.profiles import profile_by_id
from repro.dsl.descriptions import build_descriptions
from repro.dsl.model import Program, ResourceRef, StructValue, SyscallCall


@pytest.fixture(scope="module")
def mutator():
    registry = build_descriptions(profile_by_id("A1"))
    relations = RelationGraph()
    for name in registry.names():
        relations.add_vertex(name, 0.3)
    rng = random.Random(7)
    generator = PayloadGenerator(registry, None, relations, rng)
    return Mutator(generator, rng), generator


def seed_program():
    return Program([
        SyscallCall("openat$tcpc0", (2,)),
        SyscallCall("ioctl$raw_tcpc0",
                    (ResourceRef(0, "fd_tcpc0"), 0x5400, b"\x01\x02")),
        SyscallCall("write$tcpc0",
                    (ResourceRef(0, "fd_tcpc0"), b"\x10\x01")),
    ])


def test_mutants_always_validate(mutator):
    mut, _gen = mutator
    program = seed_program()
    for _ in range(500):
        candidate = mut.mutate(program)
        candidate.validate()
        assert len(candidate) >= 1


def test_original_program_untouched(mutator):
    mut, _gen = mutator
    program = seed_program()
    before = [c.label for c in program.calls]
    for _ in range(100):
        mut.mutate(program)
    assert [c.label for c in program.calls] == before
    assert program.calls[1].args[1] == 0x5400


def test_mutation_changes_something(mutator):
    mut, _gen = mutator
    program = seed_program()
    from repro.dsl.text import serialize_program
    base = serialize_program(program)
    changed = sum(1 for _ in range(50)
                  if serialize_program(mut.mutate(program)) != base)
    assert changed >= 45


def test_splice_validates(mutator):
    mut, _gen = mutator
    a, b = seed_program(), seed_program()
    for _ in range(100):
        candidate = mut.mutate(a, splice_donor=b)
        candidate.validate()


def test_mutants_bounded_length(mutator):
    mut, _gen = mutator
    program = seed_program()
    for _ in range(200):
        program = mut.mutate(program)
        assert len(program) <= mut._max_calls + 8


def test_havoc_bytes_changes_and_bounded():
    rng = random.Random(1)
    data = bytes(range(32))
    results = {_havoc_bytes(rng, data) for _ in range(50)}
    assert data not in results or len(results) > 1
    for out in results:
        assert len(out) <= len(data) + 8


def test_havoc_on_empty():
    rng = random.Random(2)
    assert isinstance(_havoc_bytes(rng, b""), bytes)


def test_insert_preserves_backward_refs(mutator):
    mut, _gen = mutator
    program = seed_program()
    for _ in range(300):
        candidate = mut.mutate(program)
        for position, call in enumerate(candidate.calls):
            for ref in Program.arg_refs(call):
                assert ref.index < position


def test_struct_field_mutation_reachable(mutator):
    mut, _gen = mutator
    program = Program([
        SyscallCall("openat$tcpc0", (2,)),
        SyscallCall("ioctl$raw_tcpc0",
                    (ResourceRef(0, "fd_tcpc0"), 1,
                     StructValue("ioctl$raw_tcpc0", {"x": 5}))),
    ])
    seen = set()
    for _ in range(300):
        candidate = mut.mutate(program)
        arg = candidate.calls[-1].args
        for value in arg:
            if isinstance(value, StructValue):
                seen.add(value.values.get("x"))
    assert len(seen) > 3
