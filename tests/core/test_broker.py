"""Tests for the execution broker."""

import pytest

from repro.core.config import IOCTL_ONLY_FILTER
from repro.core.exec.broker import ExecOutcome, ExecutionBroker
from repro.device import AndroidDevice, profile_by_id
from repro.dsl.descriptions import build_descriptions
from repro.dsl.model import HalCall, Program, ResourceRef, SyscallCall


@pytest.fixture
def broker():
    device = AndroidDevice(profile_by_id("A1"))
    registry = build_descriptions(device.profile)
    return device, ExecutionBroker(device, registry)


def test_execute_collects_coverage(broker):
    _device, b = broker
    program = Program([SyscallCall("openat$tcpc0", (2,))])
    outcome = b.execute(program)
    assert outcome.statuses[0].ret >= 0
    assert outcome.kernel_pcs


def test_fds_do_not_leak_across_programs(broker):
    _device, b = broker
    program = Program([SyscallCall("openat$tcpc0", (2,))])
    fds = {b.execute(program).statuses[0].ret for _ in range(20)}
    assert fds == {0}  # fresh child per program → always fd 0


def test_hal_feedback_bonded(broker):
    _device, b = broker
    program = Program([HalCall("vendor.usb", "enablePort", ())])
    outcome = b.execute(program)
    assert outcome.hal_sequence
    assert outcome.captures
    assert outcome.kernel_pcs  # remote kcov from the HAL process


def test_crash_reported_and_flagged(broker):
    _device, b = broker
    program = Program([
        HalCall("vendor.usb", "enablePort", ()),
        HalCall("vendor.usb", "connectPartner", (0,)),
        HalCall("vendor.usb", "negotiate", (9000, 2000)),
        HalCall("vendor.usb", "resetPort", ()),
    ])
    outcome = b.execute(program)
    titles = [c["title"] for c in outcome.crashes]
    assert "WARNING in rt1711_i2c_probe" in titles
    assert not outcome.needs_reboot  # WARN is not fatal


def test_release_crashes_attributed(broker):
    # Bug 8-style: the crash fires during end-of-program teardown and
    # must still be attributed to this program.
    device = AndroidDevice(profile_by_id("B"))
    registry = build_descriptions(device.profile)
    b = ExecutionBroker(device, registry)
    from repro.dsl.model import StructValue
    program = Program([
        SyscallCall("socket$bt_l2cap", (5, 0)),
        SyscallCall("connect$bt_l2cap", (
            ResourceRef(0), StructValue("connect$bt_l2cap",
                                        {"psm": 1, "bdaddr": b"",
                                         "cid": 0}))),
    ])
    outcome = b.execute(program)
    titles = [c["title"] for c in outcome.crashes]
    assert "WARNING in l2cap_send_disconn_req" in titles


def test_outcome_wire_roundtrip(broker):
    _device, b = broker
    program = Program([
        HalCall("vendor.usb", "enablePort", ()),
        SyscallCall("openat$tcpc0", (2,)),
    ])
    outcome = b.execute(program)
    wire = outcome.to_dict()
    back = ExecOutcome.from_dict(wire)
    assert back.kernel_pcs == outcome.kernel_pcs
    assert back.hal_sequence == outcome.hal_sequence
    assert back.captures == outcome.captures
    assert [s.ret for s in back.statuses] == [s.ret for s in
                                              outcome.statuses]


def test_rpc_handler(broker):
    _device, b = broker
    payload = b.wire_program(Program([SyscallCall("openat$tcpc0", (2,))]))
    out = b.rpc_handler(payload)
    assert out["rets"][0] >= 0
    assert b.rpc_handler({"cmd": "ping"})["pong"]
    assert "error" in b.rpc_handler({"cmd": "bogus"})


def test_ioctl_only_filter_blocks_writes():
    device = AndroidDevice(profile_by_id("A1"))
    registry = build_descriptions(device.profile)
    b = ExecutionBroker(device, registry, IOCTL_ONLY_FILTER)
    program = Program([
        SyscallCall("openat$tcpc0", (2,)),
        SyscallCall("write$tcpc0", (ResourceRef(0), b"\x10\x01")),
    ])
    outcome = b.execute(program)
    assert outcome.statuses[1].ret == -1  # EPERM


def test_ioctl_only_filter_applies_to_hal():
    device = AndroidDevice(profile_by_id("A2"))
    registry = build_descriptions(device.profile)
    b = ExecutionBroker(device, registry, IOCTL_ONLY_FILTER)
    # Bluetooth enable needs write(): with the filter it must fail.
    program = Program([HalCall("vendor.bluetooth", "enable", ())])
    outcome = b.execute(program)
    assert outcome.statuses[0].ret != 0


def test_on_reboot_respawns(broker):
    device, b = broker
    device.reboot()
    b.on_reboot()
    outcome = b.execute(Program([SyscallCall("openat$tcpc0", (2,))]))
    assert outcome.statuses[0].ret >= 0
