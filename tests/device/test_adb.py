"""Tests for the ADB transport surrogate."""

import pytest

from repro.device import AdbConnection, AndroidDevice, profile_by_id
from repro.errors import AdbError


@pytest.fixture
def adb():
    return AdbConnection(AndroidDevice(profile_by_id("A1")))


def test_lshal_lists_services(adb):
    out = adb.shell("lshal")
    assert "vendor.usb" in out
    assert "IComposer" in out


def test_service_list(adb):
    assert "vendor.audio" in adb.shell("service list")


def test_getprop(adb):
    assert adb.shell("getprop ro.product.vendor.name") == "Xiaomi"
    assert adb.shell("getprop ro.kernel.version") == "6.6"
    assert "[ro.build.version.release]: [15]" in adb.shell("getprop")


def test_ls_dev(adb):
    assert "/dev/tcpc0" in adb.shell("ls /dev")


def test_dmesg(adb):
    adb.device.kernel.dmesg.log("hello world")
    assert "hello world" in adb.shell("dmesg")


def test_reboot_resets_device(adb):
    adb.device.kernel.panicked = True
    adb.shell("reboot")
    assert adb.device.healthy


def test_unknown_command(adb):
    with pytest.raises(AdbError):
        adb.shell("rm -rf /")


def test_shell_charges_time(adb):
    t0 = adb.device.clock
    adb.shell("lshal")
    assert adb.device.clock > t0


def test_rpc_forwarding(adb):
    adb.forward("sock", lambda payload: {"echo": payload["x"]})
    assert adb.rpc("sock", {"x": 5}) == {"echo": 5}
    with pytest.raises(AdbError):
        adb.rpc("other", {})


def test_wait_for_device_reboots_wedged(adb):
    adb.device.kernel.hung = True
    adb.wait_for_device()
    assert adb.device.healthy
