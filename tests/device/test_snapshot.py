"""Snapshot-restore device checkpointing: equivalence tests.

The contract under test (see ``repro.device.snapshot``): a checkpoint
restore must be interchangeable with the legacy ``soft_reset()`` +
service-restart reboot path, per object and for whole campaigns.
"""

from __future__ import annotations

import copy

import pytest

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.device.device import AndroidDevice, DeviceCosts
from repro.device.profiles import profile_by_id
from repro.device.snapshot import (
    SERVICE_INFRA_ATTRS,
    capture_state,
    has_snapshot_protocol,
    restore_state,
)

COSTS = DeviceCosts(syscall=1.0, binder=4.0, reboot=120.0, shell=2.0)


def _device(checkpoint: bool) -> AndroidDevice:
    return AndroidDevice(profile_by_id("A1"), costs=COSTS,
                         checkpoint=checkpoint)


def _fuzzed(checkpoint: bool, seed: int = 7, hours: float = 1.0):
    """A device dirtied by a short real campaign, plus its result."""
    device = _device(checkpoint)
    engine = FuzzingEngine(device, FuzzerConfig(seed=seed,
                                                campaign_hours=hours))
    return device, engine.run()


def _state(obj, exclude: frozenset[str] = frozenset()) -> dict:
    return {key: value for key, value in vars(obj).items()
            if key not in exclude}


# ---------------------------------------------------------------------------
# per-object snapshot()/restore() protocol
# ---------------------------------------------------------------------------


def test_every_driver_implements_snapshot_protocol():
    device = _device(False)
    assert all(has_snapshot_protocol(d) for d in device.kernel.drivers())


def test_every_service_implements_snapshot_protocol():
    device = _device(False)
    assert all(has_snapshot_protocol(s)
               for s in device.services().values())


def test_driver_snapshot_roundtrips_dirty_state():
    """snapshot → dirty → restore puts every driver back exactly."""
    device, _ = _fuzzed(checkpoint=False)
    for driver in device.kernel.drivers():
        before = copy.deepcopy(_state(driver))
        token = capture_state(driver)
        driver.reset()  # dirty relative to the captured mid-campaign state
        restore_state(driver, token)
        assert _state(driver) == before, type(driver).__name__


def test_service_snapshot_roundtrips_dirty_state():
    device, _ = _fuzzed(checkpoint=False)
    for name, service in device.services().items():
        before = copy.deepcopy(_state(service, SERVICE_INFRA_ATTRS))
        token = capture_state(service, exclude=SERVICE_INFRA_ATTRS)
        service.reset()
        restore_state(service, token, exclude=SERVICE_INFRA_ATTRS)
        assert _state(service, SERVICE_INFRA_ATTRS) == before, name


def test_restore_token_is_reusable():
    """Tokens are immutable: restore may run any number of times."""
    device, _ = _fuzzed(checkpoint=False)
    for driver in device.kernel.drivers():
        token = capture_state(driver)
        restore_state(driver, token)
        reference = copy.deepcopy(_state(driver))
        driver.reset()  # mutate between restores
        restore_state(driver, token)
        assert _state(driver) == reference, type(driver).__name__


def test_restore_does_not_alias_token_state():
    """Mutating live state after a restore must not corrupt the token."""
    device = _device(False)
    driver = device.kernel.drivers()[0]
    token = capture_state(driver)
    restore_state(driver, token)
    for value in vars(driver).values():
        if isinstance(value, dict):
            value["poison"] = object()
        elif isinstance(value, list):
            value.append(object())
        elif isinstance(value, set):
            value.add("poison")
    restore_state(driver, token)
    for value in vars(driver).values():
        if isinstance(value, dict):
            assert "poison" not in value
        elif isinstance(value, (list, set)):
            assert not any(v == "poison" or type(v) is object
                           for v in value)


# ---------------------------------------------------------------------------
# generic fallback (objects without the protocol)
# ---------------------------------------------------------------------------


class _PlainState:
    def __init__(self):
        self.counter = 3
        self.table = {"a": [1, 2]}


def test_generic_capture_restores_plain_objects():
    obj = _PlainState()
    token = capture_state(obj)
    obj.counter = 99
    obj.table["a"].append(3)
    obj.grown_attr = "leak"
    restore_state(obj, token)
    assert obj.counter == 3
    assert obj.table == {"a": [1, 2]}
    assert not hasattr(obj, "grown_attr")


def test_generic_capture_handles_unpicklable_state():
    obj = _PlainState()
    obj.callback = lambda: None  # forces the deep-copy fallback
    token = capture_state(obj)
    obj.counter = -1
    restore_state(obj, token)
    assert obj.counter == 3
    assert callable(obj.callback)


# ---------------------------------------------------------------------------
# campaign-level equivalence: checkpoint reboots vs legacy reboots
# ---------------------------------------------------------------------------


def test_whole_campaign_results_identical():
    """Checkpoint-restored reboots reproduce the legacy campaign exactly:
    identical CampaignResult (bugs, coverage, corpus, timeline trace)."""
    device_ckpt, result_ckpt = _fuzzed(checkpoint=True, seed=3, hours=2.0)
    device_legacy, result_legacy = _fuzzed(checkpoint=False, seed=3,
                                           hours=2.0)
    assert result_ckpt == result_legacy
    assert result_ckpt.timeline == result_legacy.timeline
    assert result_ckpt.reboots == result_legacy.reboots
    # Post-campaign device state matches too: same coverage tables and
    # same per-driver / per-service end states.
    assert (device_ckpt.kernel.kcov.total_blocks()
            == device_legacy.kernel.kcov.total_blocks())
    for d_ckpt, d_legacy in zip(device_ckpt.kernel.drivers(),
                                device_legacy.kernel.drivers()):
        assert type(d_ckpt) is type(d_legacy)
        assert _state(d_ckpt) == _state(d_legacy), type(d_ckpt).__name__
    for (name_a, s_ckpt), (name_b, s_legacy) in zip(
            device_ckpt.services().items(),
            device_legacy.services().items()):
        assert name_a == name_b
        assert (_state(s_ckpt, SERVICE_INFRA_ATTRS)
                == _state(s_legacy, SERVICE_INFRA_ATTRS)), name_a


@pytest.mark.parametrize("profile", ["A1", "A2", "B", "E"])
def test_campaign_equivalence_across_profiles(profile):
    def run(checkpoint: bool):
        device = AndroidDevice(profile_by_id(profile), costs=COSTS,
                               checkpoint=checkpoint)
        engine = FuzzingEngine(device, FuzzerConfig(seed=11,
                                                    campaign_hours=1.0))
        return engine.run()

    assert run(True) == run(False)


def test_reboot_charges_same_virtual_time_either_way():
    ckpt, legacy = _device(True), _device(False)
    boots_before = ckpt.boot_count
    ckpt.reboot()
    legacy.reboot()
    assert ckpt.clock == legacy.clock
    assert ckpt.boot_count == legacy.boot_count == boots_before + 1
