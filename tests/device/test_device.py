"""Tests for AndroidDevice: clock, crash lifecycle, reboot."""

import pytest

from repro.device.device import AndroidDevice, DeviceCosts
from repro.device.profiles import profile_by_id
from repro.errors import DeadObjectError, DeviceError


@pytest.fixture
def dev():
    return AndroidDevice(profile_by_id("A1"),
                         costs=DeviceCosts(syscall=1.0, binder=4.0,
                                           reboot=100.0, shell=1.0))


def test_clock_advances_per_syscall(dev):
    p = dev.new_process("t")
    t0 = dev.clock
    dev.syscall(p.pid, "openat", "/dev/tcpc0", 0)
    assert dev.clock == t0 + 1.0


def test_clock_advances_per_binder(dev):
    p = dev.new_process("t")
    t0 = dev.clock
    dev.hal_transact(p.pid, "t", "vendor.thermal", "getCoolingDevices", ())
    assert dev.clock >= t0 + 4.0


def test_unknown_service_raises(dev):
    p = dev.new_process("t")
    with pytest.raises(DeviceError):
        dev.hal_transact(p.pid, "t", "vendor.none", "x", ())


def test_unknown_method_raises(dev):
    p = dev.new_process("t")
    with pytest.raises(DeviceError):
        dev.hal_transact(p.pid, "t", "vendor.usb", "nope", ())


def test_crash_drain_combines_kernel_and_hal(dev):
    p = dev.new_process("t")
    # kernel WARN via USB HAL reset-with-contract
    for method, args in (("enablePort", ()), ("connectPartner", (0,)),
                         ("negotiate", (9000, 2000)), ("resetPort", ())):
        dev.hal_transact(p.pid, "t", "vendor.usb", method, args)
    # HAL crash via graphics present-without-validate
    dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                     "setPowerMode", (1,))
    st, reply = dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                                 "createLayer", ())
    layer = reply.read_i64()
    dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                     "setLayerBuffer", (layer, 64, 64))
    with pytest.raises(DeadObjectError):
        dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                         "presentDisplay", ())
    crashes = dev.drain_crashes()
    components = {c.component for c in crashes}
    assert components == {"kernel", "hal"}
    assert dev.drain_crashes() == []


def test_dead_service_lazily_restarted(dev):
    p = dev.new_process("t")
    dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                     "setPowerMode", (1,))
    st, reply = dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                                 "createLayer", ())
    layer = reply.read_i64()
    dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                     "setLayerBuffer", (layer, 64, 64))
    with pytest.raises(DeadObjectError):
        dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                         "presentDisplay", ())
    # Next transaction goes to a restarted, state-reset instance.
    st, _ = dev.hal_transact(p.pid, "t", "vendor.graphics.composer",
                             "presentDisplay", ())
    assert st == -38  # INVALID_OPERATION: fresh instance is unpowered
    assert dev.hal_process("vendor.graphics.composer").restart_count == 1


def test_reboot_costs_time_and_resets(dev):
    p = dev.new_process("t")
    dev.syscall(p.pid, "openat", "/dev/tcpc0", 0)
    t0 = dev.clock
    boot0 = dev.boot_count
    dev.reboot()
    assert dev.clock == t0 + 100.0
    assert dev.boot_count == boot0 + 1
    assert dev.healthy
    # Old task is gone after reboot.
    assert dev.kernel.process(p.pid) is None


def test_coverage_accounting(dev):
    p = dev.new_process("t")
    assert dev.coverage_blocks() == 0
    fd = dev.syscall(p.pid, "openat", "/dev/tcpc0", 0).ret
    assert dev.coverage_blocks() > 0
    assert "rt1711_tcpc" in dev.per_driver_coverage()
    totals = dev.driver_block_estimates()
    assert totals["rt1711_tcpc"] == 70


def test_hal_services_listed(dev):
    names = dev.hal_services()
    assert "vendor.usb" in names
    assert "vendor.graphics.composer" in names
