"""Tests for the Table I device profiles."""

import pytest

from repro.device.profiles import DEVICE_PROFILES, profile_by_id
from repro.hal.services import HAL_FACTORIES
from repro.kernel.drivers import DRIVER_FACTORIES


def test_seven_devices():
    assert len(DEVICE_PROFILES) == 7
    assert [p.ident for p in DEVICE_PROFILES] == [
        "A1", "A2", "B", "C1", "C2", "D", "E"]


def test_table1_identities():
    a1 = profile_by_id("A1")
    assert (a1.vendor, a1.arch, a1.aosp, a1.kernel) == (
        "Xiaomi", "aarch64", 15, "6.6")
    e = profile_by_id("E")
    assert (e.vendor, e.arch, e.aosp, e.kernel) == (
        "AAEON", "amd64", 13, "5.10")
    b = profile_by_id("B")
    assert b.vendor == "Raspberry Pi"
    assert profile_by_id("C1").vendor == "Sunmi"
    assert profile_by_id("D").vendor == "EmbedFire"


def test_unknown_id():
    with pytest.raises(KeyError):
        profile_by_id("Z9")


def test_all_drivers_exist_in_registry():
    for profile in DEVICE_PROFILES:
        for name in profile.drivers:
            assert name in DRIVER_FACTORIES, (profile.ident, name)


def test_all_hals_exist_in_registry():
    for profile in DEVICE_PROFILES:
        for name in profile.hals:
            assert name in HAL_FACTORIES, (profile.ident, name)


def test_planted_bugs_cover_table2():
    planted = [bug for p in DEVICE_PROFILES for bug in p.planted_bugs]
    assert sorted(planted) == list(range(1, 13))


def test_quirks_only_on_attributed_devices():
    # Bug 5's drain-loop quirk lives only on A2.
    for profile in DEVICE_PROFILES:
        quirk = profile.drivers.get("mtk_vcodec", {}).get(
            "quirk_drain_loop", False)
        assert quirk == (profile.ident == "A2")


def test_profiles_are_buildable():
    from repro.device.device import AndroidDevice
    for profile in DEVICE_PROFILES:
        device = AndroidDevice(profile)
        assert device.kernel.device_paths()
        assert device.hal_services()
