"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.device.device import AndroidDevice, DeviceCosts
from repro.device.profiles import profile_by_id
from repro.dsl.descriptions import build_descriptions
from repro.kernel.kernel import VirtualKernel


@pytest.fixture
def kernel() -> VirtualKernel:
    """A bare kernel with no drivers."""
    return VirtualKernel()


@pytest.fixture
def device_a1() -> AndroidDevice:
    """Device A1 (Xiaomi phone dev board) with all its quirks."""
    return AndroidDevice(profile_by_id("A1"))


@pytest.fixture
def device_a2() -> AndroidDevice:
    """Device A2 (Xiaomi tablet dev board)."""
    return AndroidDevice(profile_by_id("A2"))


@pytest.fixture
def device_d() -> AndroidDevice:
    """Device D (LubanCat 5) — carries the bt_accept_unlink UAF."""
    return AndroidDevice(profile_by_id("D"))


@pytest.fixture
def fast_costs() -> DeviceCosts:
    """A cheap cost model so short campaigns execute many programs."""
    return DeviceCosts(syscall=1.0, binder=4.0, reboot=120.0, shell=2.0)


@pytest.fixture
def registry_a1():
    """Public (non-vendor) description registry for A1."""
    return build_descriptions(profile_by_id("A1"))


@pytest.fixture
def registry_a1_vendor():
    """Full (vendor-typed) description registry for A1."""
    return build_descriptions(profile_by_id("A1"), vendor_interfaces=True)
