"""Tests for the media codec driver (Table II bug 5)."""

import struct

import repro.kernel.drivers.media_codec as m
from repro.kernel.ioctl import pack_fields
from repro.kernel.kernel import VirtualKernel


def make(quirk=False):
    k = VirtualKernel(loop_budget=2000)
    k.register_driver(m.MediaCodec(quirk_drain_loop=quirk))
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/mtk_vcodec", 2).ret
    return k, p, fd


def ioctl(k, p, fd, req, arg=None):
    return k.syscall(p.pid, "ioctl", fd, req, arg).ret


def unit(size, flags, data=b""):
    return struct.pack("<II", size, flags) + data


def start_session(k, p, fd, codec=m.CODEC_H264):
    assert ioctl(k, p, fd, m.VCODEC_IOC_INIT,
                 pack_fields(m._INIT_FIELDS,
                             {"codec": codec, "mode": m.MODE_DECODE})) == 0
    assert ioctl(k, p, fd, m.VCODEC_IOC_START) == 0


def test_init_validates():
    k, p, fd = make()
    bad = pack_fields(m._INIT_FIELDS, {"codec": 99, "mode": 0})
    assert ioctl(k, p, fd, m.VCODEC_IOC_INIT, bad) == -22
    good = pack_fields(m._INIT_FIELDS, {"codec": 1, "mode": 0})
    assert ioctl(k, p, fd, m.VCODEC_IOC_INIT, good) == 0
    assert ioctl(k, p, fd, m.VCODEC_IOC_INIT, good) == -16  # EBUSY


def test_write_requires_session():
    k, p, fd = make()
    assert k.syscall(p.pid, "write", fd, unit(2, 0, b"ab")).ret == -22


def test_start_encode_needs_bitrate():
    k, p, fd = make()
    ioctl(k, p, fd, m.VCODEC_IOC_INIT,
          pack_fields(m._INIT_FIELDS, {"codec": 0, "mode": m.MODE_ENCODE}))
    assert ioctl(k, p, fd, m.VCODEC_IOC_START) == -22
    ioctl(k, p, fd, m.VCODEC_IOC_SET_PARAM,
          pack_fields(m._PARAM_FIELDS,
                      {"param": m.PARAM_BITRATE, "value": 100}))
    assert ioctl(k, p, fd, m.VCODEC_IOC_START) == 0


def test_decode_pipeline_produces_output():
    k, p, fd = make()
    start_session(k, p, fd)
    data = (unit(3, m.UNIT_FLAG_CONFIG, b"cfg")
            + unit(4, 0, b"fram") + unit(0, m.UNIT_FLAG_EOS))
    assert k.syscall(p.pid, "write", fd, data).ret == len(data)
    assert ioctl(k, p, fd, m.VCODEC_IOC_DRAIN) == 1
    out = k.syscall(p.pid, "read", fd, 64)
    assert out.ret > 0


def test_frames_skipped_without_config():
    k, p, fd = make()
    start_session(k, p, fd)
    k.syscall(p.pid, "write", fd, unit(4, 0, b"fram"))
    assert ioctl(k, p, fd, m.VCODEC_IOC_DRAIN) == 0


def test_bug5_zero_unit_mid_stream_hangs():
    k, p, fd = make(quirk=True)
    start_session(k, p, fd)
    data = (unit(3, m.UNIT_FLAG_CONFIG, b"cfg")
            + unit(4, 0, b"fram") + unit(0, 0))
    k.syscall(p.pid, "write", fd, data)
    assert ioctl(k, p, fd, m.VCODEC_IOC_DRAIN) == -110  # ETIMEDOUT
    assert k.hung
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["Infinite loop in mtk_vcodec_drain"]


def test_zero_unit_skipped_without_quirk():
    k, p, fd = make(quirk=False)
    start_session(k, p, fd)
    data = (unit(3, m.UNIT_FLAG_CONFIG, b"cfg")
            + unit(4, 0, b"fram") + unit(0, 0))
    k.syscall(p.pid, "write", fd, data)
    assert ioctl(k, p, fd, m.VCODEC_IOC_DRAIN) >= 0
    assert not k.hung


def test_bug5_needs_configured_stream_first():
    k, p, fd = make(quirk=True)
    start_session(k, p, fd)
    k.syscall(p.pid, "write", fd, unit(0, 0))
    assert ioctl(k, p, fd, m.VCODEC_IOC_DRAIN) >= 0
    assert not k.hung


def test_eos_terminates_drain():
    k, p, fd = make(quirk=True)
    start_session(k, p, fd)
    data = (unit(3, m.UNIT_FLAG_CONFIG, b"cfg") + unit(4, 0, b"fram")
            + unit(0, m.UNIT_FLAG_EOS) + unit(0, 0))
    k.syscall(p.pid, "write", fd, data)
    assert ioctl(k, p, fd, m.VCODEC_IOC_DRAIN) >= 0
    assert not k.hung


def test_oversize_unit_rejected():
    k, p, fd = make()
    start_session(k, p, fd)
    assert k.syscall(p.pid, "write", fd, unit(9999, 0)).ret == -22


def test_bad_flags_rejected():
    k, p, fd = make()
    start_session(k, p, fd)
    assert k.syscall(p.pid, "write", fd, unit(1, 0x80, b"a")).ret == -22


def test_flush_clears_queues():
    k, p, fd = make()
    start_session(k, p, fd)
    k.syscall(p.pid, "write", fd,
              unit(3, m.UNIT_FLAG_CONFIG, b"cfg") + unit(4, 0, b"fram"))
    ioctl(k, p, fd, m.VCODEC_IOC_DRAIN)
    assert ioctl(k, p, fd, m.VCODEC_IOC_FLUSH) == 0
    assert k.syscall(p.pid, "read", fd, 64).ret == -11  # output gone


def test_stop_resets():
    k, p, fd = make()
    start_session(k, p, fd)
    assert ioctl(k, p, fd, m.VCODEC_IOC_STOP) == 0
    assert ioctl(k, p, fd, m.VCODEC_IOC_STOP) == -22


def test_get_output_reports_depths():
    k, p, fd = make()
    start_session(k, p, fd)
    k.syscall(p.pid, "write", fd, unit(2, 0, b"ab"))
    out = k.syscall(p.pid, "ioctl", fd, m.VCODEC_IOC_GET_OUTPUT)
    assert int.from_bytes(out.data[4:8], "little") == 1  # one queued


def test_release_tears_down():
    k, p, fd = make()
    start_session(k, p, fd)
    k.syscall(p.pid, "close", fd)
    fd2 = k.syscall(p.pid, "openat", "/dev/mtk_vcodec", 2).ret
    good = pack_fields(m._INIT_FIELDS, {"codec": 0, "mode": 0})
    assert ioctl(k, p, fd2, m.VCODEC_IOC_INIT, good) == 0
