"""Tests for the RT1711 TCPC driver (Table II bugs 1 and 4)."""

import pytest

import repro.kernel.drivers.tcpc_rt1711 as t
from repro.kernel.ioctl import pack_fields
from repro.kernel.kernel import VirtualKernel


def make(quirks=False):
    k = VirtualKernel()
    k.register_driver(t.Rt1711Tcpc(quirk_warn_probe=quirks,
                                   quirk_warn_role_swap=quirks))
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/tcpc0", 2).ret
    return k, p, fd


def ioctl(k, p, fd, req, arg=None):
    return k.syscall(p.pid, "ioctl", fd, req, arg).ret


def attach_arg(role=0, cc=1):
    return pack_fields(t._ATTACH_FIELDS, {"role": role, "cc": cc})


def contract(k, p, fd, mv=9000, ma=2000):
    assert ioctl(k, p, fd, t.TCPC_IOC_PROBE) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_VBUS, 1) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_ATTACH, attach_arg()) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_PD_START) == 0
    arg = pack_fields(t._PD_REQUEST_FIELDS, {"mv": mv, "ma": ma})
    assert ioctl(k, p, fd, t.TCPC_IOC_PD_REQUEST, arg) == 0


def test_probe_idempotent_without_quirk():
    k, p, fd = make()
    contract(k, p, fd)
    assert ioctl(k, p, fd, t.TCPC_IOC_PROBE) == 0
    assert k.dmesg.peek_crashes() == []


def test_bug1_reprobe_with_contract_warns():
    k, p, fd = make(quirks=True)
    contract(k, p, fd)
    assert ioctl(k, p, fd, t.TCPC_IOC_PROBE) < 0
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["WARNING in rt1711_i2c_probe"]


def test_bug1_needs_contract_not_just_probe():
    k, p, fd = make(quirks=True)
    assert ioctl(k, p, fd, t.TCPC_IOC_PROBE) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_PROBE) == 0
    assert k.dmesg.peek_crashes() == []


def test_bug4_role_swap_mid_negotiation():
    k, p, fd = make(quirks=True)
    assert ioctl(k, p, fd, t.TCPC_IOC_PROBE) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_VBUS, 1) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_ATTACH, attach_arg()) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_PD_START) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_ROLE_SWAP, 1) < 0
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["WARNING in tcpc"]


def test_role_swap_mid_negotiation_ebusy_without_quirk():
    k, p, fd = make()
    assert ioctl(k, p, fd, t.TCPC_IOC_PROBE) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_VBUS, 1) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_ATTACH, attach_arg()) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_PD_START) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_ROLE_SWAP, 1) == -16  # EBUSY
    assert k.dmesg.peek_crashes() == []


def test_vbus_requires_probe():
    k, p, fd = make()
    assert ioctl(k, p, fd, t.TCPC_IOC_VBUS, 1) == -19  # ENODEV


def test_attach_validates_role_and_cc():
    k, p, fd = make()
    ioctl(k, p, fd, t.TCPC_IOC_PROBE)
    assert ioctl(k, p, fd, t.TCPC_IOC_ATTACH, attach_arg(role=9)) == -22
    assert ioctl(k, p, fd, t.TCPC_IOC_ATTACH, attach_arg(cc=3)) == -22
    assert ioctl(k, p, fd, t.TCPC_IOC_ATTACH, b"\x00") == -22


def test_pd_request_range_checks():
    k, p, fd = make()
    ioctl(k, p, fd, t.TCPC_IOC_PROBE)
    ioctl(k, p, fd, t.TCPC_IOC_VBUS, 1)
    ioctl(k, p, fd, t.TCPC_IOC_ATTACH, attach_arg())
    ioctl(k, p, fd, t.TCPC_IOC_PD_START)
    bad_mv = pack_fields(t._PD_REQUEST_FIELDS, {"mv": 99999, "ma": 1000})
    assert ioctl(k, p, fd, t.TCPC_IOC_PD_REQUEST, bad_mv) == -34  # ERANGE


def test_pd_start_needs_vbus():
    k, p, fd = make()
    ioctl(k, p, fd, t.TCPC_IOC_PROBE)
    ioctl(k, p, fd, t.TCPC_IOC_ATTACH, attach_arg())
    assert ioctl(k, p, fd, t.TCPC_IOC_PD_START) == -11  # EAGAIN


def test_vbus_drop_degrades_contract():
    k, p, fd = make()
    contract(k, p, fd)
    assert ioctl(k, p, fd, t.TCPC_IOC_VBUS, 0) == 0
    status = k.syscall(p.pid, "ioctl", fd, t.TCPC_IOC_GET_STATUS).data
    assert int.from_bytes(status[4:8], "little") == 0  # vbus off


def test_detach_resets_state():
    k, p, fd = make()
    contract(k, p, fd)
    assert ioctl(k, p, fd, t.TCPC_IOC_DETACH) == 0
    assert ioctl(k, p, fd, t.TCPC_IOC_DETACH) == 0  # noop


def test_get_status_layout():
    k, p, fd = make()
    contract(k, p, fd, mv=15000)
    out = k.syscall(p.pid, "ioctl", fd, t.TCPC_IOC_GET_STATUS)
    assert out.ret == 0
    assert int.from_bytes(out.data[12:16], "little") == 15000


def test_reg_write_and_unknown_reg():
    k, p, fd = make()
    good = pack_fields(t._REG_WRITE_FIELDS, {"reg": 0x10, "val": 3})
    assert ioctl(k, p, fd, t.TCPC_IOC_REG_WRITE, good) == 0
    bad = pack_fields(t._REG_WRITE_FIELDS, {"reg": 0x55, "val": 3})
    assert ioctl(k, p, fd, t.TCPC_IOC_REG_WRITE, bad) == -22


def test_i2c_write_stream():
    k, p, fd = make()
    assert k.syscall(p.pid, "write", fd, bytes([0x10, 1, 0x18, 2])).ret == 4
    assert k.syscall(p.pid, "write", fd, b"\x10").ret == -22  # odd length


def test_unknown_ioctl_enotty():
    k, p, fd = make()
    assert ioctl(k, p, fd, 0xDEAD) == -25


def test_reset_clears_state():
    k, p, fd = make()
    contract(k, p, fd)
    driver = k.driver_for_path("/dev/tcpc0")
    driver.reset()
    assert ioctl(k, p, fd, t.TCPC_IOC_VBUS, 1) == -19  # not probed


def test_ioctl_specs_cover_all_commands():
    driver = t.Rt1711Tcpc()
    names = {s.name for s in driver.ioctl_specs()}
    assert "TCPC_IOC_PROBE" in names
    assert len(names) == 9
    requests = {s.request for s in driver.ioctl_specs()}
    assert len(requests) == 9
