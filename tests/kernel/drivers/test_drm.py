"""Tests for the DRM/GPU driver (Table II bug 3)."""

import pytest

import repro.kernel.drivers.drm_gpu as d
from repro.kernel.ioctl import pack_fields
from repro.kernel.kernel import VirtualKernel


def make(quirk=False):
    k = VirtualKernel()
    k.register_driver(d.DrmGpu(quirk_lockdep_subclass=quirk))
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/dri/card0", 2).ret
    return k, p, fd


def ioctl(k, p, fd, req, arg=None):
    return k.syscall(p.pid, "ioctl", fd, req, arg)


def create_fb(k, p, fd, width=640, height=480):
    out = ioctl(k, p, fd, d.DRM_IOC_MODE_CREATE_DUMB,
                pack_fields(d._CREATE_DUMB_FIELDS,
                            {"width": width, "height": height, "bpp": 32,
                             "flags": 0}))
    handle = int.from_bytes(out.data[:4], "little")
    out = ioctl(k, p, fd, d.DRM_IOC_MODE_ADDFB,
                pack_fields(d._ADDFB_FIELDS,
                            {"width": width, "height": height,
                             "pitch": width * 4, "bpp": 32,
                             "handle": handle}))
    assert out.ret == 0
    return handle, int.from_bytes(out.data[:4], "little")


def setcrtc(k, p, fd, fb):
    return ioctl(k, p, fd, d.DRM_IOC_MODE_SETCRTC,
                 pack_fields(d._SETCRTC_FIELDS,
                             {"crtc_id": 41, "fb_id": fb, "x": 0,
                              "y": 0})).ret


def flip(k, p, fd, fb, flags=0x1):
    return ioctl(k, p, fd, d.DRM_IOC_MODE_PAGE_FLIP,
                 pack_fields(d._PAGE_FLIP_FIELDS,
                             {"crtc_id": 41, "fb_id": fb,
                              "flags": flags})).ret


def test_version_and_caps():
    k, p, fd = make()
    assert ioctl(k, p, fd, d.DRM_IOC_VERSION).ret == 0
    out = ioctl(k, p, fd, d.DRM_IOC_GET_CAP,
                pack_fields(d._GET_CAP_FIELDS,
                            {"capability": d.CAP_DUMB_BUFFER, "value": 0}))
    assert out.ret == 0
    assert int.from_bytes(out.data[8:16], "little") == 1


def test_create_dumb_validations():
    k, p, fd = make()
    bad = pack_fields(d._CREATE_DUMB_FIELDS,
                      {"width": 0, "height": 10, "bpp": 32, "flags": 0})
    assert ioctl(k, p, fd, d.DRM_IOC_MODE_CREATE_DUMB, bad).ret == -22
    bad_bpp = pack_fields(d._CREATE_DUMB_FIELDS,
                          {"width": 4, "height": 4, "bpp": 13, "flags": 0})
    assert ioctl(k, p, fd, d.DRM_IOC_MODE_CREATE_DUMB, bad_bpp).ret == -22


def test_addfb_requires_matching_buffer():
    k, p, fd = make()
    out = ioctl(k, p, fd, d.DRM_IOC_MODE_CREATE_DUMB,
                pack_fields(d._CREATE_DUMB_FIELDS,
                            {"width": 64, "height": 64, "bpp": 32,
                             "flags": 0}))
    handle = int.from_bytes(out.data[:4], "little")
    too_big = pack_fields(d._ADDFB_FIELDS,
                          {"width": 128, "height": 64, "pitch": 512,
                           "bpp": 32, "handle": handle})
    assert ioctl(k, p, fd, d.DRM_IOC_MODE_ADDFB, too_big).ret == -22
    bad_pitch = pack_fields(d._ADDFB_FIELDS,
                            {"width": 64, "height": 64, "pitch": 1,
                             "bpp": 32, "handle": handle})
    assert ioctl(k, p, fd, d.DRM_IOC_MODE_ADDFB, bad_pitch).ret == -22
    bad_handle = pack_fields(d._ADDFB_FIELDS,
                             {"width": 64, "height": 64, "pitch": 256,
                              "bpp": 32, "handle": 999})
    assert ioctl(k, p, fd, d.DRM_IOC_MODE_ADDFB, bad_handle).ret == -2


def test_page_flip_requires_crtc():
    k, p, fd = make()
    _h, fb = create_fb(k, p, fd)
    assert flip(k, p, fd, fb) == -22


def test_flips_do_not_nest_without_vsync_client():
    k, p, fd = make(quirk=True)
    _h, fb = create_fb(k, p, fd)
    assert setcrtc(k, p, fd, fb) == 0
    for _ in range(20):
        assert flip(k, p, fd, fb) == 0
    assert k.dmesg.peek_crashes() == []


def test_bug3_flip_storm_with_vsync_client():
    k, p, fd = make(quirk=True)
    _h, fb = create_fb(k, p, fd)
    assert ioctl(k, p, fd, d.DRM_IOC_VSYNC_CLIENT).ret == 0
    assert setcrtc(k, p, fd, fb) == 0
    ret = 0
    for _ in range(12):
        ret = flip(k, p, fd, fb)
        if ret < 0:
            break
    assert ret == -14  # BUG aborts the syscall
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["BUG: looking up invalid subclass: 9"]


def test_flip_storm_throttled_without_quirk():
    k, p, fd = make(quirk=False)
    _h, fb = create_fb(k, p, fd)
    ioctl(k, p, fd, d.DRM_IOC_VSYNC_CLIENT)
    setcrtc(k, p, fd, fb)
    rets = [flip(k, p, fd, fb) for _ in range(12)]
    assert -16 in rets  # EBUSY throttling
    assert k.dmesg.peek_crashes() == []


def test_reading_events_drains_flip_queue():
    k, p, fd = make(quirk=True)
    _h, fb = create_fb(k, p, fd)
    ioctl(k, p, fd, d.DRM_IOC_VSYNC_CLIENT)
    setcrtc(k, p, fd, fb)
    for _ in range(100):
        assert flip(k, p, fd, fb) == 0
        assert k.syscall(p.pid, "read", fd, 16).ret > 0
    assert k.dmesg.peek_crashes() == []


def test_rmfb_active_unsets_crtc():
    k, p, fd = make()
    _h, fb = create_fb(k, p, fd)
    setcrtc(k, p, fd, fb)
    assert ioctl(k, p, fd, d.DRM_IOC_MODE_RMFB,
                 pack_fields(d._FB_FIELDS, {"fb_id": fb})).ret == 0
    assert flip(k, p, fd, fb) == -22  # CRTC unset by removing active fb


def test_mmap_dumb_buffer():
    k, p, fd = make()
    out = ioctl(k, p, fd, d.DRM_IOC_MODE_CREATE_DUMB,
                pack_fields(d._CREATE_DUMB_FIELDS,
                            {"width": 64, "height": 64, "bpp": 32,
                             "flags": 0}))
    handle = int.from_bytes(out.data[:4], "little")
    map_out = ioctl(k, p, fd, d.DRM_IOC_MODE_MAP_DUMB,
                    pack_fields(d._HANDLE_FIELDS, {"handle": handle}))
    offset = int.from_bytes(map_out.data[:8], "little")
    assert k.syscall(p.pid, "mmap", fd, 4096, 3, 1, offset).ret > 0


def test_gem_close_frees_handle():
    k, p, fd = make()
    out = ioctl(k, p, fd, d.DRM_IOC_MODE_CREATE_DUMB,
                pack_fields(d._CREATE_DUMB_FIELDS,
                            {"width": 8, "height": 8, "bpp": 32,
                             "flags": 0}))
    handle = int.from_bytes(out.data[:4], "little")
    assert ioctl(k, p, fd, d.DRM_IOC_GEM_CLOSE,
                 pack_fields(d._HANDLE_FIELDS, {"handle": handle})).ret == 0
    assert ioctl(k, p, fd, d.DRM_IOC_GEM_CLOSE,
                 pack_fields(d._HANDLE_FIELDS, {"handle": handle})).ret == -2


def test_vsync_client_single_registration():
    k, p, fd = make()
    assert ioctl(k, p, fd, d.DRM_IOC_VSYNC_CLIENT).ret == 0
    assert ioctl(k, p, fd, d.DRM_IOC_VSYNC_CLIENT).ret == -16


def test_vsync_spec_marked_vendor():
    specs = {s.name: s for s in d.DrmGpu().ioctl_specs()}
    assert specs["DRM_IOC_VSYNC_CLIENT"].vendor
    assert not specs["DRM_IOC_MODE_PAGE_FLIP"].vendor
