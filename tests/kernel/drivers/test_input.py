"""Tests for the evdev touchscreen driver."""

import struct

import repro.kernel.drivers.input_touch as it
from repro.kernel.kernel import VirtualKernel


def make():
    k = VirtualKernel()
    k.register_driver(it.InputTouch())
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/input/event0", 2).ret
    return k, p, fd


def ev(etype, code, value):
    return struct.pack("<HHi", etype, code, value)


def test_identity_ioctls():
    k, p, fd = make()
    assert k.syscall(p.pid, "ioctl", fd, it.EVIOCGID).ret == 0
    out = k.syscall(p.pid, "ioctl", fd, it.EVIOCGNAME)
    assert b"vtouch" in out.data


def test_gbit_and_gabs():
    k, p, fd = make()
    assert k.syscall(p.pid, "ioctl", fd, it.EVIOCGBIT, it.EV_ABS).ret == 0
    assert k.syscall(p.pid, "ioctl", fd, it.EVIOCGBIT, 0x15).ret == -22
    out = k.syscall(p.pid, "ioctl", fd, it.EVIOCGABS,
                    it.ABS_MT_POSITION_X)
    lo, hi = struct.unpack("<ii", out.data)
    assert (lo, hi) == (0, 1079)
    assert k.syscall(p.pid, "ioctl", fd, it.EVIOCGABS, 0x77).ret == -22


def test_grab_contention():
    k, p, fd = make()
    p2 = k.new_process("other")
    fd2 = k.syscall(p2.pid, "openat", "/dev/input/event0", 2).ret
    assert k.syscall(p.pid, "ioctl", fd, it.EVIOCGRAB, 1).ret == 0
    assert k.syscall(p2.pid, "ioctl", fd2, it.EVIOCGRAB, 1).ret == -16
    assert k.syscall(p2.pid, "ioctl", fd2, it.EVIOCGRAB, 0).ret == -22
    assert k.syscall(p.pid, "ioctl", fd, it.EVIOCGRAB, 0).ret == 0


def test_mt_protocol_happy_path():
    k, p, fd = make()
    frame = (ev(it.EV_ABS, it.ABS_MT_SLOT, 0)
             + ev(it.EV_ABS, it.ABS_MT_TRACKING_ID, 5)
             + ev(it.EV_ABS, it.ABS_MT_POSITION_X, 100)
             + ev(it.EV_ABS, it.ABS_MT_POSITION_Y, 200)
             + ev(it.EV_KEY, it.BTN_TOUCH, 1)
             + ev(it.EV_SYN, it.SYN_REPORT, 0))
    assert k.syscall(p.pid, "write", fd, frame).ret == len(frame)
    out = k.syscall(p.pid, "read", fd, 8)
    assert out.ret == 8


def test_move_without_contact_rejected():
    k, p, fd = make()
    bad = ev(it.EV_ABS, it.ABS_MT_POSITION_X, 10)
    assert k.syscall(p.pid, "write", fd, bad).ret == -22


def test_axis_range_enforced():
    k, p, fd = make()
    bad = ev(it.EV_ABS, it.ABS_MT_SLOT, 99)
    assert k.syscall(p.pid, "write", fd, bad).ret == -34


def test_misaligned_write():
    k, p, fd = make()
    assert k.syscall(p.pid, "write", fd, b"\x00" * 7).ret == -22


def test_contact_release_frees_slot():
    k, p, fd = make()
    down = (ev(it.EV_ABS, it.ABS_MT_SLOT, 1)
            + ev(it.EV_ABS, it.ABS_MT_TRACKING_ID, 7))
    k.syscall(p.pid, "write", fd, down)
    up = ev(it.EV_ABS, it.ABS_MT_TRACKING_ID, -1)
    assert k.syscall(p.pid, "write", fd, up).ret == len(up)
    driver = k.driver_for_path("/dev/input/event0")
    assert 1 not in driver._slots


def test_too_many_contacts():
    k, p, fd = make()
    for slot in range(10):
        frame = (ev(it.EV_ABS, it.ABS_MT_SLOT, slot)
                 + ev(it.EV_ABS, it.ABS_MT_TRACKING_ID, slot + 1))
        assert k.syscall(p.pid, "write", fd, frame).ret > 0
    # All slots occupied; slot 0 already has a contact, so reuse is
    # fine, but an 11th contact cannot exist (slots max at 10).
    driver = k.driver_for_path("/dev/input/event0")
    assert len(driver._slots) == 10


def test_read_empty_eagain():
    k, p, fd = make()
    assert k.syscall(p.pid, "read", fd, 8).ret == -11


def test_unknown_event_type():
    k, p, fd = make()
    assert k.syscall(p.pid, "write", fd, ev(0x7F, 0, 0)).ret == -22
