"""Tests for the IIO sensor hub driver."""

import repro.kernel.drivers.sensors_iio as s
from repro.kernel.kernel import VirtualKernel


def make():
    k = VirtualKernel()
    k.register_driver(s.SensorsIio())
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/iio:device0", 2).ret
    return k, p, fd


def ioctl(k, p, fd, req, arg=None):
    return k.syscall(p.pid, "ioctl", fd, req, arg).ret


def test_channel_count():
    k, p, fd = make()
    out = k.syscall(p.pid, "ioctl", fd, s.IIO_IOC_GET_CHANNELS)
    assert int.from_bytes(out.data, "little") == s.N_CHANNELS


def test_enable_validates_index():
    k, p, fd = make()
    assert ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 0) == 0
    assert ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 6) == -22
    assert ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, -1) == -22


def test_buffer_needs_scan():
    k, p, fd = make()
    assert ioctl(k, p, fd, s.IIO_IOC_BUFFER_ENABLE) == -22
    ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 0)
    assert ioctl(k, p, fd, s.IIO_IOC_BUFFER_ENABLE) == 0
    assert ioctl(k, p, fd, s.IIO_IOC_BUFFER_ENABLE) == -16


def test_scan_locked_while_buffered():
    k, p, fd = make()
    ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 0)
    ioctl(k, p, fd, s.IIO_IOC_BUFFER_ENABLE)
    assert ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 1) == -16
    assert ioctl(k, p, fd, s.IIO_IOC_DISABLE_CHAN, 0) == -16
    ioctl(k, p, fd, s.IIO_IOC_BUFFER_DISABLE)
    assert ioctl(k, p, fd, s.IIO_IOC_DISABLE_CHAN, 0) == 0


def test_read_requires_buffer():
    k, p, fd = make()
    ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 0)
    assert k.syscall(p.pid, "read", fd, 64).ret == -16


def test_read_samples_scan_layout():
    k, p, fd = make()
    ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 0)
    ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 3)
    ioctl(k, p, fd, s.IIO_IOC_SET_WATERMARK, 2)
    ioctl(k, p, fd, s.IIO_IOC_BUFFER_ENABLE)
    out = k.syscall(p.pid, "read", fd, 64)
    # 2 samples x 2 channels x 2 bytes
    assert out.ret == 8


def test_read_short_buffer_rejected():
    k, p, fd = make()
    ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 0)
    ioctl(k, p, fd, s.IIO_IOC_BUFFER_ENABLE)
    assert k.syscall(p.pid, "read", fd, 1).ret == -22


def test_freq_enumeration():
    k, p, fd = make()
    assert ioctl(k, p, fd, s.IIO_IOC_SET_FREQ, 50) == 0
    assert ioctl(k, p, fd, s.IIO_IOC_SET_FREQ, 51) == -22


def test_watermark_bounds():
    k, p, fd = make()
    assert ioctl(k, p, fd, s.IIO_IOC_SET_WATERMARK, 0) == -22
    assert ioctl(k, p, fd, s.IIO_IOC_SET_WATERMARK, 128) == 0
    assert ioctl(k, p, fd, s.IIO_IOC_SET_WATERMARK, 129) == -22


def test_release_disarms():
    k, p, fd = make()
    ioctl(k, p, fd, s.IIO_IOC_ENABLE_CHAN, 0)
    ioctl(k, p, fd, s.IIO_IOC_BUFFER_ENABLE)
    k.syscall(p.pid, "close", fd)
    driver = k.driver_for_path("/dev/iio:device0")
    assert not driver._buffered
