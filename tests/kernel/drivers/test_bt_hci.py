"""Tests for the Bluetooth HCI driver (Table II bug 7)."""

import repro.kernel.drivers.bt_hci as h
from repro.kernel.kernel import VirtualKernel


def make(quirk=False):
    k = VirtualKernel()
    k.register_driver(h.BtHci(quirk_codecs_uaf=quirk))
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/hci0", 2).ret
    return k, p, fd


def cmd(opcode, params=b""):
    return (b"\x01" + opcode.to_bytes(2, "little")
            + bytes([len(params)]) + params)


def up(k, p, fd):
    assert k.syscall(p.pid, "ioctl", fd, h.HCIDEV_IOC_UP, None).ret == 0


def test_commands_require_power():
    k, p, fd = make()
    assert k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_RESET)).ret == -19


def test_reset_and_event_readback():
    k, p, fd = make()
    up(k, p, fd)
    assert k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_RESET)).ret > 0
    evt = k.syscall(p.pid, "read", fd, 64)
    assert evt.ret > 0
    assert evt.data[0] == 0x04  # event packet


def test_event_queue_empty_eagain():
    k, p, fd = make()
    up(k, p, fd)
    assert k.syscall(p.pid, "read", fd, 64).ret == -11


def test_malformed_packets():
    k, p, fd = make()
    up(k, p, fd)
    assert k.syscall(p.pid, "write", fd, b"\x01\x03").ret == -74  # short
    assert k.syscall(p.pid, "write", fd, b"\x02\x03\x0c\x00").ret == -71
    truncated = b"\x01\x03\x0c\x05ab"
    assert k.syscall(p.pid, "write", fd, truncated).ret == -74


def test_unknown_opcode_gets_error_event():
    k, p, fd = make()
    up(k, p, fd)
    assert k.syscall(p.pid, "write", fd, cmd(0xFEFE)).ret > 0
    evt = k.syscall(p.pid, "read", fd, 64)
    assert evt.data[-1] == 0x01  # UNKNOWN_COMMAND status


def test_features_require_reset():
    k, p, fd = make()
    up(k, p, fd)
    assert k.syscall(p.pid, "write", fd,
                     cmd(h.HCI_OP_READ_LOCAL_FEATURES)).ret == -16


def test_bug7_codecs_before_features():
    k, p, fd = make(quirk=True)
    up(k, p, fd)
    k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_RESET))
    out = k.syscall(p.pid, "write", fd,
                    cmd(h.HCI_OP_READ_SUPPORTED_CODECS))
    assert out.ret == -14  # KASAN aborts the syscall
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["KASAN: invalid-access in hci_read_supported_codecs"]


def test_codecs_before_features_eagain_without_quirk():
    k, p, fd = make(quirk=False)
    up(k, p, fd)
    k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_RESET))
    assert k.syscall(p.pid, "write", fd,
                     cmd(h.HCI_OP_READ_SUPPORTED_CODECS)).ret == -11
    assert k.dmesg.peek_crashes() == []


def test_proper_init_sequence_clean_even_with_quirk():
    k, p, fd = make(quirk=True)
    up(k, p, fd)
    for opcode in (h.HCI_OP_RESET, h.HCI_OP_READ_LOCAL_FEATURES,
                   h.HCI_OP_READ_SUPPORTED_CODECS):
        assert k.syscall(p.pid, "write", fd, cmd(opcode)).ret > 0
    assert k.dmesg.peek_crashes() == []


def test_scan_requires_features():
    k, p, fd = make()
    up(k, p, fd)
    k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_RESET))
    assert k.syscall(p.pid, "write", fd,
                     cmd(h.HCI_OP_LE_SET_SCAN_ENABLE, b"\x01")).ret == -11
    k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_READ_LOCAL_FEATURES))
    assert k.syscall(p.pid, "write", fd,
                     cmd(h.HCI_OP_LE_SET_SCAN_ENABLE, b"\x01")).ret > 0


def test_create_conn_requires_scan():
    k, p, fd = make()
    up(k, p, fd)
    k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_RESET))
    k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_READ_LOCAL_FEATURES))
    addr = b"\x11\x22\x33\x44\x55\x66"
    assert k.syscall(p.pid, "write", fd,
                     cmd(h.HCI_OP_CREATE_CONN, addr)).ret == -11
    k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_LE_SET_SCAN_ENABLE, b"\x01"))
    assert k.syscall(p.pid, "write", fd,
                     cmd(h.HCI_OP_CREATE_CONN, addr)).ret > 0


def test_dev_down_resets_init_state():
    k, p, fd = make()
    up(k, p, fd)
    k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_RESET))
    k.syscall(p.pid, "ioctl", fd, h.HCIDEV_IOC_DOWN, None)
    assert k.syscall(p.pid, "write", fd, cmd(h.HCI_OP_RESET)).ret == -19


def test_set_bdaddr_validates_length():
    k, p, fd = make()
    assert k.syscall(p.pid, "ioctl", fd, h.HCIDEV_IOC_SET_BDADDR,
                     b"\x00" * 6).ret == 0
    assert k.syscall(p.pid, "ioctl", fd, h.HCIDEV_IOC_SET_BDADDR,
                     b"\x00" * 5).ret == -22


def test_driver_marked_vendor_specific():
    assert h.BtHci.vendor_specific
