"""Tests for the driver factory registry."""

import pytest

from repro.kernel.chardev import CharDevice, SocketFamily
from repro.kernel.drivers import DRIVER_FACTORIES, build_driver


def test_all_factories_instantiate():
    for name in DRIVER_FACTORIES:
        driver = build_driver(name)
        assert isinstance(driver, (CharDevice, SocketFamily))
        assert driver.name == name


def test_quirk_flags_accepted():
    driver = build_driver("rt1711_tcpc", quirk_warn_probe=True)
    assert driver.quirk_warn_probe


def test_unknown_driver_rejected():
    with pytest.raises(KeyError):
        build_driver("nonexistent")


def test_unknown_quirk_rejected():
    with pytest.raises(TypeError):
        build_driver("drm_gpu", quirk_nonsense=True)


def test_chardev_paths_unique_across_drivers():
    paths = []
    for name in DRIVER_FACTORIES:
        driver = build_driver(name)
        paths.extend(getattr(driver, "paths", ()))
    assert len(paths) == len(set(paths))


def test_vendor_flags():
    vendor = {name for name in DRIVER_FACTORIES
              if build_driver(name).vendor_specific}
    assert vendor == {"rt1711_tcpc", "mtk_vcodec", "bt_hci", "mac80211"}


def test_coverage_block_counts_positive():
    for name in DRIVER_FACTORIES:
        assert build_driver(name).coverage_block_count() > 0


def test_ioctl_requests_unique_per_device():
    requests = []
    for name in DRIVER_FACTORIES:
        driver = build_driver(name)
        if hasattr(driver, "ioctl_specs"):
            requests.extend(s.request for s in driver.ioctl_specs())
    assert len(requests) == len(set(requests))
