"""Tests for the mac80211 wireless driver (Table II bug 10)."""

import repro.kernel.drivers.wifi_mac80211 as w
from repro.kernel.ioctl import pack_fields
from repro.kernel.kernel import VirtualKernel


def make(quirk=False):
    k = VirtualKernel()
    k.register_driver(w.WifiMac80211(quirk_warn_rate_init=quirk))
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/nl80211", 2).ret
    return k, p, fd


def ioctl(k, p, fd, req, arg=None):
    return k.syscall(p.pid, "ioctl", fd, req, arg).ret


def ap_up(k, p, fd):
    assert ioctl(k, p, fd, w.NL_IOC_SET_POWER, 1) == 0
    assert ioctl(k, p, fd, w.NL_IOC_SET_COUNTRY, b"US") == 0
    arg = pack_fields(w._CONNECT_FIELDS, {"ssid": b"ap", "channel": 6})
    assert ioctl(k, p, fd, w.NL_IOC_START_AP, arg) == 0


def sta_arg(mac=b"\x02\x00\x00\x00\x00\x01", rates=0x7, aid=1):
    return pack_fields(w._ADD_STA_FIELDS,
                       {"mac": mac, "rates": rates, "aid": aid})


def test_everything_requires_power():
    k, p, fd = make()
    assert ioctl(k, p, fd, w.NL_IOC_TRIGGER_SCAN) == -19
    assert ioctl(k, p, fd, w.NL_IOC_SET_COUNTRY, b"US") == -19


def test_scan_flow():
    k, p, fd = make()
    ioctl(k, p, fd, w.NL_IOC_SET_POWER, 1)
    assert ioctl(k, p, fd, w.NL_IOC_GET_SCAN) == -61  # no results yet
    assert ioctl(k, p, fd, w.NL_IOC_TRIGGER_SCAN) == 0
    out = k.syscall(p.pid, "ioctl", fd, w.NL_IOC_GET_SCAN)
    assert out.ret == 0 and out.data


def test_connect_validates():
    k, p, fd = make()
    ioctl(k, p, fd, w.NL_IOC_SET_POWER, 1)
    empty = pack_fields(w._CONNECT_FIELDS, {"ssid": b"", "channel": 6})
    assert ioctl(k, p, fd, w.NL_IOC_CONNECT, empty) == -22
    bad_ch = pack_fields(w._CONNECT_FIELDS, {"ssid": b"x", "channel": 7})
    assert ioctl(k, p, fd, w.NL_IOC_CONNECT, bad_ch) == -22
    good = pack_fields(w._CONNECT_FIELDS, {"ssid": b"x", "channel": 6})
    assert ioctl(k, p, fd, w.NL_IOC_CONNECT, good) == 0
    assert ioctl(k, p, fd, w.NL_IOC_DISCONNECT) == 0


def test_start_ap_needs_regdom():
    k, p, fd = make()
    ioctl(k, p, fd, w.NL_IOC_SET_POWER, 1)
    arg = pack_fields(w._CONNECT_FIELDS, {"ssid": b"ap", "channel": 6})
    assert ioctl(k, p, fd, w.NL_IOC_START_AP, arg) == -11


def test_regdom_blocks_5ghz_in_jp():
    k, p, fd = make()
    ioctl(k, p, fd, w.NL_IOC_SET_POWER, 1)
    ioctl(k, p, fd, w.NL_IOC_SET_COUNTRY, b"JP")
    arg = pack_fields(w._CONNECT_FIELDS, {"ssid": b"ap", "channel": 149})
    assert ioctl(k, p, fd, w.NL_IOC_START_AP, arg) == -13


def test_bug10_zero_rates_station():
    k, p, fd = make(quirk=True)
    ap_up(k, p, fd)
    assert ioctl(k, p, fd, w.NL_IOC_ADD_STA, sta_arg(rates=0)) == -22
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["WARNING in rate_control_rate_init"]


def test_zero_rates_rejected_quietly_without_quirk():
    k, p, fd = make(quirk=False)
    ap_up(k, p, fd)
    assert ioctl(k, p, fd, w.NL_IOC_ADD_STA, sta_arg(rates=0)) == -22
    assert k.dmesg.peek_crashes() == []


def test_bug10_needs_ap_mode():
    k, p, fd = make(quirk=True)
    ioctl(k, p, fd, w.NL_IOC_SET_POWER, 1)
    assert ioctl(k, p, fd, w.NL_IOC_ADD_STA, sta_arg(rates=0)) == -22
    assert k.dmesg.peek_crashes() == []


def test_station_lifecycle():
    k, p, fd = make()
    ap_up(k, p, fd)
    mac = b"\x02\x00\x00\x00\x00\x09"
    assert ioctl(k, p, fd, w.NL_IOC_ADD_STA, sta_arg(mac=mac)) == 0
    assert ioctl(k, p, fd, w.NL_IOC_ADD_STA, sta_arg(mac=mac)) == -17
    rate = pack_fields(w._SET_RATE_FIELDS, {"mac": mac, "rate_idx": 1})
    assert ioctl(k, p, fd, w.NL_IOC_SET_RATE, rate) == 0
    unsupported = pack_fields(w._SET_RATE_FIELDS,
                              {"mac": mac, "rate_idx": 5})
    assert ioctl(k, p, fd, w.NL_IOC_SET_RATE, unsupported) == -22
    assert ioctl(k, p, fd, w.NL_IOC_DEL_STA, mac) == 0
    assert ioctl(k, p, fd, w.NL_IOC_DEL_STA, mac) == -2


def test_station_table_capacity():
    k, p, fd = make()
    ap_up(k, p, fd)
    for i in range(8):
        mac = bytes([2, 0, 0, 0, 0, i])
        assert ioctl(k, p, fd, w.NL_IOC_ADD_STA, sta_arg(mac=mac)) == 0
    assert ioctl(k, p, fd, w.NL_IOC_ADD_STA,
                 sta_arg(mac=b"\x02\x00\x00\x00\x00\xFF")) == -28


def test_power_off_clears_stations():
    k, p, fd = make()
    ap_up(k, p, fd)
    ioctl(k, p, fd, w.NL_IOC_ADD_STA, sta_arg())
    ioctl(k, p, fd, w.NL_IOC_SET_POWER, 0)
    ioctl(k, p, fd, w.NL_IOC_SET_POWER, 1)
    ioctl(k, p, fd, w.NL_IOC_SET_COUNTRY, b"US")
    arg = pack_fields(w._CONNECT_FIELDS, {"ssid": b"ap", "channel": 6})
    ioctl(k, p, fd, w.NL_IOC_START_AP, arg)
    assert ioctl(k, p, fd, w.NL_IOC_ADD_STA, sta_arg()) == 0
