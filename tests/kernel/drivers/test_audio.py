"""Tests for the ALSA PCM driver state machine."""

import repro.kernel.drivers.audio_pcm as a
from repro.kernel.ioctl import pack_fields
from repro.kernel.kernel import VirtualKernel


def make():
    k = VirtualKernel()
    k.register_driver(a.AudioPcm())
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/snd/pcmC0D0p", 2).ret
    return k, p, fd


def ioctl(k, p, fd, req, arg=None):
    return k.syscall(p.pid, "ioctl", fd, req, arg).ret


def hw(k, p, fd, rate=48000, channels=2, fmt=a.FMT_S16):
    return ioctl(k, p, fd, a.PCM_IOC_HW_PARAMS,
                 pack_fields(a._HW_FIELDS, {"rate": rate,
                                            "channels": channels,
                                            "format": fmt}))


def test_hw_params_validation():
    k, p, fd = make()
    assert hw(k, p, fd, rate=44101) == -22
    assert hw(k, p, fd, channels=3) == -22
    assert hw(k, p, fd, fmt=5) == -22
    assert hw(k, p, fd, rate=96000, channels=8) == -28  # bandwidth
    assert hw(k, p, fd) == 0


def test_write_needs_prepare():
    k, p, fd = make()
    hw(k, p, fd)
    assert k.syscall(p.pid, "write", fd, b"\x00" * 8).ret == -9
    assert ioctl(k, p, fd, a.PCM_IOC_PREPARE) == 0
    assert k.syscall(p.pid, "write", fd, b"\x00" * 8).ret == 8


def test_partial_frame_rejected():
    k, p, fd = make()
    hw(k, p, fd)  # frame = 4 bytes (2ch S16)
    ioctl(k, p, fd, a.PCM_IOC_PREPARE)
    assert k.syscall(p.pid, "write", fd, b"\x00" * 5).ret == -22


def test_start_empty_causes_xrun():
    k, p, fd = make()
    hw(k, p, fd)
    ioctl(k, p, fd, a.PCM_IOC_PREPARE)
    assert ioctl(k, p, fd, a.PCM_IOC_START) == -32  # EPIPE
    # Write in xrun state reports broken pipe until re-prepare.
    assert k.syscall(p.pid, "write", fd, b"\x00" * 4).ret == -32
    assert ioctl(k, p, fd, a.PCM_IOC_PREPARE) == 0


def test_start_after_fill():
    k, p, fd = make()
    hw(k, p, fd)
    ioctl(k, p, fd, a.PCM_IOC_PREPARE)
    assert k.syscall(p.pid, "write", fd, b"\x00" * 64).ret == 64
    assert ioctl(k, p, fd, a.PCM_IOC_START) == 0


def test_auto_start_threshold():
    k, p, fd = make()
    hw(k, p, fd)
    sw = pack_fields(a._SW_FIELDS, {"start_threshold": 4, "avail_min": 1})
    assert ioctl(k, p, fd, a.PCM_IOC_SW_PARAMS, sw) == 0
    ioctl(k, p, fd, a.PCM_IOC_PREPARE)
    k.syscall(p.pid, "write", fd, b"\x00" * 32)  # 8 frames >= threshold
    # Auto-started: pause succeeds only from RUNNING.
    assert ioctl(k, p, fd, a.PCM_IOC_PAUSE, 1) == 0


def test_pause_resume():
    k, p, fd = make()
    hw(k, p, fd)
    ioctl(k, p, fd, a.PCM_IOC_PREPARE)
    k.syscall(p.pid, "write", fd, b"\x00" * 16)
    ioctl(k, p, fd, a.PCM_IOC_START)
    assert ioctl(k, p, fd, a.PCM_IOC_PAUSE, 1) == 0
    assert ioctl(k, p, fd, a.PCM_IOC_PAUSE, 1) == -32
    assert ioctl(k, p, fd, a.PCM_IOC_PAUSE, 0) == 0


def test_drain_plays_out():
    k, p, fd = make()
    hw(k, p, fd)
    ioctl(k, p, fd, a.PCM_IOC_PREPARE)
    k.syscall(p.pid, "write", fd, b"\x00" * 400)
    ioctl(k, p, fd, a.PCM_IOC_START)
    assert ioctl(k, p, fd, a.PCM_IOC_DRAIN) == 0
    out = k.syscall(p.pid, "ioctl", fd, a.PCM_IOC_STATUS)
    assert int.from_bytes(out.data[4:8], "little") == 0  # buffer empty


def test_status_reports_state():
    k, p, fd = make()
    out = k.syscall(p.pid, "ioctl", fd, a.PCM_IOC_STATUS)
    assert int.from_bytes(out.data[:4], "little") == 0  # OPEN
    hw(k, p, fd)
    out = k.syscall(p.pid, "ioctl", fd, a.PCM_IOC_STATUS)
    assert int.from_bytes(out.data[:4], "little") == 1  # SETUP


def test_sw_params_threshold_bound():
    k, p, fd = make()
    hw(k, p, fd)
    bad = pack_fields(a._SW_FIELDS, {"start_threshold": 1 << 20,
                                     "avail_min": 1})
    assert ioctl(k, p, fd, a.PCM_IOC_SW_PARAMS, bad) == -22


def test_release_resets():
    k, p, fd = make()
    hw(k, p, fd)
    ioctl(k, p, fd, a.PCM_IOC_PREPARE)
    k.syscall(p.pid, "close", fd)
    fd2 = k.syscall(p.pid, "openat", "/dev/snd/pcmC0D0p", 2).ret
    assert k.syscall(p.pid, "write", fd2, b"\x00" * 4).ret == -9
