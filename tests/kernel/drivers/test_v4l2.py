"""Tests for the V4L2 camera driver (Table II bug 12)."""

import repro.kernel.drivers.v4l2_camera as v
from repro.kernel.ioctl import pack_fields
from repro.kernel.kernel import VirtualKernel


def make(quirk=False):
    k = VirtualKernel()
    k.register_driver(v.V4l2Camera(quirk_warn_querycap=quirk))
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/video0", 2).ret
    return k, p, fd


def ioctl(k, p, fd, req, arg=None):
    return k.syscall(p.pid, "ioctl", fd, req, arg)


def fmt_arg(fourcc=v.FMT_NV12, width=640, height=480):
    return pack_fields(v._FMT_FIELDS, {"fourcc": fourcc, "width": width,
                                       "height": height})


def reqbufs(k, p, fd, count=4):
    return ioctl(k, p, fd, v.VIDIOC_REQBUFS,
                 pack_fields(v._REQBUFS_FIELDS,
                             {"count": count, "type": 1, "memory": 1}))


def qbuf(k, p, fd, index):
    return ioctl(k, p, fd, v.VIDIOC_QBUF,
                 pack_fields(v._BUF_FIELDS, {"index": index, "type": 1}))


def test_querycap_clean_by_default():
    k, p, fd = make(quirk=True)
    assert ioctl(k, p, fd, v.VIDIOC_QUERYCAP).ret == 0
    assert k.dmesg.peek_crashes() == []


def test_bug12_querycap_after_vendor_input():
    k, p, fd = make(quirk=True)
    assert ioctl(k, p, fd, v.VIDIOC_S_INPUT, 2).ret == 0
    assert ioctl(k, p, fd, v.VIDIOC_QUERYCAP).ret == 0
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["WARNING in v4l_querycap"]


def test_bug12_gated_by_quirk():
    k, p, fd = make(quirk=False)
    ioctl(k, p, fd, v.VIDIOC_S_INPUT, 2)
    ioctl(k, p, fd, v.VIDIOC_QUERYCAP)
    assert k.dmesg.peek_crashes() == []


def test_bug12_recovers_on_standard_input():
    k, p, fd = make(quirk=True)
    ioctl(k, p, fd, v.VIDIOC_S_INPUT, 2)
    ioctl(k, p, fd, v.VIDIOC_S_INPUT, 0)
    ioctl(k, p, fd, v.VIDIOC_QUERYCAP)
    assert k.dmesg.peek_crashes() == []


def test_s_fmt_validates():
    k, p, fd = make()
    assert ioctl(k, p, fd, v.VIDIOC_S_FMT, fmt_arg()).ret == 0
    assert ioctl(k, p, fd, v.VIDIOC_S_FMT,
                 fmt_arg(fourcc=0x1234)).ret == -22
    assert ioctl(k, p, fd, v.VIDIOC_S_FMT,
                 fmt_arg(width=123, height=77)).ret == -22


def test_vendor_format_needs_vendor_input():
    k, p, fd = make()
    assert ioctl(k, p, fd, v.VIDIOC_S_FMT,
                 fmt_arg(fourcc=v.FMT_RAW10)).ret == -22
    ioctl(k, p, fd, v.VIDIOC_S_INPUT, 2)
    assert ioctl(k, p, fd, v.VIDIOC_S_FMT,
                 fmt_arg(fourcc=v.FMT_RAW10)).ret == 0


def test_capture_pipeline():
    k, p, fd = make()
    assert ioctl(k, p, fd, v.VIDIOC_S_FMT, fmt_arg()).ret == 0
    out = reqbufs(k, p, fd, 4)
    assert out.ret == 0
    assert int.from_bytes(out.data[:4], "little") == 4
    assert qbuf(k, p, fd, 0).ret == 0
    assert qbuf(k, p, fd, 1).ret == 0
    assert ioctl(k, p, fd, v.VIDIOC_STREAMON, 1).ret == 0
    out = ioctl(k, p, fd, v.VIDIOC_DQBUF)
    assert out.ret == 0
    assert int.from_bytes(out.data[:4], "little") == 0
    assert ioctl(k, p, fd, v.VIDIOC_STREAMOFF, 1).ret == 0


def test_streamon_requires_queued_buffers():
    k, p, fd = make()
    assert ioctl(k, p, fd, v.VIDIOC_STREAMON, 1).ret == -22
    reqbufs(k, p, fd, 2)
    assert ioctl(k, p, fd, v.VIDIOC_STREAMON, 1).ret == -22  # none queued


def test_dqbuf_requires_streaming():
    k, p, fd = make()
    reqbufs(k, p, fd, 2)
    qbuf(k, p, fd, 0)
    assert ioctl(k, p, fd, v.VIDIOC_DQBUF).ret == -22


def test_dqbuf_empty_queue_eagain():
    k, p, fd = make()
    reqbufs(k, p, fd, 2)
    qbuf(k, p, fd, 0)
    ioctl(k, p, fd, v.VIDIOC_STREAMON, 1)
    assert ioctl(k, p, fd, v.VIDIOC_DQBUF).ret == 0
    assert ioctl(k, p, fd, v.VIDIOC_DQBUF).ret == -11


def test_double_qbuf_rejected():
    k, p, fd = make()
    reqbufs(k, p, fd, 2)
    assert qbuf(k, p, fd, 0).ret == 0
    assert qbuf(k, p, fd, 0).ret == -22


def test_s_fmt_blocked_while_streaming():
    k, p, fd = make()
    reqbufs(k, p, fd, 2)
    qbuf(k, p, fd, 0)
    ioctl(k, p, fd, v.VIDIOC_STREAMON, 1)
    assert ioctl(k, p, fd, v.VIDIOC_S_FMT, fmt_arg()).ret == -16


def test_controls():
    k, p, fd = make()
    good = pack_fields(v._CTRL_FIELDS,
                       {"id": v.CTRL_BRIGHTNESS, "value": 128})
    assert ioctl(k, p, fd, v.VIDIOC_S_CTRL, good).ret == 0
    out = ioctl(k, p, fd, v.VIDIOC_G_CTRL,
                pack_fields(v._CTRL_FIELDS, {"id": v.CTRL_BRIGHTNESS,
                                             "value": 0}))
    assert int.from_bytes(out.data[:4], "little") == 128
    out_of_range = pack_fields(v._CTRL_FIELDS,
                               {"id": v.CTRL_CONTRAST, "value": 9999})
    assert ioctl(k, p, fd, v.VIDIOC_S_CTRL, out_of_range).ret == -34


def test_enum_fmt_depends_on_input():
    k, p, fd = make()
    last = pack_fields(v._ENUMFMT_FIELDS, {"index": 3, "type": 1})
    assert ioctl(k, p, fd, v.VIDIOC_ENUM_FMT, last).ret == -22
    ioctl(k, p, fd, v.VIDIOC_S_INPUT, 2)
    assert ioctl(k, p, fd, v.VIDIOC_ENUM_FMT, last).ret == 0


def test_release_stops_streaming():
    k, p, fd = make()
    reqbufs(k, p, fd, 2)
    qbuf(k, p, fd, 0)
    ioctl(k, p, fd, v.VIDIOC_STREAMON, 1)
    k.syscall(p.pid, "close", fd)
    driver = k.driver_for_path("/dev/video0")
    assert not driver._streaming
