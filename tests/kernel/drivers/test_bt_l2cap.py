"""Tests for the L2CAP socket family (Table II bugs 8 and 11)."""

import struct

import repro.kernel.drivers.bt_l2cap as l2
from repro.kernel.kernel import VirtualKernel
from repro.kernel.syscalls import AF_BLUETOOTH


def make(warn=False, uaf=False):
    k = VirtualKernel()
    k.register_socket_family(l2.BtL2capFamily(quirk_warn_disconn=warn,
                                              quirk_accept_uaf=uaf))
    p = k.new_process("x")
    return k, p


def sock(k, p):
    fd = k.syscall(p.pid, "socket", AF_BLUETOOTH, l2.SOCK_SEQPACKET,
                   l2.BTPROTO_L2CAP).ret
    assert fd >= 0
    return fd


def test_socket_validates_type_and_proto():
    k, p = make()
    assert k.syscall(p.pid, "socket", AF_BLUETOOTH, 99, 0).ret == -22
    assert k.syscall(p.pid, "socket", AF_BLUETOOTH, 1, 7).ret == -71


def test_bind_rules():
    k, p = make()
    s = sock(k, p)
    assert k.syscall(p.pid, "bind", s, l2.pack_l2_addr(1)).ret == -13
    assert k.syscall(p.pid, "bind", s, l2.pack_l2_addr(0x80)).ret == -22
    assert k.syscall(p.pid, "bind", s, l2.pack_l2_addr(0x81)).ret == 0
    s2 = sock(k, p)
    assert k.syscall(p.pid, "bind", s2, l2.pack_l2_addr(0x81)).ret == -98


def test_listen_requires_bound():
    k, p = make()
    s = sock(k, p)
    assert k.syscall(p.pid, "listen", s, 1).ret == -22
    k.syscall(p.pid, "bind", s, l2.pack_l2_addr(0x81))
    assert k.syscall(p.pid, "listen", s, 1).ret == 0


def test_connect_refused_without_listener():
    k, p = make()
    s = sock(k, p)
    assert k.syscall(p.pid, "connect", s, l2.pack_l2_addr(0x83)).ret == -111


def test_remote_psm_enters_config_phase():
    k, p = make()
    s = sock(k, p)
    assert k.syscall(p.pid, "connect", s, l2.pack_l2_addr(1)).ret == 0
    # Data before config completes is rejected.
    assert k.syscall(p.pid, "sendto", s, b"x", None).ret == -107
    opts = struct.pack("<HHB", 512, 0, l2.MODE_BASIC)
    assert k.syscall(p.pid, "setsockopt", s, l2.SOL_L2CAP,
                     l2.L2CAP_OPTIONS, opts).ret == 0
    assert k.syscall(p.pid, "sendto", s, b"x", None).ret == 1


def test_local_connect_accept_and_data():
    k, p = make()
    listener = sock(k, p)
    k.syscall(p.pid, "bind", listener, l2.pack_l2_addr(0x81))
    k.syscall(p.pid, "listen", listener, 2)
    client = sock(k, p)
    assert k.syscall(p.pid, "connect", client,
                     l2.pack_l2_addr(0x81)).ret == 0
    child = k.syscall(p.pid, "accept", listener).ret
    assert child >= 0
    assert k.syscall(p.pid, "sendto", client, b"ping", None).ret == 4
    out = k.syscall(p.pid, "recvfrom", child, 16)
    assert out.data == b"ping"


def test_accept_empty_queue_eagain():
    k, p = make()
    listener = sock(k, p)
    k.syscall(p.pid, "bind", listener, l2.pack_l2_addr(0x81))
    k.syscall(p.pid, "listen", listener, 2)
    assert k.syscall(p.pid, "accept", listener).ret == -11


def test_send_over_mtu():
    k, p = make()
    s = sock(k, p)
    k.syscall(p.pid, "connect", s, l2.pack_l2_addr(1))
    opts = struct.pack("<HHB", 48, 0, l2.MODE_BASIC)
    k.syscall(p.pid, "setsockopt", s, l2.SOL_L2CAP, l2.L2CAP_OPTIONS, opts)
    assert k.syscall(p.pid, "sendto", s, b"x" * 100, None).ret == -90


def test_bt_security_option():
    k, p = make()
    s = sock(k, p)
    assert k.syscall(p.pid, "setsockopt", s, l2.SOL_BLUETOOTH,
                     l2.BT_SECURITY, bytes([3])).ret == 0
    out = k.syscall(p.pid, "getsockopt", s, l2.SOL_BLUETOOTH,
                    l2.BT_SECURITY)
    assert out.data == bytes([3])
    assert k.syscall(p.pid, "setsockopt", s, l2.SOL_BLUETOOTH,
                     l2.BT_SECURITY, bytes([7])).ret == -22


def test_bug8_close_during_config_warns():
    k, p = make(warn=True)
    s = sock(k, p)
    k.syscall(p.pid, "connect", s, l2.pack_l2_addr(1))
    k.syscall(p.pid, "close", s)
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["WARNING in l2cap_send_disconn_req"]


def test_bug8_silent_without_quirk():
    k, p = make(warn=False)
    s = sock(k, p)
    k.syscall(p.pid, "connect", s, l2.pack_l2_addr(1))
    k.syscall(p.pid, "close", s)
    assert k.dmesg.peek_crashes() == []


def test_bug8_not_triggered_after_config_done():
    k, p = make(warn=True)
    s = sock(k, p)
    k.syscall(p.pid, "connect", s, l2.pack_l2_addr(1))
    opts = struct.pack("<HHB", 512, 0, l2.MODE_ERTM)
    k.syscall(p.pid, "setsockopt", s, l2.SOL_L2CAP, l2.L2CAP_OPTIONS, opts)
    k.syscall(p.pid, "close", s)
    assert k.dmesg.peek_crashes() == []


def _setup_pending_child(k, p):
    listener = sock(k, p)
    k.syscall(p.pid, "bind", listener, l2.pack_l2_addr(0x81))
    k.syscall(p.pid, "listen", listener, 2)
    client = sock(k, p)
    assert k.syscall(p.pid, "connect", client,
                     l2.pack_l2_addr(0x81)).ret == 0
    return listener, client


def test_bug11_accept_unlink_uaf():
    k, p = make(uaf=True)
    listener, client = _setup_pending_child(k, p)
    k.syscall(p.pid, "close", listener)
    assert k.dmesg.peek_crashes() == []
    k.syscall(p.pid, "close", client)
    titles = [c.title for c in k.dmesg.drain_crashes()]
    assert titles == ["KASAN: slab-use-after-free Read in bt_accept_unlink"]


def test_bug11_clean_without_quirk():
    k, p = make(uaf=False)
    listener, client = _setup_pending_child(k, p)
    k.syscall(p.pid, "close", listener)
    k.syscall(p.pid, "close", client)
    assert k.dmesg.peek_crashes() == []


def test_bug11_not_triggered_if_accepted_first():
    k, p = make(uaf=True)
    listener, client = _setup_pending_child(k, p)
    assert k.syscall(p.pid, "accept", listener).ret >= 0
    k.syscall(p.pid, "close", listener)
    k.syscall(p.pid, "close", client)
    assert k.dmesg.peek_crashes() == []


def test_backlog_limit():
    k, p = make()
    listener = sock(k, p)
    k.syscall(p.pid, "bind", listener, l2.pack_l2_addr(0x81))
    k.syscall(p.pid, "listen", listener, 0)
    c1 = sock(k, p)
    assert k.syscall(p.pid, "connect", c1, l2.pack_l2_addr(0x81)).ret == 0
    c2 = sock(k, p)
    assert k.syscall(p.pid, "connect", c2, l2.pack_l2_addr(0x81)).ret == -11


def test_socket_spec_shape():
    spec = l2.BtL2capFamily().socket_spec()
    assert spec.domain == AF_BLUETOOTH
    assert l2.SOCK_SEQPACKET in spec.types
    assert len(spec.sockopts) == 2
