"""Tests for the ION allocator and GPIO chip drivers."""

import struct

import repro.kernel.drivers.gpio as g
import repro.kernel.drivers.ion_alloc as ion
from repro.kernel.ioctl import pack_fields
from repro.kernel.kernel import VirtualKernel


def make_ion():
    k = VirtualKernel()
    k.register_driver(ion.IonAllocator())
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/ion", 2).ret
    return k, p, fd


def alloc(k, p, fd, length=4096, heap=ion.HEAP_SYSTEM):
    out = k.syscall(p.pid, "ioctl", fd, ion.ION_IOC_ALLOC,
                    pack_fields(ion._ALLOC_FIELDS,
                                {"len": length, "heap_mask": heap,
                                 "flags": 0}))
    return out


def test_ion_alloc_free_cycle():
    k, p, fd = make_ion()
    out = alloc(k, p, fd)
    assert out.ret == 0
    handle = int.from_bytes(out.data, "little")
    assert k.syscall(p.pid, "ioctl", fd, ion.ION_IOC_FREE, handle).ret == 0
    assert k.syscall(p.pid, "ioctl", fd, ion.ION_IOC_FREE, handle).ret == -2


def test_ion_alloc_validations():
    k, p, fd = make_ion()
    assert alloc(k, p, fd, length=0).ret == -22
    assert alloc(k, p, fd, heap=0).ret == -19
    assert alloc(k, p, fd, length=1 << 30).ret == -22  # over heap limit


def test_ion_carveout_smaller_than_system():
    k, p, fd = make_ion()
    assert alloc(k, p, fd, length=1 << 23, heap=ion.HEAP_CARVEOUT).ret == -22
    assert alloc(k, p, fd, length=1 << 23, heap=ion.HEAP_SYSTEM).ret == 0


def test_ion_map_and_mmap():
    k, p, fd = make_ion()
    out = alloc(k, p, fd, length=8192)
    handle = int.from_bytes(out.data, "little")
    map_out = k.syscall(p.pid, "ioctl", fd, ion.ION_IOC_MAP, handle)
    offset = int.from_bytes(map_out.data, "little")
    assert k.syscall(p.pid, "mmap", fd, 4096, 3, 1, offset).ret > 0
    assert k.syscall(p.pid, "mmap", fd, 1 << 20, 3, 1, offset).ret == -22


def make_gpio():
    k = VirtualKernel()
    k.register_driver(g.GpioChip())
    p = k.new_process("x")
    fd = k.syscall(p.pid, "openat", "/dev/gpiochip0", 2).ret
    return k, p, fd


def linehandle(k, p, fd, mask=0x3, flags=g.HANDLE_REQUEST_OUTPUT,
               default=0):
    return k.syscall(p.pid, "ioctl", fd, g.GPIO_GET_LINEHANDLE,
                     pack_fields(g._LINEHANDLE_FIELDS,
                                 {"line_mask": mask, "flags": flags,
                                  "default": default}))


def test_gpio_chipinfo():
    k, p, fd = make_gpio()
    out = k.syscall(p.pid, "ioctl", fd, g.GPIO_GET_CHIPINFO)
    lines, reserved = struct.unpack("<II", out.data)
    assert lines == 32 and reserved == 3


def test_gpio_lineinfo():
    k, p, fd = make_gpio()
    out = k.syscall(p.pid, "ioctl", fd, g.GPIO_GET_LINEINFO,
                    pack_fields(g._LINEINFO_FIELDS, {"line": 7}))
    _line, reserved = struct.unpack("<II", out.data)
    assert reserved == 1


def test_gpio_handle_flags_validation():
    k, p, fd = make_gpio()
    both = g.HANDLE_REQUEST_INPUT | g.HANDLE_REQUEST_OUTPUT
    assert linehandle(k, p, fd, flags=both).ret == -22
    assert linehandle(k, p, fd, flags=0).ret == -22
    assert linehandle(k, p, fd, mask=0).ret == -22


def test_gpio_line_contention():
    k, p, fd = make_gpio()
    assert linehandle(k, p, fd, mask=0x3).ret == 0
    assert linehandle(k, p, fd, mask=0x2).ret == -16


def test_gpio_set_get_values():
    k, p, fd = make_gpio()
    out = linehandle(k, p, fd, mask=0x3)
    handle = int.from_bytes(out.data, "little")
    assert k.syscall(p.pid, "ioctl", fd, g.GPIOHANDLE_SET_VALUES,
                     pack_fields(g._SET_FIELDS,
                                 {"handle": handle, "values": 0x1})).ret == 0
    got = k.syscall(p.pid, "ioctl", fd, g.GPIOHANDLE_GET_VALUES,
                    pack_fields(g._GET_FIELDS, {"handle": handle}))
    assert int.from_bytes(got.data, "little") == 0x1


def test_gpio_set_on_input_handle_rejected():
    k, p, fd = make_gpio()
    out = linehandle(k, p, fd, mask=0x4, flags=g.HANDLE_REQUEST_INPUT)
    handle = int.from_bytes(out.data, "little")
    assert k.syscall(p.pid, "ioctl", fd, g.GPIOHANDLE_SET_VALUES,
                     pack_fields(g._SET_FIELDS,
                                 {"handle": handle,
                                  "values": 0x4})).ret == -1


def test_gpio_default_high():
    k, p, fd = make_gpio()
    out = linehandle(k, p, fd, mask=0x8, default=1)
    handle = int.from_bytes(out.data, "little")
    got = k.syscall(p.pid, "ioctl", fd, g.GPIOHANDLE_GET_VALUES,
                    pack_fields(g._GET_FIELDS, {"handle": handle}))
    assert int.from_bytes(got.data, "little") == 0x8
