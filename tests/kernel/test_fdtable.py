"""Tests for the per-process fd table."""

from repro.kernel.chardev import CharDevice, OpenFile
from repro.kernel.fdtable import FdTable


def _file() -> OpenFile:
    return OpenFile(path="/dev/x", flags=0, driver=CharDevice())


def test_install_lowest_free_slot():
    t = FdTable()
    assert t.install(_file()) == 0
    assert t.install(_file()) == 1


def test_slot_reuse_after_remove():
    t = FdTable()
    t.install(_file())
    t.install(_file())
    t.remove(0)
    assert t.install(_file()) == 0


def test_get():
    t = FdTable()
    f = _file()
    fd = t.install(f)
    assert t.get(fd) is f
    assert t.get(99) is None


def test_dup_shares_description():
    t = FdTable()
    f = _file()
    fd = t.install(f)
    dup = t.dup(fd)
    assert dup != fd
    assert t.get(dup) is f
    assert f.refcount == 2


def test_dup_bad_fd():
    t = FdTable()
    assert t.dup(3) == -9  # EBADF


def test_remove_returns_file_only_on_last_ref():
    t = FdTable()
    f = _file()
    fd = t.install(f)
    dup = t.dup(fd)
    assert t.remove(fd) is None
    assert t.remove(dup) is f


def test_emfile_on_exhaustion():
    t = FdTable(max_fds=2)
    t.install(_file())
    t.install(_file())
    assert t.install(_file()) == -24  # EMFILE


def test_clear_returns_last_referenced():
    t = FdTable()
    f1, f2 = _file(), _file()
    fd1 = t.install(f1)
    t.install(f2)
    t.dup(fd1)
    released = t.clear()
    assert f1 in released and f2 in released
    assert t.open_fds() == []


def test_open_fds_sorted():
    t = FdTable()
    t.install(_file())
    t.install(_file())
    t.install(_file())
    t.remove(1)
    assert t.open_fds() == [0, 2]
