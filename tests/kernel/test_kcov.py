"""Tests for the kcov coverage collector."""

from repro.kernel.kcov import Kcov, stable_pc


def test_stable_pc_deterministic():
    assert stable_pc("drv", "block") == stable_pc("drv", "block")


def test_stable_pc_distinguishes_driver_and_label():
    assert stable_pc("a", "x") != stable_pc("b", "x")
    assert stable_pc("a", "x") != stable_pc("a", "y")


def test_hit_records_per_task_when_enabled():
    cov = Kcov()
    cov.enable(1)
    pc = cov.hit(1, "drv", "open")
    assert cov.collect(1) == (pc,)


def test_hit_without_enable_still_counts_globally():
    cov = Kcov()
    cov.hit(7, "drv", "open")
    assert cov.total_blocks() == 1
    assert cov.collect(7) == ()


def test_collect_clears_trace():
    cov = Kcov()
    cov.enable(1)
    cov.hit(1, "drv", "a")
    cov.collect(1)
    assert cov.collect(1) == ()


def test_disable_stops_collection():
    cov = Kcov()
    cov.enable(1)
    cov.disable(1)
    assert not cov.is_enabled(1)
    cov.hit(1, "drv", "a")
    assert cov.collect(1) == ()


def test_trace_preserves_order_and_duplicates():
    cov = Kcov()
    cov.enable(1)
    a = cov.hit(1, "drv", "a")
    b = cov.hit(1, "drv", "b")
    a2 = cov.hit(1, "drv", "a")
    assert cov.collect(1) == (a, b, a2)


def test_per_driver_attribution():
    cov = Kcov()
    cov.hit(1, "drv1", "a")
    cov.hit(1, "drv1", "b")
    cov.hit(1, "drv2", "a")
    assert cov.per_driver() == {"drv1": 2, "drv2": 1}


def test_pc_owner():
    cov = Kcov()
    pc = cov.hit(1, "camera", "open")
    assert cov.pc_owner(pc) == "camera"
    assert cov.pc_owner(12345) is None


def test_total_blocks_deduplicates():
    cov = Kcov()
    cov.hit(1, "d", "x")
    cov.hit(2, "d", "x")
    assert cov.total_blocks() == 1


def test_covered_pcs_frozen_snapshot():
    cov = Kcov()
    cov.hit(1, "d", "x")
    snap = cov.covered_pcs()
    cov.hit(1, "d", "y")
    assert len(snap) == 1
    assert len(cov.covered_pcs()) == 2


def test_reset():
    cov = Kcov()
    cov.enable(1)
    cov.hit(1, "d", "x")
    cov.reset()
    assert cov.total_blocks() == 0
    assert not cov.is_enabled(1)
