"""Tests for syscall metadata: numbering and critical arguments."""

from repro.kernel.syscalls import (
    CRITICAL_ARG_INDEX,
    SYSCALL_NRS,
    SyscallOutcome,
    critical_argument,
)


def test_syscall_numbers_unique():
    assert len(set(SYSCALL_NRS.values())) == len(SYSCALL_NRS)


def test_arm64_numbers_spot_check():
    assert SYSCALL_NRS["ioctl"] == 29
    assert SYSCALL_NRS["openat"] == 56
    assert SYSCALL_NRS["mmap"] == 222


def test_critical_argument_ioctl_request():
    assert critical_argument("ioctl", (3, 0x5401, b"")) == 0x5401


def test_critical_argument_socket_domain():
    assert critical_argument("socket", (31, 5, 0)) == 31


def test_critical_argument_sockopt():
    assert critical_argument("setsockopt", (3, 6, 0x01, b"")) == 0x01


def test_critical_argument_none_for_plain_calls():
    assert critical_argument("read", (3, 64)) is None
    assert critical_argument("openat", ("/dev/x", 0)) is None


def test_critical_argument_missing_or_nonint():
    assert critical_argument("ioctl", (3,)) is None
    assert critical_argument("ioctl", (3, "req")) is None


def test_critical_index_consistency():
    for name in CRITICAL_ARG_INDEX:
        assert name in SYSCALL_NRS


def test_outcome_ok():
    assert SyscallOutcome(0).ok
    assert SyscallOutcome(5, b"x").ok
    assert not SyscallOutcome(-22).ok
