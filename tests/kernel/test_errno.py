"""Tests for errno helpers."""

from repro.kernel.errno import Errno, err, errno_name, is_err


def test_err_encodes_negative():
    assert err(Errno.EINVAL) == -22
    assert err(Errno.EBADF) == -9


def test_is_err_on_failures():
    assert is_err(-1)
    assert is_err(err(Errno.ENOSYS))


def test_is_err_on_success_values():
    assert not is_err(0)
    assert not is_err(42)


def test_errno_name_known():
    assert errno_name(-22) == "EINVAL"
    assert errno_name(err(Errno.ETIMEDOUT)) == "ETIMEDOUT"


def test_errno_name_success():
    assert errno_name(0) == "OK"
    assert errno_name(7) == "OK"


def test_errno_name_unknown():
    assert errno_name(-9999) == "E?9999"


def test_errno_values_match_linux():
    assert Errno.EPERM == 1
    assert Errno.ENOENT == 2
    assert Errno.EBADF == 9
    assert Errno.ENOTTY == 25
    assert Errno.EMSGSIZE == 90
    assert Errno.EOPNOTSUPP == 95
