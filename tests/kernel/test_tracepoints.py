"""Tests for the eBPF-surrogate tracepoint manager."""

from repro.kernel.tracepoints import (
    BinderRecord,
    SyscallRecord,
    TracepointManager,
)


def _sys_record(pid=1, name="ioctl", critical=7, seq=1):
    return SyscallRecord(pid=pid, comm="t", nr=29, name=name, args=(),
                         critical=critical, seq=seq)


def test_attach_and_fire():
    tm = TracepointManager()
    got = []
    tm.attach("sys_enter", got.append)
    tm.fire("sys_enter", _sys_record())
    assert len(got) == 1


def test_pid_filter_matches():
    tm = TracepointManager()
    got = []
    tm.attach("sys_enter", got.append, pid_filter=5)
    tm.fire("sys_enter", _sys_record(pid=4))
    tm.fire("sys_enter", _sys_record(pid=5))
    assert [r.pid for r in got] == [5]


def test_binder_record_pid_filter():
    tm = TracepointManager()
    got = []
    tm.attach("binder_transaction", got.append, pid_filter=9)
    rec = BinderRecord(from_pid=9, from_comm="poke", service="s",
                       interface="i", code=1, method="m",
                       payload_types=(), payload_values=(), reply_ok=True,
                       seq=1)
    other = BinderRecord(from_pid=8, from_comm="x", service="s",
                         interface="i", code=1, method="m",
                         payload_types=(), payload_values=(),
                         reply_ok=True, seq=2)
    tm.fire("binder_transaction", rec)
    tm.fire("binder_transaction", other)
    assert [r.from_pid for r in got] == [9]


def test_detach_stops_delivery():
    tm = TracepointManager()
    got = []
    handle = tm.attach("sys_enter", got.append)
    tm.detach(handle)
    tm.fire("sys_enter", _sys_record())
    assert got == []


def test_detach_idempotent():
    tm = TracepointManager()
    handle = tm.attach("sys_enter", lambda r: None)
    tm.detach(handle)
    tm.detach(handle)  # no error


def test_multiple_probes_all_fire():
    tm = TracepointManager()
    a, b = [], []
    tm.attach("sys_enter", a.append)
    tm.attach("sys_enter", b.append)
    tm.fire("sys_enter", _sys_record())
    assert len(a) == 1 and len(b) == 1


def test_probe_count():
    tm = TracepointManager()
    tm.attach("sys_enter", lambda r: None)
    tm.attach("sys_exit", lambda r: None)
    assert tm.probe_count("sys_enter") == 1
    assert tm.probe_count() == 2


def test_fire_unknown_event_is_noop():
    tm = TracepointManager()
    tm.fire("no_such_event", _sys_record())
