"""Tests for state semantics across reboots and driver resets."""

import repro.kernel.drivers.tcpc_rt1711 as tcpc
from repro.device import AndroidDevice, profile_by_id
from repro.kernel.ioctl import pack_fields


def test_driver_global_state_persists_across_programs():
    device = AndroidDevice(profile_by_id("A1"))
    p1 = device.new_process("prog1")
    fd = device.syscall(p1.pid, "openat", "/dev/tcpc0", 2).ret
    assert device.syscall(p1.pid, "ioctl", fd, tcpc.TCPC_IOC_PROBE,
                          None).ret == 0
    device.kernel.kill_process(p1.pid)
    # A second process sees the probed chip (driver-global state).
    p2 = device.new_process("prog2")
    fd = device.syscall(p2.pid, "openat", "/dev/tcpc0", 2).ret
    assert device.syscall(p2.pid, "ioctl", fd, tcpc.TCPC_IOC_VBUS,
                          1).ret == 0


def test_reboot_resets_driver_state():
    device = AndroidDevice(profile_by_id("A1"))
    p = device.new_process("prog")
    fd = device.syscall(p.pid, "openat", "/dev/tcpc0", 2).ret
    device.syscall(p.pid, "ioctl", fd, tcpc.TCPC_IOC_PROBE, None)
    device.reboot()
    p2 = device.new_process("prog2")
    fd = device.syscall(p2.pid, "openat", "/dev/tcpc0", 2).ret
    # Unprobed again after reboot.
    assert device.syscall(p2.pid, "ioctl", fd, tcpc.TCPC_IOC_VBUS,
                          1).ret == -19


def test_reboot_restarts_hal_processes_with_fresh_state():
    device = AndroidDevice(profile_by_id("A1"))
    p = device.new_process("client")
    assert device.hal_transact(p.pid, "c", "vendor.usb", "enablePort",
                               ())[0] == 0
    old_pid = device.hal_process("vendor.usb").pid
    device.reboot()
    assert device.hal_process("vendor.usb").pid != old_pid
    p2 = device.new_process("client2")
    # Fresh service state: the port must be enabled again.
    status, _ = device.hal_transact(p2.pid, "c", "vendor.usb",
                                    "connectPartner", (0,))
    assert status == -38  # INVALID_OPERATION


def test_kcov_attribution_survives_reboot():
    device = AndroidDevice(profile_by_id("A1"))
    p = device.new_process("prog")
    device.syscall(p.pid, "openat", "/dev/tcpc0", 2)
    before = device.per_driver_coverage()
    device.reboot()
    assert device.per_driver_coverage() == before


def test_heap_leak_accounting_reset_on_reboot():
    device = AndroidDevice(profile_by_id("D"))
    p = device.new_process("prog")
    s = device.syscall(p.pid, "socket", 31, 5, 0).ret
    import repro.kernel.drivers.bt_l2cap as l2
    device.syscall(p.pid, "bind", s, l2.pack_l2_addr(0x81))
    device.syscall(p.pid, "listen", s, 1)
    assert device.kernel.heap.live_objects() == 1
    device.reboot()
    assert device.kernel.heap.live_objects() == 0
