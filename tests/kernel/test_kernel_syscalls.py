"""Tests for the syscall dispatcher and kernel crash semantics."""

import pytest

from repro.errors import KernelBug, KernelPanic
from repro.kernel.chardev import CharDevice, SocketFamily
from repro.kernel.errno import Errno, err
from repro.kernel.kernel import VirtualKernel


class Echo(CharDevice):
    """Driver used to exercise the dispatcher paths."""

    name = "echo"
    paths = ("/dev/echo",)

    def __init__(self):
        self.buffer = b""
        self.released = 0

    def write(self, ctx, f, data):
        ctx.cover("write")
        self.buffer = data
        return len(data)

    def read(self, ctx, f, size):
        ctx.cover("read")
        return self.buffer[:size]

    def ioctl(self, ctx, f, request, arg):
        ctx.cover("ioctl")
        if request == 1:
            ctx.warn("echo_warn")
            return 0
        if request == 2:
            ctx.bug("echo corrupted")
            raise KernelBug("echo corrupted")
        if request == 3:
            raise KernelPanic("echo: not syncing")
        if request == 4:
            while True:
                ctx.tick("echo_spin")
        if request == 5:
            return 0, b"OUT"
        return err(Errno.ENOTTY)

    def release(self, ctx, f):
        self.released += 1
        return 0

    def mmap(self, ctx, f, length, prot, flags, offset):
        return 0


@pytest.fixture
def keb():
    k = VirtualKernel(loop_budget=500)
    drv = Echo()
    k.register_driver(drv)
    p = k.new_process("t")
    return k, drv, p


def _open(k, p):
    return k.syscall(p.pid, "openat", "/dev/echo", 2).ret


def test_open_read_write(keb):
    k, drv, p = keb
    fd = _open(k, p)
    assert fd >= 0
    assert k.syscall(p.pid, "write", fd, b"hello").ret == 5
    out = k.syscall(p.pid, "read", fd, 5)
    assert out.ret == 5 and out.data == b"hello"


def test_open_missing_path(keb):
    k, _drv, p = keb
    assert k.syscall(p.pid, "openat", "/dev/nope", 0).ret == -int(Errno.ENOENT)


def test_bad_fd_errors(keb):
    k, _drv, p = keb
    assert k.syscall(p.pid, "read", 42, 4).ret == -int(Errno.EBADF)
    assert k.syscall(p.pid, "close", 42).ret == -int(Errno.EBADF)


def test_unknown_syscall(keb):
    k, _drv, p = keb
    assert k.syscall(p.pid, "clone").ret == -int(Errno.ENOSYS)


def test_unknown_pid(keb):
    k, _drv, _p = keb
    assert k.syscall(31337, "openat", "/dev/echo", 0).ret < 0


def test_close_releases_driver(keb):
    k, drv, p = keb
    fd = _open(k, p)
    k.syscall(p.pid, "close", fd)
    assert drv.released == 1


def test_dup_shares_then_releases_once(keb):
    k, drv, p = keb
    fd = _open(k, p)
    dup = k.syscall(p.pid, "dup", fd).ret
    k.syscall(p.pid, "close", fd)
    assert drv.released == 0
    k.syscall(p.pid, "close", dup)
    assert drv.released == 1


def test_warn_does_not_fail_syscall(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    assert k.syscall(p.pid, "ioctl", fd, 1).ret == 0
    crashes = k.dmesg.drain_crashes()
    assert [c.title for c in crashes] == ["WARNING in echo_warn"]
    assert not k.panicked and not k.hung


def test_bug_aborts_syscall_but_kernel_lives(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    assert k.syscall(p.pid, "ioctl", fd, 2).ret == -int(Errno.EFAULT)
    assert any(c.kind == "BUG" for c in k.dmesg.drain_crashes())
    assert not k.panicked
    # Kernel still serviceable.
    assert k.syscall(p.pid, "write", fd, b"x").ret == 1


def test_panic_latches_kernel(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    assert k.syscall(p.pid, "ioctl", fd, 3).ret == -int(Errno.EIO)
    assert k.panicked
    assert k.syscall(p.pid, "write", fd, b"x").ret == -int(Errno.EIO)


def test_infinite_loop_detected_as_hang(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    assert k.syscall(p.pid, "ioctl", fd, 4).ret == -int(Errno.ETIMEDOUT)
    assert k.hung
    assert any(c.kind == "HANG" for c in k.dmesg.drain_crashes())


def test_ioctl_out_data(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    out = k.syscall(p.pid, "ioctl", fd, 5)
    assert out.ret == 0 and out.data == b"OUT"


def test_mmap_munmap(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    addr = k.syscall(p.pid, "mmap", fd, 4096, 3, 1, 0).ret
    assert addr > 0
    assert k.syscall(p.pid, "munmap", addr, 4096).ret == 0
    assert k.syscall(p.pid, "munmap", addr, 4096).ret == -int(Errno.EINVAL)


def test_bad_arg_types_become_einval_or_efault(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    assert k.syscall(p.pid, "write", fd, "not-bytes").ret == -int(Errno.EFAULT)
    assert k.syscall(p.pid, "read", fd, "nan").ret == -int(Errno.EINVAL)
    assert k.syscall(p.pid, "ioctl", fd, "x").ret == -int(Errno.EINVAL)


def test_tracepoints_fire_on_syscalls(keb):
    k, _drv, p = keb
    entries = []
    k.trace.attach("sys_enter", entries.append)
    fd = _open(k, p)
    k.syscall(p.pid, "ioctl", fd, 7, None)
    names = [r.name for r in entries]
    assert names == ["openat", "ioctl"]
    assert entries[1].critical == 7


def test_syscall_filter_blocks(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    k.syscall_filters[p.pid] = frozenset({"openat", "close", "ioctl"})
    assert k.syscall(p.pid, "write", fd, b"x").ret == -int(Errno.EPERM)
    assert k.syscall(p.pid, "ioctl", fd, 5).ret == 0


def test_kill_process_releases_files(keb):
    k, drv, p = keb
    _open(k, p)
    _open(k, p)
    k.kill_process(p.pid)
    assert drv.released == 2
    assert k.process(p.pid) is None


def test_soft_reset_restores_service(keb):
    k, drv, p = keb
    fd = _open(k, p)
    k.syscall(p.pid, "ioctl", fd, 3)  # panic
    assert k.panicked
    k.soft_reset()
    assert not k.panicked
    p2 = k.new_process("t2")
    assert k.syscall(p2.pid, "openat", "/dev/echo", 0).ret >= 0


def test_duplicate_driver_path_rejected():
    k = VirtualKernel()
    k.register_driver(Echo())
    with pytest.raises(ValueError):
        k.register_driver(Echo())


def test_socket_on_unsupported_domain(keb):
    k, _drv, p = keb
    assert k.syscall(p.pid, "socket", 99, 1, 0).ret == -int(Errno.EINVAL)


def test_register_duplicate_socket_family():
    k = VirtualKernel()

    class Fam(SocketFamily):
        name = "fam"
        domain = 5

    k.register_socket_family(Fam())
    with pytest.raises(ValueError):
        k.register_socket_family(Fam())


def test_ppoll_counts_open_fds(keb):
    k, _drv, p = keb
    fd = _open(k, p)
    assert k.syscall(p.pid, "ppoll", [fd, 99], 0).ret == 1
