"""Tests for ioctl encoding and field packing."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.ioctl import (
    FieldSpec,
    IoctlSpec,
    io,
    ior,
    iow,
    iowr,
    pack_fields,
    unpack_fields,
)


def test_io_encoding_unique_per_type_and_nr():
    values = {io("T", n) for n in range(8)} | {io("V", n) for n in range(8)}
    assert len(values) == 16


def test_direction_bits_differ():
    assert io("T", 0) != iow("T", 0, 4) != ior("T", 0, 4) != iowr("T", 0, 4)


def test_size_encoded():
    assert iow("T", 1, 4) != iow("T", 1, 8)


FIELDS = (
    FieldSpec("a", "I", "range", lo=0, hi=100),
    FieldSpec("b", "H", "enum", values=(1, 2)),
    FieldSpec("c", "4s", "payload"),
)


def test_pack_unpack_roundtrip():
    packed = pack_fields(FIELDS, {"a": 7, "b": 2, "c": b"hi"})
    out = unpack_fields(FIELDS, packed)
    assert out["a"] == 7
    assert out["b"] == 2
    assert out["c"] == b"hi\x00\x00"


def test_pack_defaults_missing_fields():
    packed = pack_fields(FIELDS, {})
    out = unpack_fields(FIELDS, packed)
    assert out["a"] == 0 and out["b"] == 0 and out["c"] == b"\x00" * 4


def test_pack_masks_oversized_values():
    packed = pack_fields((FieldSpec("x", "H"),), {"x": 0x12345})
    assert unpack_fields((FieldSpec("x", "H"),), packed)["x"] == 0x2345


def test_pack_signed_wraps():
    fields = (FieldSpec("v", "i"),)
    packed = pack_fields(fields, {"v": 0xFFFFFFFF})
    assert unpack_fields(fields, packed)["v"] == -1


def test_pack_bytes_truncated_and_padded():
    fields = (FieldSpec("s", "3s", "payload"),)
    assert pack_fields(fields, {"s": b"abcdef"}) == b"abc"
    assert pack_fields(fields, {"s": b"a"}) == b"a\x00\x00"


def test_pack_int_into_bytes_field():
    fields = (FieldSpec("s", "4s", "payload"),)
    assert pack_fields(fields, {"s": 0x0102}) == b"\x02\x01\x00\x00"


def test_unpack_short_data_padded():
    out = unpack_fields(FIELDS, b"\x05")
    assert out["a"] == 5


def test_ioctl_spec_struct_size():
    spec = IoctlSpec("X", io("X", 0), "struct", fields=FIELDS)
    assert spec.struct_size() == 4 + 2 + 4


@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=0, max_value=2**16 - 1))
def test_pack_unpack_property(a, b):
    fields = (FieldSpec("a", "I"), FieldSpec("b", "H"))
    out = unpack_fields(fields, pack_fields(fields, {"a": a, "b": b}))
    assert out["a"] == a and out["b"] == b


@given(st.binary(max_size=16))
def test_payload_field_property(data):
    fields = (FieldSpec("p", "8s", "payload"),)
    out = unpack_fields(fields, pack_fields(fields, {"p": data}))
    assert out["p"] == data[:8].ljust(8, b"\x00")
