"""Tests for the kernel log ring and crash records."""

from repro.kernel.dmesg import Dmesg


def test_log_lines_kept_in_order():
    d = Dmesg()
    d.log("one")
    d.log("two")
    assert d.lines() == ["one", "two"]


def test_ring_capacity_drops_oldest():
    d = Dmesg(capacity=3)
    for i in range(5):
        d.log(f"line{i}")
    assert d.lines() == ["line2", "line3", "line4"]


def test_warn_creates_crash_record():
    d = Dmesg()
    rec = d.warn("foo_bar", "details")
    assert rec.kind == "WARNING"
    assert rec.title == "WARNING in foo_bar"
    assert rec.component == "kernel"
    assert d.peek_crashes() == [rec]


def test_warn_once_suppresses_repeats():
    d = Dmesg()
    assert d.warn_once("site") is not None
    assert d.warn_once("site") is None
    assert len(d.peek_crashes()) == 1


def test_warn_once_distinct_sites():
    d = Dmesg()
    d.warn_once("a")
    d.warn_once("b")
    assert len(d.peek_crashes()) == 2


def test_bug_and_kasan_titles():
    d = Dmesg()
    assert d.bug("soft lockup").title == "BUG: soft lockup"
    rec = d.kasan("slab-use-after-free Read", "bt_accept_unlink")
    assert rec.title == "KASAN: slab-use-after-free Read in bt_accept_unlink"


def test_panic_and_hang_kinds():
    d = Dmesg()
    assert d.panic("not syncing").kind == "PANIC"
    assert d.hang("mtk_vcodec_drain").title == "Infinite loop in mtk_vcodec_drain"


def test_drain_clears_records():
    d = Dmesg()
    d.warn("x")
    d.bug("y")
    drained = d.drain_crashes()
    assert len(drained) == 2
    assert d.drain_crashes() == []
    assert d.peek_crashes() == []


def test_sequence_numbers_increase():
    d = Dmesg()
    first = d.warn("a")
    second = d.warn("b")
    assert second.seq > first.seq


def test_crashes_also_logged_as_lines():
    d = Dmesg()
    d.warn("somewhere")
    assert any("WARNING in somewhere" in line for line in d.lines())
