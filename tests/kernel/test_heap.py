"""Tests for the KASAN-checked slab heap."""

import pytest

from repro.errors import KasanReport
from repro.kernel.heap import SlabHeap


def test_alloc_zero_initialised():
    heap = SlabHeap()
    a = heap.kmalloc(16, "obj")
    assert a.load(0, 16) == b"\x00" * 16


def test_store_load_roundtrip():
    heap = SlabHeap()
    a = heap.kmalloc(8)
    a.store(2, b"abc")
    assert a.load(2, 3) == b"abc"


def test_u32_helpers():
    heap = SlabHeap()
    a = heap.kmalloc(8)
    a.store_u32(4, 0xDEADBEEF)
    assert a.load_u32(4) == 0xDEADBEEF


def test_out_of_bounds_read_detected():
    heap = SlabHeap()
    a = heap.kmalloc(8)
    with pytest.raises(KasanReport) as exc:
        a.load(6, 4, "some_func")
    assert "slab-out-of-bounds Read" in exc.value.title
    assert "some_func" in exc.value.title


def test_out_of_bounds_write_detected():
    heap = SlabHeap()
    a = heap.kmalloc(4)
    with pytest.raises(KasanReport) as exc:
        a.store(2, b"xyz", "writer")
    assert "slab-out-of-bounds Write" in exc.value.title


def test_negative_offset_rejected():
    heap = SlabHeap()
    a = heap.kmalloc(4)
    with pytest.raises(KasanReport):
        a.load(-1, 2)


def test_use_after_free_read():
    heap = SlabHeap()
    a = heap.kmalloc(8, "bt_sock")
    heap.kfree(a)
    with pytest.raises(KasanReport) as exc:
        a.load(0, 4, "bt_accept_unlink")
    assert exc.value.title == ("KASAN: slab-use-after-free Read "
                               "in bt_accept_unlink")


def test_double_free_detected():
    heap = SlabHeap()
    a = heap.kmalloc(8)
    heap.kfree(a)
    with pytest.raises(KasanReport) as exc:
        heap.kfree(a, "second_free")
    assert "double-free" in exc.value.title


def test_accounting():
    heap = SlabHeap()
    a = heap.kmalloc(100)
    b = heap.kmalloc(50)
    assert heap.bytes_allocated == 150
    assert heap.live_objects() == 2
    heap.kfree(a)
    assert heap.bytes_allocated == 50
    assert heap.live_objects() == 1
    assert heap.alloc_count == 2
    assert heap.free_count == 1
    del b


def test_negative_size_rejected():
    heap = SlabHeap()
    with pytest.raises(ValueError):
        heap.kmalloc(-1)


def test_quarantine_keeps_freed_objects_detectable():
    heap = SlabHeap(quarantine_size=2)
    objs = [heap.kmalloc(4) for _ in range(3)]
    for o in objs:
        heap.kfree(o)
    # Even the oldest (evicted from quarantine) stays flagged as freed.
    with pytest.raises(KasanReport):
        objs[0].load(0, 1)


def test_reset_clears_state():
    heap = SlabHeap()
    heap.kmalloc(32)
    heap.reset()
    assert heap.live_objects() == 0
    assert heap.bytes_allocated == 0
