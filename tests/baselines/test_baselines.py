"""Tests for the Syzkaller/Difuze baselines and tool variants."""

import pytest

from repro.baselines import TOOLS, config_for, make_engine
from repro.baselines.difuze import DifuzeEngine, extract_interfaces
from repro.baselines.syzkaller import ChoiceTable, SyzkallerEngine
from repro.device import AndroidDevice, profile_by_id
from repro.dsl.descriptions import build_descriptions


def test_config_for_all_tools():
    for tool in TOOLS:
        config = config_for(tool, seed=1, campaign_hours=2.0)
        assert config.name == tool
        assert config.campaign_hours == 2.0


def test_config_for_unknown():
    with pytest.raises(ValueError):
        config_for("aflplusplus")


def test_variant_flags():
    assert config_for("droidfuzz-d").ioctl_only
    assert not config_for("df-norel").enable_relations
    assert config_for("df-norel").enable_hal
    assert not config_for("df-nohcov").enable_hcov
    assert config_for("df-nohcov").enable_relations
    syz = config_for("syzkaller")
    assert not (syz.enable_hal or syz.enable_relations or syz.enable_hcov)


def test_make_engine_types():
    device = AndroidDevice(profile_by_id("C2"))
    assert isinstance(make_engine("syzkaller", device), SyzkallerEngine)
    device = AndroidDevice(profile_by_id("C2"))
    assert isinstance(make_engine("difuze", device), DifuzeEngine)


def test_choice_table_priorities():
    registry = build_descriptions(profile_by_id("A1"),
                                  vendor_interfaces=True)
    table = ChoiceTable(registry)
    import random
    rng = random.Random(0)
    picks = [table.next_call("openat$dri_card0", rng) for _ in range(300)]
    drm_related = sum(1 for p in picks
                      if registry.get(p).driver == "drm_gpu")
    # Same-driver and resource-consumer priorities dominate.
    assert drm_related > 150


def test_syzkaller_campaign_no_hal():
    device = AndroidDevice(profile_by_id("C2"))
    engine = make_engine("syzkaller", device, seed=1, campaign_hours=0.5)
    result = engine.run()
    assert result.tool == "syzkaller"
    assert result.interface_count == 0
    assert result.kernel_coverage > 0
    # No binder traffic at all: the HAL processes only did boot work.
    assert result.joint_coverage == result.kernel_coverage


def test_syzkaller_cannot_reach_vendor_typed_interfaces():
    device = AndroidDevice(profile_by_id("C2"))
    engine = make_engine("syzkaller", device, seed=1, campaign_hours=0.1)
    assert engine.registry.get("ioctl$NL_IOC_START_AP") is None
    assert engine.registry.get("ioctl$raw_nl80211") is not None


def test_difuze_extraction_counts():
    device_a1 = AndroidDevice(profile_by_id("A1"))
    interfaces = extract_interfaces(device_a1)
    # Static analysis recovers vendor interfaces too.
    names = {i.ioctl_name for i in interfaces}
    assert "ioctl$TCPC_IOC_PROBE" in names
    assert len(interfaces) >= 50


def test_difuze_campaign_generation_only():
    device = AndroidDevice(profile_by_id("C2"))
    engine = make_engine("difuze", device, seed=1, campaign_hours=0.5)
    result = engine.run()
    assert result.tool == "difuze"
    assert result.corpus_size == 0  # no corpus evolution
    assert result.kernel_coverage > 0
    assert result.interface_count > 10


def test_droidfuzz_d_blocks_non_ioctl():
    device = AndroidDevice(profile_by_id("C2"))
    engine = make_engine("droidfuzz-d", device, seed=1, campaign_hours=0.3)
    result = engine.run()
    assert result.kernel_coverage > 0
    # The kernel-level filter is installed for the executors.
    filters = device.kernel.syscall_filters
    assert any(f == frozenset({"openat", "close", "ioctl"})
               for f in filters.values())


def test_tool_comparison_shape_small():
    """Even at small scale, DroidFuzz should not lose to Difuze.

    The budget must amortize DroidFuzz's probing pass (which charges
    the same virtual clock a real pre-testing pass would).
    """
    covs = {}
    for tool in ("droidfuzz", "difuze"):
        device = AndroidDevice(profile_by_id("C2"))
        engine = make_engine(tool, device, seed=3, campaign_hours=8.0)
        covs[tool] = engine.run().kernel_coverage
    assert covs["droidfuzz"] > covs["difuze"]
