"""Campaign-level integration tests across the tool matrix."""

import pytest

from repro.baselines import TOOLS, make_engine
from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.device import AndroidDevice, profile_by_id


@pytest.mark.parametrize("tool", TOOLS)
def test_every_tool_completes_a_short_campaign(tool):
    device = AndroidDevice(profile_by_id("E"))
    engine = make_engine(tool, device, seed=2, campaign_hours=1.0)
    result = engine.run()
    assert result.tool == tool
    assert result.kernel_coverage > 0
    assert result.executions > 20
    assert result.timeline[-1][0] == pytest.approx(3600.0)


def test_device_survives_repeated_crash_reboot_cycles():
    device = AndroidDevice(profile_by_id("A1"))
    engine = FuzzingEngine(device, FuzzerConfig(seed=0, campaign_hours=4.0))
    result = engine.run()
    # A1 carries a HAL crash that recurs; reboots must not wedge the run.
    assert device.healthy
    assert result.executions > 500


def test_hang_bug_triggers_watchdog_reboot():
    from repro.core.exec.broker import ExecutionBroker
    from repro.dsl.descriptions import build_descriptions
    from repro.dsl.model import HalCall, Program, ResourceRef

    device = AndroidDevice(profile_by_id("A2"))
    broker = ExecutionBroker(device, build_descriptions(device.profile))
    program = Program([
        HalCall("vendor.media.codec", "createCodec", (0,)),
        HalCall("vendor.media.codec", "configure",
                (ResourceRef(0), 640, 480, 1000, b"\x01\x01a")),
        HalCall("vendor.media.codec", "start", (ResourceRef(0),)),
        HalCall("vendor.media.codec", "queueInputBuffer",
                (ResourceRef(0), b"")),
        HalCall("vendor.media.codec", "drainOutput", (ResourceRef(0),)),
    ])
    outcome = broker.execute(program)
    assert outcome.needs_reboot
    assert not device.healthy
    device.reboot()
    broker.on_reboot()
    assert device.healthy
    # Device is usable again after the watchdog reboot.
    again = broker.execute(Program([
        HalCall("vendor.media.codec", "createCodec", (0,))]))
    assert again.statuses[0].ret == 0


def test_corpus_programs_survive_wire_roundtrip():
    device = AndroidDevice(profile_by_id("C2"))
    engine = FuzzingEngine(device, FuzzerConfig(seed=4, campaign_hours=1.0))
    engine.run()
    from repro.core.corpus import Corpus
    dumped = engine.corpus.dump()
    programs = Corpus.load(dumped)
    assert len(programs) == len(engine.corpus)
    for program in programs:
        program.validate()


def test_probe_crashes_count_as_findings():
    # A1's graphics HAL crashes during the probing trial itself; the
    # engine must book that as a (pre-testing) finding.
    device = AndroidDevice(profile_by_id("A1"))
    engine = FuzzingEngine(device, FuzzerConfig(seed=0,
                                                campaign_hours=0.1))
    assert "Native crash in Graphics HAL" in engine.bugs.titles()


def test_variants_share_bug_ground_truth():
    # DF-NoHCov keeps HAL access, so it can still find HAL bugs.
    device = AndroidDevice(profile_by_id("A1"))
    engine = make_engine("df-nohcov", device, seed=0, campaign_hours=2.0)
    result = engine.run()
    assert "Native crash in Graphics HAL" in result.bug_titles()
