"""End-to-end reproducers for all 12 Table II bugs.

Each test executes a minimal DSL program through the broker on the
vulnerable device and asserts the exact crash title the paper reports —
and, where meaningful, that the same program is clean on a device whose
firmware does not carry the bug.
"""

import pytest

from repro.core.exec.broker import ExecutionBroker
from repro.device import AndroidDevice, profile_by_id
from repro.dsl.descriptions import build_descriptions
from repro.dsl.model import (
    HalCall,
    Program,
    ResourceRef,
    StructValue,
    SyscallCall,
)


def broker_for(ident):
    device = AndroidDevice(profile_by_id(ident))
    registry = build_descriptions(device.profile, vendor_interfaces=True)
    return device, ExecutionBroker(device, registry)


def titles_of(outcome):
    return {c["title"] for c in outcome.crashes}


def usb_contract_calls():
    return [
        HalCall("vendor.usb", "enablePort", ()),
        HalCall("vendor.usb", "connectPartner", (0,)),
        HalCall("vendor.usb", "negotiate", (9000, 2000)),
    ]


def test_bug1_tcpc_reprobe():
    _device, broker = broker_for("A1")
    program = Program(usb_contract_calls()
                      + [HalCall("vendor.usb", "resetPort", ())])
    assert "WARNING in rt1711_i2c_probe" in titles_of(
        broker.execute(program))


def test_bug1_absent_on_a2():
    _device, broker = broker_for("A2")
    program = Program(usb_contract_calls()
                      + [HalCall("vendor.usb", "resetPort", ())])
    assert titles_of(broker.execute(program)) == set()


def test_bug2_graphics_present_crash():
    _device, broker = broker_for("A1")
    program = Program([
        HalCall("vendor.graphics.composer", "setPowerMode", (1,)),
        HalCall("vendor.graphics.composer", "createLayer", ()),
        HalCall("vendor.graphics.composer", "setLayerBuffer",
                (ResourceRef(1), 640, 480)),
        HalCall("vendor.graphics.composer", "presentDisplay", ()),
    ])
    outcome = broker.execute(program)
    assert "Native crash in Graphics HAL" in titles_of(outcome)
    assert outcome.statuses[3].hal_crash


def _flip_storm_program():
    calls = [
        HalCall("vendor.graphics.composer", "setPowerMode", (1,)),
        SyscallCall("openat$dri_card0", (2,)),
        SyscallCall("ioctl$DRM_IOC_MODE_CREATE_DUMB", (
            ResourceRef(1), StructValue(
                "ioctl$DRM_IOC_MODE_CREATE_DUMB",
                {"width": 64, "height": 64, "bpp": 32, "flags": 0}))),
        SyscallCall("ioctl$DRM_IOC_MODE_ADDFB", (
            ResourceRef(1), StructValue(
                "ioctl$DRM_IOC_MODE_ADDFB",
                {"width": 64, "height": 64, "pitch": 256, "bpp": 32,
                 "handle": ResourceRef(2)}))),
        SyscallCall("ioctl$DRM_IOC_MODE_SETCRTC", (
            ResourceRef(1), StructValue(
                "ioctl$DRM_IOC_MODE_SETCRTC",
                {"crtc_id": 41, "fb_id": ResourceRef(3), "x": 0,
                 "y": 0}))),
    ]
    for _ in range(10):
        calls.append(SyscallCall("ioctl$DRM_IOC_MODE_PAGE_FLIP", (
            ResourceRef(1), StructValue(
                "ioctl$DRM_IOC_MODE_PAGE_FLIP",
                {"crtc_id": 41, "fb_id": ResourceRef(3), "flags": 1}))))
    return Program(calls)


def test_bug3_flip_storm():
    """Cross-boundary: the HAL arms the vsync client, raw flips storm."""
    _device, broker = broker_for("A1")
    outcome = broker.execute(_flip_storm_program())
    assert "BUG: looking up invalid subclass: 9" in titles_of(outcome)


def test_bug3_needs_hal_vsync_arming():
    _device, broker = broker_for("A1")
    program = _flip_storm_program()
    program.calls.pop(0)  # no composer power-on → no vsync client
    fixed = program.copy()
    # Re-point refs after dropping the HAL call.
    fixed = Program([c for c in _flip_storm_program().calls[1:]])
    for call in fixed.calls:
        call.args = tuple(
            ResourceRef(a.index - 1, a.kind)
            if isinstance(a, ResourceRef) else a for a in call.args)
        for a in call.args:
            if isinstance(a, StructValue):
                a.values = {k: (ResourceRef(v.index - 1, v.kind)
                                if isinstance(v, ResourceRef) else v)
                            for k, v in a.values.items()}
    assert titles_of(broker.execute(fixed)) == set()


def test_bug4_role_swap():
    _device, broker = broker_for("A1")
    program = Program([
        HalCall("vendor.usb", "enablePort", ()),
        HalCall("vendor.usb", "connectPartner", (0,)),
        SyscallCall("openat$tcpc0", (2,)),
        SyscallCall("ioctl$TCPC_IOC_PD_START", (ResourceRef(2),)),
        HalCall("vendor.usb", "swapRole", (1,)),
    ])
    assert "WARNING in tcpc" in titles_of(broker.execute(program))


def test_bug5_codec_drain_hang():
    device, broker = broker_for("A2")
    program = Program([
        HalCall("vendor.media.codec", "createCodec", (0,)),
        HalCall("vendor.media.codec", "configure",
                (ResourceRef(0), 1280, 720, 1000000, b"\x01\x02ab")),
        HalCall("vendor.media.codec", "start", (ResourceRef(0),)),
        HalCall("vendor.media.codec", "queueInputBuffer",
                (ResourceRef(0), b"\xAA" * 16)),
        HalCall("vendor.media.codec", "queueInputBuffer",
                (ResourceRef(0), b"")),
        HalCall("vendor.media.codec", "drainOutput", (ResourceRef(0),)),
    ])
    outcome = broker.execute(program)
    assert "Infinite loop in mtk_vcodec_drain" in titles_of(outcome)
    assert outcome.needs_reboot


def test_bug5_absent_on_a1():
    _device, broker = broker_for("A1")
    program = Program([
        HalCall("vendor.media.codec", "createCodec", (0,)),
        HalCall("vendor.media.codec", "configure",
                (ResourceRef(0), 1280, 720, 1000000, b"\x01\x02ab")),
        HalCall("vendor.media.codec", "start", (ResourceRef(0),)),
        HalCall("vendor.media.codec", "queueInputBuffer",
                (ResourceRef(0), b"\xAA" * 16)),
        HalCall("vendor.media.codec", "queueInputBuffer",
                (ResourceRef(0), b"")),
        HalCall("vendor.media.codec", "drainOutput", (ResourceRef(0),)),
    ])
    assert titles_of(broker.execute(program)) == set()


def test_bug6_media_csd_overrun():
    _device, broker = broker_for("A2")
    program = Program([
        HalCall("vendor.media.codec", "createCodec", (0,)),
        HalCall("vendor.media.codec", "configure",
                (ResourceRef(0), 640, 480, 1000, b"\x02\x7Fab")),
    ])
    assert "Native crash in Media HAL" in titles_of(
        broker.execute(program))


def test_bug7_hci_codecs_before_features():
    _device, broker = broker_for("A2")
    program = Program([
        HalCall("vendor.bluetooth", "enable", ()),
        SyscallCall("openat$hci0", (2,)),
        SyscallCall("write$hci0", (ResourceRef(1), b"\x01\x03\x0c\x00")),
        SyscallCall("write$hci0", (ResourceRef(1), b"\x01\x0b\x10\x00")),
    ])
    assert ("KASAN: invalid-access in hci_read_supported_codecs"
            in titles_of(broker.execute(program)))


def test_bug8_l2cap_disconn_config():
    _device, broker = broker_for("B")
    program = Program([
        SyscallCall("socket$bt_l2cap", (5, 0)),
        SyscallCall("connect$bt_l2cap", (
            ResourceRef(0), StructValue("connect$bt_l2cap",
                                        {"psm": 1, "bdaddr": b"",
                                         "cid": 0}))),
    ])
    assert "WARNING in l2cap_send_disconn_req" in titles_of(
        broker.execute(program))


def test_bug9_camera_stale_stream():
    _device, broker = broker_for("C1")
    program = Program([
        HalCall("vendor.camera.provider", "openSession", (0,)),
        HalCall("vendor.camera.provider", "configureStreams",
                (2, 1280, 720)),
        HalCall("vendor.camera.provider", "configureStreams",
                (2, 640, 480)),
        HalCall("vendor.camera.provider", "processCaptureRequest",
                (ResourceRef(1),)),
    ])
    assert "Native crash in Camera HAL" in titles_of(
        broker.execute(program))


def test_bug10_rate_control():
    _device, broker = broker_for("C2")
    program = Program([
        HalCall("vendor.wifi", "start", ()),
        HalCall("vendor.wifi", "startSoftAp", ("ap", 6)),
        HalCall("vendor.wifi", "registerClient",
                (b"\x02\x00\x00\x00\x00\x01", 0)),
    ])
    assert "WARNING in rate_control_rate_init" in titles_of(
        broker.execute(program))


def test_bug11_bt_accept_unlink():
    _device, broker = broker_for("D")
    program = Program([
        SyscallCall("socket$bt_l2cap", (5, 0)),
        SyscallCall("bind$bt_l2cap", (
            ResourceRef(0), StructValue("bind$bt_l2cap",
                                        {"psm": 0x81, "bdaddr": b"",
                                         "cid": 0}))),
        SyscallCall("listen$bt_l2cap", (ResourceRef(0), 2)),
        SyscallCall("socket$bt_l2cap", (5, 0)),
        SyscallCall("connect$bt_l2cap", (
            ResourceRef(3), StructValue("connect$bt_l2cap",
                                        {"psm": ResourceRef(1),
                                         "bdaddr": b"", "cid": 0}))),
    ])
    # The parent (lower fd) closes first during teardown: UAF.
    assert ("KASAN: slab-use-after-free Read in bt_accept_unlink"
            in titles_of(broker.execute(program)))


def test_bug12_v4l_querycap():
    _device, broker = broker_for("E")
    program = Program([
        SyscallCall("openat$video0", (2,)),
        SyscallCall("ioctl$VIDIOC_S_INPUT", (ResourceRef(0), 2)),
        SyscallCall("ioctl$VIDIOC_QUERYCAP", (ResourceRef(0),)),
    ])
    assert "WARNING in v4l_querycap" in titles_of(
        broker.execute(program))


def test_bug12_absent_on_c1():
    _device, broker = broker_for("C1")
    program = Program([
        SyscallCall("openat$video0", (2,)),
        SyscallCall("ioctl$VIDIOC_S_INPUT", (ResourceRef(0), 2)),
        SyscallCall("ioctl$VIDIOC_QUERYCAP", (ResourceRef(0),)),
    ])
    assert titles_of(broker.execute(program)) == set()
