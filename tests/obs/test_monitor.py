"""Tests for the campaign monitor and its rollups."""

import pytest

from repro.obs.monitor import CampaignMonitor
from repro.obs.sinks import MemorySink, NullSink


def test_sample_computes_rates_against_previous_snapshot():
    sink = MemorySink()
    monitor = CampaignMonitor(sink, interval=100.0)
    monitor.start(0.0)
    monitor.sample(0.0, executions=0, kernel_coverage=0, corpus_size=0,
                   reboots=0, bugs=0)
    snapshot = monitor.sample(
        100.0, executions=50, kernel_coverage=20, corpus_size=5,
        reboots=1, bugs=2, per_driver={"drm_gpu": 12, "ion": 8})
    assert snapshot.execs_per_sec == pytest.approx(0.5)
    assert snapshot.coverage_growth_per_hour == pytest.approx(720.0)
    assert snapshot.per_driver_delta == {"drm_gpu": 12, "ion": 8}
    later = monitor.sample(
        200.0, executions=50, kernel_coverage=20, corpus_size=5,
        reboots=1, bugs=2, per_driver={"drm_gpu": 12, "ion": 8})
    assert later.execs_per_sec == 0.0
    assert later.per_driver_delta == {}
    assert len(sink.by_type("snapshot")) == 3


def test_due_respects_interval_after_clock_jump():
    monitor = CampaignMonitor(MemorySink(), interval=100.0)
    monitor.start(0.0)
    assert monitor.due(0.0)
    monitor.sample(0.0, executions=0, kernel_coverage=0, corpus_size=0,
                   reboots=0, bugs=0)
    assert not monitor.due(50.0)
    # A reboot-style clock jump across several intervals yields ONE
    # due sample, then the schedule re-anchors past the jump.
    assert monitor.due(350.0)
    monitor.sample(350.0, executions=1, kernel_coverage=1, corpus_size=0,
                   reboots=1, bugs=0)
    assert not monitor.due(380.0)
    assert monitor.due(400.0)


def test_disabled_monitor_never_samples():
    monitor = CampaignMonitor(NullSink())
    monitor.start(0.0)
    assert not monitor.due(1e9)
    assert monitor.sample(10.0, executions=1, kernel_coverage=1,
                          corpus_size=1, reboots=0, bugs=0) is None
    assert monitor.rollup() == {"snapshots": 0}


def test_rollup_and_fleet_rollup():
    monitor = CampaignMonitor(MemorySink(), interval=10.0)
    monitor.start(0.0)
    monitor.sample(0.0, executions=0, kernel_coverage=0, corpus_size=0,
                   reboots=0, bugs=0)
    monitor.sample(10.0, executions=40, kernel_coverage=30, corpus_size=4,
                   reboots=0, bugs=1)
    monitor.sample(20.0, executions=60, kernel_coverage=35, corpus_size=6,
                   reboots=1, bugs=1)
    rollup = monitor.rollup()
    assert rollup["executions"] == 60
    assert rollup["mean_execs_per_sec"] == pytest.approx(3.0)
    assert rollup["peak_execs_per_sec"] == pytest.approx(4.0)
    assert rollup["bugs"] == 1

    fleet = CampaignMonitor.fleet_rollup({
        "A#0": rollup,
        "B#0": {"snapshots": 2, "executions": 40, "kernel_coverage": 10,
                "bugs": 2, "reboots": 0, "mean_execs_per_sec": 1.0},
        "C#0": {"snapshots": 0},
    })
    assert fleet["campaigns"] == 3
    assert fleet["executions"] == 100
    assert fleet["bugs"] == 3
    assert fleet["mean_execs_per_sec"] == pytest.approx(2.0)
