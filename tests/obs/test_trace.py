"""Tests for the structured trace (spans, events, sinks)."""

import json

from repro.obs.sinks import JsonlSink, MemorySink, NullSink, TeeSink
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_span_records_virtual_start_and_duration():
    sink = MemorySink()
    clock = FakeClock()
    tracer = Tracer(sink, clock)
    with tracer.span("execute", calls=3):
        clock.now = 4.5
    [record] = sink.records
    assert record == {"type": "span", "phase": "execute", "t": 0.0,
                      "dur": 4.5, "depth": 0, "calls": 3}


def test_nested_spans_record_depth():
    sink = MemorySink()
    clock = FakeClock()
    tracer = Tracer(sink, clock)
    with tracer.span("minimize"):
        with tracer.span("execute"):
            clock.now = 2.0
    execute, minimize = sink.records
    assert execute["phase"] == "execute" and execute["depth"] == 1
    assert minimize["phase"] == "minimize" and minimize["depth"] == 0
    assert tracer.depth == 0


def test_span_note_attaches_fields():
    sink = MemorySink()
    tracer = Tracer(sink, FakeClock())
    with tracer.span("minimize") as span:
        span.note(before=8, after=2)
    assert sink.records[0]["before"] == 8
    assert sink.records[0]["after"] == 2


def test_event_records_clock_and_fields():
    sink = MemorySink()
    clock = FakeClock()
    clock.now = 7.0
    tracer = Tracer(sink, clock)
    tracer.event("crash", title="BUG: x")
    assert sink.records == [
        {"type": "event", "kind": "crash", "t": 7.0, "title": "BUG: x"}]


def test_disabled_tracer_emits_nothing_and_reuses_noop_span():
    tracer = Tracer(NullSink())
    assert not tracer.enabled
    span_a = tracer.span("execute")
    span_b = tracer.span("reboot", extra=1)
    assert span_a is span_b
    with span_a as span:
        span.note(x=1)
    tracer.event("crash", title="t")
    assert tracer.depth == 0


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "sub" / "trace.jsonl"
    sink = JsonlSink(path)
    sink.emit({"type": "event", "kind": "a"})
    sink.emit({"type": "event", "kind": "b"})
    sink.close()
    records = [json.loads(line) for line in
               path.read_text().splitlines()]
    assert [r["kind"] for r in records] == ["a", "b"]
    # close() is idempotent and reopening appends.
    sink.close()
    sink.emit({"type": "event", "kind": "c"})
    sink.close()
    assert len(path.read_text().splitlines()) == 3


def test_tee_sink_fans_out_and_drops_disabled():
    first, second = MemorySink(), MemorySink()
    tee = TeeSink(first, NullSink(), second)
    tee.emit({"x": 1})
    tee.close()
    assert first.records == [{"x": 1}]
    assert second.records == [{"x": 1}]
    assert len(tee.sinks) == 2
