"""Tests for the metrics registry."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def test_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("engine.execs")
    counter.inc()
    counter.inc(4)
    assert registry.counter("engine.execs").value == 5
    assert registry.counter("engine.execs") is counter


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("corpus.size")
    gauge.set(10)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value == 11


def test_histogram_buckets_and_stats():
    hist = Histogram("vtime", buckets=(1.0, 5.0, 10.0))
    for value in (0.5, 0.9, 3.0, 7.0, 50.0):
        hist.observe(value)
    assert hist.counts == [2, 1, 1, 1]
    assert hist.count == 5
    assert hist.total == pytest.approx(61.4)
    assert hist.mean() == pytest.approx(61.4 / 5)
    assert hist.minimum == 0.5
    assert hist.maximum == 50.0


def test_histogram_quantile_approximation():
    hist = Histogram("q", buckets=(1.0, 10.0, 100.0))
    for _ in range(90):
        hist.observe(0.5)
    for _ in range(10):
        hist.observe(50.0)
    assert hist.quantile(0.5) == 1.0
    assert hist.quantile(0.95) == 100.0
    assert Histogram("empty").quantile(0.5) == 0.0


def test_registry_rejects_kind_clash():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_prefix_and_snapshot_roundtrip():
    registry = MetricsRegistry()
    registry.counter("driver.vtime.ion").inc(3)
    registry.counter("driver.vtime.drm").inc(7)
    registry.gauge("other").set(1)
    assert set(registry.with_prefix("driver.vtime")) == {
        "driver.vtime.ion", "driver.vtime.drm"}
    snapshot = registry.snapshot()
    assert snapshot["driver.vtime.drm"] == {"type": "counter", "value": 7.0}
    assert snapshot["other"]["type"] == "gauge"
    hist = registry.histogram("h", buckets=(1.0,))
    hist.observe(0.5)
    dumped = registry.snapshot()["h"]
    assert dumped["counts"] == [1, 0]
    assert dumped["min"] == 0.5
