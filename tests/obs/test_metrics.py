"""Tests for the metrics registry."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def test_counter_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("engine.execs")
    counter.inc()
    counter.inc(4)
    assert registry.counter("engine.execs").value == 5
    assert registry.counter("engine.execs") is counter


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("corpus.size")
    gauge.set(10)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value == 11


def test_histogram_buckets_and_stats():
    hist = Histogram("vtime", buckets=(1.0, 5.0, 10.0))
    for value in (0.5, 0.9, 3.0, 7.0, 50.0):
        hist.observe(value)
    assert hist.counts == [2, 1, 1, 1]
    assert hist.count == 5
    assert hist.total == pytest.approx(61.4)
    assert hist.mean() == pytest.approx(61.4 / 5)
    assert hist.minimum == 0.5
    assert hist.maximum == 50.0


def test_histogram_quantile_interpolates_within_bucket():
    hist = Histogram("q", buckets=(1.0, 10.0, 100.0))
    for _ in range(90):
        hist.observe(0.5)
    for _ in range(10):
        hist.observe(50.0)
    # Rank 50 sits 50/90ths into the (min=0.5, 1.0] bucket.
    assert hist.quantile(0.5) == pytest.approx(0.5 + 0.5 * 50 / 90)
    # Rank 95 sits halfway into the (10, 100] bucket, clamped to max=50.
    assert hist.quantile(0.95) == pytest.approx(30.0)
    # Quantiles never leave the observed range.
    assert hist.quantile(0.0) == 0.5
    assert hist.quantile(1.0) <= 50.0
    assert Histogram("empty").quantile(0.5) == 0.0


def test_histogram_quantile_median_of_uniform_data_unbiased():
    hist = Histogram("u", buckets=(25.0, 50.0, 75.0, 100.0))
    for value in range(1, 101):  # uniform 1..100
        hist.observe(float(value))
    # The old bucket-bound rule returned 50 exactly but 75 for p60;
    # interpolation stays within a bucket's width of the true value.
    assert abs(hist.quantile(0.5) - 50.0) <= 1.0
    assert abs(hist.quantile(0.6) - 60.0) <= 1.0
    assert abs(hist.quantile(0.9) - 90.0) <= 1.0


def test_histogram_quantile_implicit_inf_bucket():
    # Every observation lands above the last finite bound.
    hist = Histogram("inf", buckets=(1.0,))
    for value in (10.0, 15.0, 20.0):
        hist.observe(value)
    assert hist.counts == [0, 3]
    # Interpolates between the bucket's clamped edges (min=10, max=20).
    assert 10.0 <= hist.quantile(0.5) <= 20.0
    assert hist.quantile(1.0) == 20.0


def test_histogram_quantile_single_value():
    hist = Histogram("one", buckets=(1.0, 10.0, 100.0))
    for _ in range(5):
        hist.observe(50.0)
    assert hist.quantile(0.5) == 50.0
    assert hist.quantile(0.99) == 50.0


def test_bucket_quantile_empty_and_clamped():
    from repro.obs.metrics import bucket_quantile

    assert bucket_quantile((1.0,), [0, 0], 0.5, 0.0, 0.0) == 0.0
    # q outside [0, 1] is clamped.
    assert bucket_quantile((10.0,), [4, 0], -1.0, 2.0, 8.0) == 2.0
    assert bucket_quantile((10.0,), [4, 0], 2.0, 2.0, 8.0) == 8.0


def test_histogram_summary_shape():
    hist = Histogram("s", buckets=(1.0, 10.0))
    assert hist.summary() == {}  # empty: no summary at all
    for value in (0.5, 2.0, 4.0, 8.0):
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 4
    assert summary["max"] == 8.0
    assert summary["mean"] == pytest.approx(14.5 / 4)
    assert summary["p50"] <= summary["p90"] <= summary["p99"] <= 8.0


def test_registry_rejects_kind_clash():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_prefix_and_snapshot_roundtrip():
    registry = MetricsRegistry()
    registry.counter("driver.vtime.ion").inc(3)
    registry.counter("driver.vtime.drm").inc(7)
    registry.gauge("other").set(1)
    assert set(registry.with_prefix("driver.vtime")) == {
        "driver.vtime.ion", "driver.vtime.drm"}
    snapshot = registry.snapshot()
    assert snapshot["driver.vtime.drm"] == {"type": "counter", "value": 7.0}
    assert snapshot["other"]["type"] == "gauge"
    hist = registry.histogram("h", buckets=(1.0,))
    hist.observe(0.5)
    dumped = registry.snapshot()["h"]
    assert dumped["counts"] == [1, 0]
    assert dumped["min"] == 0.5
