"""The live telemetry stream (``repro.obs.stream``, DESIGN §10).

The contract under test: watchers get the live feed (plus the sticky
header on attach), reconnecting resumes from the *next* record, and —
the cardinal rule — a slow or dead watcher drops frames (counted) but
can never slow or stall the campaign, whose recorded artifacts stay
byte-identical with streaming on or off.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.config import FuzzerConfig
from repro.core.daemon import Daemon
from repro.device.profiles import profile_by_id
from repro.obs.sinks import MemorySink
from repro.obs.stream import (
    ScopedStreamSink,
    StreamClient,
    StreamSink,
    parse_address,
)
from repro.obs.telemetry import SNAPSHOT_FILE, TRACE_FILE, Telemetry

pytestmark = pytest.mark.timeout(60)


@pytest.fixture
def sink():
    stream = StreamSink(port=0)
    yield stream
    stream.close()


def _connect(sink: StreamSink) -> StreamClient:
    return StreamClient(sink.address).connect()


def _drain(client: StreamClient, count: int,
           timeout: float = 10.0) -> list[dict]:
    records = []
    deadline = time.monotonic() + timeout
    for record in client.records(deadline=deadline):
        records.append(record)
        if len(records) >= count:
            break
    return records


def _wait_for_clients(sink: StreamSink, count: int,
                      timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while sink.client_count < count:
        assert time.monotonic() < deadline, "client never registered"
        time.sleep(0.01)


# ----------------------------------------------------------------------
# address parsing
# ----------------------------------------------------------------------

def test_parse_address_host_port():
    assert parse_address("10.0.0.5:7799") == ("10.0.0.5", 7799)


def test_parse_address_bare_port_defaults_to_loopback():
    assert parse_address("7799") == ("127.0.0.1", 7799)
    assert parse_address(":7799") == ("127.0.0.1", 7799)


@pytest.mark.parametrize("bad", ["", "host:", "host:x", "a:b:c",
                                 "1.2.3.4:99999"])
def test_parse_address_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_address(bad)


# ----------------------------------------------------------------------
# live feed basics
# ----------------------------------------------------------------------

def test_client_receives_hello_then_live_records(sink):
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    sink.emit({"type": "snapshot", "t": 10.0, "executions": 5})
    hello, snap = _drain(client, 2)
    assert hello["type"] == "meta" and hello["kind"] == "hello"
    assert snap["type"] == "snapshot" and snap["executions"] == 5
    client.close()


def test_every_record_carries_both_clocks(sink):
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    sink.emit({"type": "snapshot", "t": 1800.0})
    _, snap = _drain(client, 2)
    assert snap["t"] == 1800.0          # virtual clock, untouched
    assert abs(snap["wall"] - time.time()) < 60  # wall clock, stamped
    client.close()


def test_heartbeat_clock_mirrored_into_t(sink):
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    sink.emit({"type": "fleet", "kind": "hb", "key": "A1#0",
               "clock": 3600.0})
    _, event = _drain(client, 2)
    assert event["t"] == 3600.0
    client.close()


def test_emit_does_not_mutate_the_caller_record(sink):
    record = {"type": "snapshot", "t": 5.0}
    sink.emit(record)
    assert record == {"type": "snapshot", "t": 5.0}  # no wall stamp


def test_sticky_header_replayed_to_late_joiners(sink):
    sink.emit({"type": "campaign", "device": "E", "t": 0.0}, sticky=True)
    sink.emit({"type": "snapshot", "t": 1800.0})  # not sticky: not replayed
    client = _connect(sink)
    hello, campaign = _drain(client, 2)
    assert campaign["type"] == "campaign" and campaign["device"] == "E"
    # Nothing else is waiting: history is NOT replayed.
    assert _drain(client, 1, timeout=0.5) == []
    client.close()


def test_reconnect_resumes_from_next_record_not_history(sink):
    first = _connect(sink)
    _wait_for_clients(sink, 1)
    sink.emit({"type": "snapshot", "t": 100.0, "n": 1})
    assert len(_drain(first, 2)) == 2
    first.close()
    sink.emit({"type": "snapshot", "t": 200.0, "n": 2})  # while detached
    second = _connect(sink)
    _wait_for_clients(sink, 1)
    sink.emit({"type": "snapshot", "t": 300.0, "n": 3})
    records = _drain(second, 2)
    kinds = [(r["type"], r.get("n")) for r in records]
    assert kinds == [("meta", None), ("snapshot", 3)]  # t=200 was missed
    second.close()


def test_two_clients_both_receive(sink):
    a, b = _connect(sink), _connect(sink)
    _wait_for_clients(sink, 2)
    sink.emit({"type": "snapshot", "t": 1.0})
    assert _drain(a, 2)[1]["t"] == 1.0
    assert _drain(b, 2)[1]["t"] == 1.0
    a.close()
    b.close()


def test_scoped_view_stamps_source_and_shields_close(sink):
    scoped = sink.scoped("A1#0")
    assert isinstance(scoped, ScopedStreamSink)
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    scoped.emit({"type": "snapshot", "t": 2.0})
    _, snap = _drain(client, 2)
    assert snap["source"] == "A1#0"
    scoped.close()  # a no-op: the server must survive
    scoped.emit({"type": "snapshot", "t": 3.0})
    assert _drain(client, 1)[0]["t"] == 3.0
    client.close()


def test_clean_server_close_ends_the_record_iterator(sink):
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    sink.emit({"type": "snapshot", "t": 1.0})
    records = []
    closer = threading.Timer(0.3, sink.close)
    closer.start()
    for record in client.records(deadline=time.monotonic() + 10.0):
        records.append(record)
    closer.join()
    assert len(records) == 2  # hello + snapshot, then clean EOF
    client.close()


# ----------------------------------------------------------------------
# the cardinal rule: slow watchers drop, never stall
# ----------------------------------------------------------------------

def test_stalled_client_drops_frames_and_never_blocks_emit():
    sink = StreamSink(port=0, queue_records=8, send_buffer=2048)
    try:
        # A watcher that connects and then never reads: the OS buffers
        # fill, the sender thread wedges, the bounded queue overflows.
        stalled = socket.create_connection(sink.address)
        stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
        _wait_for_clients(sink, 1)
        payload = "x" * 2048
        started = time.perf_counter()
        for index in range(600):
            sink.emit({"type": "snapshot", "t": float(index),
                       "pad": payload})
        elapsed = time.perf_counter() - started
        assert sink.dropped > 0
        assert sink.metrics.counter("obs.stream.dropped").value > 0
        # 600 emits against a dead consumer must stay effectively
        # instant — queue-bound, not socket-bound.
        assert elapsed < 5.0
        stalled.close()
    finally:
        sink.close()


def test_disconnecting_client_does_not_stall_emit(sink):
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    client.close()  # goes away without a word
    for index in range(50):
        sink.emit({"type": "snapshot", "t": float(index)})
    # The dead client is eventually reaped; new emits keep working.
    deadline = time.monotonic() + 10.0
    while sink.client_count > 0:
        assert time.monotonic() < deadline, "dead client never reaped"
        time.sleep(0.01)
    healthy = _connect(sink)
    _wait_for_clients(sink, 1)
    sink.emit({"type": "snapshot", "t": 999.0})
    records = _drain(healthy, 2)
    assert records[-1]["t"] == 999.0
    healthy.close()


def test_drop_counters_surface_in_stats():
    sink = StreamSink(port=0, queue_records=1, send_buffer=2048)
    try:
        stalled = socket.create_connection(sink.address)
        stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1024)
        _wait_for_clients(sink, 1)
        for index in range(400):
            sink.emit({"type": "snapshot", "t": float(index),
                       "pad": "y" * 4096})
        stats = sink.stats()
        assert stats["dropped"] > 0
        assert stats["dropped"] + stats["delivered"] > 0
        stalled.close()
    finally:
        sink.close()


# ----------------------------------------------------------------------
# campaign integration: byte-identical artifacts, streamed snapshots
# ----------------------------------------------------------------------

def _run_campaign(fast_costs, telemetry_dir, stream):
    daemon = Daemon(config=FuzzerConfig(seed=3, campaign_hours=0.5),
                    costs=fast_costs, telemetry_dir=telemetry_dir,
                    stream=stream)
    return daemon.run_device(profile_by_id("E"))


def test_streaming_keeps_telemetry_byte_identical(fast_costs, tmp_path):
    plain_dir = tmp_path / "plain"
    streamed_dir = tmp_path / "streamed"
    plain = _run_campaign(fast_costs, plain_dir, stream=None)
    sink = StreamSink(port=0)
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    try:
        streamed = _run_campaign(fast_costs, streamed_dir, stream=sink)
    finally:
        records = _drain(client, 3)
        client.close()
        sink.close()
    assert plain == streamed  # identical results, field for field
    for name in (TRACE_FILE, SNAPSHOT_FILE):
        assert (streamed_dir / "E#3" / name).read_bytes() \
            == (plain_dir / "E#3" / name).read_bytes(), name
    # ... and the watcher really got the feed (hello + sticky
    # campaign announcement + snapshots).
    types = [r["type"] for r in records]
    assert "campaign" in types


def test_stream_only_telemetry_needs_no_directory(fast_costs):
    sink = StreamSink(port=0)
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    try:
        result = _run_campaign(fast_costs, None, stream=sink)
        records = _drain(client, 4)
    finally:
        client.close()
        sink.close()
    assert result.executions > 0
    types = {r["type"] for r in records}
    assert "snapshot" in types
    snapshots = [r for r in records if r["type"] == "snapshot"]
    assert all(r["source"] == "E#3" for r in snapshots)


def test_bug_arrivals_stream_live(fast_costs):
    sink = StreamSink(port=0)
    client = _connect(sink)
    _wait_for_clients(sink, 1)
    try:
        result = _run_campaign(fast_costs, None, stream=sink)
        wanted = 3 + len(result.bugs)
        records = _drain(client, wanted + 50, timeout=5.0)
    finally:
        client.close()
        sink.close()
    bugs = [r for r in records if r["type"] == "bug"]
    assert len(bugs) == len(result.bugs)
    assert {b["title"] for b in bugs} == result.bug_titles()


def test_telemetry_stream_record_without_stream_is_noop():
    telemetry = Telemetry.disabled()
    telemetry.stream_record({"type": "bug", "t": 0.0})  # must not raise
    assert telemetry.stream is None


def test_telemetry_tees_snapshots_into_plain_sinks_too(tmp_path):
    # MemorySink stands in for the stream: Telemetry must tee monitor
    # snapshots into it alongside the JSONL file.
    memory = MemorySink()
    telemetry = Telemetry(directory=tmp_path / "t", stream=memory)
    telemetry.monitor.start(0.0)
    telemetry.monitor.sample(1800.0, executions=10, kernel_coverage=5,
                             corpus_size=2, reboots=0, bugs=0)
    telemetry.close()
    assert len(memory.by_type("snapshot")) == 1
    assert (tmp_path / "t" / SNAPSHOT_FILE).exists()
