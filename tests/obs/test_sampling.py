"""Deterministic span sampling: policy, tracer bookkeeping, campaigns.

The perf-observatory guarantee: with ``--trace-sample`` the recorded
trace is a *deterministic subset* of the unsampled trace (same seed +
same campaign ⇒ byte-identical sampled JSONL), while the metrics
registry keeps exact per-phase span counts so rate accounting never
degrades.
"""

import json

import pytest

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.device.device import AndroidDevice
from repro.device.profiles import profile_by_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import MemorySink
from repro.obs.telemetry import Telemetry
from repro.obs.trace import SamplingPolicy, Tracer, parse_sample_spec


# ----------------------------------------------------------------------
# parse_sample_spec


def test_parse_sample_spec_basic_and_aliases():
    assert parse_sample_spec("") == {}
    assert parse_sample_spec("execute=0.5") == {"execute": 0.5}
    assert parse_sample_spec("exec=0.01,min=0.2") == {
        "execute": 0.01, "minimize": 0.2}
    assert parse_sample_spec(" mutate = 1 ,, ") == {"mutate": 1.0}


@pytest.mark.parametrize("spec", ["exec", "=0.5", "exec=x", "exec=1.5",
                                  "exec=-0.1"])
def test_parse_sample_spec_rejects_malformed(spec):
    with pytest.raises(ValueError):
        parse_sample_spec(spec)


# ----------------------------------------------------------------------
# SamplingPolicy


def test_sampling_policy_edge_rates():
    policy = SamplingPolicy({"never": 0.0, "always": 1.0}, seed=1)
    assert all(policy.keep("always") for _ in range(50))
    assert not any(policy.keep("never") for _ in range(50))
    assert all(policy.keep("unconfigured") for _ in range(50))


def test_sampling_policy_deterministic_across_instances():
    runs = []
    for _ in range(2):
        policy = SamplingPolicy({"execute": 0.3}, seed=7)
        runs.append([policy.keep("execute") for _ in range(500)])
    assert runs[0] == runs[1]
    kept = sum(runs[0])
    assert 0.2 * 500 < kept < 0.4 * 500  # roughly the configured rate
    # A different seed gives a different (but still deterministic) set.
    other = SamplingPolicy({"execute": 0.3}, seed=8)
    assert [other.keep("execute") for _ in range(500)] != runs[0]


def test_sampling_policy_streams_are_independent_per_name():
    policy = SamplingPolicy({"a": 0.5, "b": 0.5}, seed=3)
    solo = SamplingPolicy({"b": 0.5}, seed=3)
    # Drawing from "a" must not advance "b"'s stream.
    interleaved = []
    for _ in range(100):
        policy.keep("a")
        interleaved.append(policy.keep("b"))
    assert interleaved == [solo.keep("b") for _ in range(100)]


# ----------------------------------------------------------------------
# Tracer integration


def _tracer(rates, seed=0):
    sink = MemorySink()
    metrics = MetricsRegistry()
    tracer = Tracer(sink, sampling=SamplingPolicy(rates, seed=seed),
                    metrics=metrics)
    return tracer, sink, metrics


def test_tracer_counts_exactly_while_dropping_records():
    tracer, sink, metrics = _tracer({"execute": 0.25}, seed=5)
    for _ in range(200):
        with tracer.span("execute"):
            pass
    recorded = [r for r in sink.records if r["phase"] == "execute"]
    total = metrics.counter("trace.spans.execute").value
    dropped = metrics.counter("trace.spans_dropped.execute").value
    assert total == 200  # exact count survives sampling
    assert dropped == 200 - len(recorded)
    assert 0 < len(recorded) < 200


def test_tracer_dropped_span_preserves_depth():
    tracer, sink, _ = _tracer({"execute": 0.0})
    with tracer.span("minimize"):
        with tracer.span("execute"):  # sampled out, still nests
            with tracer.span("triage"):
                pass
    by_phase = {r["phase"]: r for r in sink.records}
    assert "execute" not in by_phase
    assert by_phase["minimize"]["depth"] == 0
    assert by_phase["triage"]["depth"] == 2  # as if execute was recorded
    assert tracer.depth == 0


def test_tracer_event_sampling_counts_and_drops():
    tracer, sink, metrics = _tracer({"new-coverage": 0.0})
    for _ in range(10):
        tracer.event("new-coverage", fresh=1)
    tracer.event("crash")
    assert metrics.counter("trace.events.new-coverage").value == 10
    assert metrics.counter("trace.events_dropped.new-coverage").value == 10
    kinds = [r["kind"] for r in sink.records]
    assert kinds == ["crash"]


# ----------------------------------------------------------------------
# Campaign-level determinism


def _campaign_records(sampling=None, seed=3, hours=0.5):
    telemetry = Telemetry(trace_sink=MemorySink(),
                          snapshot_sink=MemorySink(),
                          interval=600.0, sampling=sampling)
    device = AndroidDevice(profile_by_id("E"))
    engine = FuzzingEngine(
        device, FuzzerConfig(seed=seed, campaign_hours=hours),
        telemetry=telemetry)
    result = engine.run()
    return telemetry, result


def _jsonl(records):
    return "\n".join(json.dumps(r, sort_keys=True) for r in records)


def test_sampled_campaign_trace_is_byte_identical_across_runs():
    rates = {"execute": 0.05}
    lines = []
    for _ in range(2):
        telemetry, result = _campaign_records(
            SamplingPolicy(rates, seed=3))
        lines.append(_jsonl(telemetry.tracer.sink.records))
    assert lines[0] == lines[1]


def test_sampled_trace_is_subset_with_exact_metric_counts():
    full, result_full = _campaign_records(sampling=None)
    sampled, result_sampled = _campaign_records(
        SamplingPolicy({"execute": 0.05}, seed=3))
    # Sampling must not perturb the campaign itself.
    assert result_sampled == result_full
    full_records = [json.dumps(r, sort_keys=True)
                    for r in full.tracer.sink.records]
    sampled_records = [json.dumps(r, sort_keys=True)
                       for r in sampled.tracer.sink.records]
    # Ordered subset: every sampled record appears in the full trace in
    # the same relative order (depth bookkeeping included).
    iterator = iter(full_records)
    assert all(record in iterator for record in sampled_records)
    kept_execs = sum(1 for r in sampled.tracer.sink.records
                     if r["type"] == "span" and r["phase"] == "execute")
    assert kept_execs < result_full.executions
    # Metrics keep the exact execute count despite the dropped records.
    total = sampled.metrics.counter("trace.spans.execute").value
    dropped = sampled.metrics.counter(
        "trace.spans_dropped.execute").value
    assert total == result_full.executions
    assert total - dropped == kept_execs


def test_sampling_bounds_trace_size():
    full, result = _campaign_records(sampling=None)
    exec_only, _ = _campaign_records(
        SamplingPolicy({"execute": 0.01}, seed=3))
    hot, _ = _campaign_records(SamplingPolicy(
        {"execute": 0.01, "generate": 0.01, "mutate": 0.01}, seed=3))
    full_bytes = len(_jsonl(full.tracer.sink.records))
    exec_bytes = len(_jsonl(exec_only.tracer.sink.records))
    hot_bytes = len(_jsonl(hot.tracer.sink.records))
    # Execute is the single hottest span; 1% sampling nearly removes it.
    kept = sum(1 for r in exec_only.tracer.sink.records
               if r["type"] == "span" and r["phase"] == "execute")
    assert kept <= max(2, 0.05 * result.executions)
    assert exec_bytes < full_bytes / 2
    # Sampling every per-program phase collapses the trace outright.
    assert hot_bytes < full_bytes / 5
