"""The formal Sink protocol and the ``open_sink`` spec factory."""

from __future__ import annotations

import json

import pytest

from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    StdoutSink,
    TeeSink,
    open_sink,
)


# ----------------------------------------------------------------------
# protocol conformance
# ----------------------------------------------------------------------

@pytest.mark.parametrize("factory", [
    NullSink, MemorySink, StdoutSink,
    lambda: TeeSink(MemorySink()),
])
def test_every_sink_conforms_to_the_protocol(factory):
    sink = factory()
    assert isinstance(sink, Sink)
    sink.emit({"type": "x", "t": 0.0})
    sink.flush()
    sink.close()


def test_jsonl_sink_conforms(tmp_path):
    sink = JsonlSink(tmp_path / "out.jsonl")
    assert isinstance(sink, Sink)
    sink.emit({"a": 1})
    sink.flush()
    sink.close()
    assert json.loads((tmp_path / "out.jsonl").read_text()) == {"a": 1}


def test_sinks_are_context_managers(tmp_path):
    with JsonlSink(tmp_path / "cm.jsonl") as sink:
        sink.emit({"b": 2})
    # Leaving the with-block closed the file; content is durable.
    assert (tmp_path / "cm.jsonl").read_text().strip() == '{"b": 2}'


def test_null_sink_is_disabled_others_enabled():
    assert NullSink().enabled is False
    assert MemorySink().enabled is True


def test_tee_fans_out_and_skips_disabled_members():
    left, right = MemorySink(), MemorySink()
    tee = TeeSink(left, NullSink(), right)
    assert len(tee.sinks) == 2  # the NullSink was filtered out
    tee.emit({"type": "snapshot"})
    assert left.records == right.records == [{"type": "snapshot"}]


def test_tee_flush_reaches_members(tmp_path):
    jsonl = JsonlSink(tmp_path / "tee.jsonl")
    tee = TeeSink(jsonl)
    tee.emit({"c": 3})
    tee.flush()
    # flushed but not closed: bytes are already on disk
    assert (tmp_path / "tee.jsonl").read_text().strip() == '{"c": 3}'
    tee.close()


# ----------------------------------------------------------------------
# the spec factory
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec", [None, "", "null"])
def test_open_sink_null_specs(spec):
    assert isinstance(open_sink(spec), NullSink)


def test_open_sink_memory_and_stdout():
    assert isinstance(open_sink("memory"), MemorySink)
    assert isinstance(open_sink("stdout"), StdoutSink)


def test_open_sink_jsonl(tmp_path):
    sink = open_sink(f"jsonl:{tmp_path / 'spec.jsonl'}")
    assert isinstance(sink, JsonlSink)
    sink.emit({"d": 4})
    sink.close()
    assert (tmp_path / "spec.jsonl").exists()


def test_open_sink_stream_binds_a_server():
    sink = open_sink("stream:127.0.0.1:0")
    try:
        host, port = sink.address
        assert host == "127.0.0.1" and port > 0
    finally:
        sink.close()


def test_open_sink_tee_composes_sub_specs(tmp_path):
    sink = open_sink(f"tee:memory,jsonl:{tmp_path / 'a.jsonl'}")
    assert isinstance(sink, TeeSink)
    assert len(sink.sinks) == 2
    sink.close()


def test_open_sink_passes_instances_through():
    memory = MemorySink()
    assert open_sink(memory) is memory


@pytest.mark.parametrize("bad", ["bogus", "jsonl:", "tee:", "stream:",
                                 42])
def test_open_sink_rejects_unknown_specs(bad):
    with pytest.raises(ValueError):
        open_sink(bad)
