"""Tests for the telemetry directory reader and renderer."""

import json

from repro.obs.stats import (
    find_trace_dirs,
    load_trace_dir,
    render_summary,
    sparkline,
)
from repro.obs.telemetry import Telemetry


def _write_fixture(directory):
    telemetry = Telemetry(directory=directory)
    clock = [0.0]
    telemetry.tracer.bind_clock(lambda: clock[0])
    with telemetry.tracer.span("probe"):
        clock[0] = 100.0
    with telemetry.tracer.span("minimize"):
        with telemetry.tracer.span("execute"):
            clock[0] = 150.0
    with telemetry.tracer.span("execute"):
        clock[0] = 170.0
    telemetry.tracer.event("crash", title="BUG: x")
    telemetry.tracer.event("new-coverage", fresh=3)
    telemetry.metrics.counter("driver.vtime.drm_gpu").inc(40)
    telemetry.metrics.counter("driver.vtime.ion_alloc").inc(90)
    telemetry.monitor.start(0.0)
    telemetry.monitor.sample(0.0, executions=0, kernel_coverage=0,
                             corpus_size=0, reboots=0, bugs=0)
    telemetry.monitor.sample(170.0, executions=2, kernel_coverage=9,
                             corpus_size=1, reboots=0, bugs=1)
    telemetry.close()
    return telemetry


def test_load_trace_dir_aggregates_phases_events_metrics(tmp_path):
    _write_fixture(tmp_path / "run")
    summary = load_trace_dir(tmp_path / "run")

    execute = summary.phases["execute"]
    assert execute.count == 2
    assert execute.virtual_seconds == 70.0
    assert execute.exclusive_seconds == 20.0  # nested one excluded
    minimize = summary.phases["minimize"]
    assert minimize.exclusive_seconds == 50.0
    assert summary.events == {"crash": 1, "new-coverage": 1}
    assert len(summary.snapshots) == 2
    assert summary.driver_costs() == [("ion_alloc", 90.0),
                                      ("drm_gpu", 40.0)]
    total = summary.total_phase_seconds()
    shares = dict((name, share) for name, _, share in summary.phase_shares())
    assert total == 170.0
    assert shares["probe"] == 100.0 / 170.0 * 100.0


def test_metrics_json_written_on_close(tmp_path):
    _write_fixture(tmp_path / "run")
    metrics = json.loads((tmp_path / "run" / "metrics.json").read_text())
    assert metrics["driver.vtime.ion_alloc"]["value"] == 90.0


def test_find_trace_dirs_direct_and_nested(tmp_path):
    _write_fixture(tmp_path / "fleet" / "A")
    _write_fixture(tmp_path / "fleet" / "B")
    assert find_trace_dirs(tmp_path / "fleet" / "A") == [
        tmp_path / "fleet" / "A"]
    assert find_trace_dirs(tmp_path / "fleet") == [
        tmp_path / "fleet" / "A", tmp_path / "fleet" / "B"]
    assert find_trace_dirs(tmp_path / "nope") == []


def test_render_summary_contains_rates_phases_drivers(tmp_path):
    _write_fixture(tmp_path / "run")
    text = render_summary(load_trace_dir(tmp_path / "run"))
    assert "exec/s" in text
    assert "probe" in text and "minimize" in text
    assert "ion_alloc" in text
    assert "crash" in text


def test_render_summary_on_empty_dir(tmp_path):
    summary = load_trace_dir(tmp_path)
    assert "(no telemetry records found)" in render_summary(summary)


def test_load_trace_dir_tolerates_torn_lines(tmp_path):
    _write_fixture(tmp_path / "run")
    with (tmp_path / "run" / "trace.jsonl").open("a") as handle:
        handle.write('{"type": "span", "phase": "exe')  # killed mid-write
    (tmp_path / "run" / "metrics.json").write_text('{"truncat')
    summary = load_trace_dir(tmp_path / "run")
    assert summary.phases["execute"].count == 2
    assert summary.metrics == {}


def test_rerun_into_same_directory_replaces_trace(tmp_path):
    _write_fixture(tmp_path / "run")
    first = len((tmp_path / "run" / "trace.jsonl").read_text().splitlines())
    _write_fixture(tmp_path / "run")
    second = len((tmp_path / "run" / "trace.jsonl").read_text().splitlines())
    assert first == second  # truncated, not appended


def test_sparkline_scaling_and_downsampling():
    assert sparkline([]) == "(no samples)"
    assert sparkline([0.0, 0.0]) == "▁▁"
    line = sparkline([0.0, 1.0, 2.0, 4.0])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(1000)), width=48)) == 48
