"""The ``repro watch`` dashboard: state folding, rendering, driver."""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import pytest

from repro.obs.stream import StreamSink
from repro.obs.watch import (
    SourceState,
    WatchState,
    render_dashboard,
    run_watch,
)

pytestmark = pytest.mark.timeout(60)


# ----------------------------------------------------------------------
# state folding
# ----------------------------------------------------------------------

def test_snapshot_creates_and_updates_a_source_row():
    state = WatchState()
    state.apply({"type": "snapshot", "source": "E#3", "t": 1800.0,
                 "executions": 500, "execs_per_sec": 12.5,
                 "kernel_coverage": 80, "corpus_size": 9, "reboots": 1,
                 "bugs": 2, "wall": 123.0})
    row = state.sources["E#3"]
    assert (row.executions, row.kernel_coverage, row.bugs) == (500, 80, 2)
    assert row.execs_per_sec == 12.5
    assert row.rate_history == [12.5]
    assert row.coverage_history == [80.0]


def test_records_without_source_fold_into_the_default_row():
    state = WatchState()
    state.apply({"type": "snapshot", "t": 1.0, "executions": 10})
    assert list(state.sources) == ["campaign"]


def test_fleet_heartbeat_derives_a_rate_from_totals():
    state = WatchState()
    for clock, executions in ((100.0, 100), (200.0, 350)):
        state.apply({"type": "fleet", "kind": "hb", "key": "A1#0",
                     "clock": clock, "executions": executions,
                     "coverage": 40})
    row = state.sources["A1#0"]
    assert row.execs_per_sec == pytest.approx(2.5)  # 250 execs / 100 vs
    assert row.t == 200.0


def test_fleet_lifecycle_statuses():
    state = WatchState()
    events = [
        ({"kind": "start", "worker": 2}, "running w2"),
        ({"kind": "retry", "attempt": 2}, "retry 2"),
        ({"kind": "worker_lost"}, "worker lost"),
        ({"kind": "fail"}, "FAILED"),
        ({"kind": "done", "executions": 900, "coverage": 70, "bugs": 1},
         "done"),
    ]
    for event, expected in events:
        state.apply({"type": "fleet", "key": "E#0", **event})
        assert state.sources["E#0"].status == expected
    assert state.sources["E#0"].executions == 900


def test_bug_records_accumulate_in_the_log_and_the_row():
    state = WatchState()
    state.apply({"type": "bug", "source": "E#0", "t": 50.0,
                 "title": "UAF in ion_free", "total": 1})
    state.apply({"type": "bug", "source": "E#0", "t": 90.0,
                 "title": "OOB in kgsl_ioctl", "total": 2})
    assert state.sources["E#0"].bugs == 2
    assert [b["title"] for b in state.bug_log] \
        == ["UAF in ion_free", "OOB in kgsl_ioctl"]


def test_campaign_and_meta_records():
    state = WatchState()
    state.apply({"type": "meta", "kind": "hello", "proto": 1})
    state.apply({"type": "campaign", "source": "E#3", "device": "E",
                 "tool": "droidfuzz"})
    assert state.hello["kind"] == "hello"
    assert state.sources["E#3"].device == "E"
    assert state.sources["E#3"].tool == "droidfuzz"


def test_fleet_summary_record_strips_transport_fields():
    state = WatchState()
    state.apply({"type": "fleet-summary", "jobs": 3, "retries": 1,
                 "wall": 99.0, "source": "x"})
    assert state.fleet_summary == {"jobs": 3, "retries": 1}


def test_rollup_sums_across_sources():
    state = WatchState()
    for key, execs, bugs in (("A1#0", 100, 0), ("E#0", 250, 2)):
        state.apply({"type": "snapshot", "source": key, "t": 1.0,
                     "executions": execs, "kernel_coverage": 10,
                     "bugs": bugs})
    rollup = state.rollup()
    assert rollup["campaigns"] == 2
    assert rollup["executions"] == 350
    assert rollup["bugs"] == 2


def test_sparkline_history_is_bounded():
    row = SourceState(source="E#0")
    for index in range(500):
        row.apply_snapshot({"t": float(index), "execs_per_sec": 1.0,
                            "kernel_coverage": index})
    assert len(row.rate_history) == 96
    assert len(row.coverage_history) == 96
    assert row.coverage_history[-1] == 499.0


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def test_dashboard_shows_waiting_message_before_first_snapshot():
    state = WatchState()
    state.apply({"type": "meta", "kind": "hello"})
    view = render_dashboard(state)
    assert "waiting for snapshots" in view
    assert "1 record(s)" in view


def test_dashboard_renders_rows_rollup_and_bugs():
    state = WatchState()
    state.apply({"type": "campaign", "source": "E#3", "device": "E",
                 "tool": "droidfuzz"})
    state.apply({"type": "snapshot", "source": "E#3", "t": 3600.0,
                 "executions": 1200, "execs_per_sec": 4.2,
                 "kernel_coverage": 85, "bugs": 1, "wall": time.time()})
    state.apply({"type": "bug", "source": "E#3", "t": 1800.0,
                 "title": "UAF in ion_free", "total": 1})
    view = render_dashboard(state)
    assert "E#3" in view and "1200" in view
    assert "1.00" in view  # 3600 virtual seconds = 1.00 vh
    assert "fleet: 1 campaign(s)" in view
    assert "recent bugs:" in view
    assert "UAF in ion_free" in view
    assert "0.50vh" in view  # bug clock rendered in virtual hours


def test_dashboard_includes_fleet_summary_when_present():
    state = WatchState()
    state.apply({"type": "snapshot", "source": "E#0", "t": 1.0})
    state.apply({"type": "fleet-summary", "jobs": 2, "workers": 2,
                 "wall_seconds": 1.5, "sum_campaign_wall": 2.0,
                 "speedup": 1.3, "retries": 0, "failures": 0})
    assert "speedup" in render_dashboard(state)


# ----------------------------------------------------------------------
# the run_watch driver
# ----------------------------------------------------------------------

def _emit_when_watched(sink: StreamSink, records: list[dict]) -> threading.Thread:
    def worker() -> None:
        deadline = time.monotonic() + 10.0
        while sink.client_count < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        for record in records:
            sink.emit(record)

    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    return thread


def test_run_watch_sse_emits_newline_delimited_json():
    sink = StreamSink(port=0)
    out = io.StringIO()
    try:
        thread = _emit_when_watched(sink, [
            {"type": "snapshot", "t": 10.0, "executions": 7},
            {"type": "snapshot", "t": 20.0, "executions": 9},
        ])
        host, port = sink.address
        code = run_watch(f"{host}:{port}", sse=True, max_records=3,
                         out=out)
        thread.join()
    finally:
        sink.close()
    assert code == 0
    records = [json.loads(line) for line in
               out.getvalue().strip().splitlines()]
    assert records[0]["type"] == "meta"  # the hello
    assert [r.get("executions") for r in records[1:]] == [7, 9]
    assert all("wall" in r for r in records[1:])


def test_run_watch_dashboard_mode_draws_table(capsys):
    sink = StreamSink(port=0)
    out = io.StringIO()
    try:
        thread = _emit_when_watched(sink, [
            {"type": "snapshot", "source": "E#0", "t": 1800.0,
             "executions": 33, "kernel_coverage": 12},
        ])
        host, port = sink.address
        code = run_watch(f"{host}:{port}", max_records=2, out=out,
                         clear=False)
        thread.join()
    finally:
        sink.close()
    assert code == 0
    view = out.getvalue()
    assert "repro watch" in view
    assert "E#0" in view and "33" in view


def test_run_watch_unreachable_server_exits_nonzero(capsys):
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    _, dead_port = probe.getsockname()
    probe.close()  # nothing listens here any more
    code = run_watch(f"127.0.0.1:{dead_port}", sse=True,
                     connect_timeout=0.5, reconnects=0,
                     out=io.StringIO())
    assert code == 1
    assert "cannot reach" in capsys.readouterr().err


def test_run_watch_ends_cleanly_when_server_closes():
    sink = StreamSink(port=0)
    out = io.StringIO()
    host, port = sink.address

    def close_soon() -> None:
        deadline = time.monotonic() + 10.0
        while sink.client_count < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        sink.emit({"type": "snapshot", "t": 1.0})
        time.sleep(0.2)
        sink.close()

    thread = threading.Thread(target=close_soon, daemon=True)
    thread.start()
    code = run_watch(f"{host}:{port}", sse=True, out=out)
    thread.join()
    assert code == 0  # records arrived, then a clean end-of-stream
    assert out.getvalue().count("\n") >= 2
