"""Size-based trace rotation: sink behaviour and stats read-back."""

from __future__ import annotations

import json

from repro.obs.sinks import JsonlSink
from repro.obs.stats import find_trace_dirs, load_trace_dir, trace_segments
from repro.obs.telemetry import Telemetry


def _lines(path) -> list[dict]:
    return [json.loads(line)
            for line in path.read_text().splitlines() if line]


def test_sink_rotates_past_max_bytes(tmp_path):
    sink = JsonlSink(tmp_path / "trace.jsonl", max_bytes=120)
    for n in range(13):
        sink.emit({"type": "event", "kind": "tick", "n": n})
    sink.close()
    segments = trace_segments(tmp_path)
    assert len(segments) > 1
    assert segments[0].name == "trace.1.jsonl"
    assert segments[-1].name == "trace.jsonl"  # live tail past a rotation
    # Every rotated segment stayed within a record of the threshold.
    for segment in segments[:-1]:
        assert segment.stat().st_size <= 120 + 60
    # Replaying segments in order recovers the full record stream.
    replayed = [record["n"] for segment in segments
                for record in _lines(segment)]
    assert replayed == list(range(13))


def test_unbounded_sink_never_rotates(tmp_path):
    sink = JsonlSink(tmp_path / "trace.jsonl")
    for n in range(50):
        sink.emit({"n": n})
    sink.close()
    assert trace_segments(tmp_path) == [tmp_path / "trace.jsonl"]


def test_rerun_removes_stale_segments(tmp_path):
    first = JsonlSink(tmp_path / "trace.jsonl", max_bytes=60)
    for n in range(9):
        first.emit({"n": n})
    first.close()
    assert len(trace_segments(tmp_path)) > 1
    second = JsonlSink(tmp_path / "trace.jsonl")
    second.emit({"fresh": True})
    second.close()
    segments = trace_segments(tmp_path)
    assert segments == [tmp_path / "trace.jsonl"]
    assert _lines(segments[0]) == [{"fresh": True}]


def test_stats_aggregates_across_segments(tmp_path):
    sink = JsonlSink(tmp_path / "trace.jsonl", max_bytes=150)
    for n in range(10):
        sink.emit({"type": "span", "phase": "execute", "dur": 2.0,
                   "depth": 0})
        sink.emit({"type": "event", "kind": "reboot"})
    sink.close()
    assert len(trace_segments(tmp_path)) > 1
    summary = load_trace_dir(tmp_path)
    assert summary.phases["execute"].count == 10
    assert summary.phases["execute"].exclusive_seconds == 20.0
    assert summary.events["reboot"] == 10
    # A fully-rotated directory still counts as telemetry.
    (tmp_path / "trace.jsonl").unlink()
    assert find_trace_dirs(tmp_path) == [tmp_path]
    assert load_trace_dir(tmp_path).events["reboot"] > 0


def test_telemetry_threads_rotation_threshold(tmp_path):
    telemetry = Telemetry(directory=tmp_path, max_trace_bytes=100)
    for n in range(20):
        telemetry.tracer.event("tick", n=n)
    telemetry.close()
    assert len(trace_segments(tmp_path)) > 1
