"""Fault-injection harness for the remote fleet transport.

Every test routes a real campaign through a frame-level proxy
(:mod:`tests.fleet.proxy`) that drops, delays, truncates, or
duplicates messages — or cuts the link entirely — between the
scheduler and a live :class:`WorkerServer`.  The invariant under test
is the issue's headline contract: **every fault mode either recovers
via retry/reconnect or fails loudly with a typed error, bounded by the
watchdog — never a hang, never a duplicate-counted job, never a
corrupted merge.**

The last tests swap the wall clock for a
:class:`~repro.fleet.clock.ManualClock` with a stub transport, proving
the watchdog/retry path is deterministic with zero real waiting.
"""

from __future__ import annotations

import queue

import pytest

from repro.core.config import FuzzerConfig
from repro.device.profiles import profile_by_id
from repro.fleet import CampaignJob, FleetScheduler, ManualClock
from repro.fleet.remote import (
    RemoteConnectError,
    RemoteWorkerLost,
    WorkerServer,
)
from repro.fleet.worker import execute_job
from repro.obs.metrics import MetricsRegistry
from tests.fleet.proxy import FrameProxy

pytestmark = pytest.mark.timeout(120)


def _jobs(fast_costs, idents=("E",), hours=0.3) -> list[CampaignJob]:
    return [CampaignJob(key=f"{ident}#0", index=index,
                        profile=profile_by_id(ident),
                        config=FuzzerConfig(seed=0, campaign_hours=hours),
                        costs=fast_costs)
            for index, ident in enumerate(idents)]


def _scheduler(address, metrics=None, **overrides) -> FleetScheduler:
    options = dict(workers=[address], watchdog_seconds=3.0,
                   heartbeat_seconds=0.2, max_retries=2,
                   retry_backoff=0.0, connect_timeout=2.0,
                   max_reconnects=4, reconnect_backoff=0.05,
                   metrics=metrics)
    options.update(overrides)
    return FleetScheduler(**options)


@pytest.fixture
def server():
    worker = WorkerServer(slots=2).start()
    yield worker
    worker.stop(drain=False, timeout=5.0)


def _first_match(kind: str, direction: str = "down", action="drop"):
    """A policy applying ``action`` to the first ``kind`` message."""
    fired = []

    def policy(pdir: str, message) -> object:
        if pdir == direction and message.kind == kind and not fired:
            fired.append(message.key)
            return action
        return "pass"

    return policy


# ----------------------------------------------------------------------
# drop
# ----------------------------------------------------------------------

def test_dropped_done_frame_recovers_without_double_count(fast_costs,
                                                          server):
    """Losing the result frame triggers the watchdog; the re-dispatched
    job replays the server's cached outcome — one execution, one
    merge."""
    metrics = MetricsRegistry()
    with FrameProxy(server.address,
                    _first_match("done", "down", "drop")) as proxy:
        scheduler = _scheduler(proxy.address, metrics)
        outcomes = scheduler.run(_jobs(fast_costs))
    assert len(outcomes) == 1 and outcomes[0].ok
    assert outcomes[0].attempts == 2  # one watchdog requeue
    assert scheduler.last_summary["completed"] == 1
    assert scheduler.last_summary["failed"] == 0
    # Same campaign as a clean run: the retry did not re-randomize.
    assert outcomes[0].result == execute_job(_jobs(fast_costs)[0]).result
    # The replay came from the idempotency cache, not a second run.
    assert metrics.counter("fleet.jobs.completed").value == 1


def test_dropped_job_frame_recovers_via_watchdog(fast_costs, server):
    """Losing the dispatch itself looks like a silent worker: the
    watchdog requeues and the second attempt lands."""
    with FrameProxy(server.address,
                    _first_match("job", "up", "drop")) as proxy:
        scheduler = _scheduler(proxy.address)
        outcomes = scheduler.run(_jobs(fast_costs))
    assert outcomes[0].ok and outcomes[0].attempts == 2
    assert scheduler.last_summary["retried"] == 1


# ----------------------------------------------------------------------
# duplicate
# ----------------------------------------------------------------------

def test_duplicated_done_frame_counts_once(fast_costs, server):
    with FrameProxy(server.address,
                    _first_match("done", "down", "dup")) as proxy:
        scheduler = _scheduler(proxy.address)
        outcomes = scheduler.run(_jobs(fast_costs, idents=("E", "B")))
    assert [outcome.key for outcome in outcomes] == ["E#0", "B#0"]
    assert all(outcome.ok for outcome in outcomes)
    assert scheduler.last_summary["completed"] == 2  # not 3
    assert scheduler.last_summary["jobs"] == 2


# ----------------------------------------------------------------------
# delay
# ----------------------------------------------------------------------

def test_delayed_frames_inside_watchdog_budget(fast_costs, server):
    def policy(direction, _message):
        return ("delay", 0.05) if direction == "down" else "pass"

    with FrameProxy(server.address, policy) as proxy:
        scheduler = _scheduler(proxy.address, watchdog_seconds=10.0)
        outcomes = scheduler.run(_jobs(fast_costs))
    assert outcomes[0].ok and outcomes[0].attempts == 1
    assert scheduler.last_summary["retried"] == 0


# ----------------------------------------------------------------------
# truncate (link cut mid-frame)
# ----------------------------------------------------------------------

def test_truncated_frame_reconnects_and_completes(fast_costs, server):
    """Half a frame then EOF is a typed stream fault; the transport
    reconnects, re-dispatches, and the server deduplicates."""
    metrics = MetricsRegistry()
    with FrameProxy(server.address,
                    _first_match("start", "down", "truncate")) as proxy:
        scheduler = _scheduler(proxy.address, metrics)
        outcomes = scheduler.run(_jobs(fast_costs))
    assert outcomes[0].ok
    label = proxy.address.replace(".", "-")
    assert metrics.counter(
        f"fleet.remote.{label}.reconnects").value >= 1
    assert metrics.counter(
        f"fleet.remote.{label}.redispatches").value >= 1
    # The merge saw exactly one result for the job.
    assert scheduler.last_summary["completed"] == 1
    assert outcomes[0].result == execute_job(_jobs(fast_costs)[0]).result


# ----------------------------------------------------------------------
# disconnect
# ----------------------------------------------------------------------

def test_unreachable_worker_is_a_typed_error(fast_costs):
    """Nothing listening at all: the scheduler refuses to start the
    run, with a typed error naming the address."""
    probe = WorkerServer(slots=1)
    host, port = probe.address
    probe.stop(drain=False, timeout=0.1)  # port now closed
    scheduler = FleetScheduler(workers=[f"{host}:{port}"],
                               connect_timeout=1.0, max_reconnects=0,
                               reconnect_backoff=0.01)
    with pytest.raises(RemoteConnectError) as excinfo:
        scheduler.run(_jobs(fast_costs))
    assert str(port) in str(excinfo.value)


def test_permanent_disconnect_fails_loudly_not_hangs(fast_costs, server):
    """The link dies mid-campaign and never comes back: the first
    handshake is allowed through, every later server→scheduler frame
    cuts the link, so reconnect handshakes can never complete.
    Reconnects exhaust, in-flight jobs surface as typed failures, and
    the run terminates inside the retry budget."""
    first_hello = []

    def policy(direction, message):
        if direction != "down":
            return "pass"
        if message.kind == "hello" and not first_hello:
            first_hello.append(True)
            return "pass"
        return "close"

    with FrameProxy(server.address, policy) as proxy:
        scheduler = _scheduler(proxy.address, max_retries=0,
                               max_reconnects=2)
        outcomes = scheduler.run(_jobs(fast_costs))
    assert len(outcomes) == 1 and not outcomes[0].ok
    assert RemoteWorkerLost.__name__ in outcomes[0].error
    assert proxy.address in outcomes[0].error
    assert scheduler.last_summary["failed"] == 1


def test_malformed_address_is_a_typed_error():
    with pytest.raises(RemoteConnectError):
        FleetScheduler(workers=["not-an-address"]).run([])


# ----------------------------------------------------------------------
# deterministic latency: ManualClock + stub transport
# ----------------------------------------------------------------------

class StubTransport:
    """A transport that never answers — pure scheduler-side fixture."""

    def __init__(self, slots: int = 1) -> None:
        self.slots = slots
        self.alive = True
        self.messages: queue.Queue = queue.Queue()
        self.dispatched: list[tuple[str, int]] = []
        self.cancelled: list[str] = []
        self._in_flight: set[str] = set()

    @property
    def load(self) -> int:
        return len(self._in_flight)

    def dispatch(self, job, attempt) -> None:
        self.dispatched.append((job.key, attempt))
        self._in_flight.add(job.key)

    def cancel(self, key) -> None:
        self.cancelled.append(key)
        self._in_flight.discard(key)

    def close(self) -> None:
        self.alive = False


def test_watchdog_timeout_is_deterministic_with_manual_clock(fast_costs):
    """A silent remote worker trips the watchdog at an exact virtual
    instant — no real waiting, no wall-clock reads on the path."""
    clock = ManualClock()
    stub = StubTransport()
    scheduler = FleetScheduler(workers=[stub], clock=clock,
                               watchdog_seconds=30.0, max_retries=0)
    outcomes = scheduler.run(_jobs(fast_costs))
    assert len(outcomes) == 1 and not outcomes[0].ok
    assert "watchdog" in outcomes[0].error
    assert stub.cancelled == ["E#0"]
    # Dispatched once, cancelled exactly at/after the 30-virtual-second
    # deadline; the whole run consumed virtual, not real, time.
    assert stub.dispatched == [("E#0", 1)]
    assert 30.0 <= clock.now <= 31.0


def test_retries_requeue_on_manual_clock(fast_costs):
    clock = ManualClock()
    stub = StubTransport()
    scheduler = FleetScheduler(workers=[stub], clock=clock,
                               watchdog_seconds=10.0, max_retries=2,
                               retry_backoff=1.0)
    outcomes = scheduler.run(_jobs(fast_costs))
    assert not outcomes[0].ok
    # First try + two retries, every attempt individually watchdogged.
    assert stub.dispatched == [("E#0", 1), ("E#0", 2), ("E#0", 3)]
    assert scheduler.last_summary["retried"] == 2
    assert scheduler.last_summary["failed"] == 1
    # Three watchdog windows plus two backoffs, all virtual.
    assert clock.now >= 3 * 10.0


def test_stale_heartbeat_cannot_shield_requeued_copy(fast_costs):
    """After a watchdog requeue moves a job to a second transport, the
    stale still-running copy's heartbeats on the *old* transport must
    not refresh the new entry's last_seen — a hung replacement still
    times out on schedule instead of being shielded indefinitely."""
    from repro.fleet.worker import WorkerMessage

    class StickyStub(StubTransport):
        def cancel(self, key) -> None:  # stale copy keeps "running"
            self.cancelled.append(key)

    sticky, fresh = StickyStub(), StubTransport()

    class StaleHbClock(ManualClock):
        def sleep(self, seconds: float) -> None:
            super().sleep(seconds)
            # Once the retry is out on `fresh`, the stale copy on
            # `sticky` heartbeats for the same key until t=100.
            if ("E#0", 2) in fresh.dispatched and self.now < 100.0:
                sticky.messages.put(WorkerMessage(
                    "hb", "E#0", {"worker": 1}))

    clock = StaleHbClock()
    scheduler = FleetScheduler(workers=[sticky, fresh], clock=clock,
                               watchdog_seconds=30.0, max_retries=1,
                               retry_backoff=0.0)
    outcomes = scheduler.run(_jobs(fast_costs))
    assert len(outcomes) == 1 and not outcomes[0].ok
    assert "watchdog" in outcomes[0].error
    # Attempt 1 went to sticky, the requeued attempt 2 to fresh.
    assert sticky.dispatched == [("E#0", 1)]
    assert fresh.dispatched == [("E#0", 2)]
    # The second watchdog window expired at ~60 virtual seconds; the
    # stale heartbeats (flowing until t=100) were ignored.
    assert clock.now < 100.0


def test_late_result_after_requeue_merges_once(fast_costs):
    """A done message landing *after* the watchdog already requeued the
    job merges exactly once — the retry copy is dropped, not run to a
    second, double-counted completion."""
    from repro.fleet.worker import WorkerMessage

    stub = StubTransport()
    job = _jobs(fast_costs)[0]
    clean = execute_job(job)
    delivered: list[bool] = []

    class OneShotClock(ManualClock):
        def sleep(self, seconds: float) -> None:
            super().sleep(seconds)
            # Watchdog fired and requeued? Deliver the stale result.
            if self.now > 31.0 and ("E#0", 2) in stub.dispatched \
                    and not delivered:
                delivered.append(True)
                stub.messages.put(WorkerMessage(
                    "done", "E#0", {"worker": 1, "outcome": clean}))

    clock = OneShotClock()
    scheduler = FleetScheduler(workers=[stub], clock=clock,
                               watchdog_seconds=30.0, max_retries=2,
                               retry_backoff=0.0)
    outcomes = scheduler.run([job])
    assert len(outcomes) == 1 and outcomes[0].ok
    assert outcomes[0].result == clean.result
    assert scheduler.last_summary["completed"] == 1
    assert scheduler.last_summary["failed"] == 0
