"""Fault-injection hooks the fleet tests point worker jobs at.

A :class:`~repro.fleet.jobs.CampaignJob` carries an optional
``"module:callable"`` hook spec that the worker resolves and invokes
before the campaign (and before its heartbeat thread starts).  These
are the failure modes the scheduler must survive.
"""

from __future__ import annotations

import pathlib
import time

from repro.fleet.jobs import CampaignJob


def always_raise(job: CampaignJob) -> None:
    """Every attempt blows up: retries must exhaust into a failure."""
    raise RuntimeError(f"injected failure for {job.key}")


def hang(job: CampaignJob) -> None:
    """Wedge before the heartbeat thread starts: the worker goes
    silent after ``start`` and only the watchdog can reclaim it."""
    time.sleep(600.0)


def fail_until_marker(job: CampaignJob) -> None:
    """Fail the first attempt, succeed afterwards.

    ``job.hook_arg`` names a marker file: absent means this is the
    first attempt, so drop the marker and raise; present means a retry
    is underway and the campaign may proceed.
    """
    marker = pathlib.Path(job.hook_arg)
    if marker.exists():
        return
    marker.touch()
    raise RuntimeError(f"first-attempt failure for {job.key}")
