"""Fleet scheduler tests: determinism, failure paths, supervision."""

from __future__ import annotations

import json

import pytest

from repro.core.config import FuzzerConfig
from repro.core.daemon import Daemon
from repro.device.profiles import profile_by_id
from repro.fleet import (
    CampaignJob,
    FleetJobError,
    FleetScheduler,
    execute_job,
)
from repro.obs.metrics import MetricsRegistry

HOOKS = "tests.fleet.hooks"


def _jobs(fast_costs, idents=("A1", "A2", "B", "E"), hours=0.5,
          telemetry_dir=None, **extra) -> list[CampaignJob]:
    return [CampaignJob(key=f"{ident}#0", index=index,
                        profile=profile_by_id(ident),
                        config=FuzzerConfig(seed=0, campaign_hours=hours),
                        costs=fast_costs, telemetry_dir=telemetry_dir,
                        **extra)
            for index, ident in enumerate(idents)]


# ----------------------------------------------------------------------
# determinism: parallel == sequential
# ----------------------------------------------------------------------

def test_parallel_outcomes_match_inline(fast_costs):
    inline = FleetScheduler(jobs=1).run(_jobs(fast_costs))
    pooled = FleetScheduler(jobs=4).run(_jobs(fast_costs))
    assert [o.key for o in pooled] == [o.key for o in inline]
    for left, right in zip(inline, pooled):
        assert right.ok
        assert right.result == left.result


def test_parallel_traces_byte_identical(fast_costs, tmp_path):
    seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
    FleetScheduler(jobs=1).run(
        _jobs(fast_costs, idents=("A1", "B"), telemetry_dir=str(seq_dir)))
    FleetScheduler(jobs=2).run(
        _jobs(fast_costs, idents=("A1", "B"), telemetry_dir=str(par_dir)))
    for key in ("A1#0", "B#0"):
        for name in ("trace.jsonl", "snapshots.jsonl", "metrics.json"):
            seq_bytes = (seq_dir / key / name).read_bytes()
            par_bytes = (par_dir / key / name).read_bytes()
            assert seq_bytes == par_bytes, f"{key}/{name} diverged"


def test_daemon_fleet_results_independent_of_jobs(fast_costs):
    profiles = [profile_by_id(i) for i in ("A1", "A2", "B", "E")]
    seq = Daemon(config=FuzzerConfig(seed=0, campaign_hours=0.5),
                 costs=fast_costs)
    par = Daemon(config=FuzzerConfig(seed=0, campaign_hours=0.5),
                 costs=fast_costs)
    seq.run_fleet(profiles, jobs=1)
    par.run_fleet(profiles, jobs=4)
    assert par.results == seq.results
    assert par.all_bugs() == seq.all_bugs()
    assert par.coverage_summary() == seq.coverage_summary()


def test_daemon_key_reservation_with_duplicate_profiles(fast_costs):
    profile = profile_by_id("E")
    daemon = Daemon(config=FuzzerConfig(seed=0, campaign_hours=0.5),
                    costs=fast_costs)
    daemon.run_fleet([profile, profile, profile], jobs=3)
    assert sorted(daemon.results) == ["E#0", "E#0.r2", "E#0.r3"]
    # Duplicate campaigns are identical runs, just under distinct keys.
    assert daemon.results["E#0"] == daemon.results["E#0.r2"]


def test_daemon_writes_fleet_summary(fast_costs, tmp_path):
    daemon = Daemon(config=FuzzerConfig(seed=0, campaign_hours=0.5),
                    costs=fast_costs, telemetry_dir=tmp_path)
    daemon.run_fleet([profile_by_id("A1"), profile_by_id("B")], jobs=2)
    summary = json.loads((tmp_path / "fleet.json").read_text())
    assert summary["jobs"] == 2
    assert summary["completed"] == 2
    assert summary["failed"] == 0
    assert summary == daemon.fleet_stats
    assert daemon.rollups["A1#0"]["snapshots"] > 0


# ----------------------------------------------------------------------
# failure paths
# ----------------------------------------------------------------------

def test_worker_raise_exhausts_retries_without_losing_others(fast_costs):
    jobs = _jobs(fast_costs, idents=("A1", "E"))
    bad = CampaignJob(key="B#0", index=len(jobs),
                      profile=profile_by_id("B"),
                      config=FuzzerConfig(seed=0, campaign_hours=0.5),
                      costs=fast_costs, hook=f"{HOOKS}:always_raise")
    metrics = MetricsRegistry()
    scheduler = FleetScheduler(jobs=3, max_retries=1, retry_backoff=0.0,
                               metrics=metrics)
    outcomes = scheduler.run(jobs + [bad])
    by_key = {o.key: o for o in outcomes}
    assert by_key["A1#0"].ok and by_key["E#0"].ok
    failed = by_key["B#0"]
    assert not failed.ok
    assert failed.result is None
    assert "injected failure for B#0" in failed.error
    assert failed.attempts == 2  # first try + one retry
    assert metrics.counter("fleet.jobs.failed").value == 1
    assert metrics.counter("fleet.jobs.retried").value == 1


def test_daemon_raises_fleet_job_error_after_merging(fast_costs,
                                                     monkeypatch):
    daemon = Daemon(config=FuzzerConfig(seed=0, campaign_hours=0.5),
                    costs=fast_costs, max_retries=0)
    specs = daemon._job_specs([profile_by_id("A1"), profile_by_id("E")],
                              seed=None)
    broken = [specs[0],
              CampaignJob(key=specs[1].key, index=specs[1].index,
                          profile=specs[1].profile, config=specs[1].config,
                          costs=fast_costs,
                          hook=f"{HOOKS}:always_raise")]
    monkeypatch.setattr(Daemon, "_job_specs", lambda *a, **k: broken)
    with pytest.raises(FleetJobError) as excinfo:
        daemon.run_fleet([profile_by_id("A1"), profile_by_id("E")], jobs=2)
    assert set(excinfo.value.failures) == {"E#0"}
    # The healthy campaign's result was merged before the raise.
    assert "A1#0" in daemon.results


def test_watchdog_kills_and_fails_hung_worker(fast_costs):
    jobs = _jobs(fast_costs, idents=("E",))
    hung = CampaignJob(key="A1#0", index=1, profile=profile_by_id("A1"),
                       config=FuzzerConfig(seed=0, campaign_hours=0.5),
                       costs=fast_costs, hook=f"{HOOKS}:hang")
    events = []
    scheduler = FleetScheduler(jobs=2, watchdog_seconds=1.0,
                               heartbeat_seconds=0.2, max_retries=0,
                               progress=events.append)
    outcomes = scheduler.run(jobs + [hung])
    by_key = {o.key: o for o in outcomes}
    assert by_key["E#0"].ok
    assert not by_key["A1#0"].ok
    assert "watchdog" in by_key["A1#0"].error
    kinds = {event["kind"] for event in events}
    assert "fail" in kinds and "done" in kinds


def test_retry_recovers_transient_failure(fast_costs, tmp_path):
    marker = tmp_path / "first-attempt"
    flaky = CampaignJob(key="E#0", index=0, profile=profile_by_id("E"),
                        config=FuzzerConfig(seed=0, campaign_hours=0.5),
                        costs=fast_costs,
                        hook=f"{HOOKS}:fail_until_marker",
                        hook_arg=str(marker))
    other = CampaignJob(key="B#0", index=1, profile=profile_by_id("B"),
                        config=FuzzerConfig(seed=0, campaign_hours=0.5),
                        costs=fast_costs)
    scheduler = FleetScheduler(jobs=2, max_retries=2, retry_backoff=0.0)
    outcomes = scheduler.run([flaky, other])
    recovered = next(o for o in outcomes if o.key == "E#0")
    assert recovered.ok
    assert recovered.attempts == 2
    assert scheduler.last_summary["retried"] == 1
    assert scheduler.last_summary["completed"] == 2
    # The retried campaign is the same campaign: identical to a clean run.
    clean = execute_job(flaky)
    assert recovered.result == clean.result


def test_inline_retry_semantics_match_pool(fast_costs, tmp_path):
    marker = tmp_path / "inline-first-attempt"
    flaky = CampaignJob(key="E#0", index=0, profile=profile_by_id("E"),
                        config=FuzzerConfig(seed=0, campaign_hours=0.5),
                        costs=fast_costs,
                        hook=f"{HOOKS}:fail_until_marker",
                        hook_arg=str(marker))
    scheduler = FleetScheduler(jobs=1, max_retries=1, retry_backoff=0.0)
    outcomes = scheduler.run([flaky])
    assert outcomes[0].ok and outcomes[0].attempts == 2


def test_pool_start_failure_degrades_to_inline(fast_costs, monkeypatch):
    class BrokenContext:
        @staticmethod
        def Queue():
            raise OSError("no queues here")

        @staticmethod
        def Process(*args, **kwargs):
            raise OSError("no processes here")

    monkeypatch.setattr(FleetScheduler, "_context",
                        staticmethod(lambda: BrokenContext()))
    outcomes = FleetScheduler(jobs=2).run(
        _jobs(fast_costs, idents=("A1", "E")))
    assert [o.key for o in outcomes] == ["A1#0", "E#0"]
    assert all(o.ok for o in outcomes)
    assert all(o.worker_id == 0 for o in outcomes)  # ran inline


def test_summary_accounts_wall_and_virtual_time(fast_costs):
    scheduler = FleetScheduler(jobs=2)
    scheduler.run(_jobs(fast_costs, idents=("A1", "B")))
    summary = scheduler.last_summary
    assert summary["jobs"] == 2 and summary["workers"] == 2
    assert summary["virtual_seconds"] == pytest.approx(2 * 0.5 * 3600.0,
                                                       rel=0.2)
    assert summary["wall_seconds"] > 0
    assert summary["worker_wall_seconds"] >= summary["wall_seconds"] * 0.5
    assert set(summary["per_worker"]) == {"1", "2"}
