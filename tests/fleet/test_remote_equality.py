"""Equality: sequential == local pool == remote WorkerServer.

Extends the PR 2/PR 3 equality pattern across the socket boundary: the
same campaign set run inline, on the local ``multiprocessing`` pool,
and through a :class:`WorkerServer` on localhost must produce
field-for-field identical results, rollups, and byte-identical
telemetry artifacts.  The transport is allowed to change *where* a
campaign runs — never *what* it computes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import FuzzerConfig
from repro.core.daemon import Daemon
from repro.device.profiles import profile_by_id
from repro.fleet import CampaignJob, FleetScheduler
from repro.fleet.remote import WorkerServer
from repro.fleet.worker import execute_job
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.timeout(120)

IDENTS = ("A1", "B")


def _jobs(fast_costs, telemetry_dir=None) -> list[CampaignJob]:
    return [CampaignJob(key=f"{ident}#0", index=index,
                        profile=profile_by_id(ident),
                        config=FuzzerConfig(seed=0, campaign_hours=0.5),
                        costs=fast_costs,
                        telemetry_dir=telemetry_dir)
            for index, ident in enumerate(IDENTS)]


@pytest.fixture
def server():
    worker = WorkerServer(slots=2).start()
    yield worker
    worker.stop(drain=False, timeout=5.0)


def test_remote_results_field_for_field_identical(fast_costs, server,
                                                  tmp_path):
    seq_dir, pool_dir, remote_dir = (tmp_path / name
                                     for name in ("seq", "pool", "rem"))
    sequential = FleetScheduler(jobs=1).run(
        _jobs(fast_costs, telemetry_dir=str(seq_dir)))
    pooled = FleetScheduler(jobs=2).run(
        _jobs(fast_costs, telemetry_dir=str(pool_dir)))
    remote = FleetScheduler(workers=["%s:%d" % server.address]).run(
        _jobs(fast_costs, telemetry_dir=str(remote_dir)))

    assert [o.key for o in sequential] == [o.key for o in pooled] \
        == [o.key for o in remote]
    for seq, pool, rem in zip(sequential, pooled, remote):
        assert seq.ok and pool.ok and rem.ok
        # Field-for-field over the campaign result dataclass.
        seq_fields = dataclasses.asdict(seq.result)
        assert dataclasses.asdict(pool.result) == seq_fields
        assert dataclasses.asdict(rem.result) == seq_fields
        assert pool.rollup == seq.rollup
        assert rem.rollup == seq.rollup

    # Telemetry artifacts are byte-identical across all three modes.
    for key in (f"{ident}#0" for ident in IDENTS):
        for name in ("trace.jsonl", "snapshots.jsonl", "metrics.json"):
            seq_bytes = (seq_dir / key / name).read_bytes()
            assert (pool_dir / key / name).read_bytes() == seq_bytes, \
                f"pool {key}/{name} diverged"
            assert (remote_dir / key / name).read_bytes() == seq_bytes, \
                f"remote {key}/{name} diverged"


def test_daemon_remote_fleet_matches_inline(fast_costs, server):
    profiles = [profile_by_id(ident) for ident in IDENTS]
    inline = Daemon(config=FuzzerConfig(seed=0, campaign_hours=0.5),
                    costs=fast_costs)
    remote = Daemon(config=FuzzerConfig(seed=0, campaign_hours=0.5),
                    costs=fast_costs,
                    workers=["%s:%d" % server.address])
    inline.run_fleet(profiles, jobs=1)
    remote.run_fleet(profiles)
    assert remote.results == inline.results
    assert remote.all_bugs() == inline.all_bugs()
    assert remote.coverage_summary() == inline.coverage_summary()


def test_rerun_with_same_keys_reexecutes_identically(fast_costs):
    """The idempotency cache is scoped to one scheduler session: a
    fresh run against the same long-lived server re-executes every job
    (never replays the previous run's cache) — and determinism makes
    the results field-for-field identical anyway."""
    metrics = MetricsRegistry()
    with WorkerServer(slots=2, metrics=metrics) as server:
        address = "%s:%d" % server.address
        first = FleetScheduler(workers=[address]).run(_jobs(fast_costs))
        again = FleetScheduler(workers=[address]).run(_jobs(fast_costs))
    # Both runs executed for real: 2 jobs accepted each, 0 cache hits.
    assert metrics.counter("remote.server.jobs_accepted").value == 4
    assert metrics.counter("remote.server.jobs_cached").value == 0
    assert [o.key for o in again] == [o.key for o in first]
    for left, right in zip(first, again):
        assert right.ok
        assert dataclasses.asdict(right.result) \
            == dataclasses.asdict(left.result)


def test_stale_cache_never_replays_across_runs(fast_costs):
    """Same job key, *different* campaign spec, same long-lived
    server: the second run must compute its own spec's result, not
    replay the first run's cached outcome for the reused key."""
    def job(hours: float) -> CampaignJob:
        return CampaignJob(key="E#0", index=0,
                           profile=profile_by_id("E"),
                           config=FuzzerConfig(seed=0,
                                               campaign_hours=hours),
                           costs=fast_costs)

    with WorkerServer(slots=1) as server:
        address = "%s:%d" % server.address
        first = FleetScheduler(workers=[address]).run([job(0.3)])
        second = FleetScheduler(workers=[address]).run([job(0.6)])
    assert first[0].ok and second[0].ok
    expected = execute_job(job(0.6))
    assert dataclasses.asdict(second[0].result) \
        == dataclasses.asdict(expected.result)
    assert second[0].result.executions != first[0].result.executions


def test_completed_cache_is_bounded(fast_costs):
    """The replay cache is an LRU: a daemon that serves campaigns
    forever retains at most ``completed_cache`` outcomes."""
    with WorkerServer(slots=2, completed_cache=1) as server:
        outcomes = FleetScheduler(
            workers=["%s:%d" % server.address]).run(_jobs(fast_costs))
        assert all(outcome.ok for outcome in outcomes)
        assert len(server._completed) == 1
