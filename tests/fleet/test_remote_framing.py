"""Property-based round-trip tests for the remote fleet frame layer.

The wire contract under test: any payload (empty through multi-64KiB)
survives encode→decode byte-for-byte, regardless of how TCP splits the
reads or how short the writes run; every malformed stream — wrong
magic, wrong version, corrupt payload, truncated frame, absurd length —
is rejected with a *typed* error, never silently resynchronized.
"""

from __future__ import annotations

import struct

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.config import FuzzerConfig  # noqa: E402
from repro.device.profiles import profile_by_id  # noqa: E402
from repro.fleet.jobs import CampaignJob  # noqa: E402
from repro.fleet.remote.framing import (  # noqa: E402
    HEADER,
    MAGIC,
    MAX_FRAME,
    VERSION,
    FrameCorruptError,
    FrameDecoder,
    FrameMagicError,
    FrameTooLargeError,
    FrameTruncatedError,
    FrameVersionError,
    RECORD_TAG,
    RecordPayloadError,
    RemoteProtocolError,
    encode_frame,
    pack_message,
    pack_record,
    read_frame,
    unpack_message,
    unpack_record,
    write_frame,
)
from repro.fleet.worker import WorkerMessage  # noqa: E402


def _feed_chunked(data: bytes, sizes: list[int]) -> list[bytes]:
    """Push ``data`` through a decoder in the given chunk sizes,
    cycling; returns every decoded payload."""
    decoder = FrameDecoder()
    payloads: list[bytes] = []
    position = 0
    index = 0
    while position < len(data):
        step = sizes[index % len(sizes)] if sizes else len(data)
        payloads.extend(decoder.feed(data[position:position + step]))
        position += step
        index += 1
    decoder.close()  # raises if anything was left half-read
    return payloads


# ----------------------------------------------------------------------
# round-trips
# ----------------------------------------------------------------------

@settings(max_examples=75, deadline=None)
@given(payload=st.binary(max_size=4096))
def test_roundtrip_single_feed(payload):
    assert FrameDecoder().feed(encode_frame(payload)) == [payload]


@settings(max_examples=75, deadline=None)
@given(payload=st.binary(max_size=2048),
       sizes=st.lists(st.integers(min_value=1, max_value=97),
                      min_size=1, max_size=8))
def test_roundtrip_split_reads(payload, sizes):
    """TCP may fragment anywhere, including inside the header."""
    assert _feed_chunked(encode_frame(payload), sizes) == [payload]


@settings(max_examples=40, deadline=None)
@given(payloads=st.lists(st.binary(max_size=512), min_size=1,
                         max_size=5),
       sizes=st.lists(st.integers(min_value=1, max_value=311),
                      min_size=1, max_size=6))
def test_roundtrip_coalesced_frames(payloads, sizes):
    """Several frames in one stream come out in order, whatever the
    read fragmentation."""
    stream = b"".join(encode_frame(p) for p in payloads)
    assert _feed_chunked(stream, sizes) == payloads


@pytest.mark.parametrize("size", [0, 1, 64 * 1024 - 1, 64 * 1024,
                                  64 * 1024 + 1, 1_000_000])
def test_roundtrip_boundary_sizes(size):
    """Zero, one, and the >64KiB sizes a naive u16 length would break."""
    payload = bytes(index % 251 for index in range(size))
    frame = encode_frame(payload)
    assert FrameDecoder().feed(frame) == [payload]
    buffer = bytearray(frame)
    assert read_frame(lambda n: _take(buffer, n)) == payload


def _take(buffer: bytearray, count: int) -> bytes:
    chunk = bytes(buffer[:count])
    del buffer[:count]
    return chunk


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(max_size=2048),
       cap=st.integers(min_value=1, max_value=64))
def test_partial_writes_loop_to_completion(payload, cap):
    """A writer that accepts at most ``cap`` bytes per call still emits
    one well-formed frame."""
    sink = bytearray()

    def stingy_write(data) -> int:
        accepted = bytes(data)[:cap]
        sink.extend(accepted)
        return len(accepted)

    sent = write_frame(stingy_write, payload)
    assert sent == len(sink)
    assert FrameDecoder().feed(bytes(sink)) == [payload]


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(max_size=2048),
       step=st.integers(min_value=1, max_value=13))
def test_read_frame_survives_short_reads(payload, step):
    buffer = bytearray(encode_frame(payload))
    assert read_frame(lambda n: _take(buffer, min(n, step))) == payload
    assert read_frame(lambda n: _take(buffer, n)) is None  # clean EOF


# ----------------------------------------------------------------------
# rejection: every malformed stream gets a typed error
# ----------------------------------------------------------------------

def _header(magic=MAGIC, version=VERSION, crc=0, length=0) -> bytes:
    return HEADER.pack(magic, version, crc, length)


def test_version_mismatch_rejected_with_clear_error():
    frame = bytearray(encode_frame(b"hello"))
    struct.pack_into("!H", frame, 4, VERSION + 1)
    with pytest.raises(FrameVersionError) as excinfo:
        FrameDecoder().feed(bytes(frame))
    message = str(excinfo.value)
    assert str(VERSION + 1) in message and str(VERSION) in message


def test_bad_magic_rejected():
    with pytest.raises(FrameMagicError):
        FrameDecoder().feed(_header(magic=b"HTTP"))
    with pytest.raises(FrameMagicError):
        read_frame(lambda n, b=bytearray(_header(magic=b"XXXX")):
                   _take(b, n))


def test_corrupt_payload_rejected():
    frame = bytearray(encode_frame(b"payload-bytes"))
    frame[-1] ^= 0xFF
    with pytest.raises(FrameCorruptError):
        FrameDecoder().feed(bytes(frame))


def test_oversize_length_rejected_before_allocation():
    with pytest.raises(FrameTooLargeError):
        FrameDecoder().feed(_header(length=MAX_FRAME + 1))
    with pytest.raises(FrameTooLargeError):
        encode_frame(bytes(MAX_FRAME + 1))
    buffer = bytearray(_header(length=MAX_FRAME + 1))
    with pytest.raises(FrameTooLargeError):
        read_frame(lambda n: _take(buffer, n))


@settings(max_examples=40, deadline=None)
@given(payload=st.binary(min_size=1, max_size=512),
       keep=st.integers(min_value=1, max_value=200))
def test_truncated_stream_is_a_typed_error(payload, keep):
    frame = encode_frame(payload)
    cut = frame[:min(keep, len(frame) - 1)]
    decoder = FrameDecoder()
    decoder.feed(cut)
    with pytest.raises(FrameTruncatedError):
        decoder.close()
    buffer = bytearray(cut)
    with pytest.raises(FrameTruncatedError):
        read_frame(lambda n: _take(buffer, n))


def test_every_frame_error_is_a_remote_protocol_error():
    for kind in (FrameMagicError, FrameVersionError, FrameTooLargeError,
                 FrameCorruptError, FrameTruncatedError):
        assert issubclass(kind, RemoteProtocolError)


# ----------------------------------------------------------------------
# message payloads
# ----------------------------------------------------------------------

def test_message_roundtrip_with_job_spec(fast_costs):
    job = CampaignJob(key="A1#0", index=0, profile=profile_by_id("A1"),
                      config=FuzzerConfig(seed=3, campaign_hours=0.5),
                      costs=fast_costs)
    message = WorkerMessage("job", job.key, {"job": job, "attempt": 2})
    out = unpack_message(pack_message(message))
    assert out.kind == "job" and out.key == "A1#0"
    assert out.data["attempt"] == 2
    assert out.data["job"] == job


def test_garbage_payload_is_a_typed_error():
    with pytest.raises(RemoteProtocolError):
        unpack_message(b"\x00not-a-pickle")
    with pytest.raises(RemoteProtocolError):
        unpack_message(pack_message(WorkerMessage("x", "y", {}))[:-2]
                       + b"zz")


# ----------------------------------------------------------------------
# record-stream payloads (the live telemetry feed)
# ----------------------------------------------------------------------

def test_record_roundtrip_through_a_frame():
    record = {"type": "snapshot", "t": 1800.0, "executions": 42,
              "per_driver_delta": {"ion": 3}}
    decoder = FrameDecoder()
    payloads = decoder.feed(encode_frame(pack_record(record)))
    assert [unpack_record(p) for p in payloads] == [record]


def test_record_payload_is_tagged_json_not_pickle():
    payload = pack_record({"type": "bug", "t": 1.0})
    assert payload.startswith(RECORD_TAG)
    # Pickled fleet messages start with the pickle opcode, so the two
    # payload kinds can never be confused.
    assert not pack_message(WorkerMessage("hb", "k", {})).startswith(
        RECORD_TAG)


def test_fleet_message_on_a_stream_port_is_a_typed_error():
    with pytest.raises(RecordPayloadError):
        unpack_record(pack_message(WorkerMessage("job", "k", {})))


def test_record_on_a_fleet_port_is_a_typed_error():
    with pytest.raises(RemoteProtocolError):
        unpack_message(pack_record({"type": "snapshot"}))


def test_undecodable_record_is_a_typed_error():
    with pytest.raises(RecordPayloadError):
        unpack_record(RECORD_TAG + b"{not json")
    with pytest.raises(RecordPayloadError):
        unpack_record(RECORD_TAG + b"[1, 2]")  # array, not an object


def test_record_errors_are_remote_protocol_errors():
    assert issubclass(RecordPayloadError, RemoteProtocolError)
