"""Fault-injecting frame proxy for the remote fleet tests.

A :class:`FrameProxy` sits between a :class:`FleetScheduler` and a
:class:`~repro.fleet.remote.server.WorkerServer`, decodes the framed
stream in both directions, and asks a policy what to do with each
message: forward it, drop it, duplicate it, delay it, forward half of
it and cut the link (truncate), or cut the link outright.  Reconnects
land back on the proxy, so every recovery path runs through the same
fault policy.

Policies are callables ``policy(direction, message) -> action`` where
``direction`` is ``"up"`` (scheduler→server) or ``"down"``
(server→scheduler) and ``message`` is the decoded
:class:`~repro.fleet.worker.WorkerMessage`.  Actions:

* ``"pass"`` — forward unchanged (the default);
* ``"drop"`` — swallow the frame;
* ``"dup"`` — forward it twice;
* ``("delay", seconds)`` — sleep, then forward;
* ``"truncate"`` — forward half the encoded frame, then cut the link;
* ``"close"`` — cut the link without forwarding.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable

from repro.fleet.remote.framing import (
    FrameDecoder,
    RemoteProtocolError,
    encode_frame,
    unpack_message,
)

Policy = Callable[[str, Any], Any]


def passthrough(_direction: str, _message: Any) -> str:
    return "pass"


class _Session:
    """One proxied scheduler connection and its upstream twin."""

    def __init__(self, proxy: "FrameProxy", client: socket.socket) -> None:
        self.proxy = proxy
        self.client = client
        self.upstream = socket.create_connection(proxy.upstream,
                                                 timeout=5.0)
        self.dead = threading.Event()
        for direction, src, dst in (("up", client, self.upstream),
                                    ("down", self.upstream, client)):
            thread = threading.Thread(
                target=self._pump, args=(direction, src, dst),
                name=f"proxy-{direction}", daemon=True)
            thread.start()

    def cut(self) -> None:
        """Sever both sides of this session."""
        self.dead.set()
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _pump(self, direction: str, src: socket.socket,
              dst: socket.socket) -> None:
        decoder = FrameDecoder()
        src.settimeout(0.2)
        while not self.dead.is_set():
            try:
                data = src.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:
                break
            try:
                payloads = decoder.feed(data)
            except RemoteProtocolError:
                break  # upstream corrupted (shouldn't happen)
            for payload in payloads:
                if not self._relay(direction, payload, dst):
                    return
        self.cut()

    def _relay(self, direction: str, payload: bytes,
               dst: socket.socket) -> bool:
        message = unpack_message(payload)
        action = self.proxy.policy(direction, message)
        self.proxy.log.append((direction, message.kind, action))
        frame = encode_frame(payload)
        try:
            if action == "drop":
                return True
            if action == "dup":
                dst.sendall(frame + frame)
                return True
            if isinstance(action, tuple) and action[0] == "delay":
                time.sleep(action[1])
                dst.sendall(frame)
                return True
            if action == "truncate":
                dst.sendall(frame[:max(len(frame) // 2, 1)])
                self.cut()
                return False
            if action == "close":
                self.cut()
                return False
            dst.sendall(frame)
            return True
        except OSError:
            self.cut()
            return False


class FrameProxy:
    """Accepts scheduler connections and relays frames with faults."""

    def __init__(self, upstream: tuple[str, int],
                 policy: Policy = passthrough) -> None:
        self.upstream = upstream
        self.policy = policy
        #: (direction, message kind, action) per observed frame.
        self.log: list[tuple[str, str, Any]] = []
        self._sessions: list[_Session] = []
        self._stopping = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        host, port = self._listener.getsockname()[:2]
        #: Give this to the scheduler as the worker address.
        self.address = f"{host}:{port}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="proxy-accept", daemon=True)
        self._accept_thread.start()

    def refuse_new_connections(self) -> None:
        """Simulate the worker host vanishing: reconnects now fail."""
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def stop(self) -> None:
        self.refuse_new_connections()
        for session in list(self._sessions):
            session.cut()
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "FrameProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _peer = self._listener.accept()
            except OSError:
                return
            try:
                self._sessions.append(_Session(self, client))
            except OSError:
                client.close()
