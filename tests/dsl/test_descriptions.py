"""Tests for the syzlang-lite description registry."""

import pytest

from repro.device.profiles import profile_by_id
from repro.dsl.descriptions import (
    DescriptionRegistry,
    SyscallDesc,
    build_descriptions,
    consumed_resources,
    sanitize,
)


def test_sanitize():
    assert sanitize("/dev/dri/card0") == "dev_dri_card0"
    assert sanitize("iio:device0") == "iio_device0"


def test_build_public_registry_a1(registry_a1):
    names = registry_a1.names()
    assert "openat$tcpc0" in names
    assert "ioctl$raw_tcpc0" in names
    # Vendor TCPC ioctls are NOT publicly described.
    assert "ioctl$TCPC_IOC_PROBE" not in names
    # Standard DRM ioctls are.
    assert "ioctl$DRM_IOC_MODE_PAGE_FLIP" in names
    # But the vendor vsync extension is not.
    assert "ioctl$DRM_IOC_VSYNC_CLIENT" not in names


def test_build_vendor_registry_a1(registry_a1_vendor):
    names = registry_a1_vendor.names()
    assert "ioctl$TCPC_IOC_PROBE" in names
    assert "ioctl$DRM_IOC_VSYNC_CLIENT" in names
    assert "ioctl$VCODEC_IOC_INIT" in names


def test_vendor_write_spec_gated():
    public = build_descriptions(profile_by_id("A2"))
    assert public.get("write$hci0").write_fields == ()
    full = build_descriptions(profile_by_id("A2"), vendor_interfaces=True)
    assert full.get("write$hci0").write_fields


def test_socket_family_descs(registry_a1):
    assert registry_a1.get("socket$bt_l2cap").domain == 31
    assert registry_a1.get("bind$bt_l2cap").addr_fields
    assert registry_a1.get("setsockopt$bt_l2cap_L2CAP_OPTIONS").opt_fields


def test_producers_index(registry_a1):
    fd_producers = {d.name for d in registry_a1.producers_of("fd_tcpc0")}
    assert fd_producers == {"openat$tcpc0", "dup$tcpc0"}
    assert "sock_bt_l2cap" in registry_a1.resource_kinds()


def test_typed_producers_present_in_vendor_registry(registry_a1_vendor):
    producers = {d.name
                 for d in registry_a1_vendor.producers_of("drm_handle")}
    assert "ioctl$DRM_IOC_MODE_CREATE_DUMB" in producers


def test_consumed_resources():
    desc = SyscallDesc(name="x", kind="close", syscall="close",
                       fd_resource="fd_q")
    assert consumed_resources(desc) == ["fd_q"]


def test_duplicate_name_rejected():
    registry = DescriptionRegistry()
    desc = SyscallDesc(name="a", kind="open", syscall="openat")
    registry.add(desc)
    with pytest.raises(ValueError):
        registry.add(desc)


def test_by_kind(registry_a1):
    opens = registry_a1.by_kind("open")
    assert all(d.kind == "open" for d in opens)
    assert len(opens) == 9  # A1's nine char devices


def test_every_desc_maps_to_real_syscall(registry_a1):
    from repro.kernel.syscalls import SYSCALL_NRS
    for name in registry_a1.names():
        assert registry_a1.get(name).syscall in SYSCALL_NRS


def test_path_set_on_chardev_descs(registry_a1):
    for name in registry_a1.names():
        desc = registry_a1.get(name)
        if desc.kind in ("open", "write", "ioctl", "ioctl_raw"):
            if "bt_l2cap" not in name:
                assert desc.path.startswith("/dev/"), name
