"""Tests for DSL text serialization and parsing (incl. round-trip)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DslParseError
from repro.dsl.model import (
    HalCall,
    Program,
    ResourceRef,
    StructValue,
    SyscallCall,
)
from repro.dsl.text import parse_program, serialize_program


def test_serialize_basic():
    p = Program([SyscallCall("openat$x", (2,))])
    assert serialize_program(p) == "r0 = openat$x(2)"


def test_roundtrip_all_value_types():
    p = Program([
        SyscallCall("openat$x", (2,)),
        SyscallCall("ioctl$A", (ResourceRef(0), 0x1234, None, True, False,
                                b"\x00\xFF", "str \"quoted\"", 1.5)),
        HalCall("vendor.s", "m", (ResourceRef(1),
                                  StructValue("spec$x", {"a": 1,
                                                         "b": b"zz"}))),
    ])
    text = serialize_program(p)
    q = parse_program(text)
    assert serialize_program(q) == text
    assert q.calls[1].args[5] == b"\x00\xFF"
    assert q.calls[1].args[6] == 'str "quoted"'
    assert q.calls[2].args[1].values == {"a": 1, "b": b"zz"}


def test_parse_hal_call():
    q = parse_program('r0 = hal$vendor.usb.negotiate(9000, 2000)')
    call = q.calls[0]
    assert call.is_hal
    assert call.service == "vendor.usb"
    assert call.method == "negotiate"
    assert call.args == (9000, 2000)


def test_parse_comments_and_blanks():
    text = "# a comment\n\nr0 = openat$x(0)\n"
    assert len(parse_program(text)) == 1


def test_parse_rejects_garbage():
    with pytest.raises(DslParseError):
        parse_program("not a call")


def test_parse_rejects_bad_numbering():
    with pytest.raises(DslParseError):
        parse_program("r1 = openat$x(0)")


def test_parse_rejects_forward_ref():
    from repro.errors import DslError
    with pytest.raises(DslError):
        parse_program("r0 = close$x(r5)")


def test_parse_negative_and_hex_ints():
    q = parse_program("r0 = openat$x(-3, 0xFF)")
    assert q.calls[0].args == (-3, 255)


def test_parse_unterminated_string():
    with pytest.raises(DslParseError):
        parse_program('r0 = openat$x("oops)')


def test_empty_program():
    assert len(parse_program("")) == 0
    assert serialize_program(Program()) == ""


_VALUES = st.one_of(
    st.integers(min_value=-2**31, max_value=2**63 - 1),
    st.booleans(),
    st.none(),
    st.binary(max_size=32),
    st.text(alphabet=st.characters(blacklist_categories=("Cs",),
                                   blacklist_characters="\n\r"),
            max_size=16),
)


@given(st.lists(_VALUES, max_size=5))
def test_roundtrip_property(args):
    p = Program([SyscallCall("openat$x", tuple(args))])
    text = serialize_program(p)
    q = parse_program(text)
    assert serialize_program(q) == text


@given(st.dictionaries(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    st.one_of(st.integers(min_value=0, max_value=2**32),
              st.binary(max_size=8)),
    max_size=4))
def test_struct_roundtrip_property(values):
    p = Program([SyscallCall("x$y", (StructValue("spec", values),))])
    text = serialize_program(p)
    q = parse_program(text)
    assert q.calls[0].args[0].values == values
