"""Tests for the DSL program model."""

import pytest

from repro.errors import DslError
from repro.dsl.model import (
    HalCall,
    Program,
    ResourceRef,
    StructValue,
    SyscallCall,
)


def prog():
    return Program([
        SyscallCall("openat$x", (2,)),
        SyscallCall("ioctl$A", (ResourceRef(0, "fd_x"),
                                StructValue("ioctl$A", {"h": ResourceRef(0)}))),
        HalCall("svc", "m", (ResourceRef(1),)),
        SyscallCall("close$x", (ResourceRef(0),)),
    ])


def test_labels():
    assert prog().labels() == ["openat$x", "ioctl$A", "svc.m", "close$x"]


def test_validate_accepts_backward_refs():
    prog().validate()


def test_validate_rejects_forward_ref():
    p = Program([SyscallCall("a", (ResourceRef(1),)),
                 SyscallCall("b", ())])
    with pytest.raises(DslError):
        p.validate()


def test_validate_rejects_self_ref():
    p = Program([SyscallCall("a", (ResourceRef(0),))])
    with pytest.raises(DslError):
        p.validate()


def test_copy_is_deep_for_structs():
    p = prog()
    q = p.copy()
    struct_arg = q.calls[1].args[1]
    struct_arg.values["h"] = 42
    assert isinstance(p.calls[1].args[1].values["h"], ResourceRef)


def test_arg_refs_finds_nested():
    p = prog()
    refs = Program.arg_refs(p.calls[1])
    assert len(refs) == 2


def test_drop_call_removes_dependents():
    p = prog()
    q = p.drop_call(0)
    # Everything referenced r0 transitively; all gone.
    assert len(q) == 0


def test_drop_call_remaps_refs():
    p = Program([
        SyscallCall("a", ()),
        SyscallCall("b", ()),
        SyscallCall("c", (ResourceRef(1),)),
    ])
    q = p.drop_call(0)
    q.validate()
    assert len(q) == 2
    assert q.calls[1].args[0].index == 0


def test_drop_tail_call():
    p = prog()
    q = p.drop_call(3)
    assert len(q) == 3
    q.validate()


def test_drop_keeps_original_untouched():
    p = prog()
    p.drop_call(1)
    assert len(p) == 4


def test_hal_call_label_and_flag():
    call = HalCall("vendor.usb", "negotiate", (1, 2))
    assert call.label == "vendor.usb.negotiate"
    assert call.is_hal
    assert not SyscallCall("openat$x").is_hal
