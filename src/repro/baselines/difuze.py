"""Difuze-lite baseline (commit ``3290997`` in the paper's evaluation).

Difuze performs *interface-aware* kernel-driver fuzzing: a static
analysis of the firmware recovers each driver's ioctl command values and
argument structure layouts, and MangoFuzz (built on Peach) generates
type-aware ``ioctl()`` invocations from those specifications — with no
coverage feedback and no corpus evolution.

Our surrogate for the static-analysis pass reads the same machine-
readable interface specs the drivers publish (what Difuze recovers from
``copy_from_user`` reachability in the real kernel), then runs a
generation-only campaign restricted to ``openat``/``ioctl``/``close``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bugs import BugTracker
from repro.core.config import IOCTL_ONLY_FILTER, FuzzerConfig
from repro.core.engine import CampaignResult
from repro.core.exec.broker import ExecutionBroker
from repro.core.generation.values import gen_field
from repro.device.adb import AdbConnection
from repro.device.device import AndroidDevice
from repro.dsl.descriptions import (
    DescriptionRegistry,
    SyscallDesc,
    build_descriptions,
)
from repro.dsl.model import Program, ResourceRef, StructValue, SyscallCall
from repro.obs.telemetry import Telemetry


@dataclass(frozen=True)
class ExtractedInterface:
    """One recovered ioctl interface (Difuze's static-analysis output)."""

    device_path: str
    ioctl_name: str
    request: int
    arg_kind: str
    field_count: int


def extract_interfaces(device: AndroidDevice) -> list[ExtractedInterface]:
    """Static-analysis surrogate: recover the ioctl command surface.

    Difuze's static analysis works on the firmware itself, so — unlike
    public syzlang — it does recover proprietary vendor interfaces.
    """
    registry = build_descriptions(device.profile, vendor_interfaces=True)
    interfaces: list[ExtractedInterface] = []
    for name in registry.names():
        desc = registry.get(name)
        if desc.kind != "ioctl":
            continue
        path = next((registry.get(n).path for n in registry.names()
                     if registry.get(n).kind == "open"
                     and registry.get(n).driver == desc.driver), "")
        interfaces.append(ExtractedInterface(
            device_path=path, ioctl_name=desc.name, request=desc.request,
            arg_kind=desc.arg, field_count=len(desc.fields)))
    return interfaces


class DifuzeEngine:
    """Generation-only interface fuzzing campaign."""

    def __init__(self, device: AndroidDevice,
                 config: FuzzerConfig | None = None, seed: int = 0,
                 campaign_hours: float = 48.0,
                 telemetry: Telemetry | None = None) -> None:
        self.device = device
        self.config = config or FuzzerConfig(
            name="difuze", seed=seed, campaign_hours=campaign_hours,
            enable_hal=False, enable_relations=False, enable_hcov=False,
            ioctl_only=True)
        self.rng = random.Random(self.config.seed)
        self.adb = AdbConnection(device)
        self.telemetry = telemetry or Telemetry.disabled()
        self.telemetry.attach_device(device)
        self.registry: DescriptionRegistry = build_descriptions(
            device.profile, vendor_interfaces=True)
        self.broker = ExecutionBroker(
            device, self.registry, IOCTL_ONLY_FILTER,
            metrics=self.telemetry.metrics if self.telemetry.enabled
            else None)
        self.adb.forward(self.broker.SOCKET_NAME, self.broker.rpc_handler)
        self.interfaces = extract_interfaces(device)
        self.bugs = BugTracker(device.profile.ident)
        self.executions = 0
        self.reboots = 0
        self.timeline: list[tuple[float, int]] = []
        self._kernel_seen: set[int] = set()
        self._ioctl_by_driver: dict[str, list[SyscallDesc]] = {}
        for name in self.registry.names():
            desc = self.registry.get(name)
            if desc.kind == "ioctl":
                self._ioctl_by_driver.setdefault(desc.driver, []).append(desc)

    # ------------------------------------------------------------------

    def _open_desc(self, driver: str) -> SyscallDesc | None:
        for name in self.registry.names():
            desc = self.registry.get(name)
            if desc.kind == "open" and desc.driver == driver:
                return desc
        return None

    def _generate(self) -> Program:
        """MangoFuzz-style: open a device, issue 1–4 typed ioctls."""
        driver = self.rng.choice(sorted(self._ioctl_by_driver))
        open_desc = self._open_desc(driver)
        if open_desc is None:
            driver = next(d for d in sorted(self._ioctl_by_driver)
                          if self._open_desc(d) is not None)
            open_desc = self._open_desc(driver)
        calls: list = [SyscallCall(open_desc.name, (2,))]
        for _ in range(self.rng.randint(1, 4)):
            desc = self.rng.choice(self._ioctl_by_driver[driver])
            arg = self._ioctl_arg(desc)
            calls.append(SyscallCall(desc.name, (ResourceRef(0), arg)
                                     if arg is not None
                                     else (ResourceRef(0),)))
        program = Program(calls)
        program.validate()
        return program

    def _ioctl_arg(self, desc: SyscallDesc):
        if desc.arg == "none":
            return None
        if desc.arg == "int":
            field = desc.int_kind
            if field is not None:
                value = gen_field(self.rng, field)
                return value if isinstance(value, int) else 0
            return self.rng.randint(0, 1 << 16)
        if desc.arg == "buffer":
            return bytes(self.rng.randint(0, 255)
                         for _ in range(self.rng.randint(0, 32)))
        values = {}
        for field in desc.fields:
            value = gen_field(self.rng, field)
            if isinstance(value, ResourceRef):
                # Difuze has no resource tracking: guess small ints.
                value = self.rng.randint(0, 8)
            values[field.name] = value
        return StructValue(desc.name, values)

    def _telemetry_sample(self, force: bool = False) -> None:
        """Poll bridged channels and take a due monitor snapshot."""
        if not self.telemetry.enabled:
            return
        self.telemetry.poll()
        if force or self.telemetry.monitor.due(self.device.clock):
            self.telemetry.monitor.sample(
                self.device.clock,
                executions=self.executions,
                kernel_coverage=len(self._kernel_seen),
                corpus_size=0,
                reboots=self.reboots,
                bugs=len(self.bugs.reports),
                per_driver=self.device.per_driver_coverage(),
                latency=self.broker.latency_summary())

    # ------------------------------------------------------------------

    def run(self) -> CampaignResult:
        """Run the generation-only campaign."""
        start = self.device.clock
        deadline = start + self.config.campaign_hours * 3600.0
        next_sample = start
        tracer = self.telemetry.tracer
        self.telemetry.monitor.start(start)
        while self.device.clock < deadline:
            while next_sample <= self.device.clock:
                self.timeline.append((next_sample - start,
                                      len(self._kernel_seen)))
                next_sample += self.config.sample_interval
            self._telemetry_sample()
            with tracer.span("generate"):
                program = self._generate()
            with tracer.span("execute"):
                raw = self.adb.rpc(self.broker.SOCKET_NAME,
                                   self.broker.wire_program(program))
            self.executions += 1
            before = len(self._kernel_seen)
            self._kernel_seen.update(raw["kcov"])
            if len(self._kernel_seen) > before:
                tracer.event("new-coverage",
                             fresh=len(self._kernel_seen) - before,
                             total=len(self._kernel_seen))
            if raw["crashes"]:
                with tracer.span("triage"):
                    fresh_bugs = self.bugs.record(raw["crashes"],
                                                  self.device.clock, program)
                for bug in fresh_bugs:
                    tracer.event("crash", title=bug.title,
                                 component=bug.component,
                                 bug_kind=bug.kind)
            if raw["needs_reboot"] or (raw["crashes"]
                                       and self.config.reboot_on_crash):
                with tracer.span("reboot"):
                    self.adb.shell("reboot")
                    self.broker.on_reboot()
                self.reboots += 1
                tracer.event("reboot", count=self.reboots)
        self.timeline.append((self.config.campaign_hours * 3600.0,
                              len(self._kernel_seen)))
        self._telemetry_sample(force=True)
        return CampaignResult(
            tool=self.config.name,
            device=self.device.profile.ident,
            seed=self.config.seed,
            duration_hours=self.config.campaign_hours,
            timeline=list(self.timeline),
            bugs=self.bugs.all_reports(),
            kernel_coverage=len(self._kernel_seen),
            joint_coverage=len(self._kernel_seen),
            per_driver=self.device.per_driver_coverage(),
            driver_totals=self.device.driver_block_estimates(),
            executions=self.executions,
            corpus_size=0,
            interface_count=len(self.interfaces),
            reboots=self.reboots,
            latency=self.broker.latency_summary(),
        )
