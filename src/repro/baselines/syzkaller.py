"""Syzkaller-lite baseline.

A faithful miniature of Syzkaller's algorithmic skeleton (commit
``fb88827`` in the paper's evaluation):

* generation from syscall descriptions (the same syzlang-lite registry
  DroidFuzz uses, so neither tool has a description advantage);
* a *static* choice table: call-pair priorities computed from resource
  production/consumption and same-driver affinity — Syzkaller's static
  priorities, with no runtime relation learning;
* kcov-guided corpus evolution with minimization;
* syscalls only: the HAL is unreachable from its executor, and there is
  no directional HAL feedback.
"""

from __future__ import annotations

import random

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.core.generation.generator import PayloadGenerator
from repro.device.device import AndroidDevice
from repro.dsl.descriptions import DescriptionRegistry, consumed_resources
from repro.dsl.model import Program, SyscallCall


class ChoiceTable:
    """Static call-pair priorities (Syzkaller's ``prios``).

    ``prio(a, b)`` is high when ``b`` consumes a resource ``a``
    produces, medium when both touch the same driver, low otherwise.
    """

    def __init__(self, registry: DescriptionRegistry) -> None:
        self._registry = registry
        self._prios: dict[str, list[tuple[str, float]]] = {}
        names = registry.names()
        descs = {n: registry.get(n) for n in names}
        for a_name, a in descs.items():
            row: list[tuple[str, float]] = []
            for b_name, b in descs.items():
                if a_name == b_name:
                    continue
                prio = 0.1
                if a.produces and a.produces in consumed_resources(b):
                    prio = 3.0
                elif a.driver and a.driver == b.driver:
                    prio = 1.0
                row.append((b_name, prio))
            self._prios[a_name] = row

    def next_call(self, prev: str, rng: random.Random) -> str | None:
        """Sample a follow-up call biased by static priority."""
        row = self._prios.get(prev)
        if not row:
            return None
        names = [name for name, _ in row]
        weights = [weight for _, weight in row]
        return rng.choices(names, weights=weights, k=1)[0]


class SyzkallerGenerator(PayloadGenerator):
    """Description-driven generation with the static choice table."""

    def __init__(self, registry, relations, rng, choice_table: ChoiceTable,
                 max_calls: int = 8) -> None:
        super().__init__(registry, None, relations, rng,
                         relations_enabled=False, max_walk=max_calls)
        self._choice_table = choice_table
        self._max_calls = max_calls

    def generate(self) -> Program:
        base = self._relations.pick_base(self._rng)
        labels = [base]
        current = base
        while len(labels) < self._max_calls and self._rng.random() > 0.33:
            nxt = self._choice_table.next_call(current, self._rng)
            if nxt is None:
                break
            labels.append(nxt)
            current = nxt
        calls = [self.instantiate(label) for label in labels]
        calls = [c for c in calls if c is not None]
        if not calls:
            calls = [SyscallCall(base)]
        return self.resolve_resources(calls)


def syzkaller_config(seed: int = 0, campaign_hours: float = 48.0,
                     **overrides) -> FuzzerConfig:
    """Configuration matching Syzkaller's capabilities."""
    return FuzzerConfig(
        name="syzkaller", seed=seed, campaign_hours=campaign_hours,
        enable_hal=False, enable_relations=False, enable_hcov=False,
        **overrides)


class SyzkallerEngine(FuzzingEngine):
    """Syzkaller-lite campaign driver."""

    def __init__(self, device: AndroidDevice,
                 config: FuzzerConfig | None = None, seed: int = 0,
                 campaign_hours: float = 48.0, telemetry=None) -> None:
        if config is None:
            config = syzkaller_config(seed=seed,
                                      campaign_hours=campaign_hours)
        super().__init__(device, config, telemetry=telemetry)
        # Swap in the static-choice-table generator; the mutator keeps
        # working since it only uses the generator's public surface.
        self._choice_table = ChoiceTable(self.registry)
        self.generator = SyzkallerGenerator(
            self.registry, self.relations, self.rng, self._choice_table,
            max_calls=config.max_walk)
        from repro.core.generation import Mutator
        self.mutator = Mutator(self.generator, self.rng,
                               max_calls=config.max_calls)
