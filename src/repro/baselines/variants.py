"""Tool factory: DroidFuzz, its ablation variants, and the baselines.

One entry point for the benchmark harness: ``make_engine(tool, device)``
builds a ready-to-run campaign engine for any of the evaluation's six
tools.

* ``droidfuzz`` — the full system.
* ``droidfuzz-d`` — §V-C.2: the executors and HALs are restricted to
  ``open``/``close``/``ioctl`` (seccomp-surrogate filter); used for the
  like-for-like comparison with Difuze.
* ``df-norel`` — §V-D.1: relation learning off, randomized dependency
  generation.
* ``df-nohcov`` — §V-D.2: HAL directional coverage removed from the
  feedback (kernel kcov only).
* ``syzkaller`` — the Syzkaller-lite baseline.
* ``difuze`` — the Difuze-lite baseline.
"""

from __future__ import annotations

from repro.baselines.difuze import DifuzeEngine
from repro.baselines.syzkaller import SyzkallerEngine, syzkaller_config
from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.device.device import AndroidDevice
from repro.obs.telemetry import Telemetry

TOOLS = ("droidfuzz", "droidfuzz-d", "df-norel", "df-nohcov",
         "syzkaller", "difuze")


def config_for(tool: str, seed: int = 0,
               campaign_hours: float = 48.0) -> FuzzerConfig:
    """The configuration a tool runs with.

    Raises:
        ValueError: unknown tool name.
    """
    base = FuzzerConfig(name=tool, seed=seed, campaign_hours=campaign_hours)
    if tool == "droidfuzz":
        return base
    if tool == "droidfuzz-d":
        return base.variant(ioctl_only=True)
    if tool == "df-norel":
        return base.variant(enable_relations=False)
    if tool == "df-nohcov":
        return base.variant(enable_hcov=False)
    if tool == "syzkaller":
        return syzkaller_config(seed=seed, campaign_hours=campaign_hours)
    if tool == "difuze":
        return base.variant(enable_hal=False, enable_relations=False,
                            enable_hcov=False, ioctl_only=True)
    raise ValueError(f"unknown tool: {tool!r}")


def make_engine(tool: str, device: AndroidDevice, seed: int = 0,
                campaign_hours: float = 48.0,
                telemetry: Telemetry | None = None):
    """Build a campaign engine for one tool on one device.

    All engines report through the same telemetry context, so tool
    comparisons include throughput, not just coverage.
    """
    config = config_for(tool, seed=seed, campaign_hours=campaign_hours)
    if tool == "syzkaller":
        return SyzkallerEngine(device, config, telemetry=telemetry)
    if tool == "difuze":
        return DifuzeEngine(device, config, telemetry=telemetry)
    return FuzzingEngine(device, config, telemetry=telemetry)
