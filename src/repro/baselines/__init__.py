"""Baseline fuzzers and DroidFuzz variants for the evaluation.

* :mod:`repro.baselines.syzkaller` — Syzkaller-lite: description-based
  generation with a *static* choice table plus kcov-guided corpus
  evolution; syscalls only, no HAL, no relation learning.
* :mod:`repro.baselines.difuze` — Difuze-lite: static interface
  extraction plus MangoFuzz-style generation-only ioctl fuzzing, no
  coverage feedback.
* :mod:`repro.baselines.variants` — DroidFuzz-D / -NoRel / -NoHCov
  ablation configurations and the tool factory used by the benchmarks.
"""

from repro.baselines.syzkaller import SyzkallerEngine
from repro.baselines.difuze import DifuzeEngine, extract_interfaces
from repro.baselines.variants import TOOLS, make_engine, config_for

__all__ = ["SyzkallerEngine", "DifuzeEngine", "extract_interfaces",
           "TOOLS", "make_engine", "config_for"]
