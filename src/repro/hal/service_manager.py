"""ServiceManager: the Binder service registry.

The device's HAL services register here; clients (the Android framework,
the Poke app, the HAL executor) resolve proxies by instance name.  The
``list_hals`` method is the ``lshal`` surrogate the probing pass uses to
enumerate running HALs (§IV-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import BinderError
from repro.hal.binder import BinderNode, BinderProxy

if TYPE_CHECKING:
    from repro.hal.service import HalService
    from repro.kernel.kernel import VirtualKernel


class ServiceManager:
    """Name → Binder node registry for one device."""

    def __init__(self, kernel: "VirtualKernel") -> None:
        self._kernel = kernel
        self._nodes: dict[str, BinderNode] = {}

    def add_service(self, service: "HalService") -> BinderNode:
        """Register a HAL service under its instance name."""
        if service.instance_name in self._nodes:
            raise BinderError(
                f"service already registered: {service.instance_name}")
        node = BinderNode(self._kernel, service)
        self._nodes[service.instance_name] = node
        return node

    def get_service(self, name: str, client_pid: int,
                    client_comm: str) -> BinderProxy:
        """Resolve a proxy to a registered service.

        Raises:
            BinderError: no service registered under ``name``.
        """
        node = self._nodes.get(name)
        if node is None:
            raise BinderError(f"no such service: {name}")
        return BinderProxy(node, client_pid, client_comm)

    def list_services(self) -> list[str]:
        """Registered instance names, sorted (``service list`` surrogate)."""
        return sorted(self._nodes)

    def list_hals(self) -> list[tuple[str, str]]:
        """(instance name, interface descriptor) pairs — ``lshal``."""
        return [(name, node.service.interface_descriptor)
                for name, node in sorted(self._nodes.items())]

    def node(self, name: str) -> BinderNode | None:
        """Direct node access (device-internal use)."""
        return self._nodes.get(name)

    def services(self) -> list["HalService"]:
        """All registered service objects."""
        return [node.service for node in self._nodes.values()]
