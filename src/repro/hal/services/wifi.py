"""Wi-Fi HAL.

The vendor connectivity stack: radio bring-up with regulatory domain,
scanning, STA association, and SoftAP hosting with client admission.
Client admission translates the peer's capability word into the kernel's
supported-rates bitmap — a zero-capability client therefore reaches
mac80211's rate-control init with an empty bitmap (kernel bug №10 on the
C2 kiosk firmware).
"""

from __future__ import annotations

from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import wifi_mac80211 as nl
from repro.kernel.ioctl import pack_fields


class WifiHal(HalService):
    """``vendor.wifi`` service."""

    interface_descriptor = "vendor.wifi@1.5::IWifiChip"
    instance_name = "vendor.wifi"

    def __init__(self) -> None:
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._fd = -1
        self._started = False
        self._softap = False
        self._clients = 0

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (self._fd, self._started, self._softap, self._clients)

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        self._fd, self._started, self._softap, self._clients = token

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "start", (), ()),
            HalMethod(2, "stop", (), ()),
            HalMethod(3, "startScan", (), ()),
            HalMethod(4, "getScanResults", (), ("i32",)),
            HalMethod(5, "connect", ("str", "i32"), (),
                      doc="ssid, channel"),
            HalMethod(6, "disconnect", (), ()),
            HalMethod(7, "startSoftAp", ("str", "i32"), ()),
            HalMethod(8, "stopSoftAp", (), ()),
            HalMethod(9, "registerClient", ("bytes", "i32"), (),
                      doc="mac, capability word"),
            HalMethod(10, "kickClient", ("bytes",), ()),
        )

    def sample_args(self, name: str):
        samples = {
            "connect": ("homelan", 6),
            "startSoftAp": ("kiosk-ap", 6),
            "registerClient": (b"\x02\x00\x00\x00\x00\x01", 0x2F),
            "kickClient": (b"\x02\x00\x00\x00\x00\x01",),
        }
        return samples.get(name, super().sample_args(name))

    def framework_scenarios(self):
        # Normal STA use + a hotspot session with two clients.
        return [
            [("start", ()), ("startScan", ()), ("getScanResults", ()),
             ("connect", ("homelan", 6)), ("disconnect", ())],
            [("start", ()), ("startSoftAp", ("kiosk-ap", 6)),
             ("registerClient", (b"\x02\x00\x00\x00\x00\x01", 0x2F)),
             ("registerClient", (b"\x02\x00\x00\x00\x00\x02", 0x07)),
             ("kickClient", (b"\x02\x00\x00\x00\x00\x01",)),
             ("stopSoftAp", ())],
        ]

    # ------------------------------------------------------------------

    def _ensure_node(self) -> bool:
        if self._fd >= 0:
            return True
        fd = self.sys("openat", "/dev/nl80211", 2).ret
        if fd < 0:
            return False
        self._fd = fd
        return True

    def _m_start(self):
        if self._started:
            return Status.INVALID_OPERATION
        if not self._ensure_node():
            return Status.FAILED_TRANSACTION
        out = self.sys("ioctl", self._fd, nl.NL_IOC_SET_POWER, 1)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        self.sys("ioctl", self._fd, nl.NL_IOC_SET_COUNTRY, b"US")
        self._started = True
        return Status.OK

    def _m_stop(self):
        if not self._started:
            return Status.INVALID_OPERATION
        self.sys("ioctl", self._fd, nl.NL_IOC_SET_POWER, 0)
        self._started = False
        self._softap = False
        return Status.OK

    def _m_startScan(self):
        if not self._started:
            return Status.INVALID_OPERATION
        out = self.sys("ioctl", self._fd, nl.NL_IOC_TRIGGER_SCAN, None)
        return Status.OK if out.ok else Status.FAILED_TRANSACTION

    def _m_getScanResults(self):
        if not self._started:
            return Status.INVALID_OPERATION
        out = self.sys("ioctl", self._fd, nl.NL_IOC_GET_SCAN, None)
        if not out.ok:
            return Status.OK, 0
        return Status.OK, 2

    def _m_connect(self, ssid: str, channel: int):
        if not self._started:
            return Status.INVALID_OPERATION
        if not ssid or channel not in (1, 6, 11, 36, 40, 149):
            return Status.BAD_VALUE
        out = self.sys("ioctl", self._fd, nl.NL_IOC_CONNECT,
                       pack_fields(nl._CONNECT_FIELDS,
                                   {"ssid": ssid.encode()[:32],
                                    "channel": channel}))
        return Status.OK if out.ok else Status.FAILED_TRANSACTION

    def _m_disconnect(self):
        if not self._started:
            return Status.INVALID_OPERATION
        out = self.sys("ioctl", self._fd, nl.NL_IOC_DISCONNECT, None)
        return Status.OK if out.ok else Status.INVALID_OPERATION

    def _m_startSoftAp(self, ssid: str, channel: int):
        if not self._started:
            return Status.INVALID_OPERATION
        if not ssid or channel not in (1, 6, 11, 36, 40, 149):
            return Status.BAD_VALUE
        out = self.sys("ioctl", self._fd, nl.NL_IOC_START_AP,
                       pack_fields(nl._CONNECT_FIELDS,
                                   {"ssid": ssid.encode()[:32],
                                    "channel": channel}))
        if not out.ok:
            return Status.FAILED_TRANSACTION
        self._softap = True
        self._clients = 0
        return Status.OK

    def _m_stopSoftAp(self):
        if not self._softap:
            return Status.INVALID_OPERATION
        self.sys("ioctl", self._fd, nl.NL_IOC_STOP_AP, None)
        self._softap = False
        return Status.OK

    def _m_registerClient(self, mac: bytes, caps: int):
        if not self._softap:
            return Status.INVALID_OPERATION
        if len(mac) != 6:
            return Status.BAD_VALUE
        # Vendor translation: low 6 capability bits are the rate bitmap.
        rates = caps & 0x3F
        out = self.sys("ioctl", self._fd, nl.NL_IOC_ADD_STA,
                       pack_fields(nl._ADD_STA_FIELDS,
                                   {"mac": mac, "rates": rates,
                                    "aid": (self._clients % 2007) + 1}))
        if not out.ok:
            return Status.FAILED_TRANSACTION
        self._clients += 1
        return Status.OK

    def _m_kickClient(self, mac: bytes):
        if not self._softap or len(mac) != 6:
            return Status.BAD_VALUE
        out = self.sys("ioctl", self._fd, nl.NL_IOC_DEL_STA, bytes(mac))
        return Status.OK if out.ok else Status.BAD_VALUE
