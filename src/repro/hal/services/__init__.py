"""Vendor HAL services.

Each module implements one proprietary HAL service: a stateful userspace
blob that drives its kernel driver(s) with the correct, vendor-known
call sequences.  On the firmware revisions Table II blames, a
``quirk_*`` flag plants the corresponding native bug.
"""

from repro.hal.services.registry import HAL_FACTORIES, build_hal

__all__ = ["HAL_FACTORIES", "build_hal"]
