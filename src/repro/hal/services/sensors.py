"""Sensors HAL.

The vendor sensor service: maps Android sensor handles onto IIO
channels, manages activation with the correct rearm dance (the IIO
buffer must be disarmed before the scan mask changes), batching rates,
and the poll loop.
"""

from __future__ import annotations

from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import sensors_iio as iio


class SensorsHal(HalService):
    """``vendor.sensors`` service."""

    interface_descriptor = "vendor.sensors@2.0::ISensors"
    instance_name = "vendor.sensors"

    #: Android sensor handle → IIO channel.
    _SENSORS = {1: ("accelerometer-x", 0), 2: ("accelerometer-y", 1),
                3: ("accelerometer-z", 2), 4: ("gyroscope-x", 3),
                5: ("gyroscope-y", 4), 6: ("gyroscope-z", 5)}

    def __init__(self) -> None:
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._iio_fd = -1
        self._active: set[int] = set()
        self._armed = False
        self._events_polled = 0

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (self._iio_fd, set(self._active), self._armed,
                self._events_polled)

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        self._iio_fd, active, self._armed, self._events_polled = token
        self._active = set(active)

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "getSensorsList", (), ("str",)),
            HalMethod(2, "activate", ("i32", "bool"), ()),
            HalMethod(3, "batch", ("i32", "i32"), (),
                      doc="handle, sampling period in ms"),
            HalMethod(4, "poll", ("i32",), ("i32",),
                      doc="max events → events returned"),
            HalMethod(5, "flush", ("i32",), ()),
        )

    def sample_args(self, name: str):
        samples = {
            "activate": (1, True),
            "batch": (1, 20),
            "poll": (16,),
            "flush": (1,),
        }
        return samples.get(name, super().sample_args(name))

    def framework_scenarios(self):
        # Screen-rotation listener: accel active, steady polling.
        return [
            [("getSensorsList", ()), ("activate", (1, True)),
             ("activate", (2, True)), ("activate", (3, True)),
             ("batch", (1, 20))]
            + [("poll", (16,))] * 10
            + [("activate", (1, False)), ("activate", (2, False)),
               ("activate", (3, False))],
        ]

    # ------------------------------------------------------------------

    def _ensure_node(self) -> bool:
        if self._iio_fd >= 0:
            return True
        fd = self.sys("openat", "/dev/iio:device0", 2).ret
        if fd < 0:
            return False
        self._iio_fd = fd
        self.sys("ioctl", fd, iio.IIO_IOC_GET_CHANNELS, None)
        return True

    def _rearm(self) -> bool:
        """Apply the active set: disarm, reprogram scan, rearm."""
        fd = self._iio_fd
        if self._armed:
            self.sys("ioctl", fd, iio.IIO_IOC_BUFFER_DISABLE, None)
            self._armed = False
        for handle in self._active:
            _name, chan = self._SENSORS[handle]
            self.sys("ioctl", fd, iio.IIO_IOC_ENABLE_CHAN, chan)
        if self._active:
            out = self.sys("ioctl", fd, iio.IIO_IOC_BUFFER_ENABLE, None)
            self._armed = out.ok
        return True

    def _m_getSensorsList(self):
        names = ",".join(name for name, _ in self._SENSORS.values())
        return Status.OK, names

    def _m_activate(self, handle: int, enable: bool):
        if handle not in self._SENSORS:
            return Status.BAD_VALUE
        if not self._ensure_node():
            return Status.FAILED_TRANSACTION
        if enable:
            self._active.add(handle)
        else:
            if handle not in self._active:
                return Status.INVALID_OPERATION
            self._active.discard(handle)
            _name, chan = self._SENSORS[handle]
            if self._armed:
                self.sys("ioctl", self._iio_fd, iio.IIO_IOC_BUFFER_DISABLE,
                         None)
                self._armed = False
            self.sys("ioctl", self._iio_fd, iio.IIO_IOC_DISABLE_CHAN, chan)
        self._rearm()
        return Status.OK

    def _m_batch(self, handle: int, period_ms: int):
        if handle not in self._SENSORS or period_ms <= 0:
            return Status.BAD_VALUE
        if not self._ensure_node():
            return Status.FAILED_TRANSACTION
        hz = 1000 // max(period_ms, 1)
        freq = min(iio.FREQ_VALUES, key=lambda f: abs(f - hz))
        was_armed = self._armed
        if was_armed:
            self.sys("ioctl", self._iio_fd, iio.IIO_IOC_BUFFER_DISABLE, None)
            self._armed = False
        self.sys("ioctl", self._iio_fd, iio.IIO_IOC_SET_FREQ, freq)
        self.sys("ioctl", self._iio_fd, iio.IIO_IOC_SET_WATERMARK, 4)
        if was_armed:
            self._rearm()
        return Status.OK

    def _m_poll(self, max_events: int):
        if not 0 < max_events <= 256:
            return Status.BAD_VALUE
        if not self._armed:
            return Status.INVALID_OPERATION
        out = self.sys("read", self._iio_fd,
                       max_events * 2 * max(len(self._active), 1))
        if not out.ok:
            return Status.OK, 0
        events = out.ret // (2 * max(len(self._active), 1))
        self._events_polled += events
        return Status.OK, events

    def _m_flush(self, handle: int):
        if handle not in self._SENSORS:
            return Status.BAD_VALUE
        if self._armed:
            self.sys("read", self._iio_fd, 256)
        return Status.OK
