"""Audio HAL.

The vendor audio flinger backend: opens PCM substreams with negotiated
hw/sw params, streams interleaved frames, and manages standby/pause
state.  No bug is planted here; its value to the fuzzer is that its
syscall traffic walks the ALSA state machine correctly, which random
generation rarely does.
"""

from __future__ import annotations

import copy

from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import audio_pcm as pcm
from repro.kernel.errno import Errno, err
from repro.kernel.ioctl import pack_fields


class AudioHal(HalService):
    """``vendor.audio`` service."""

    interface_descriptor = "vendor.audio@7.0::IDevicesFactory"
    instance_name = "vendor.audio"

    _FRAME_BYTES = {pcm.FMT_S16: 2, pcm.FMT_S24: 4, pcm.FMT_S32: 4,
                    pcm.FMT_FLOAT: 4}

    def __init__(self) -> None:
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._streams: dict[int, dict] = {}
        self._next_stream = 1
        self._master_volume = 1.0

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (copy.deepcopy(self._streams), self._next_stream,
                self._master_volume)

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        streams, self._next_stream, self._master_volume = token
        self._streams = copy.deepcopy(streams)

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "openOutputStream", ("i32", "i32", "i32"), ("i32",),
                      doc="rate, channels, format → stream handle"),
            HalMethod(2, "writeAudio", ("i32", "i32"), ("i32",),
                      doc="handle, frame count → frames written"),
            HalMethod(3, "pauseStream", ("i32", "bool"), ()),
            HalMethod(4, "standby", ("i32",), ()),
            HalMethod(5, "drainStream", ("i32",), ()),
            HalMethod(6, "closeStream", ("i32",), ()),
            HalMethod(7, "setMasterVolume", ("f32",), ()),
            HalMethod(8, "getParameters", (), ("str",)),
        )

    def sample_args(self, name: str):
        samples = {
            "openOutputStream": (48000, 2, pcm.FMT_S16),
            "writeAudio": (1, 256),
            "pauseStream": (1, True),
            "standby": (1,),
            "drainStream": (1,),
            "closeStream": (1,),
            "setMasterVolume": (0.5,),
        }
        return samples.get(name, super().sample_args(name))

    def framework_scenarios(self):
        # Music playback: open, stream a while, pause/resume, teardown.
        return [
            [("openOutputStream", (48000, 2, pcm.FMT_S16))]
            + [("writeAudio", (1, 512))] * 10
            + [("pauseStream", (1, True)), ("pauseStream", (1, False)),
               ("writeAudio", (1, 512)), ("drainStream", (1,)),
               ("closeStream", (1,))],
            [("openOutputStream", (16000, 1, pcm.FMT_S16)),
             ("writeAudio", (1, 160)), ("standby", (1,)),
             ("closeStream", (1,))],
        ]

    # ------------------------------------------------------------------

    def _m_openOutputStream(self, rate: int, channels: int, fmt: int):
        if rate not in pcm.RATE_VALUES or channels not in pcm.CHANNEL_VALUES:
            return Status.BAD_VALUE
        if fmt not in pcm.FORMAT_VALUES:
            return Status.BAD_VALUE
        fd = self.sys("openat", "/dev/snd/pcmC0D0p", 2).ret
        if fd < 0:
            return Status.FAILED_TRANSACTION
        out = self.sys("ioctl", fd, pcm.PCM_IOC_HW_PARAMS,
                       pack_fields(pcm._HW_FIELDS,
                                   {"rate": rate, "channels": channels,
                                    "format": fmt}))
        if not out.ok:
            self.sys("close", fd)
            return Status.FAILED_TRANSACTION
        self.sys("ioctl", fd, pcm.PCM_IOC_SW_PARAMS,
                 pack_fields(pcm._SW_FIELDS,
                             {"start_threshold": 256, "avail_min": 64}))
        self.sys("ioctl", fd, pcm.PCM_IOC_PREPARE, None)
        handle = self._next_stream
        self._next_stream += 1
        self._streams[handle] = {"fd": fd, "channels": channels,
                                 "fmt": fmt, "frames": 0}
        return Status.OK, handle

    def _stream(self, handle: int) -> dict | None:
        return self._streams.get(handle)

    def _m_writeAudio(self, handle: int, frames: int):
        stream = self._stream(handle)
        if stream is None:
            return Status.BAD_VALUE
        if not 0 < frames <= 4096:
            return Status.BAD_VALUE
        frame_bytes = stream["channels"] * self._FRAME_BYTES[stream["fmt"]]
        payload = b"\x00" * min(frames * frame_bytes, 1 << 16)
        payload = payload[:len(payload) - len(payload) % frame_bytes]
        out = self.sys("write", stream["fd"], payload)
        if out.ret == err(Errno.EPIPE):
            # xrun: recover like a real HAL does.
            self.sys("ioctl", stream["fd"], pcm.PCM_IOC_PREPARE, None)
            out = self.sys("write", stream["fd"], payload)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        written = out.ret // frame_bytes
        stream["frames"] += written
        return Status.OK, written

    def _m_pauseStream(self, handle: int, on: bool):
        stream = self._stream(handle)
        if stream is None:
            return Status.BAD_VALUE
        out = self.sys("ioctl", stream["fd"], pcm.PCM_IOC_PAUSE,
                       1 if on else 0)
        return Status.OK if out.ok else Status.INVALID_OPERATION

    def _m_standby(self, handle: int):
        stream = self._stream(handle)
        if stream is None:
            return Status.BAD_VALUE
        self.sys("ioctl", stream["fd"], pcm.PCM_IOC_DROP, None)
        self.sys("ioctl", stream["fd"], pcm.PCM_IOC_PREPARE, None)
        return Status.OK

    def _m_drainStream(self, handle: int):
        stream = self._stream(handle)
        if stream is None:
            return Status.BAD_VALUE
        out = self.sys("ioctl", stream["fd"], pcm.PCM_IOC_DRAIN, None)
        return Status.OK if out.ok else Status.INVALID_OPERATION

    def _m_closeStream(self, handle: int):
        stream = self._streams.pop(handle, None)
        if stream is None:
            return Status.BAD_VALUE
        self.sys("close", stream["fd"])
        return Status.OK

    def _m_setMasterVolume(self, volume: float):
        if not 0.0 <= volume <= 1.0:
            return Status.BAD_VALUE
        self._master_volume = volume
        return Status.OK

    def _m_getParameters(self):
        return (Status.OK,
                f"streams={len(self._streams)};volume={self._master_volume}")
