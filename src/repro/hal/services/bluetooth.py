"""Bluetooth HAL.

The vendor Bluetooth stack front-end: brings the controller up with the
canonical HCI init sequence (reset → version → features → codecs →
event mask), manages scanning/bonding, and opens L2CAP data channels
through the socket family.  Its init sequence is the vendor knowledge
that makes A2's ``hci_read_supported_codecs`` bug (№7) reachable only by
*mutations* of HAL-derived orderings — dropping the features step.
"""

from __future__ import annotations

import struct

from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import bt_hci as hci
from repro.kernel.drivers.bt_l2cap import pack_l2_addr
from repro.kernel.syscalls import AF_BLUETOOTH


def _hci_cmd(opcode: int, params: bytes = b"") -> bytes:
    """Frame one HCI command packet."""
    return b"\x01" + opcode.to_bytes(2, "little") + bytes([len(params)]) + params


class BluetoothHal(HalService):
    """``vendor.bluetooth`` service."""

    interface_descriptor = "vendor.bluetooth@1.1::IBluetoothHci"
    instance_name = "vendor.bluetooth"

    def __init__(self) -> None:
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._hci_fd = -1
        self._enabled = False
        self._scanning = False
        self._channels: dict[int, int] = {}  # channel handle -> socket fd
        self._next_channel = 1

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (self._hci_fd, self._enabled, self._scanning,
                dict(self._channels), self._next_channel)

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        (self._hci_fd, self._enabled, self._scanning, channels,
         self._next_channel) = token
        self._channels = dict(channels)

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "enable", (), ()),
            HalMethod(2, "disable", (), ()),
            HalMethod(3, "startScan", (), ()),
            HalMethod(4, "stopScan", (), ()),
            HalMethod(5, "createBond", ("bytes",), (),
                      doc="6-byte peer address"),
            HalMethod(6, "connectChannel", ("i32",), ("i32",),
                      doc="PSM → channel handle"),
            HalMethod(7, "sendData", ("i32", "bytes"), ("i32",)),
            HalMethod(8, "closeChannel", ("i32",), ()),
            HalMethod(9, "readSupportedCodecs", (), ("i32",)),
        )

    def sample_args(self, name: str):
        samples = {
            "createBond": (b"\x11\x22\x33\x44\x55\x66",),
            "connectChannel": (25,),
            "sendData": (1, b"ping"),
            "closeChannel": (1,),
        }
        return samples.get(name, super().sample_args(name))

    def framework_scenarios(self):
        # Pairing + an A2DP-ish data session.
        return [
            [("enable", ()), ("startScan", ()),
             ("createBond", (b"\xAA\xBB\xCC\xDD\xEE\xFF",)),
             ("stopScan", ()), ("connectChannel", (25,)),
             ("sendData", (1, b"\x00" * 64)), ("sendData", (1, b"\x01" * 64)),
             ("closeChannel", (1,))],
            [("enable", ()), ("readSupportedCodecs", ()), ("disable", ())],
        ]

    # ------------------------------------------------------------------

    def _cmd(self, opcode: int, params: bytes = b"") -> bool:
        out = self.sys("write", self._hci_fd, _hci_cmd(opcode, params))
        if not out.ok:
            return False
        self.sys("read", self._hci_fd, 64)
        return True

    def _m_enable(self):
        if self._enabled:
            return Status.INVALID_OPERATION
        fd = self.sys("openat", "/dev/hci0", 2).ret
        if fd < 0:
            return Status.FAILED_TRANSACTION
        self._hci_fd = fd
        self.sys("ioctl", fd, hci.HCIDEV_IOC_UP, None)
        # Canonical vendor init sequence.
        ok = (self._cmd(hci.HCI_OP_RESET)
              and self._cmd(hci.HCI_OP_READ_LOCAL_VERSION)
              and self._cmd(hci.HCI_OP_READ_LOCAL_FEATURES)
              and self._cmd(hci.HCI_OP_READ_BD_ADDR)
              and self._cmd(hci.HCI_OP_READ_SUPPORTED_CODECS)
              and self._cmd(hci.HCI_OP_SET_EVENT_MASK, b"\xFF" * 8))
        if not ok:
            return Status.FAILED_TRANSACTION
        self._enabled = True
        return Status.OK

    def _m_disable(self):
        if not self._enabled:
            return Status.INVALID_OPERATION
        self.sys("ioctl", self._hci_fd, hci.HCIDEV_IOC_DOWN, None)
        self.sys("close", self._hci_fd)
        self._hci_fd = -1
        self._enabled = False
        self._scanning = False
        return Status.OK

    def _m_startScan(self):
        if not self._enabled:
            return Status.INVALID_OPERATION
        if not self._cmd(hci.HCI_OP_LE_SET_SCAN_ENABLE, b"\x01"):
            return Status.FAILED_TRANSACTION
        self._scanning = True
        return Status.OK

    def _m_stopScan(self):
        if not self._scanning:
            return Status.INVALID_OPERATION
        self._cmd(hci.HCI_OP_LE_SET_SCAN_ENABLE, b"\x00")
        self._scanning = False
        return Status.OK

    def _m_createBond(self, addr: bytes):
        if not self._enabled or len(addr) != 6:
            return Status.BAD_VALUE
        if not self._scanning:
            # Vendor stack scans implicitly before paging.
            self._cmd(hci.HCI_OP_LE_SET_SCAN_ENABLE, b"\x01")
            self._scanning = True
        if not self._cmd(hci.HCI_OP_CREATE_CONN, addr):
            return Status.FAILED_TRANSACTION
        return Status.OK

    def _m_connectChannel(self, psm: int):
        if not self._enabled:
            return Status.INVALID_OPERATION
        if not 0 < psm < 65536:
            return Status.BAD_VALUE
        sock = self.sys("socket", AF_BLUETOOTH, 5, 0).ret
        if sock < 0:
            return Status.FAILED_TRANSACTION
        out = self.sys("connect", sock, pack_l2_addr(psm))
        if not out.ok:
            self.sys("close", sock)
            return Status.FAILED_TRANSACTION
        # Complete the config phase with sane channel options.
        self.sys("setsockopt", sock, 6, 0x01,
                 struct.pack("<HHB", 1024, 0, 0))
        handle = self._next_channel
        self._next_channel += 1
        self._channels[handle] = sock
        return Status.OK, handle

    def _m_sendData(self, handle: int, data: bytes):
        sock = self._channels.get(handle)
        if sock is None:
            return Status.BAD_VALUE
        out = self.sys("sendto", sock, data, None)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        self.sys("recvfrom", sock, 1024)
        return Status.OK, out.ret

    def _m_closeChannel(self, handle: int):
        sock = self._channels.pop(handle, None)
        if sock is None:
            return Status.BAD_VALUE
        self.sys("close", sock)
        return Status.OK

    def _m_readSupportedCodecs(self):
        if not self._enabled:
            return Status.INVALID_OPERATION
        if not self._cmd(hci.HCI_OP_READ_SUPPORTED_CODECS):
            return Status.FAILED_TRANSACTION
        return Status.OK, 2
