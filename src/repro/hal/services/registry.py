"""HAL service factory registry.

Firmware builders instantiate HAL services by short name with per-device
quirk flags, mirroring :mod:`repro.kernel.drivers.registry`.
"""

from __future__ import annotations

from typing import Callable

from repro.hal.service import HalService
from repro.hal.services.audio import AudioHal
from repro.hal.services.bluetooth import BluetoothHal
from repro.hal.services.camera import CameraProviderHal
from repro.hal.services.graphics import GraphicsComposerHal
from repro.hal.services.media import MediaCodecHal
from repro.hal.services.sensors import SensorsHal
from repro.hal.services.thermal import ThermalHal
from repro.hal.services.usbpd import UsbPdHal
from repro.hal.services.wifi import WifiHal

#: short name -> factory accepting quirk keyword flags.
HAL_FACTORIES: dict[str, Callable[..., HalService]] = {
    "graphics": GraphicsComposerHal,
    "camera": CameraProviderHal,
    "media": MediaCodecHal,
    "audio": AudioHal,
    "bluetooth": BluetoothHal,
    "sensors": SensorsHal,
    "usb": UsbPdHal,
    "wifi": WifiHal,
    "thermal": ThermalHal,
}


def build_hal(name: str, **quirks: bool) -> HalService:
    """Instantiate the HAL service ``name`` with the given quirk flags.

    Raises:
        KeyError: unknown service name.
        TypeError: a quirk flag the service does not understand.
    """
    return HAL_FACTORIES[name](**quirks)
