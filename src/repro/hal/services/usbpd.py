"""USB-PD / port-controller HAL.

The vendor USB HAL: owns the Type-C port, runs probe/attach/negotiate
sequences against the TCPC driver, and exposes role management to the
framework.  Its ``resetPort`` method re-probes the controller — which on
the A1 firmware re-runs the i2c probe with a live PD contract and trips
kernel bug №1; ``swapRole`` during negotiation reaches kernel bug №4.
"""

from __future__ import annotations

from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import tcpc_rt1711 as tcpc
from repro.kernel.ioctl import pack_fields


class UsbPdHal(HalService):
    """``vendor.usb`` service."""

    interface_descriptor = "vendor.usb.pd@1.3::IUsbPd"
    instance_name = "vendor.usb"

    def __init__(self) -> None:
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._fd = -1
        self._port_enabled = False
        self._negotiated = False

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (self._fd, self._port_enabled, self._negotiated)

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        self._fd, self._port_enabled, self._negotiated = token

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "enablePort", (), ()),
            HalMethod(2, "getPortStatus", (), ("i32", "i32"),
                      doc="→ vbus, contract mV"),
            HalMethod(3, "connectPartner", ("i32",), (),
                      doc="role: 0=sink 1=source 2=drp"),
            HalMethod(4, "negotiate", ("i32", "i32"), (),
                      doc="mV, mA"),
            HalMethod(5, "swapRole", ("i32",), ()),
            HalMethod(6, "resetPort", (), ()),
            HalMethod(7, "disconnectPartner", (), ()),
        )

    def sample_args(self, name: str):
        samples = {
            "connectPartner": (0,),
            "negotiate": (9000, 2000),
            "swapRole": (1,),
        }
        return samples.get(name, super().sample_args(name))

    def framework_scenarios(self):
        # Cable plug-in: enumerate, negotiate 9V, status polling.
        return [
            [("enablePort", ()), ("connectPartner", (0,)),
             ("negotiate", (9000, 2000))]
            + [("getPortStatus", ())] * 5
            + [("disconnectPartner", ())],
            [("enablePort", ()), ("connectPartner", (2,)),
             ("negotiate", (5000, 500)), ("swapRole", (1,)),
             ("getPortStatus", ()), ("disconnectPartner", ())],
        ]

    # ------------------------------------------------------------------

    def _ensure_port(self) -> bool:
        if self._fd >= 0:
            return True
        fd = self.sys("openat", "/dev/tcpc0", 2).ret
        if fd < 0:
            return False
        self._fd = fd
        return True

    def _m_enablePort(self):
        if not self._ensure_port():
            return Status.FAILED_TRANSACTION
        out = self.sys("ioctl", self._fd, tcpc.TCPC_IOC_PROBE, None)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        self.sys("ioctl", self._fd, tcpc.TCPC_IOC_VBUS, 1)
        self._port_enabled = True
        return Status.OK

    def _m_getPortStatus(self):
        if not self._ensure_port():
            return Status.FAILED_TRANSACTION
        out = self.sys("ioctl", self._fd, tcpc.TCPC_IOC_GET_STATUS, None)
        if not out.ok or out.data is None:
            return Status.FAILED_TRANSACTION
        vbus = int.from_bytes(out.data[4:8], "little")
        contract_mv = int.from_bytes(out.data[12:16], "little")
        return Status.OK, vbus, contract_mv

    def _m_connectPartner(self, role: int):
        if role not in (0, 1, 2):
            return Status.BAD_VALUE
        if not self._port_enabled:
            return Status.INVALID_OPERATION
        out = self.sys("ioctl", self._fd, tcpc.TCPC_IOC_ATTACH,
                       pack_fields(tcpc._ATTACH_FIELDS,
                                   {"role": role, "cc": 1}))
        return Status.OK if out.ok else Status.FAILED_TRANSACTION

    def _m_negotiate(self, mv: int, ma: int):
        if not 5000 <= mv <= 20000 or not 100 <= ma <= 5000:
            return Status.BAD_VALUE
        if not self._port_enabled:
            return Status.INVALID_OPERATION
        out = self.sys("ioctl", self._fd, tcpc.TCPC_IOC_PD_START, None)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        out = self.sys("ioctl", self._fd, tcpc.TCPC_IOC_PD_REQUEST,
                       pack_fields(tcpc._PD_REQUEST_FIELDS,
                                   {"mv": mv, "ma": ma}))
        if not out.ok:
            return Status.FAILED_TRANSACTION
        self._negotiated = True
        return Status.OK

    def _m_swapRole(self, role: int):
        if role not in (0, 1):
            return Status.BAD_VALUE
        if not self._port_enabled:
            return Status.INVALID_OPERATION
        out = self.sys("ioctl", self._fd, tcpc.TCPC_IOC_ROLE_SWAP, role)
        return Status.OK if out.ok else Status.FAILED_TRANSACTION

    def _m_resetPort(self):
        if not self._ensure_port():
            return Status.FAILED_TRANSACTION
        # Vendor recovery path: re-run the chip probe in place.
        out = self.sys("ioctl", self._fd, tcpc.TCPC_IOC_PROBE, None)
        self.sys("ioctl", self._fd, tcpc.TCPC_IOC_VBUS, 1)
        return Status.OK if out.ok else Status.FAILED_TRANSACTION

    def _m_disconnectPartner(self):
        if not self._port_enabled:
            return Status.INVALID_OPERATION
        self.sys("ioctl", self._fd, tcpc.TCPC_IOC_DETACH, None)
        self._negotiated = False
        return Status.OK
