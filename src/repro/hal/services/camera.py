"""Camera provider HAL.

The vendor camera stack: opens the V4L2 node, negotiates formats,
manages stream configurations (each ``configureStreams`` call creates a
new *generation* of stream ids), and runs the capture loop
(QBUF / STREAMON / DQBUF) for capture requests.

Planted bug (device C1 firmware):

* ``Native crash in Camera HAL`` (Table II №9): a capture request that
  names a stream id from a *previous* configuration generation indexes
  the freed stream array → SIGSEGV.
"""

from __future__ import annotations

import copy

from repro.errors import NativeCrash
from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import v4l2_camera as v4l2
from repro.kernel.ioctl import pack_fields


class CameraProviderHal(HalService):
    """``vendor.camera.provider`` service.

    Args:
        quirk_stale_stream_crash: plant Table II №9 (C1 firmware).
    """

    interface_descriptor = "vendor.camera.provider@2.4::ICameraProvider"
    instance_name = "vendor.camera.provider"

    def __init__(self, quirk_stale_stream_crash: bool = False) -> None:
        self.quirk_stale_stream_crash = quirk_stale_stream_crash
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._video_fd = -1
        self._session_open = False
        self._generation = 0
        self._streams: dict[int, dict] = {}
        self._stale_ids: set[int] = set()
        self._streaming = False
        self._captures = 0
        self._torch = False

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (self._video_fd, self._session_open, self._generation,
                copy.deepcopy(self._streams), set(self._stale_ids),
                self._streaming, self._captures, self._torch)

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        (self._video_fd, self._session_open, self._generation, streams,
         stale_ids, self._streaming, self._captures, self._torch) = token
        self._streams = copy.deepcopy(streams)
        self._stale_ids = set(stale_ids)

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "getCameraIdList", (), ("str",)),
            HalMethod(2, "openSession", ("i32",), (),
                      doc="open camera by index"),
            HalMethod(3, "configureStreams", ("i32", "i32", "i32"),
                      ("i32",),
                      doc="count, width, height → first stream id"),
            HalMethod(4, "processCaptureRequest", ("i32",), ("i32",),
                      doc="capture on a stream id → frame seq"),
            HalMethod(5, "closeSession", (), ()),
            HalMethod(6, "setTorchMode", ("bool",), ()),
            HalMethod(7, "getVendorTagCount", (), ("i32",)),
        )

    def sample_args(self, name: str):
        samples = {
            "openSession": (0,),
            "configureStreams": (2, 1280, 720),
            "processCaptureRequest": (100,),
            "setTorchMode": (True,),
        }
        return samples.get(name, super().sample_args(name))

    def framework_scenarios(self):
        # Camera app: open, preview stream, a burst of captures.
        return [
            [("getCameraIdList", ()), ("openSession", (0,)),
             ("configureStreams", (2, 1280, 720))]
            + [("processCaptureRequest", (100,))] * 8
            + [("closeSession", ())],
            [("openSession", (0,)), ("configureStreams", (1, 640, 480)),
             ("processCaptureRequest", (200,)), ("closeSession", ())],
        ]

    # ------------------------------------------------------------------

    def _m_getCameraIdList(self):
        return Status.OK, "0"

    def _m_openSession(self, camera_id: int):
        if camera_id != 0:
            return Status.BAD_VALUE
        if self._session_open:
            return Status.INVALID_OPERATION
        fd = self.sys("openat", "/dev/video0", 2).ret
        if fd < 0:
            return Status.FAILED_TRANSACTION
        self._video_fd = fd
        self.sys("ioctl", fd, v4l2.VIDIOC_QUERYCAP, None)
        self.sys("ioctl", fd, v4l2.VIDIOC_G_FMT, None)
        self._session_open = True
        return Status.OK

    def _m_configureStreams(self, count: int, width: int, height: int):
        if not self._session_open:
            return Status.INVALID_OPERATION
        if not 1 <= count <= 4:
            return Status.BAD_VALUE
        if (width, height) not in ((320, 240), (640, 480), (1280, 720),
                                   (1920, 1080), (3840, 2160)):
            return Status.BAD_VALUE
        fd = self._video_fd
        if self._streaming:
            self.sys("ioctl", fd, v4l2.VIDIOC_STREAMOFF, 1)
            self._streaming = False
        out = self.sys("ioctl", fd, v4l2.VIDIOC_S_FMT,
                       pack_fields(v4l2._FMT_FIELDS,
                                   {"fourcc": v4l2.FMT_NV12,
                                    "width": width, "height": height}))
        if not out.ok:
            return Status.FAILED_TRANSACTION
        nbufs = 4 * count
        out = self.sys("ioctl", fd, v4l2.VIDIOC_REQBUFS,
                       pack_fields(v4l2._REQBUFS_FIELDS,
                                   {"count": min(nbufs, 32), "type": 1,
                                    "memory": 1}))
        if not out.ok:
            return Status.FAILED_TRANSACTION
        for index in range(min(nbufs, 32)):
            qout = self.sys("ioctl", fd, v4l2.VIDIOC_QUERYBUF,
                            pack_fields(v4l2._BUF_FIELDS,
                                        {"index": index, "type": 1}))
            if qout.ok and qout.data is not None:
                offset = int.from_bytes(qout.data[:8], "little")
                self.sys("mmap", fd, width * height * 2, 3, 1, offset)
        # Invalidate the previous stream generation.
        self._stale_ids.update(self._streams)
        self._generation += 1
        base = self._generation * 100
        self._streams = {base + i: {"w": width, "h": height}
                         for i in range(count)}
        return Status.OK, base

    def _m_processCaptureRequest(self, stream_id: int):
        if not self._session_open:
            return Status.INVALID_OPERATION
        stream = self._streams.get(stream_id)
        if stream is None:
            if stream_id in self._stale_ids and self.quirk_stale_stream_crash:
                # Table II №9: the request path indexes the stream array
                # by generation-relative id without a liveness check.
                raise NativeCrash("SIGSEGV", self.instance_name,
                                  "Native crash in Camera HAL",
                                  f"stale stream id {stream_id}")
            return Status.BAD_VALUE
        fd = self._video_fd
        index = self._captures % 4
        self.sys("ioctl", fd, v4l2.VIDIOC_QBUF,
                 pack_fields(v4l2._BUF_FIELDS, {"index": index, "type": 1}))
        if not self._streaming:
            out = self.sys("ioctl", fd, v4l2.VIDIOC_STREAMON, 1)
            if not out.ok:
                return Status.FAILED_TRANSACTION
            self._streaming = True
        out = self.sys("ioctl", fd, v4l2.VIDIOC_DQBUF, None)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        self._captures += 1
        return Status.OK, self._captures

    def _m_closeSession(self):
        if not self._session_open:
            return Status.INVALID_OPERATION
        if self._streaming:
            self.sys("ioctl", self._video_fd, v4l2.VIDIOC_STREAMOFF, 1)
            self._streaming = False
        self.sys("close", self._video_fd)
        self._video_fd = -1
        self._session_open = False
        self._streams.clear()
        self._stale_ids.clear()
        return Status.OK

    def _m_setTorchMode(self, on: bool):
        self._torch = bool(on)
        if self._session_open:
            self.sys("ioctl", self._video_fd, v4l2.VIDIOC_S_CTRL,
                     pack_fields(v4l2._CTRL_FIELDS,
                                 {"id": v4l2.CTRL_EXPOSURE,
                                  "value": 100 if on else 1}))
        return Status.OK

    def _m_getVendorTagCount(self):
        return Status.OK, 17
