"""Media codec HAL.

The vendor OMX/Codec2 equivalent: creates codec instances on the kernel
codec node, parses codec-specific-data (CSD) blobs during configure, and
shuttles bitstream buffers into the kernel as framed units.

Planted bug (device A2 firmware):

* ``Native crash in Media HAL`` (Table II №6): the CSD blob is a TLV
  list (``count:u8`` then ``count × (len:u8, data)``); the vendor parser
  trusts each declared length, so a length that runs past the blob reads
  out of bounds → SIGSEGV.

Cross-boundary note: ``queueInputBuffer`` wraps whatever bytes it is
given in a unit header whose size field is the payload length — an empty
payload therefore produces the zero-size unit that stalls the kernel's
drain loop on A2 (Table II №5).  This is exactly the kind of
HAL-mediated kernel bug the paper targets.
"""

from __future__ import annotations

import copy

import struct

from repro.errors import NativeCrash
from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import media_codec as vcodec
from repro.kernel.ioctl import pack_fields


class MediaCodecHal(HalService):
    """``vendor.media.codec`` service.

    Args:
        quirk_csd_oob: plant Table II №6 (A2 firmware).
    """

    interface_descriptor = "vendor.media.codec@1.2::ICodecService"
    instance_name = "vendor.media.codec"

    _CODEC_NAMES = {0: "c2.vendor.avc.decoder", 1: "c2.vendor.hevc.decoder",
                    2: "c2.vendor.vp9.decoder", 3: "c2.vendor.av1.decoder"}

    def __init__(self, quirk_csd_oob: bool = False) -> None:
        self.quirk_csd_oob = quirk_csd_oob
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._codec_fd = -1
        self._next_handle = 1
        self._codecs: dict[int, dict] = {}

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (self._codec_fd, self._next_handle,
                copy.deepcopy(self._codecs))

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        self._codec_fd, self._next_handle, codecs = token
        self._codecs = copy.deepcopy(codecs)

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "listCodecs", (), ("str",)),
            HalMethod(2, "createCodec", ("i32",), ("i32",),
                      doc="codec type → handle"),
            HalMethod(3, "configure", ("i32", "i32", "i32", "i32", "bytes"),
                      (), doc="handle, w, h, bitrate, csd blob"),
            HalMethod(4, "start", ("i32",), ()),
            HalMethod(5, "queueInputBuffer", ("i32", "bytes"), ("i32",),
                      doc="handle, payload → queued units"),
            HalMethod(6, "signalEndOfStream", ("i32",), ()),
            HalMethod(7, "drainOutput", ("i32",), ("i32",),
                      doc="handle → frames available"),
            HalMethod(8, "flush", ("i32",), ()),
            HalMethod(9, "releaseCodec", ("i32",), ()),
        )

    def sample_args(self, name: str):
        samples = {
            "createCodec": (0,),
            "configure": (1, 1280, 720, 4_000_000,
                          b"\x02\x04abcd\x02hi"),
            "start": (1,),
            "queueInputBuffer": (1, b"\x00\x01\x02\x03" * 8),
            "signalEndOfStream": (1,),
            "drainOutput": (1,),
            "flush": (1,),
            "releaseCodec": (1,),
        }
        return samples.get(name, super().sample_args(name))

    def framework_scenarios(self):
        # Video playback: create, configure, feed a GOP, drain, teardown.
        return [
            [("listCodecs", ()), ("createCodec", (0,)),
             ("configure", (1, 1920, 1080, 8_000_000, b"\x01\x03sps")),
             ("start", (1,))]
            + [("queueInputBuffer", (1, b"\xAB" * 128))] * 6
            + [("drainOutput", (1,)), ("queueInputBuffer", (1, b"\xCD" * 64)),
               ("drainOutput", (1,)), ("signalEndOfStream", (1,)),
               ("drainOutput", (1,)), ("releaseCodec", (1,))],
        ]

    # ------------------------------------------------------------------

    def _ensure_node(self) -> bool:
        if self._codec_fd >= 0:
            return True
        fd = self.sys("openat", "/dev/mtk_vcodec", 2).ret
        if fd < 0:
            return False
        self._codec_fd = fd
        return True

    def _parse_csd(self, csd: bytes) -> list[bytes] | None:
        """Vendor TLV parser; the quirked build trusts declared lengths."""
        if not csd:
            return []
        count = csd[0]
        entries: list[bytes] = []
        cursor = 1
        for _ in range(count):
            if cursor >= len(csd):
                if self.quirk_csd_oob:
                    # Table II №6: reads the length byte past the blob.
                    raise NativeCrash("SIGSEGV", self.instance_name,
                                      "Native crash in Media HAL",
                                      "CSD TLV walks past blob end")
                return None
            length = csd[cursor]
            cursor += 1
            if cursor + length > len(csd):
                if self.quirk_csd_oob:
                    raise NativeCrash("SIGSEGV", self.instance_name,
                                      "Native crash in Media HAL",
                                      f"CSD entry len {length} overruns blob")
                return None
            entries.append(csd[cursor:cursor + length])
            cursor += length
        return entries

    def _m_listCodecs(self):
        return Status.OK, ",".join(self._CODEC_NAMES.values())

    def _m_createCodec(self, codec_type: int):
        if codec_type not in self._CODEC_NAMES:
            return Status.BAD_VALUE
        if not self._ensure_node():
            return Status.FAILED_TRANSACTION
        handle = self._next_handle
        self._next_handle += 1
        self._codecs[handle] = {"type": codec_type, "state": "created"}
        return Status.OK, handle

    def _m_configure(self, handle: int, width: int, height: int,
                     bitrate: int, csd: bytes):
        codec = self._codecs.get(handle)
        if codec is None:
            return Status.BAD_VALUE
        if codec["state"] not in ("created", "configured"):
            return Status.INVALID_OPERATION
        if not 1 <= width <= 8192 or not 1 <= height <= 8192 or bitrate <= 0:
            return Status.BAD_VALUE
        entries = self._parse_csd(csd)
        if entries is None:
            return Status.BAD_VALUE
        out = self.sys("ioctl", self._codec_fd, vcodec.VCODEC_IOC_INIT,
                       pack_fields(vcodec._INIT_FIELDS,
                                   {"codec": codec["type"],
                                    "mode": vcodec.MODE_DECODE}))
        if not out.ok:
            # Another codec session holds the node; vendor blob retries
            # after a stop.
            self.sys("ioctl", self._codec_fd, vcodec.VCODEC_IOC_STOP, None)
            out = self.sys("ioctl", self._codec_fd, vcodec.VCODEC_IOC_INIT,
                           pack_fields(vcodec._INIT_FIELDS,
                                       {"codec": codec["type"],
                                        "mode": vcodec.MODE_DECODE}))
            if not out.ok:
                return Status.FAILED_TRANSACTION
        self.sys("ioctl", self._codec_fd, vcodec.VCODEC_IOC_SET_PARAM,
                 pack_fields(vcodec._PARAM_FIELDS,
                             {"param": vcodec.PARAM_BITRATE,
                              "value": max(bitrate, 1)}))
        # Ship CSD entries as CONFIG units.
        for entry in entries:
            unit = (struct.pack("<II", len(entry), vcodec.UNIT_FLAG_CONFIG)
                    + entry)
            self.sys("write", self._codec_fd, unit)
        codec["state"] = "configured"
        return Status.OK

    def _m_start(self, handle: int):
        codec = self._codecs.get(handle)
        if codec is None:
            return Status.BAD_VALUE
        if codec["state"] != "configured":
            return Status.INVALID_OPERATION
        out = self.sys("ioctl", self._codec_fd, vcodec.VCODEC_IOC_START, None)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        codec["state"] = "running"
        return Status.OK

    def _m_queueInputBuffer(self, handle: int, payload: bytes):
        codec = self._codecs.get(handle)
        if codec is None:
            return Status.BAD_VALUE
        if codec["state"] != "running":
            return Status.INVALID_OPERATION
        flags = vcodec.UNIT_FLAG_SYNC if len(payload) >= 64 else 0
        unit = struct.pack("<II", len(payload), flags) + payload
        out = self.sys("write", self._codec_fd, unit)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        return Status.OK, 1

    def _m_signalEndOfStream(self, handle: int):
        codec = self._codecs.get(handle)
        if codec is None:
            return Status.BAD_VALUE
        if codec["state"] != "running":
            return Status.INVALID_OPERATION
        unit = struct.pack("<II", 0, vcodec.UNIT_FLAG_EOS)
        self.sys("write", self._codec_fd, unit)
        return Status.OK

    def _m_drainOutput(self, handle: int):
        codec = self._codecs.get(handle)
        if codec is None:
            return Status.BAD_VALUE
        if codec["state"] != "running":
            return Status.INVALID_OPERATION
        out = self.sys("ioctl", self._codec_fd, vcodec.VCODEC_IOC_DRAIN, None)
        if not out.ok:
            return Status.FAILED_TRANSACTION
        self.sys("read", self._codec_fd, 64)
        return Status.OK, out.ret

    def _m_flush(self, handle: int):
        codec = self._codecs.get(handle)
        if codec is None:
            return Status.BAD_VALUE
        self.sys("ioctl", self._codec_fd, vcodec.VCODEC_IOC_FLUSH, None)
        return Status.OK

    def _m_releaseCodec(self, handle: int):
        codec = self._codecs.pop(handle, None)
        if codec is None:
            return Status.BAD_VALUE
        self.sys("ioctl", self._codec_fd, vcodec.VCODEC_IOC_STOP, None)
        return Status.OK
