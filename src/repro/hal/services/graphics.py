"""Graphics composer HAL.

The vendor surface compositor backend: manages layers, allocates their
backing buffers from ION, attaches DRM framebuffers, and drives the
display with setcrtc / page-flip.  It registers as the DRM vsync event
client when the display powers on — which is what arms the kernel's flip
event queue (and, on the A1 firmware, makes the kernel's lockdep bug
№3 reachable by raw page-flip storms).

Planted bug (device A1 firmware):

* ``Native crash in Graphics HAL`` (Table II №2): presenting after a
  layer change without re-validating dereferences a null compiled
  layer-list pointer → SIGSEGV.
"""

from __future__ import annotations

import copy

from repro.errors import NativeCrash
from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import drm_gpu, ion_alloc
from repro.kernel.ioctl import pack_fields


class GraphicsComposerHal(HalService):
    """``vendor.graphics.composer`` service.

    Args:
        quirk_present_crash: plant Table II №2 (A1 firmware).
    """

    interface_descriptor = "vendor.graphics.composer@2.1::IComposer"
    instance_name = "vendor.graphics.composer"

    def __init__(self, quirk_present_crash: bool = False) -> None:
        self.quirk_present_crash = quirk_present_crash
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._drm_fd = -1
        self._ion_fd = -1
        self._powered = False
        self._next_layer = 1
        self._layers: dict[int, dict] = {}
        self._validated = False
        self._crtc_configured = False
        self._presents = 0

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (self._drm_fd, self._ion_fd, self._powered,
                self._next_layer, copy.deepcopy(self._layers),
                self._validated, self._crtc_configured, self._presents)

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        (self._drm_fd, self._ion_fd, self._powered, self._next_layer,
         layers, self._validated, self._crtc_configured,
         self._presents) = token
        self._layers = copy.deepcopy(layers)

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "getDisplayAttributes", (), ("i32", "i32", "i32"),
                      doc="panel width/height/vsync period"),
            HalMethod(2, "setPowerMode", ("i32",), (),
                      doc="0=off 1=on 2=doze"),
            HalMethod(3, "createLayer", (), ("i64",), doc="new layer id"),
            HalMethod(4, "destroyLayer", ("i64",), ()),
            HalMethod(5, "setLayerBuffer", ("i64", "i32", "i32"), (),
                      doc="attach a w×h buffer to a layer"),
            HalMethod(6, "validateDisplay", (), ("i32",),
                      doc="compile the layer list; returns layer count"),
            HalMethod(7, "presentDisplay", (), (),
                      doc="commit the validated frame"),
            HalMethod(8, "dumpDebugInfo", (), ("str",)),
        )

    def sample_args(self, name: str):
        samples = {
            "setPowerMode": (1,),
            "destroyLayer": (1,),
            "setLayerBuffer": (1, 1280, 720),
        }
        return samples.get(name, super().sample_args(name))

    def framework_scenarios(self):
        # SurfaceFlinger boot + one second of 60 Hz composition.
        frame = [("validateDisplay", ()), ("presentDisplay", ())]
        return [
            [("setPowerMode", (1,)), ("getDisplayAttributes", ()),
             ("createLayer", ()), ("setLayerBuffer", (1, 1280, 720))]
            + frame * 12,
            [("createLayer", ()), ("setLayerBuffer", (2, 640, 480))]
            + frame * 6 + [("destroyLayer", (2,))],
        ]

    # ------------------------------------------------------------------

    def _ensure_display(self) -> bool:
        """Open /dev/dri + /dev/ion and bring the pipeline up."""
        if self._drm_fd >= 0:
            return True
        fd = self.sys("openat", "/dev/dri/card0", 2).ret
        if fd < 0:
            return False
        self._drm_fd = fd
        ion = self.sys("openat", "/dev/ion", 2).ret
        self._ion_fd = ion
        self.sys("ioctl", fd, drm_gpu.DRM_IOC_VERSION, None)
        self.sys("ioctl", fd, drm_gpu.DRM_IOC_GET_CAP,
                 pack_fields(drm_gpu._GET_CAP_FIELDS,
                             {"capability": drm_gpu.CAP_DUMB_BUFFER}))
        self.sys("ioctl", fd, drm_gpu.DRM_IOC_MODE_GETRESOURCES, None)
        self.sys("ioctl", fd, drm_gpu.DRM_IOC_MODE_GETCONNECTOR,
                 pack_fields(drm_gpu._GETCONNECTOR_FIELDS,
                             {"connector_id": 31}))
        self.sys("ioctl", fd, drm_gpu.DRM_IOC_VSYNC_CLIENT, None)
        return True

    def _m_getDisplayAttributes(self):
        return Status.OK, 1920, 1080, 16666

    def _m_setPowerMode(self, mode: int):
        if mode not in (0, 1, 2):
            return Status.BAD_VALUE
        if mode == 0:
            self._powered = False
            return Status.OK
        if not self._ensure_display():
            return Status.FAILED_TRANSACTION
        self._powered = True
        return Status.OK

    def _m_createLayer(self):
        layer = self._next_layer
        self._next_layer += 1
        self._layers[layer] = {"fb": 0, "handle": 0, "w": 0, "h": 0}
        self._validated = False
        return Status.OK, layer

    def _m_destroyLayer(self, layer: int):
        entry = self._layers.pop(layer, None)
        if entry is None:
            return Status.BAD_VALUE
        if entry["fb"] and self._drm_fd >= 0:
            self.sys("ioctl", self._drm_fd, drm_gpu.DRM_IOC_MODE_RMFB,
                     pack_fields(drm_gpu._FB_FIELDS, {"fb_id": entry["fb"]}))
            self.sys("ioctl", self._drm_fd, drm_gpu.DRM_IOC_GEM_CLOSE,
                     pack_fields(drm_gpu._HANDLE_FIELDS,
                                 {"handle": entry["handle"]}))
        self._validated = False
        return Status.OK

    def _m_setLayerBuffer(self, layer: int, width: int, height: int):
        entry = self._layers.get(layer)
        if entry is None:
            return Status.BAD_VALUE
        if not 1 <= width <= 8192 or not 1 <= height <= 8192:
            return Status.BAD_VALUE
        if not self._ensure_display():
            return Status.FAILED_TRANSACTION
        if self._ion_fd >= 0:
            self.sys("ioctl", self._ion_fd, ion_alloc.ION_IOC_ALLOC,
                     pack_fields(ion_alloc._ALLOC_FIELDS,
                                 {"len": width * height * 4,
                                  "heap_mask": ion_alloc.HEAP_SYSTEM,
                                  "flags": 0}))
        out = self.sys("ioctl", self._drm_fd, drm_gpu.DRM_IOC_MODE_CREATE_DUMB,
                       pack_fields(drm_gpu._CREATE_DUMB_FIELDS,
                                   {"width": width, "height": height,
                                    "bpp": 32, "flags": 0}))
        if not out.ok or out.data is None:
            return Status.FAILED_TRANSACTION
        handle = int.from_bytes(out.data[:4], "little")
        fb_out = self.sys("ioctl", self._drm_fd, drm_gpu.DRM_IOC_MODE_ADDFB,
                          pack_fields(drm_gpu._ADDFB_FIELDS,
                                      {"width": width, "height": height,
                                       "pitch": width * 4, "bpp": 32,
                                       "handle": handle}))
        if not fb_out.ok or fb_out.data is None:
            return Status.FAILED_TRANSACTION
        entry.update(fb=int.from_bytes(fb_out.data[:4], "little"),
                     handle=handle, w=width, h=height)
        self._validated = False
        return Status.OK

    def _m_validateDisplay(self):
        if not self._powered:
            return Status.INVALID_OPERATION
        ready = [e for e in self._layers.values() if e["fb"]]
        if not ready:
            return Status.INVALID_OPERATION
        self._validated = True
        return Status.OK, len(ready)

    def _m_presentDisplay(self):
        if not self._powered:
            return Status.INVALID_OPERATION
        if not self._validated:
            if self.quirk_present_crash:
                # Table II №2: the compiled layer list pointer is null
                # when validation was skipped after a layer change.
                raise NativeCrash("SIGSEGV", self.instance_name,
                                  "Native crash in Graphics HAL",
                                  "null compiled layer list in present")
            return Status.INVALID_OPERATION
        front = next((e for e in self._layers.values() if e["fb"]), None)
        if front is None:
            return Status.INVALID_OPERATION
        if not self._crtc_configured:
            out = self.sys("ioctl", self._drm_fd, drm_gpu.DRM_IOC_MODE_SETCRTC,
                           pack_fields(drm_gpu._SETCRTC_FIELDS,
                                       {"crtc_id": 41, "fb_id": front["fb"],
                                        "x": 0, "y": 0}))
            if not out.ok:
                return Status.FAILED_TRANSACTION
            self._crtc_configured = True
        else:
            out = self.sys("ioctl", self._drm_fd,
                           drm_gpu.DRM_IOC_MODE_PAGE_FLIP,
                           pack_fields(drm_gpu._PAGE_FLIP_FIELDS,
                                       {"crtc_id": 41, "fb_id": front["fb"],
                                        "flags": 0x1}))
            if not out.ok:
                return Status.FAILED_TRANSACTION
            self.sys("read", self._drm_fd, 16)  # drain the flip event
        self._presents += 1
        return Status.OK

    def _m_dumpDebugInfo(self):
        return (Status.OK,
                f"layers={len(self._layers)} presents={self._presents} "
                f"validated={self._validated}")
