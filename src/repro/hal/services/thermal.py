"""Thermal HAL.

The vendor thermal mitigation service: samples temperature through the
IIO hub's channels, reports trip state, and drives the fan/LED mitigation
GPIO lines.  Breadth service — no planted bug — whose value is coupling
two otherwise unrelated drivers (IIO + GPIO) in one HAL's traffic.
"""

from __future__ import annotations

from repro.hal.binder import Status
from repro.hal.service import HalMethod, HalService
from repro.kernel.drivers import gpio as gpiochip
from repro.kernel.drivers import sensors_iio as iio
from repro.kernel.ioctl import pack_fields


class ThermalHal(HalService):
    """``vendor.thermal`` service."""

    interface_descriptor = "vendor.thermal@2.0::IThermal"
    instance_name = "vendor.thermal"

    _FAN_LINE_MASK = 1 << 12  # status-led line doubles as fan control

    def __init__(self) -> None:
        super().__init__()
        self.reset()

    def reset(self) -> None:
        self._iio_fd = -1
        self._gpio_fd = -1
        self._gpio_handle = 0
        self._throttle_level = 0
        self._samples = 0

    def snapshot(self) -> tuple:
        """Typed checkpoint token (cheaper than the deep-copy fallback)."""
        return (self._iio_fd, self._gpio_fd, self._gpio_handle,
                self._throttle_level, self._samples)

    def restore(self, token: tuple) -> None:
        """Restore a :meth:`snapshot` token; the token stays reusable."""
        (self._iio_fd, self._gpio_fd, self._gpio_handle,
         self._throttle_level, self._samples) = token

    def methods(self) -> tuple[HalMethod, ...]:
        return (
            HalMethod(1, "getTemperatures", (), ("i32",),
                      doc="→ millidegrees of the hottest zone"),
            HalMethod(2, "getCoolingDevices", (), ("str",)),
            HalMethod(3, "setThrottling", ("i32",), (),
                      doc="0..3 mitigation level"),
        )

    def sample_args(self, name: str):
        return {"setThrottling": (1,)}.get(name, super().sample_args(name))

    def framework_scenarios(self):
        return [
            [("getTemperatures", ()), ("getCoolingDevices", ()),
             ("getTemperatures", ()), ("setThrottling", (1,)),
             ("getTemperatures", ()), ("setThrottling", (0,))],
        ]

    # ------------------------------------------------------------------

    def _ensure_nodes(self) -> bool:
        if self._iio_fd < 0:
            self._iio_fd = self.sys("openat", "/dev/iio:device0", 0).ret
        if self._gpio_fd < 0:
            fd = self.sys("openat", "/dev/gpiochip0", 2).ret
            self._gpio_fd = fd
            if fd >= 0:
                out = self.sys(
                    "ioctl", fd, gpiochip.GPIO_GET_LINEHANDLE,
                    pack_fields(gpiochip._LINEHANDLE_FIELDS,
                                {"line_mask": self._FAN_LINE_MASK,
                                 "flags": gpiochip.HANDLE_REQUEST_OUTPUT,
                                 "default": 0}))
                if out.ok and out.data is not None:
                    self._gpio_handle = int.from_bytes(out.data[:4], "little")
        return self._iio_fd >= 0

    def _m_getTemperatures(self):
        if not self._ensure_nodes():
            return Status.FAILED_TRANSACTION
        # The die-temp pseudo channel rides on IIO channel 0.
        self.sys("ioctl", self._iio_fd, iio.IIO_IOC_ENABLE_CHAN, 0)
        self.sys("ioctl", self._iio_fd, iio.IIO_IOC_BUFFER_ENABLE, None)
        out = self.sys("read", self._iio_fd, 8)
        self.sys("ioctl", self._iio_fd, iio.IIO_IOC_BUFFER_DISABLE, None)
        self.sys("ioctl", self._iio_fd, iio.IIO_IOC_DISABLE_CHAN, 0)
        self._samples += 1
        if not out.ok or out.data is None:
            return Status.OK, 45000
        raw = int.from_bytes(out.data[:2], "little", signed=True)
        return Status.OK, 40000 + abs(raw) % 20000

    def _m_getCoolingDevices(self):
        return Status.OK, "fan0,throttle-cluster0"

    def _m_setThrottling(self, level: int):
        if not 0 <= level <= 3:
            return Status.BAD_VALUE
        if not self._ensure_nodes():
            return Status.FAILED_TRANSACTION
        self._throttle_level = level
        if self._gpio_handle:
            self.sys("ioctl", self._gpio_fd, gpiochip.GPIOHANDLE_SET_VALUES,
                     pack_fields(gpiochip._SET_FIELDS,
                                 {"handle": self._gpio_handle,
                                  "values": self._FAN_LINE_MASK
                                  if level else 0}))
        return Status.OK
