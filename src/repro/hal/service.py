"""HAL service base class and method descriptors.

A vendor HAL service subclasses :class:`HalService`, declares its
transaction surface as :class:`HalMethod` entries (code, name, argument
signature), and implements one ``_m_<name>`` Python method per entry.
``on_transact`` unmarshals parcels per the signature, dispatches, and
marshals the reply (status i32 first, Android-style).

The *fuzzer never sees this file's internals*: services are closed
source from its perspective.  What it can learn comes from probing
(transaction traffic) and tracepoints (the syscalls services issue).

Two probing aids mirror what a real framework gives a prober:

* :meth:`HalService.sample_args` — benign argument values the Poke app
  uses for its short trial of each interface;
* :meth:`HalService.framework_scenarios` — call flows a normal Android
  framework would issue (screen refresh, camera preview, …), which the
  prober replays to measure per-interface *normalized occurrence*
  weights (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ParcelError
from repro.hal.binder import Status
from repro.hal.parcel import Parcel

if TYPE_CHECKING:
    from repro.hal.process import HalProcess
    from repro.kernel.kernel import VirtualKernel
    from repro.kernel.syscalls import SyscallOutcome

#: Parcel type tags usable in method signatures.
ARG_TYPES = ("i32", "u32", "i64", "f32", "bool", "str", "bytes")

_WRITERS = {
    "i32": Parcel.write_i32,
    "u32": Parcel.write_u32,
    "i64": Parcel.write_i64,
    "f32": Parcel.write_f32,
    "bool": Parcel.write_bool,
    "str": Parcel.write_string,
    "bytes": Parcel.write_bytes,
}
_READERS = {
    "i32": Parcel.read_i32,
    "u32": Parcel.read_u32,
    "i64": Parcel.read_i64,
    "f32": Parcel.read_f32,
    "bool": Parcel.read_bool,
    "str": Parcel.read_string,
    "bytes": Parcel.read_bytes,
}


@dataclass(frozen=True)
class HalMethod:
    """One transaction of a HAL interface.

    Attributes:
        code: Binder transaction code.
        name: method name (``_m_<name>`` implements it).
        signature: argument type tags, in order.
        returns: reply value type tags (after the status i32).
        doc: human-readable description.
    """

    code: int
    name: str
    signature: tuple[str, ...] = ()
    returns: tuple[str, ...] = ()
    doc: str = ""


#: Writer tuples memoized per signature (shared across methods and
#: services; signatures are tiny and drawn from a fixed tag set).
_SIG_WRITERS: dict[tuple[str, ...], tuple] = {}


def _writers_for(signature: tuple[str, ...]) -> tuple:
    writers = _SIG_WRITERS.get(signature)
    if writers is None:
        writers = tuple(_WRITERS[tag] for tag in signature)
        _SIG_WRITERS[signature] = writers
    return writers


def marshal_args(method: HalMethod, args: tuple[Any, ...]) -> Parcel:
    """Pack ``args`` into a parcel per ``method.signature``."""
    parcel = Parcel()
    for write, value in zip(_writers_for(method.signature), args):
        write(parcel, value)
    return parcel


class HalService:
    """Base class for vendor HAL services."""

    #: Fully qualified interface descriptor (HIDL/AIDL style).
    interface_descriptor = "vendor.example@1.0::IExample"
    #: Registered instance name in the ServiceManager.
    instance_name = "vendor.example"

    def __init__(self) -> None:
        self.process: "HalProcess | None" = None
        self._kernel: "VirtualKernel | None" = None
        self._by_code = {m.code: m for m in self.methods()}
        self._by_name = {m.name: m for m in self.methods()}
        # Dispatch tables resolved once; transaction dispatch is on the
        # campaign hot path and the surface is fixed at construction.
        self._handlers = {m.code: getattr(self, f"_m_{m.name}")
                          for m in self.methods()}
        self._readers = {m.code: tuple(_READERS[tag] for tag in m.signature)
                         for m in self.methods()}
        self._ret_writers = {m.code: _writers_for(m.returns)
                             for m in self.methods()}

    # -- wiring ----------------------------------------------------------

    def attach(self, kernel: "VirtualKernel", process: "HalProcess") -> None:
        """Bind the service to its device kernel and host process."""
        self._kernel = kernel
        self.process = process

    def sys(self, name: str, *args) -> "SyscallOutcome":
        """Issue a syscall in the hosting process's context.

        Equivalent to ``self.process.syscall(name, *args)`` with the
        forwarding frame flattened out: services issue a few thousand
        syscalls per campaign and this is their only entry point.
        """
        process = self.process
        if process is None:
            raise RuntimeError(f"{self.instance_name} not attached")
        return process._kernel.syscall(process._task.pid, name, *args)

    def reset(self) -> None:
        """Clear service state (called when init restarts the process)."""

    # -- interface surface -------------------------------------------------

    def methods(self) -> tuple[HalMethod, ...]:
        """The service's transaction surface."""
        return ()

    def method_by_code(self, code: int) -> HalMethod | None:
        """Look up a method by transaction code."""
        return self._by_code.get(code)

    def method_by_name(self, name: str) -> HalMethod | None:
        """Look up a method by name."""
        return self._by_name.get(name)

    def sample_args(self, name: str) -> tuple[Any, ...]:
        """Benign trial arguments for the Poke app's probe pass."""
        method = self._by_name.get(name)
        if method is None:
            return ()
        defaults = {"i32": 0, "u32": 0, "i64": 0, "f32": 0.0, "bool": False,
                    "str": "", "bytes": b""}
        return tuple(defaults[tag] for tag in method.signature)

    def framework_scenarios(self) -> list[list[tuple[str, tuple]]]:
        """Call flows a typical Android framework issues on this HAL.

        Each scenario is a list of ``(method_name, args)`` steps.  The
        prober replays them to estimate per-interface weights.
        """
        return []

    # -- dispatch ---------------------------------------------------------

    def on_transact(self, code: int, data: Parcel, reply: Parcel) -> None:
        """Unmarshal, dispatch and marshal one transaction."""
        method = self._by_code.get(code)
        if method is None:
            reply.write_i32(int(Status.UNKNOWN_TRANSACTION))
            return
        data.rewind()
        try:
            args = [read(data) for read in self._readers[code]]
        except ParcelError:
            reply.write_i32(int(Status.BAD_VALUE))
            return
        result = self._handlers[code](*args)
        if isinstance(result, tuple):
            status, outs = result[0], result[1:]
        else:
            status, outs = result, ()
        reply.write_i32(int(status))
        for write, value in zip(self._ret_writers[code], outs):
            write(reply, value)
