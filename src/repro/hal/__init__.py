"""Hardware Abstraction Layer substrate.

Simulates the Android userspace layers a proprietary-driver fuzzer has to
interact with: Binder IPC (parcels, transactions), the ServiceManager
registry (``lshal`` surrogate), HAL host processes with native-crash
semantics, and the vendor HAL services themselves.

HAL service internals are *opaque to the fuzzer by construction*: they
export no coverage; the only observable signals are Binder replies,
process crashes, and — through kernel tracepoints — the syscalls they
issue, exactly the situation §IV-D of the paper describes.
"""

from repro.hal.parcel import Parcel
from repro.hal.binder import BinderNode, BinderProxy, Status
from repro.hal.service_manager import ServiceManager
from repro.hal.service import HalMethod, HalService
from repro.hal.process import HalProcess

__all__ = [
    "Parcel",
    "BinderNode",
    "BinderProxy",
    "Status",
    "ServiceManager",
    "HalMethod",
    "HalService",
    "HalProcess",
]
