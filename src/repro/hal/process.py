"""HAL host process model.

Each vendor HAL service runs in its own userspace process (as on real
Android, where ``android.hardware.*-service`` binaries host one service
each).  The process owns a kernel task (so the HAL's syscalls are
attributable by pid via tracepoints) and implements native-crash
semantics: a fatal signal produces a tombstone record, the process is
marked dead, and init restarts it with fresh state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import NativeCrash

if TYPE_CHECKING:
    from repro.kernel.kernel import VirtualKernel


@dataclass(frozen=True)
class Tombstone:
    """Crash record for a dead HAL process (logcat/tombstoned surrogate)."""

    kind: str
    title: str
    detail: str
    process: str
    signal: str
    seq: int = 0

    component: str = field(default="hal", init=False)


class HalProcess:
    """One HAL service host process.

    Args:
        kernel: the device kernel the process runs on.
        comm: process name, e.g. ``vendor.graphics-service``.
    """

    def __init__(self, kernel: "VirtualKernel", comm: str) -> None:
        self._kernel = kernel
        self.comm = comm
        self._task = kernel.new_process(comm)
        self.dead = False
        self._tombstones: list[Tombstone] = []
        self._crash_seq = 0
        self.restart_count = 0

    @property
    def pid(self) -> int:
        """Current kernel pid of the process."""
        return self._task.pid

    def syscall(self, name: str, *args):
        """Issue a syscall in this process's context."""
        return self._kernel.syscall(self._task.pid, name, *args)

    def record_crash(self, crash: NativeCrash) -> None:
        """Register a fatal signal: write a tombstone and mark dead."""
        self._crash_seq += 1
        self._tombstones.append(Tombstone(
            kind="NATIVE", title=crash.title, detail=crash.detail,
            process=self.comm, signal=crash.signal_name,
            seq=self._crash_seq))
        self.dead = True

    def restart(self) -> None:
        """init restarts the service: new task, fresh pid, state cleared."""
        self._kernel.kill_process(self._task.pid)
        self._task = self._kernel.new_process(self.comm)
        self.dead = False
        self.restart_count += 1

    def drain_tombstones(self) -> list[Tombstone]:
        """Return and clear tombstones written since the last drain."""
        out = self._tombstones
        self._tombstones = []
        return out

    def peek_tombstones(self) -> list[Tombstone]:
        """Pending tombstones without clearing."""
        return list(self._tombstones)
