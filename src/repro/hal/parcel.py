"""Binder Parcel: the typed marshaling container of Android IPC.

A parcel is a flat byte buffer with typed append/read operations and a
read cursor.  This implementation additionally records the *type track* —
the sequence of type tags written — because the probing pass infers
interface argument types by watching parcel traffic (§IV-B), and a real
prober recovers the same information from transaction buffers.
"""

from __future__ import annotations

import struct

from repro.errors import ParcelError

# Precompiled codecs: parcels are on the per-transaction hot path, and
# ``Struct.pack`` skips the format-string cache lookup of the module
# functions.
_I32 = struct.Struct("<i")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F32 = struct.Struct("<f")


class Parcel:
    """Typed marshaling buffer with Android-like accessors."""

    def __init__(self) -> None:
        self._data = bytearray()
        self._pos = 0
        self._types: list[str] = []
        self._values: list = []
        self._read_types_pos = 0

    # -- writing -------------------------------------------------------

    def write_i32(self, value: int) -> "Parcel":
        """Append a signed 32-bit integer (wraps out-of-range values)."""
        wrapped = int(value) & 0xFFFFFFFF
        if wrapped >= 1 << 31:
            wrapped -= 1 << 32
        self._data += _I32.pack(wrapped)
        self._types.append("i32")
        self._values.append(wrapped)
        return self

    def write_u32(self, value: int) -> "Parcel":
        """Append an unsigned 32-bit integer."""
        self._data += _U32.pack(int(value) & 0xFFFFFFFF)
        self._types.append("u32")
        self._values.append(int(value) & 0xFFFFFFFF)
        return self

    def write_i64(self, value: int) -> "Parcel":
        """Append a signed 64-bit integer."""
        self._data += _I64.pack(int(value))
        self._types.append("i64")
        self._values.append(int(value))
        return self

    def write_f32(self, value: float) -> "Parcel":
        """Append a 32-bit float."""
        self._data += _F32.pack(float(value))
        self._types.append("f32")
        self._values.append(float(value))
        return self

    def write_bool(self, value: bool) -> "Parcel":
        """Append a bool (as i32, like Android)."""
        self._data += _I32.pack(1 if value else 0)
        self._types.append("bool")
        self._values.append(bool(value))
        return self

    def write_string(self, value: str) -> "Parcel":
        """Append a length-prefixed UTF-8 string."""
        raw = value.encode("utf-8")
        self._data += _I32.pack(len(raw)) + raw
        self._types.append("str")
        self._values.append(value)
        return self

    def write_bytes(self, value: bytes) -> "Parcel":
        """Append a length-prefixed byte blob."""
        self._data += _I32.pack(len(value)) + bytes(value)
        self._types.append("bytes")
        self._values.append(bytes(value))
        return self

    # -- reading -------------------------------------------------------

    def _take(self, count: int, what: str) -> bytes:
        if self._pos + count > len(self._data):
            raise ParcelError(f"parcel under-read: need {count} bytes for "
                              f"{what} at {self._pos}/{len(self._data)}")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return bytes(chunk)

    def _advance_type(self) -> str:
        if self._read_types_pos < len(self._types):
            tag = self._types[self._read_types_pos]
            self._read_types_pos += 1
            return tag
        return "?"

    def _fixed(self, codec: struct.Struct, what: str):
        """Read one fixed-width value: the per-transaction hot path.

        ``unpack_from`` decodes straight out of the buffer, skipping the
        slice-and-copy of :meth:`_take`.
        """
        if self._read_types_pos < len(self._types):
            self._read_types_pos += 1
        pos = self._pos
        end = pos + codec.size
        if end > len(self._data):
            raise ParcelError(f"parcel under-read: need {codec.size} bytes "
                              f"for {what} at {pos}/{len(self._data)}")
        self._pos = end
        return codec.unpack_from(self._data, pos)[0]

    def read_i32(self) -> int:
        """Read a signed 32-bit integer."""
        return self._fixed(_I32, "i32")

    def read_u32(self) -> int:
        """Read an unsigned 32-bit integer."""
        return self._fixed(_U32, "u32")

    def read_i64(self) -> int:
        """Read a signed 64-bit integer."""
        return self._fixed(_I64, "i64")

    def read_f32(self) -> float:
        """Read a 32-bit float."""
        return self._fixed(_F32, "f32")

    def read_bool(self) -> bool:
        """Read a bool."""
        return self._fixed(_I32, "bool") != 0

    def read_string(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        self._advance_type()
        (length,) = _I32.unpack(self._take(4, "strlen"))
        if length < 0 or length > len(self._data):
            raise ParcelError(f"bad string length {length}")
        return self._take(length, "str").decode("utf-8", errors="replace")

    def read_bytes(self) -> bytes:
        """Read a length-prefixed byte blob."""
        self._advance_type()
        (length,) = _I32.unpack(self._take(4, "byteslen"))
        if length < 0 or length > len(self._data):
            raise ParcelError(f"bad blob length {length}")
        return self._take(length, "bytes")

    # -- introspection ---------------------------------------------------

    def rewind(self) -> None:
        """Reset the read cursor to the start."""
        self._pos = 0
        self._read_types_pos = 0

    def size(self) -> int:
        """Total payload size in bytes."""
        return len(self._data)

    def remaining(self) -> int:
        """Bytes left to read."""
        return len(self._data) - self._pos

    def type_track(self) -> tuple[str, ...]:
        """Sequence of type tags written into this parcel."""
        return tuple(self._types)

    def value_track(self) -> tuple:
        """The concrete values written, in order.

        This is what a prober recovers by decoding the raw transaction
        buffer with the inferred type track.
        """
        return tuple(self._values)

    def to_bytes(self) -> bytes:
        """Raw payload."""
        return bytes(self._data)
