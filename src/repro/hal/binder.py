"""Binder IPC objects and transaction routing.

A :class:`BinderNode` is the server side of a Binder object (hosted by a
HAL process); a :class:`BinderProxy` is a client handle.  Every proxy
transaction is routed through the kernel's tracepoint manager as a
``binder_transaction`` event — the observation channel the probing pass
taps with its eBPF surrogate (§IV-B of the paper).

Reply parcels carry a leading status i32 like Android's ``Status``.
"""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING

from repro.errors import DeadObjectError, NativeCrash
from repro.hal.parcel import Parcel

if TYPE_CHECKING:
    from repro.hal.service import HalService
    from repro.kernel.kernel import VirtualKernel
from repro.kernel.tracepoints import BinderRecord


class Status(IntEnum):
    """Binder transaction status codes (subset of ``binder_status_t``)."""

    OK = 0
    UNKNOWN_TRANSACTION = -74
    BAD_VALUE = -22
    INVALID_OPERATION = -38
    DEAD_OBJECT = -32
    FAILED_TRANSACTION = -2147483646


class BinderNode:
    """Server-side Binder object wrapping one HAL service."""

    def __init__(self, kernel: "VirtualKernel", service: "HalService") -> None:
        self._kernel = kernel
        self.service = service
        self._txn_seq = 0

    def transact(self, from_pid: int, from_comm: str, code: int,
                 data: Parcel) -> Parcel:
        """Execute one transaction against the hosted service.

        A native crash in the service marks the hosting process dead and
        surfaces as :class:`DeadObjectError` to the caller — the same
        thing a real client observes when a HAL process aborts mid-call.
        """
        process = self.service.process
        if process is not None and process.dead:
            raise DeadObjectError(
                f"{self.service.instance_name}: hosting process is dead")
        self._txn_seq += 1
        reply = Parcel()
        crashed = False
        try:
            self.service.on_transact(code, data, reply)
        except NativeCrash as exc:
            crashed = True
            if process is not None:
                process.record_crash(exc)
        finally:
            # Record construction (payload track lists included) is the
            # expensive half; skip it when no probe is attached.
            if self._kernel.trace.has_listeners("binder_transaction"):
                method = self.service.method_by_code(code)
                self._kernel.trace.fire("binder_transaction", BinderRecord(
                    from_pid=from_pid,
                    from_comm=from_comm,
                    service=self.service.instance_name,
                    interface=self.service.interface_descriptor,
                    code=code,
                    method=(method.name if method is not None
                            else f"txn_{code}"),
                    payload_types=data.type_track(),
                    payload_values=data.value_track(),
                    reply_ok=not crashed and reply.size() >= 4,
                    seq=self._txn_seq,
                ))
        if crashed:
            raise DeadObjectError(
                f"{self.service.instance_name}: process crashed during "
                f"transaction {code}")
        reply.rewind()
        return reply


class BinderProxy:
    """Client handle to a remote Binder object.

    Args:
        node: the target server node.
        client_pid: pid of the client process (shows up in traces).
        client_comm: client process name.
    """

    def __init__(self, node: BinderNode, client_pid: int,
                 client_comm: str) -> None:
        self._node = node
        self._client_pid = client_pid
        self._client_comm = client_comm

    @property
    def interface_descriptor(self) -> str:
        """The remote interface descriptor string."""
        return self._node.service.interface_descriptor

    def transact(self, code: int, data: Parcel) -> Parcel:
        """Send a transaction; returns the reply parcel (cursor rewound)."""
        return self._node.transact(self._client_pid, self._client_comm,
                                   code, data)
