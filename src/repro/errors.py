"""Exception hierarchy shared across the repro packages.

The virtual kernel and HAL report abnormal conditions through exceptions
derived from :class:`ReproError`.  Crash-like conditions (kernel WARN/BUG,
KASAN reports, HAL native crashes) derive from :class:`CrashReportError`
and carry enough structure for the fuzzer's triage pipeline to build a
deduplicated bug report without parsing free-form text.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro packages."""


class DslError(ReproError):
    """Malformed DSL program, unknown call name, or bad argument value."""


class DslParseError(DslError):
    """The textual DSL could not be parsed."""


class DeviceError(ReproError):
    """The virtual device could not service a request (offline, rebooting)."""


class AdbError(DeviceError):
    """ADB-level transport failure."""


class BinderError(ReproError):
    """Binder IPC failure (dead service, bad transaction code)."""


class DeadObjectError(BinderError):
    """The remote Binder object's hosting process has died."""


class ParcelError(BinderError):
    """Parcel under-read, type mismatch, or malformed payload."""


class ProbeError(ReproError):
    """The HAL probing pass could not complete."""


class CrashReportError(ReproError):
    """Base class for crash-like conditions observed on the device.

    Attributes:
        title: short, stable, dedup-friendly description of the crash
            (e.g. ``"WARNING in rt1711_i2c_probe"``).
        component: ``"kernel"`` or ``"hal"``.
    """

    component = "kernel"

    def __init__(self, title: str, detail: str = "") -> None:
        super().__init__(title if not detail else f"{title}: {detail}")
        self.title = title
        self.detail = detail


class KernelWarning(CrashReportError):
    """A ``WARNING:`` splat in the kernel log (non-fatal, recoverable)."""


class KernelBug(CrashReportError):
    """A ``BUG:`` splat: the kernel considers its own state corrupted."""


class KernelPanic(CrashReportError):
    """Unrecoverable kernel failure; the device must reboot."""


class KasanReport(CrashReportError):
    """KASAN-detected invalid memory access inside the virtual kernel."""

    def __init__(self, kind: str, where: str, detail: str = "") -> None:
        super().__init__(f"KASAN: {kind} in {where}", detail)
        self.kind = kind
        self.where = where


class HangDetected(CrashReportError):
    """The executor's step budget was exhausted: an infinite loop in a driver."""


class NativeCrash(CrashReportError):
    """A userspace (HAL) process received a fatal signal."""

    component = "hal"

    def __init__(self, signal_name: str, process: str, title: str,
                 detail: str = "") -> None:
        super().__init__(title, detail)
        self.signal_name = signal_name
        self.process = process
