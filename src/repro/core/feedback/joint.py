"""Joint-state feedback: merged kernel + HAL coverage (paper §IV-D).

The broker hands back, per executed program, the kernel PCs collected by
kcov and the directional HAL coverage elements; the engine merges them
into one :class:`JointFeedback` signature and accumulates novelty
against a campaign-global :class:`CoverageAccumulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class JointFeedback:
    """Coverage signature of one program execution."""

    kernel_pcs: frozenset[int] = frozenset()
    hal_elements: frozenset[int] = frozenset()

    def merged(self) -> frozenset[int]:
        """The uniform signal the corpus logic analyzes."""
        return self.kernel_pcs | self.hal_elements

    def __bool__(self) -> bool:
        return bool(self.kernel_pcs or self.hal_elements)


@dataclass
class CoverageAccumulator:
    """Campaign-global novelty tracker over the joint signal."""

    seen: set[int] = field(default_factory=set)
    kernel_seen: set[int] = field(default_factory=set)

    def merge(self, feedback: JointFeedback) -> frozenset[int]:
        """Fold one execution in; returns the *new* elements."""
        merged = feedback.merged()
        fresh = frozenset(merged - self.seen)
        self.seen |= merged
        self.kernel_seen |= feedback.kernel_pcs
        return fresh

    def total(self) -> int:
        """Total distinct joint elements seen."""
        return len(self.seen)

    def kernel_total(self) -> int:
        """Total distinct *kernel* blocks seen (the paper's coverage
        metric — HAL elements are excluded so tools are comparable)."""
        return len(self.kernel_seen)
