"""Joint-state feedback: merged kernel + HAL coverage (paper §IV-D).

The broker hands back, per executed program, the kernel PCs collected by
kcov and the directional HAL coverage elements; the engine merges them
into one :class:`JointFeedback` signature and accumulates novelty
against a campaign-global :class:`CoverageAccumulator`.

The accumulator is the engine's per-execution novelty check, so it is
kept dense: every 64-bit element is interned to a dense index on first
sight and "seen" state lives in growable ``bytearray`` bitmaps.  A warm
novelty test is one dict lookup plus one bit test instead of building
and differencing frozensets of 64-bit hashes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.kcov import PcInterner

#: Bitmap growth granularity in bytes (512 elements per step).
_GROW = 64


@dataclass(frozen=True)
class JointFeedback:
    """Coverage signature of one program execution."""

    kernel_pcs: frozenset[int] = frozenset()
    hal_elements: frozenset[int] = frozenset()

    def merged(self) -> frozenset[int]:
        """The uniform signal the corpus logic analyzes."""
        return self.kernel_pcs | self.hal_elements

    def __bool__(self) -> bool:
        return bool(self.kernel_pcs or self.hal_elements)


class CoverageAccumulator:
    """Campaign-global novelty tracker over the joint signal.

    Elements (kernel PCs and HAL directional elements share one value
    space) are interned to dense indices; two bitmaps over that index
    space track the joint "seen" set and its kernel-only subset.  The
    legacy set views (:attr:`seen`, :attr:`kernel_seen`) are preserved
    as properties for persistence and inspection — they materialize a
    fresh set per access and are not hot-path.
    """

    __slots__ = ("_interner", "_bits", "_kernel_bits", "_total",
                 "_kernel_total")

    def __init__(self) -> None:
        self._interner = PcInterner()
        self._bits = bytearray()
        self._kernel_bits = bytearray()
        self._total = 0
        self._kernel_total = 0

    # -- hot path ----------------------------------------------------------

    def _intern(self, element: int) -> int:
        index = self._interner.intern(element)
        need = (index >> 3) + 1
        if need > len(self._bits):
            grow = max(need - len(self._bits), _GROW)
            self._bits.extend(bytes(grow))
            self._kernel_bits.extend(bytes(grow))
        return index

    def merge(self, feedback: JointFeedback) -> frozenset[int]:
        """Fold one execution in; returns the *new* elements."""
        fresh: list[int] = []
        for pc in feedback.kernel_pcs:
            index = self._intern(pc)
            byte, mask = index >> 3, 1 << (index & 7)
            if not self._bits[byte] & mask:
                self._bits[byte] |= mask
                self._total += 1
                fresh.append(pc)
            if not self._kernel_bits[byte] & mask:
                self._kernel_bits[byte] |= mask
                self._kernel_total += 1
        for element in feedback.hal_elements:
            index = self._intern(element)
            byte, mask = index >> 3, 1 << (index & 7)
            if not self._bits[byte] & mask:
                self._bits[byte] |= mask
                self._total += 1
                fresh.append(element)
        return frozenset(fresh)

    def total(self) -> int:
        """Total distinct joint elements seen."""
        return self._total

    def kernel_total(self) -> int:
        """Total distinct *kernel* blocks seen (the paper's coverage
        metric — HAL elements are excluded so tools are comparable)."""
        return self._kernel_total

    # -- set views (persistence / inspection) ------------------------------

    def _materialize(self, bits: bytearray) -> set[int]:
        pcs = self._interner.pcs
        return {pcs[index] for index in range(len(pcs))
                if bits[index >> 3] & (1 << (index & 7))}

    def _assign(self, which: str, values: set[int]) -> None:
        bits = bytearray(len(self._bits))
        for element in values:
            index = self._intern(element)
            # _intern may have grown the shared bitmaps; re-pad ours.
            if len(bits) < len(self._bits):
                bits.extend(bytes(len(self._bits) - len(bits)))
            bits[index >> 3] |= 1 << (index & 7)
        if which == "seen":
            self._bits, self._total = bits, len(values)
        else:
            self._kernel_bits, self._kernel_total = bits, len(values)

    @property
    def seen(self) -> set[int]:
        """The joint seen set, materialized fresh on every access."""
        return self._materialize(self._bits)

    @seen.setter
    def seen(self, values) -> None:
        self._assign("seen", set(values))

    @property
    def kernel_seen(self) -> set[int]:
        """The kernel-only seen set, materialized fresh on every access."""
        return self._materialize(self._kernel_bits)

    @kernel_seen.setter
    def kernel_seen(self, values) -> None:
        self._assign("kernel_seen", set(values))
