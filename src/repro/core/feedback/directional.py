"""Directional HAL syscall coverage encoding (paper §IV-D).

Kernel code coverage records which blocks ran but not their order; the
paper's insight is that the *order* of the syscalls a HAL issues is the
observable proxy for its internal control flow.  We encode an observed
specialized-ID sequence as synthetic coverage elements:

* one element for the sequence head (which syscall the HAL led with),
* one element per ordered adjacent pair (the transitions).

The elements live in the same value space as kcov PCs (64-bit hashes in
a reserved range), so "the analysis logic for both types of coverage
remains the same" — a new transition looks exactly like a new basic
block to the corpus logic.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

_HCOV_TAG = b"hcov"


@lru_cache(maxsize=65536)
def _hcov_pc(*parts: int) -> int:
    """Memoized: the specialized-ID alphabet is small, so transitions
    repeat constantly across executions and the blake2b per pair used
    to show up right behind :func:`repro.kernel.kcov.stable_pc` in
    profiles."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(_HCOV_TAG)
    for part in parts:
        digest.update(part.to_bytes(8, "little", signed=False))
    # Tag the top nibble so HAL coverage never collides with driver PCs.
    return (int.from_bytes(digest.digest(), "little") | (0xF << 60))


def directional_coverage(sequence: list[int] | tuple[int, ...]) -> frozenset[int]:
    """Encode a specialized-ID sequence as synthetic coverage elements."""
    if not sequence:
        return frozenset()
    elements = {_hcov_pc(0xFFFF_FFFF, sequence[0])}
    for prev, cur in zip(sequence, sequence[1:]):
        elements.add(_hcov_pc(prev, cur))
    return frozenset(elements)
