"""Specialized syscall lookup table (paper §IV-D).

"We use a lookup table compiled at initialization consisting of all
possible system calls, including *specialized* system calls, which
divide system calls that take generalized arguments (e.g. ``ioctl()``)
according to their critical arguments and assign them unique IDs."

The table is compiled from the syzlang-lite description registry plus
the generic syscall surface; at runtime the HAL executor feeds it
``(syscall name, critical argument)`` observations from the eBPF probe
and gets stable specialized IDs back.
"""

from __future__ import annotations

import zlib

from repro.dsl.descriptions import DescriptionRegistry
from repro.kernel.syscalls import SYSCALL_NRS


class SpecializedSyscallTable:
    """Observation ``(name, critical)`` → stable specialized syscall ID."""

    def __init__(self, registry: DescriptionRegistry) -> None:
        self._ids: dict[tuple[str, int | None], int] = {}
        self._names: dict[int, str] = {}
        keys: list[tuple[str, int | None, str]] = []
        # Generic (non-specialized) syscalls.
        for name in sorted(SYSCALL_NRS):
            keys.append((name, None, name))
        # Specialized entries from the descriptions.
        for desc_name in registry.names():
            desc = registry.get(desc_name)
            critical = self._critical_of(desc)
            if critical is not None:
                keys.append((desc.syscall, critical, desc.name))
        keys.sort(key=lambda k: (k[0], k[1] is not None, k[1] or 0, k[2]))
        for ident, (syscall, critical, label) in enumerate(keys):
            key = (syscall, critical)
            if key not in self._ids:
                self._ids[key] = ident
                self._names[ident] = label

    @staticmethod
    def _critical_of(desc) -> int | None:
        if desc.kind == "ioctl":
            return desc.request
        if desc.kind in ("setsockopt", "getsockopt"):
            return desc.optname
        if desc.kind == "socket":
            return desc.domain
        return None

    def lookup(self, name: str, critical: int | None) -> int:
        """Specialized ID for one syscall observation.

        Critical arguments that no description covers (vendor ioctl
        requests observed coming out of a proprietary HAL) still get a
        *stable per-value* specialized ID via hashing, so the
        directional coverage distinguishes vendor commands it has never
        seen described.  Unknown syscalls hash into their own bucket.
        """
        key = (name, critical)
        ident = self._ids.get(key)
        if ident is not None:
            return ident
        # Memoize hashed IDs: the hash is deterministic per key, and
        # vendor HALs re-issue the same few uncovered requests all
        # campaign long.
        if critical is not None:
            ident = (2_000_000
                     + (zlib.crc32(f"{name}:{critical}".encode()) & 0xFFFFF))
        else:
            ident = 1_000_000 + (zlib.crc32(name.encode()) & 0xFFFF)
        self._ids[key] = ident
        return ident

    def label(self, ident: int) -> str:
        """Human-readable name of an ID (diagnostics)."""
        return self._names.get(ident, f"syscall#{ident}")

    def size(self) -> int:
        """Number of table entries."""
        return len(self._ids)
