"""Cross-boundary execution state feedback (paper §IV-D)."""

from repro.core.feedback.syscall_table import SpecializedSyscallTable
from repro.core.feedback.directional import directional_coverage
from repro.core.feedback.joint import CoverageAccumulator, JointFeedback

__all__ = [
    "SpecializedSyscallTable",
    "directional_coverage",
    "CoverageAccumulator",
    "JointFeedback",
]
