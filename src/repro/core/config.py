"""Fuzzer configuration.

One dataclass configures DroidFuzz and all its evaluation variants:

* DroidFuzz — the defaults;
* DroidFuzz-NoRel — ``enable_relations=False`` (§V-D.1);
* DroidFuzz-NoHCov — ``enable_hcov=False`` (§V-D.2);
* DroidFuzz-D — ``ioctl_only=True`` (§V-C.2).

Campaign durations are virtual hours over the device's virtual clock;
see EXPERIMENTS.md for the op-budget mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FuzzerConfig:
    """Knobs of one fuzzing campaign."""

    name: str = "droidfuzz"
    seed: int = 0
    campaign_hours: float = 48.0

    #: Joint HAL+kernel fuzzing (off → syscall surface only).
    enable_hal: bool = True
    #: Kernel-user relational payload generation (§IV-C).
    enable_relations: bool = True
    #: HAL directional coverage in the feedback (§IV-D).
    enable_hcov: bool = True
    #: Restrict the executors and HALs to open/close/ioctl (DF-D).
    ioctl_only: bool = False

    #: Probability of pure generation vs corpus mutation per iteration.
    generation_probability: float = 0.3
    #: Maximum relation-walk length during generation.
    max_walk: int = 8
    #: Probability of recycling pooled argument tuples.
    history_probability: float = 0.5
    #: Maximum calls per program after mutation.
    max_calls: int = 16

    #: Periodic relation decay (virtual seconds / factor).
    decay_interval: float = 4.0 * 3600.0
    decay_factor: float = 0.8

    #: Reboot the device upon encountering any bug (paper §V-A).
    reboot_on_crash: bool = True
    #: Predicate-execution bound for each minimization.
    minimize_budget: int = 10
    #: Run the prober's differential link inference.
    probe_links: bool = True
    #: Coverage timeline sampling period (virtual seconds).
    sample_interval: float = 1800.0

    #: Ship programs to the in-process broker directly instead of the
    #: textual ADB wire round-trip (byte-identical results; the wire
    #: path stays in use for telemetry campaigns, corpus persistence
    #: and cross-process transports).  Off → legacy baseline, as
    #: benchmarked by ``benchmarks/bench_exec.py``.
    fast_exec: bool = True

    def variant(self, **changes) -> "FuzzerConfig":
        """A modified copy (convenience for ablations)."""
        return replace(self, **changes)


#: Syscall allowlist installed by the DroidFuzz-D variant.
IOCTL_ONLY_FILTER = frozenset({"openat", "close", "ioctl"})
