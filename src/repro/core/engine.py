"""The host-side Fuzzing Engine (paper §IV-A).

One engine drives one device: it probes the HALs (pre-testing pass),
builds the relation graph, then loops — generate or mutate a program,
ship it to the device-side broker over ADB, interpret the joint
feedback, minimize + learn relations on new coverage, triage crashes,
and reboot the device when it wedges or (per configuration) on any bug.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.core.bugs import BugReport, BugTracker
from repro.core.config import IOCTL_ONLY_FILTER, FuzzerConfig
from repro.core.corpus import Corpus
from repro.core.exec.broker import ExecOutcome, ExecutionBroker
from repro.core.feedback import (
    CoverageAccumulator,
    JointFeedback,
    directional_coverage,
)
from repro.core.generation import Mutator, PayloadGenerator, minimize
from repro.core.probe import HalInterfaceModel, Prober
from repro.core.relations import RelationGraph
from repro.device.adb import AdbConnection
from repro.device.device import AndroidDevice
from repro.dsl.descriptions import DescriptionRegistry, build_descriptions, sanitize
from repro.dsl.model import HalCall, Program, ResourceRef
from repro.obs.telemetry import Telemetry

#: Default base-invocation weights per description kind ("weights from
#: system call descriptions", §IV-C).
_KIND_WEIGHTS = {
    "open": 0.15, "close": 0.05, "dup": 0.05, "read": 0.25, "write": 0.35,
    "ioctl": 0.45, "ioctl_raw": 0.25, "mmap": 0.15, "socket": 0.15,
    "bind": 0.25, "connect": 0.30, "listen": 0.20, "accept": 0.20,
    "setsockopt": 0.30, "getsockopt": 0.10, "sendto": 0.30,
    "recvfrom": 0.15,
}


@dataclass
class CampaignResult:
    """Everything a campaign produced, for the evaluation harness."""

    tool: str
    device: str
    seed: int
    duration_hours: float
    timeline: list[tuple[float, int]] = field(default_factory=list)
    bugs: list[BugReport] = field(default_factory=list)
    kernel_coverage: int = 0
    joint_coverage: int = 0
    per_driver: dict[str, int] = field(default_factory=dict)
    driver_totals: dict[str, int] = field(default_factory=dict)
    executions: int = 0
    corpus_size: int = 0
    interface_count: int = 0
    reboots: int = 0
    #: Broker wire-latency quantiles (``exec_vtime`` /
    #: ``payload_bytes`` → count/mean/max/p50/p90/p99).  Populated
    #: only when telemetry observed the campaign; excluded from
    #: equality so a telemetry-on result still compares equal to the
    #: telemetry-off result of the same campaign.
    latency: dict[str, dict[str, float]] = field(
        default_factory=dict, compare=False)

    def bug_titles(self) -> set[str]:
        return {b.title for b in self.bugs}

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable shape (the external result contract).

        ``timeline`` points become 2-lists and bugs become plain
        dicts; :meth:`from_dict` restores the exact dataclass, so
        ``from_dict(to_dict(r)) == r``.
        """
        data = asdict(self)
        data["timeline"] = [[t, cov] for t, cov in self.timeline]
        data["bugs"] = [asdict(bug) for bug in self.bugs]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignResult":
        """Rebuild a result from its :meth:`to_dict` shape."""
        fields_in = dict(data)
        fields_in["timeline"] = [tuple(point)
                                 for point in data.get("timeline", [])]
        fields_in["bugs"] = [bug if isinstance(bug, BugReport)
                             else BugReport(**bug)
                             for bug in data.get("bugs", [])]
        return cls(**fields_in)

    def coverage_at(self, hours: float) -> int:
        """Kernel coverage at a timeline offset (step interpolation)."""
        best = 0
        for t, cov in self.timeline:
            if t <= hours * 3600.0:
                best = cov
            else:
                break
        return best


class FuzzingEngine:
    """Coverage-guided cross-boundary fuzzing loop for one device."""

    def __init__(self, device: AndroidDevice, config: FuzzerConfig,
                 telemetry: Telemetry | None = None) -> None:
        self.device = device
        self.config = config
        self.rng = random.Random(config.seed)
        self.adb = AdbConnection(device)
        self.telemetry = telemetry or Telemetry.disabled()
        self.telemetry.attach_device(device)
        self.registry: DescriptionRegistry = build_descriptions(device.profile)
        self._ioctl_label_cache = {
            desc.request: desc.name
            for desc in (self.registry.get(n) for n in self.registry.names())
            if desc.kind == "ioctl"}
        syscall_filter = IOCTL_ONLY_FILTER if config.ioctl_only else None
        self.broker = ExecutionBroker(
            device, self.registry, syscall_filter,
            metrics=self.telemetry.metrics if self.telemetry.enabled
            else None,
            fast_wire=config.fast_exec)
        # The in-process bypass trades the textual wire round-trip for a
        # program copy; with telemetry on, the wire path is kept so the
        # payload-size metrics stay meaningful (results are byte-identical
        # either way).
        self._fast_exec = config.fast_exec and not self.telemetry.enabled
        self.adb.forward(self.broker.SOCKET_NAME, self.broker.rpc_handler)
        self.bugs = BugTracker(device.profile.ident)
        self.coverage = CoverageAccumulator()
        self.corpus = Corpus()
        self.relations = RelationGraph()
        self.hal_model: HalInterfaceModel | None = None
        self.executions = 0
        self.reboots = 0
        self.timeline: list[tuple[float, int]] = []
        self._campaign_start = 0.0

        if config.enable_hal:
            with self.telemetry.tracer.span("probe"):
                self._run_probe_pass()
        self._seed_relation_vertices()

        self.generator = PayloadGenerator(
            self.registry, self.hal_model, self.relations, self.rng,
            relations_enabled=config.enable_relations,
            max_walk=config.max_walk,
            history_probability=config.history_probability)
        self.mutator = Mutator(self.generator, self.rng,
                               max_calls=config.max_calls)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _run_probe_pass(self) -> None:
        """Pre-testing HAL driver probing (§IV-B)."""
        prober = Prober(self.device)
        self.hal_model = prober.probe(infer_links=self.config.probe_links)
        # Crashes tripped by the trial pass are findings too.
        crashes = [{"kind": getattr(c, "kind", "NATIVE"), "title": c.title,
                    "component": c.component}
                   for c in self.device.drain_crashes()]
        self.bugs.record(crashes, self.device.clock)
        if not self.device.healthy:
            self._reboot()

    def _seed_relation_vertices(self) -> None:
        allowed_kinds = None
        if self.config.ioctl_only:
            allowed_kinds = {"open", "close", "ioctl"}
        for name in self.registry.names():
            desc = self.registry.get(name)
            if allowed_kinds is not None and desc.kind not in allowed_kinds:
                continue
            self.relations.add_vertex(name,
                                      _KIND_WEIGHTS.get(desc.kind, 0.2))
        if self.hal_model is not None:
            for label in self.hal_model.labels():
                self.relations.add_vertex(
                    label, self.hal_model.methods[label].weight)

    # ------------------------------------------------------------------
    # execution plumbing
    # ------------------------------------------------------------------

    def _reboot(self) -> None:
        with self.telemetry.tracer.span("reboot"):
            self.adb.shell("reboot")
            self.broker.on_reboot()
        self.reboots += 1
        self.telemetry.tracer.event("reboot", count=self.reboots)

    def _execute(self, program: Program,
                 record_bugs: bool = True) -> ExecOutcome:
        """Ship one program over ADB and collect the outcome."""
        if self._fast_exec:
            # Telemetry is off on this path (see __init__), so the
            # tracer span it would wrap is a no-op; skip it entirely.
            outcome = self.broker.execute_program(program)
        else:
            with self.telemetry.tracer.span("execute") as span:
                payload = self.broker.wire_program(program)
                raw: dict[str, Any] = self.adb.rpc(self.broker.SOCKET_NAME,
                                                   payload)
                outcome = ExecOutcome.from_dict(raw)
                span.note(calls=len(program.calls),
                          crashes=len(outcome.crashes))
        self.executions += 1
        if outcome.crashes and record_bugs:
            with self.telemetry.tracer.span("triage"):
                fresh_bugs = self.bugs.record(outcome.crashes,
                                              self.device.clock, program)
            for bug in fresh_bugs:
                self.telemetry.tracer.event(
                    "crash", title=bug.title, component=bug.component,
                    bug_kind=bug.kind)
                self.telemetry.stream_record({
                    "type": "bug", "t": self.device.clock,
                    "title": bug.title, "component": bug.component,
                    "bug_kind": bug.kind,
                    "total": len(self.bugs.reports)})
        if outcome.needs_reboot or (outcome.crashes
                                    and self.config.reboot_on_crash):
            self._reboot()
        return outcome

    def _feedback_of(self, outcome: ExecOutcome) -> JointFeedback:
        hal = (directional_coverage(outcome.hal_sequence)
               if self.config.enable_hcov else frozenset())
        return JointFeedback(kernel_pcs=outcome.kernel_pcs,
                             hal_elements=hal)

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def _flow_seed_programs(self) -> list[Program]:
        """Convert the probed framework flows into seed programs.

        Observed integer arguments at link positions are rewritten to
        resource references when the producing method appears earlier in
        the flow, so the seed stays valid when handles change.
        """
        if self.hal_model is None:
            return []
        programs = []
        for flow in self.hal_model.flows:
            calls = []
            last_by_label: dict[str, int] = {}
            for label, values in flow:
                method = self.hal_model.get(label)
                if method is None:
                    continue
                args = list(values[:len(method.signature)])
                while len(args) < len(method.signature):
                    args.append(0)
                for position, link in method.links.items():
                    producer_label = f"{link[0]}.{link[1]}"
                    index = last_by_label.get(producer_label)
                    if index is not None and position < len(args):
                        args[position] = ResourceRef(
                            index, f"hal:{producer_label}")
                last_by_label[label] = len(calls)
                calls.append(HalCall(method.service, method.name,
                                     tuple(args)))
            if calls:
                program = Program(calls)
                program.validate()
                programs.append(program)
        return programs

    def run(self) -> CampaignResult:
        """Run one campaign; returns its results."""
        config = self.config
        self._campaign_start = self.device.clock
        deadline = self._campaign_start + config.campaign_hours * 3600.0
        next_sample = self._campaign_start
        last_decay = self._campaign_start
        self.telemetry.monitor.start(self._campaign_start)
        # Sticky so a watcher attaching mid-campaign still learns who
        # this row is; live-stream only, never a recorded artifact.
        self.telemetry.stream_record({
            "type": "campaign", "device": self.device.profile.ident,
            "tool": config.name, "seed": config.seed,
            "hours": config.campaign_hours, "t": self._campaign_start,
        }, sticky=True)

        # Seed the corpus with the canonical flows distilled from the
        # probed framework traffic (the daemon's persistent seed corpus).
        with self.telemetry.tracer.span("seed"):
            for program in self._flow_seed_programs():
                if self.device.clock >= deadline:
                    break
                outcome = self._execute(program)
                self.generator.observe_program(
                    program, [s.produced for s in outcome.statuses])
                for capture in outcome.captures:
                    self.generator.record_capture(capture)
                fresh = self.coverage.merge(self._feedback_of(outcome))
                if fresh and not outcome.crashes:
                    if self.config.enable_relations:
                        self.relations.learn_program(program.labels())
                    self.generator.record_history(program)
                    self.corpus.add(program, fresh, self.device.clock)

        while self.device.clock < deadline:
            while next_sample <= self.device.clock:
                self.timeline.append((next_sample - self._campaign_start,
                                      self.coverage.kernel_total()))
                next_sample += config.sample_interval
            self._telemetry_sample()

            program = self._next_program()
            outcome = self._execute(program)
            self.generator.observe_program(
                program, [s.produced for s in outcome.statuses])
            for capture in outcome.captures:
                self.generator.record_capture(capture)
            feedback = self._feedback_of(outcome)
            fresh = self.coverage.merge(feedback)
            if fresh:
                self.telemetry.tracer.event(
                    "new-coverage", fresh=len(fresh),
                    total=self.coverage.kernel_total())
            if fresh and not outcome.crashes:
                self._admit(program, fresh)
                if self.config.enable_relations and outcome.captures:
                    # Cross-boundary learning: the order in which the
                    # HAL itself drove the drivers is a confirmed
                    # relation chain between the equivalent DSL calls.
                    self.relations.learn_program(
                        self._capture_labels(outcome.captures))

            if (self.device.clock - last_decay) >= config.decay_interval:
                self.relations.decay(config.decay_factor)
                last_decay = self.device.clock
                self.telemetry.tracer.event(
                    "relation-decay", factor=config.decay_factor)

        self.timeline.append((config.campaign_hours * 3600.0,
                              self.coverage.kernel_total()))
        self._telemetry_sample(force=True)
        return self._result()

    def _telemetry_sample(self, force: bool = False) -> None:
        """Poll bridged channels and take a due monitor snapshot."""
        if not self.telemetry.enabled:
            return
        self.telemetry.poll()
        if force or self.telemetry.monitor.due(self.device.clock):
            self.telemetry.monitor.sample(
                self.device.clock,
                executions=self.executions,
                kernel_coverage=self.coverage.kernel_total(),
                corpus_size=len(self.corpus),
                reboots=self.reboots,
                bugs=len(self.bugs.reports),
                per_driver=self.device.per_driver_coverage(),
                latency=self.broker.latency_summary())

    def _next_program(self) -> Program:
        if (self.rng.random() < self.config.generation_probability
                or len(self.corpus) == 0):
            with self.telemetry.tracer.span("generate"):
                return self.generator.generate()
        with self.telemetry.tracer.span("mutate"):
            seed = self.corpus.choose(self.rng)
            donor = self.corpus.donor(self.rng)
            return self.mutator.mutate(seed.program, donor)

    def _admit(self, program: Program, fresh: frozenset[int]) -> None:
        """Minimize, learn relations, and admit to the corpus."""
        minimized = program
        if len(program) > 2 and self.config.minimize_budget > 0:
            target = fresh

            def still_interesting(candidate: Program) -> bool:
                outcome = self._execute(candidate, record_bugs=True)
                merged = self._feedback_of(outcome).merged()
                return target <= merged

            with self.telemetry.tracer.span("minimize") as span:
                minimized = minimize(
                    program, still_interesting,
                    max_executions=self.config.minimize_budget)
                span.note(before=len(program), after=len(minimized))
        if self.config.enable_relations:
            self.relations.learn_program(minimized.labels())
        self.generator.record_history(minimized)
        self.corpus.add(minimized, fresh, self.device.clock)
        self.telemetry.tracer.event(
            "corpus-admit", calls=len(minimized), fresh=len(fresh),
            corpus_size=len(self.corpus))

    def _capture_labels(self, captures: list[tuple]) -> list[str]:
        """Map captured HAL syscalls back to DSL description labels."""
        labels = []
        for capture in captures:
            short = sanitize(capture[1].removeprefix("/dev/"))
            if capture[0] == "write":
                labels.append(f"write${short}")
            else:
                request = capture[2]
                labels.append(self._ioctl_label_cache.get(
                    request, f"ioctl$raw_{short}"))
        return labels

    # ------------------------------------------------------------------

    def _result(self) -> CampaignResult:
        return CampaignResult(
            tool=self.config.name,
            device=self.device.profile.ident,
            seed=self.config.seed,
            duration_hours=self.config.campaign_hours,
            timeline=list(self.timeline),
            bugs=self.bugs.all_reports(),
            kernel_coverage=self.coverage.kernel_total(),
            joint_coverage=self.coverage.total(),
            per_driver=self.device.per_driver_coverage(),
            driver_totals=self.device.driver_block_estimates(),
            executions=self.executions,
            corpus_size=len(self.corpus),
            interface_count=(self.hal_model.interface_count()
                             if self.hal_model else 0),
            reboots=self.reboots,
            latency=self.broker.latency_summary(),
        )
