"""Typed value generation for description fields and HAL signatures.

Shared by the generator and the mutator.  Integer generation is
boundary-biased (fuzzing folklore: off-by-one bugs live at the edges);
enum/const/flags fields mostly honour their sets with a small
probability of deliberate violation so error paths get covered too.
"""

from __future__ import annotations

import random

from repro.dsl.model import ResourceRef
from repro.kernel.ioctl import FieldSpec

#: Marker index for a resource reference that still needs resolving.
UNRESOLVED = -1

_INTERESTING_INTS = (0, 1, -1, 2, 7, 8, 63, 64, 127, 128, 255, 256,
                     1023, 1024, 4095, 4096, 65535, 1 << 20, 1 << 31)


def gen_int(rng: random.Random, lo: int = 0, hi: int = 0xFFFFFFFF) -> int:
    """Boundary-biased integer in [lo, hi] (with rare out-of-range)."""
    roll = rng.random()
    if roll < 0.25:
        return rng.choice((lo, hi, lo + 1, max(hi - 1, lo), (lo + hi) // 2))
    if roll < 0.35:
        candidate = rng.choice(_INTERESTING_INTS)
        return candidate
    if roll < 0.40:
        return rng.randint(lo, hi) + rng.choice((-1, 1)) * rng.randint(1, 8)
    return rng.randint(lo, hi)


def gen_bytes(rng: random.Random, max_len: int = 64) -> bytes:
    """Random payload bytes, biased toward short and structured."""
    roll = rng.random()
    if roll < 0.2:
        return b""
    if roll < 0.5:
        length = rng.randint(1, 8)
    else:
        length = rng.randint(1, max_len)
    if rng.random() < 0.3:
        return bytes([rng.randint(0, 255)]) * length
    return bytes(rng.randint(0, 255) for _ in range(length))


def gen_field(rng: random.Random, field: FieldSpec):
    """Generate a value for one description field.

    Resource fields return an unresolved :class:`ResourceRef` marker for
    the producer-insertion pass to fix up.
    """
    if field.kind == "resource":
        if field.values and rng.random() < 0.4:
            # Rendezvous fields carry fallback literals (well-known
            # PSMs etc.) alongside the resource form.
            return rng.choice(field.values)
        return ResourceRef(UNRESOLVED, field.resource)
    if field.fmt.endswith("s"):
        return gen_bytes(rng, max_len=field.size())
    if field.kind == "enum":
        if field.values and rng.random() < 0.9:
            return rng.choice(field.values)
        return gen_int(rng)
    if field.kind == "const":
        if field.values and rng.random() < 0.92:
            return field.values[0]
        return gen_int(rng)
    if field.kind == "flags":
        if field.values and rng.random() < 0.85:
            chosen = 0
            for bit in field.values:
                if rng.random() < 0.5:
                    chosen |= bit
            return chosen
        return gen_int(rng, 0, 0xFF)
    # range
    return gen_int(rng, field.lo, min(field.hi, 1 << 32))


def gen_hal_value(rng: random.Random, tag: str):
    """Generate a value for one HAL signature slot."""
    if tag in ("i32", "u32", "i64"):
        return gen_int(rng, 0, 1 << 16)
    if tag == "f32":
        return round(rng.uniform(-2.0, 2.0), 3)
    if tag == "bool":
        return rng.random() < 0.5
    if tag == "str":
        pool = ("", "default", "0", "test", "a" * 16, "vendor.param")
        return rng.choice(pool)
    if tag == "bytes":
        return gen_bytes(rng)
    return 0
