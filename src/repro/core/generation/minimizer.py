"""Program minimization (paper §IV-C).

"When a new coverage is detected, we *minimize* the call to the bare
bones API and system calls, ensuring that only the most essential
invocations that trigger the same execution behavior are exercised."

The minimizer greedily removes calls (together with their dependents)
while a caller-provided predicate confirms the signal — new coverage or
a crash title — still triggers.  The predicate re-executes the program
on the device, so the engine bounds how often minimization runs.
"""

from __future__ import annotations

from typing import Callable

from repro.dsl.model import Program


def minimize(program: Program,
             still_interesting: Callable[[Program], bool],
             max_executions: int = 24) -> Program:
    """Greedy call-removal minimization.

    Args:
        program: the interesting program (not modified).
        still_interesting: re-executes a candidate and reports whether
            the original signal persists.
        max_executions: hard bound on predicate invocations.

    Returns:
        The smallest found program that keeps the signal (possibly the
        original).
    """
    current = program.copy()
    budget = max_executions
    progress = True
    while progress and budget > 0 and len(current) > 1:
        progress = False
        # Back-to-front: dropping late calls never invalidates refs and
        # tends to strip the junk suffix first.
        for index in range(len(current) - 1, -1, -1):
            if budget <= 0:
                break
            candidate = current.drop_call(index)
            if not candidate.calls:
                continue
            budget -= 1
            if still_interesting(candidate):
                current = candidate
                progress = True
                break
    return current
