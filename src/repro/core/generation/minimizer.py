"""Program minimization (paper §IV-C).

"When a new coverage is detected, we *minimize* the call to the bare
bones API and system calls, ensuring that only the most essential
invocations that trigger the same execution behavior are exercised."

The minimizer bisects over *call groups*: it first tries to drop whole
contiguous chunks (half the program, then quarters, …) and only falls
back to single-call removal once no larger group can go.  It stops as
soon as a full single-call pass keeps coverage stable — the early exit
that keeps minimization off the hot-path profile, where ``repro
stats`` showed it dominating exclusive virtual time on small
campaigns.  The predicate re-executes the program on the device, so
the engine bounds how often it runs.
"""

from __future__ import annotations

from typing import Callable

from repro.dsl.model import Program


def _drop_group(program: Program, start: int, size: int) -> Program:
    """A copy with calls ``[start, start+size)`` removed (dependents of
    each dropped call go with it, as :meth:`Program.drop_call` does).

    Dropping back-to-front keeps the remaining target indices stable:
    ``drop_call`` only removes the call itself and transitively
    dependent *later* calls.
    """
    candidate = program
    for index in range(start + size - 1, start - 1, -1):
        if index < len(candidate):
            candidate = candidate.drop_call(index)
    return candidate


def minimize(program: Program,
             still_interesting: Callable[[Program], bool],
             max_executions: int = 24) -> Program:
    """Group-bisection call-removal minimization with early exit.

    Args:
        program: the interesting program (not modified).
        still_interesting: re-executes a candidate and reports whether
            the original signal persists.
        max_executions: hard bound on predicate invocations.

    Returns:
        The smallest found program that keeps the signal (possibly the
        original).
    """
    current = program.copy()
    budget = max_executions
    chunk = max(len(current) // 2, 1)
    while budget > 0 and len(current) > 1:
        progress = False
        # Back-to-front: dropping late groups never invalidates refs
        # and tends to strip the junk suffix first.
        start = len(current) - chunk
        while start >= 0 and budget > 0 and len(current) > 1:
            size = min(chunk, len(current) - start)
            candidate = _drop_group(current, start, size)
            if candidate.calls and len(candidate) < len(current):
                budget -= 1
                if still_interesting(candidate):
                    current = candidate
                    progress = True
            start -= chunk
        if progress:
            # Re-pass at (at most) half the surviving program.
            chunk = max(min(chunk, len(current) // 2), 1)
            continue
        if chunk == 1:
            # A full single-call pass removed nothing: coverage is
            # stable, every remaining call is essential — stop early.
            break
        chunk = max(chunk // 2, 1)
    return current
