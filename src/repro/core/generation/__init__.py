"""Kernel-user relational payload generation (paper §IV-C)."""

from repro.core.generation.generator import PayloadGenerator
from repro.core.generation.mutator import Mutator
from repro.core.generation.minimizer import minimize

__all__ = ["PayloadGenerator", "Mutator", "minimize"]
