"""Program mutation operators (coverage-guided evolution).

Standard corpus-evolution operators over DSL programs: argument
tweaking (boundary-biased ints, struct-field edits, byte havoc), call
insertion (relation-guided when possible), call removal, duplication,
and splicing of two corpus programs.  All operators preserve the
backward-reference invariant of :class:`Program`.
"""

from __future__ import annotations

import random

from repro.core.generation.generator import PayloadGenerator
from repro.core.generation.values import UNRESOLVED, gen_bytes, gen_hal_value, gen_int
from repro.dsl.model import Call, Program, ResourceRef, StructValue


def _havoc_bytes(rng: random.Random, data: bytes) -> bytes:
    if not data:
        return gen_bytes(rng, 32)
    buf = bytearray(data)
    for _ in range(rng.randint(1, 4)):
        op = rng.randint(0, 4)
        pos = rng.randrange(len(buf))
        if op == 0:
            buf[pos] ^= 1 << rng.randint(0, 7)
        elif op == 1:
            buf[pos] = rng.randint(0, 255)
        elif op == 2 and len(buf) > 1:
            del buf[pos]
        elif op == 3:
            buf.insert(pos, rng.randint(0, 255))
        else:
            buf[pos:pos + 1] = bytes([rng.choice((0, 0xFF, 0x7F))])
    return bytes(buf)


class Mutator:
    """Mutates corpus programs into new candidates."""

    def __init__(self, generator: PayloadGenerator,
                 rng: random.Random, max_calls: int = 16) -> None:
        self._generator = generator
        self._rng = rng
        self._max_calls = max_calls

    def mutate(self, program: Program,
               splice_donor: Program | None = None) -> Program:
        """Return a mutated copy of ``program``."""
        candidate = program.copy()
        operations = [self._mutate_arg, self._mutate_arg, self._insert_call,
                      self._insert_call, self._remove_call,
                      self._duplicate_call]
        if splice_donor is not None and len(splice_donor) > 0:
            operations.append(lambda p: self._splice(p, splice_donor))
        for _ in range(self._rng.randint(1, 3)):
            operation = self._rng.choice(operations)
            candidate = operation(candidate)
            if not candidate.calls:
                candidate = program.copy()
        candidate.validate()
        return candidate

    # ------------------------------------------------------------------

    def _mutate_arg(self, program: Program) -> Program:
        if not program.calls:
            return program
        call = self._rng.choice(program.calls)
        if not call.args:
            return program
        index = self._rng.randrange(len(call.args))
        args = list(call.args)
        args[index] = self._mutate_value(args[index], call)
        call.args = tuple(args)
        return program

    def _mutate_value(self, value, call: Call):
        rng = self._rng
        if isinstance(value, ResourceRef):
            # Occasionally poison the reference (stale/invalid handle).
            if rng.random() < 0.25:
                return gen_int(rng, 0, 1 << 16)
            return value
        if isinstance(value, StructValue):
            if value.values:
                key = rng.choice(sorted(value.values))
                value.values[key] = self._mutate_value(value.values[key],
                                                       call)
            return value
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            roll = rng.random()
            if roll < 0.4:
                return value + rng.choice((-1, 1, -8, 8, 0x100, -0x100))
            if roll < 0.6:
                return rng.choice((0, 1, -1, 0xFFFF, 0xFFFFFFFF))
            return gen_int(rng, 0, 1 << 20)
        if isinstance(value, float):
            return value * rng.choice((0.0, -1.0, 2.0, 1e6))
        if isinstance(value, str):
            if call.is_hal:
                return gen_hal_value(rng, "str")
            return value + "A" * rng.randint(1, 8)
        if isinstance(value, (bytes, bytearray)):
            if rng.random() < 0.1:
                return b""  # boundary payload: empty buffer
            return _havoc_bytes(rng, bytes(value))
        return value

    # ------------------------------------------------------------------

    def _insert_call(self, program: Program) -> Program:
        if len(program) >= self._max_calls:
            return program
        # Relation-guided: extend from the label of a random existing
        # call when possible, otherwise any vertex.
        label = None
        if program.calls:
            anchor = self._rng.choice(program.calls).label
            roll = self._rng.random()
            if roll < 0.45:
                walked = self._generator._relations.walk(
                    anchor, self._rng, max_steps=1, stop_probability=0.0)
                if len(walked) > 1:
                    label = walked[1]
            elif roll < 0.8:
                # Same-surface affinity: another call of a driver or
                # service the program already touches.
                label = self._generator.sibling_label(anchor)
        if label is None:
            label = self._generator._relations.pick_base(self._rng)
        call = self._generator.generate_call_for(label)
        if call is None:
            return program
        if self._rng.random() < 0.5:
            return self._insert_at(program, call,
                                   self._rng.randint(0, len(program)))
        resolved = self._generator.resolve_resources(
            [c.copy() for c in program.calls] + [call])
        if len(resolved) > self._max_calls + 4:
            return program
        return resolved

    def _insert_at(self, program: Program, call: Call,
                   position: int) -> Program:
        """Insert mid-program: this is what turns handles *stale*.

        The new call's unresolved references bind only to producers
        before ``position``; references in later calls shift by one but
        keep pointing at their original producers — so a producer
        re-executed in between invalidates what they name.
        """
        call.args = tuple(self._bind_backward(a, program, position)
                          for a in call.args)
        for later in program.calls[position:]:
            later.args = tuple(self._shift_from(a, position)
                               for a in later.args)
        program.calls.insert(position, call)
        return program

    def _bind_backward(self, value, program: Program, position: int):
        if isinstance(value, ResourceRef) and value.index == UNRESOLVED:
            for index in range(position - 1, -1, -1):
                kind = self._generator._produced_kind(program.calls[index])
                if kind == value.kind:
                    return ResourceRef(index, value.kind)
            return gen_int(self._rng, 0, 1 << 10)
        if isinstance(value, StructValue):
            value.values = {
                k: self._bind_backward(v, program, position)
                if isinstance(v, ResourceRef) else v
                for k, v in value.values.items()}
            value.values = {k: (v if isinstance(v, (int, bytes, ResourceRef))
                                else 0)
                            for k, v in value.values.items()}
        return value

    @staticmethod
    def _shift_from(value, position: int):
        if isinstance(value, ResourceRef):
            if value.index >= position:
                return ResourceRef(value.index + 1, value.kind)
            return value
        if isinstance(value, StructValue):
            value.values = {
                k: (ResourceRef(v.index + 1, v.kind)
                    if isinstance(v, ResourceRef) and v.index >= position
                    else v)
                for k, v in value.values.items()}
        return value

    def _remove_call(self, program: Program) -> Program:
        if len(program) <= 1:
            return program
        return program.drop_call(self._rng.randrange(len(program)))

    def _duplicate_call(self, program: Program) -> Program:
        """Clone a call in place (right after the original).

        In-place duplication matters: repeating a queue/submit call
        *before* the consuming drain/commit is how batch-processing
        paths get multi-element batches.
        """
        if not program.calls or len(program) >= self._max_calls:
            return program
        index = self._rng.randrange(len(program))
        copies = self._rng.randint(1, 4)
        for _ in range(copies):
            if len(program) >= self._max_calls + 4:
                break
            clone = program.calls[index].copy()
            for later in program.calls[index + 1:]:
                later.args = tuple(self._shift_from(a, index + 1)
                                   for a in later.args)
            program.calls.insert(index + 1, clone)
        return program

    def _splice(self, program: Program, donor: Program) -> Program:
        offset = len(program.calls)
        if offset + len(donor) > self._max_calls + 8:
            return program
        for call in donor.calls:
            shifted = call.copy()
            shifted.args = tuple(self._shift_ref(a, offset)
                                 for a in shifted.args)
            program.calls.append(shifted)
        return program

    @staticmethod
    def _shift_ref(value, offset: int):
        if isinstance(value, ResourceRef):
            return ResourceRef(value.index + offset, value.kind)
        if isinstance(value, StructValue):
            value.values = {k: (ResourceRef(v.index + offset, v.kind)
                                if isinstance(v, ResourceRef) else v)
                            for k, v in value.values.items()}
        return value
