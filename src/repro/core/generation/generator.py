"""Relational payload generation (paper §IV-C).

Generation of one test case:

1. pick a *base invocation* by vertex weight from the relation graph;
2. instantiate it in the DSL — syntax-based generation from the
   descriptions / probed signatures, mixed with *historical payload
   mutation* (argument tuples recycled from previously successful
   programs);
3. walk the relation graph from the current vertex to dependent
   vertices with probability proportional to edge weight, possibly
   stopping early, instantiating each visited call;
4. sweep the call sequence for unresolved argument values and insert
   *producer calls* (calls that return the needed resource) as
   prefixes.
"""

from __future__ import annotations

import random
from collections import deque

from repro.core.generation.values import (
    UNRESOLVED,
    gen_bytes,
    gen_field,
    gen_hal_value,
    gen_int,
)
from repro.core.probe.interface_model import HalInterfaceModel
from repro.core.relations.graph import RelationGraph
from repro.dsl.descriptions import DescriptionRegistry, SyscallDesc
from repro.dsl.model import (
    Call,
    HalCall,
    Program,
    ResourceRef,
    StructValue,
    SyscallCall,
)

#: Per-label cache size for historical payload mutation.
_POOL_LIMIT = 32


def fields_from_desc(desc: SyscallDesc):
    """All field specs a description carries, whatever its kind."""
    extra = (desc.int_kind,) if desc.int_kind else ()
    return (desc.fields + desc.addr_fields + desc.opt_fields
            + desc.write_fields + extra)


class PayloadGenerator:
    """Generates DSL programs from descriptions + the probed HAL model."""

    def __init__(self, registry: DescriptionRegistry,
                 hal_model: HalInterfaceModel | None,
                 relations: RelationGraph, rng: random.Random,
                 relations_enabled: bool = True,
                 max_walk: int = 8,
                 history_probability: float = 0.5) -> None:
        self._registry = registry
        self._hal_model = hal_model
        self._relations = relations
        self._rng = rng
        self._relations_enabled = relations_enabled
        self._max_walk = max_walk
        self._history_probability = history_probability
        self._pools: dict[str, deque[tuple]] = {}
        #: field name -> recently used integer values; lets independent
        #: calls agree on identifiers (bind/connect on one PSM, etc.).
        self._field_values: dict[str, deque[int]] = {}
        #: resource kind -> concrete values produced on the device; the
        #: source of *stale* handles (reusing a value after the object
        #: it named was invalidated).
        self._observed: dict[str, deque[int]] = {}
        #: device path -> payloads the HAL was seen writing there.
        self._captured_writes: dict[str, deque[bytes]] = {}
        #: device path -> (request, arg) pairs the HAL was seen issuing.
        self._captured_ioctls: dict[str, deque[tuple]] = {}
        #: lazy same-driver label index for :meth:`sibling_label`.
        self._siblings: tuple[dict, dict] | None = None

    # ------------------------------------------------------------------
    # history pool (historical payload mutation)
    # ------------------------------------------------------------------

    def record_history(self, program: Program) -> None:
        """Cache the argument tuples of an interesting program.

        Resource references are position-dependent, so they are
        normalized back to unresolved markers; reuse re-resolves them
        through producer insertion.
        """
        for call in program.calls:
            pool = self._pools.setdefault(call.label, deque(maxlen=_POOL_LIMIT))
            args = tuple(self._unresolve(a) for a in call.copy().args)
            pool.append(args)
            for arg in args:
                if isinstance(arg, StructValue):
                    for name, value in arg.values.items():
                        self._record_field_value(name, value)

    def observe_program(self, program: Program,
                        produced: list[int | None]) -> None:
        """Feed back the concrete resource values an execution produced."""
        for call, value in zip(program.calls, produced):
            if value is None:
                continue
            kind = self._produced_kind(call)
            if kind:
                self.observe_produced(kind, value)

    @staticmethod
    def _unresolve(value):
        if isinstance(value, ResourceRef):
            if not value.kind:
                return 0
            return ResourceRef(UNRESOLVED, value.kind)
        if isinstance(value, StructValue):
            value.values = {
                k: (ResourceRef(UNRESOLVED, v.kind) if v.kind else 0)
                if isinstance(v, ResourceRef) else v
                for k, v in value.values.items()}
        return value

    def _pooled_args(self, label: str) -> tuple | None:
        pool = self._pools.get(label)
        if pool and self._rng.random() < self._history_probability:
            return self._rng.choice(tuple(pool))
        return None

    def observe_produced(self, kind: str, value: int) -> None:
        """Record a resource value the device handed back."""
        pool = self._observed.setdefault(kind, deque(maxlen=_POOL_LIMIT))
        pool.append(value)

    def record_capture(self, capture: tuple) -> None:
        """Record one HAL payload capture from the eBPF probe.

        This is how proprietary wire formats (HCI packets, vendor ioctl
        structs) enter the generator: not from descriptions — none exist
        — but from watching the HAL produce them (§IV-C's kernel-user
        relational payloads).
        """
        if capture[0] == "write":
            _kind, path, data = capture
            pool = self._captured_writes.setdefault(
                path, deque(maxlen=_POOL_LIMIT * 2))
            if data not in pool:
                pool.append(data)
        else:
            _kind, path, request, arg = capture
            pool = self._captured_ioctls.setdefault(
                path, deque(maxlen=_POOL_LIMIT * 2))
            if (request, arg) not in pool:
                pool.append((request, arg))

    def _record_field_value(self, name: str, value) -> None:
        if isinstance(value, int):
            pool = self._field_values.setdefault(name,
                                                 deque(maxlen=_POOL_LIMIT))
            pool.append(value)

    # ------------------------------------------------------------------
    # generation entry point
    # ------------------------------------------------------------------

    def generate(self) -> Program:
        """Generate one program per the §IV-C procedure."""
        base = self._relations.pick_base(self._rng)
        if self._relations_enabled:
            labels = self._walk_labels(base)
        else:
            # Randomized dependency generation (DF-NoRel ablation).
            labels = [base]
            while (len(labels) < self._max_walk
                   and self._rng.random() > 0.35):
                labels.append(self._relations.pick_base(self._rng))
        calls = []
        for label in labels:
            call = self.instantiate(label)
            if call is None:
                continue
            calls.append(call)
            # Repeat operations occasionally: many driver states need
            # the same call several times (queue several buffers, send
            # several packets), which a single walk visit never does.
            while (len(calls) < self._max_walk + 4
                   and self._rng.random() < 0.3):
                repeat = self.instantiate(label)
                if repeat is None:
                    break
                calls.append(repeat)
        if not calls:
            calls = [self.instantiate(base) or SyscallCall("openat$missing")]
        return self.resolve_resources(calls)

    def _walk_labels(self, base: str) -> list[str]:
        """Relation-guided walk with same-surface fallback.

        Each step follows a learned edge when one exists; at dead ends
        it usually continues with another interface of the same driver
        or service (stateful interfaces want clustered call sequences),
        and stops otherwise.
        """
        labels = [base]
        current = base
        while len(labels) < self._max_walk:
            if self._rng.random() < 0.25:
                break
            nxt = None
            edges = self._relations.out_edges(current)
            if edges:
                dsts = sorted(edges)
                weights = [edges[d] for d in dsts]
                if sum(weights) > 0:
                    nxt = self._rng.choices(dsts, weights=weights, k=1)[0]
            if nxt is None and self._rng.random() < 0.7:
                nxt = self.sibling_label(current)
            if nxt is None:
                break
            labels.append(nxt)
            current = nxt
        return labels

    def generate_call_for(self, label: str) -> Call | None:
        """Instantiate one call (used by the mutator's insert op)."""
        return self.instantiate(label)

    def sibling_label(self, label: str) -> str | None:
        """A random label of the same driver/service as ``label``.

        Same-surface affinity: extending a program with another call of
        the interface it already touches is how call-sequence state
        machines get explored.
        """
        if self._siblings is None:
            groups: dict[str, list[str]] = {}
            owner: dict[str, str] = {}
            for name in self._registry.names():
                desc = self._registry.get(name)
                groups.setdefault(desc.driver, []).append(name)
                owner[name] = desc.driver
            if self._hal_model is not None:
                for hal_label in self._hal_model.labels():
                    service = self._hal_model.methods[hal_label].service
                    groups.setdefault(service, []).append(hal_label)
                    owner[hal_label] = service
            self._siblings = (groups, owner)
        groups, owner = self._siblings
        group = groups.get(owner.get(label, ""), ())
        if not group:
            return None
        return self._rng.choice(group)

    # ------------------------------------------------------------------
    # instantiation
    # ------------------------------------------------------------------

    def instantiate(self, label: str) -> Call | None:
        """Instantiate the call named by a relation-graph vertex."""
        if self._hal_model is not None:
            model = self._hal_model.get(label)
            if model is not None:
                return self._instantiate_hal(model)
        desc = self._registry.get(label)
        if desc is not None:
            return self._instantiate_syscall(desc)
        return None

    def _instantiate_hal(self, model) -> HalCall:
        pooled = self._pooled_args(model.label)
        if pooled is not None:
            # Historical payload *mutation* (§IV-C): mostly replay, but
            # regenerate individual positions so proven call contexts
            # still meet adversarial argument values.
            args = []
            for position, value in enumerate(pooled):
                if (self._rng.random() < 0.15
                        and position < len(model.signature)
                        and not isinstance(value, ResourceRef)):
                    args.append(gen_hal_value(self._rng,
                                              model.signature[position]))
                elif isinstance(value, StructValue):
                    args.append(value.copy())
                else:
                    args.append(value)
            return HalCall(model.service, model.name, tuple(args))
        seen: tuple | None = None
        if model.seen_args and self._rng.random() < 0.55:
            # Replay an argument tuple observed in framework traffic —
            # vendor-valid values the fuzzer cannot guess (resolutions,
            # rates, channel numbers).  Handle-like positions are still
            # rewritten below: observed handles go stale, the linked
            # producer provides live ones.
            seen = self._rng.choice(model.seen_args)
        args = []
        for position, tag in enumerate(model.signature):
            link = model.links.get(position)
            if link is not None:
                kind = f"hal:{link[0]}.{link[1]}"
                roll = self._rng.random()
                stale_pool = self._observed.get(kind)
                if roll < 0.7:
                    args.append(ResourceRef(UNRESOLVED, kind))
                    continue
                if roll < 0.9 and stale_pool:
                    # Reuse a concrete historical handle: if the object
                    # it named has since been invalidated, this is the
                    # stale-handle path.
                    args.append(self._rng.choice(tuple(stale_pool)))
                    continue
            if (seen is not None and position < len(seen)
                    and self._rng.random() < 0.85):
                # Mostly keep the observed value, but mix in generated
                # ones so valid call contexts still see boundary
                # payloads (an always-verbatim replay would never pair
                # a live handle with an adversarial argument).
                args.append(seen[position])
            else:
                args.append(gen_hal_value(self._rng, tag))
        return HalCall(model.service, model.name, tuple(args))

    def _instantiate_syscall(self, desc: SyscallDesc) -> SyscallCall:
        pooled = self._pooled_args(desc.name)
        if pooled is not None:
            args = []
            for value in pooled:
                if isinstance(value, StructValue):
                    value = value.copy()
                    if value.values and self._rng.random() < 0.15:
                        key = self._rng.choice(sorted(value.values))
                        field = next((f for f in fields_from_desc(desc)
                                      if f.name == key), None)
                        if field is not None:
                            value.values[key] = gen_field(self._rng, field)
                elif (isinstance(value, (bytes, bytearray))
                      and self._rng.random() < 0.15):
                    value = gen_bytes(self._rng, max(len(value), 16))
                args.append(value)
            return SyscallCall(desc.name, tuple(args))
        rng = self._rng
        fd_ref = (ResourceRef(UNRESOLVED, desc.fd_resource)
                  if desc.fd_resource else None)
        if desc.kind == "open":
            return SyscallCall(desc.name, (rng.choice((0, 2, 2, 0o4002)),))
        if desc.kind in ("close", "dup", "accept", "getsockopt"):
            return SyscallCall(desc.name, (fd_ref,))
        if desc.kind == "read":
            return SyscallCall(desc.name, (fd_ref, gen_int(rng, 1, 512)))
        if desc.kind == "recvfrom":
            return SyscallCall(desc.name, (fd_ref, gen_int(rng, 1, 512)))
        if desc.kind == "listen":
            return SyscallCall(desc.name, (fd_ref, gen_int(rng, 0, 8)))
        if desc.kind == "write":
            captured = self._captured_writes.get(desc.path)
            if desc.write_fields and rng.random() < 0.8:
                payload: object = self._struct_for(desc.name,
                                                   desc.write_fields)
            elif captured and rng.random() < 0.7:
                payload = rng.choice(tuple(captured))
            else:
                payload = gen_bytes(rng, 96)
            return SyscallCall(desc.name, (fd_ref, payload))
        if desc.kind == "ioctl_raw":
            captured = self._captured_ioctls.get(desc.path)
            if captured and rng.random() < 0.85:
                request, arg = rng.choice(tuple(captured))
            else:
                request = rng.getrandbits(32)
                arg = rng.choice((None, gen_int(rng, 0, 64),
                                  gen_bytes(rng, 32)))
            return SyscallCall(desc.name, (fd_ref, request, arg))
        if desc.kind == "sendto":
            return SyscallCall(desc.name, (fd_ref, gen_bytes(rng, 96)))
        if desc.kind == "mmap":
            return SyscallCall(desc.name, (
                fd_ref, rng.choice((4096, 8192, 65536)),
                rng.choice((0, 4096, 8192, 1 << 12))))
        if desc.kind == "socket":
            sock_type = (rng.choice(desc.sock_types)
                         if desc.sock_types else 1)
            protocol = (rng.choice(desc.protocols)
                        if desc.protocols else 0)
            return SyscallCall(desc.name, (sock_type, protocol))
        if desc.kind in ("bind", "connect"):
            return SyscallCall(desc.name, (
                fd_ref, self._struct_for(desc.name, desc.addr_fields)))
        if desc.kind == "setsockopt":
            return SyscallCall(desc.name, (
                fd_ref, self._struct_for(desc.name, desc.opt_fields)))
        if desc.kind == "ioctl":
            if desc.arg == "none":
                return SyscallCall(desc.name, (fd_ref,))
            if desc.arg == "int":
                field = desc.int_kind
                value = gen_field(rng, field) if field else gen_int(rng, 0, 64)
                return SyscallCall(desc.name, (fd_ref, value))
            if desc.arg == "buffer":
                return SyscallCall(desc.name, (fd_ref, gen_bytes(rng, 64)))
            return SyscallCall(desc.name, (
                fd_ref, self._struct_for(desc.name, desc.fields)))
        return SyscallCall(desc.name, (fd_ref,) if fd_ref else ())

    def _struct_for(self, spec_name: str, fields) -> StructValue:
        values = {}
        for f in fields:
            pool = self._field_values.get(f.name)
            if (pool and f.kind in ("range", "enum")
                    and self._rng.random() < 0.35):
                # Cross-call agreement: reuse an identifier another call
                # recently used under the same field name (PSM, handle,
                # index …) so independent calls can name the same object.
                values[f.name] = self._rng.choice(tuple(pool))
            else:
                values[f.name] = gen_field(self._rng, f)
            self._record_field_value(f.name, values[f.name])
        return StructValue(spec_name, values)

    # ------------------------------------------------------------------
    # producer-call insertion
    # ------------------------------------------------------------------

    def resolve_resources(self, calls: list[Call]) -> Program:
        """Fix unresolved references by inserting producer prefixes."""
        out: list[Call] = []
        produced_at: dict[str, int] = {}

        def ensure(kind: str, depth: int) -> int | None:
            if kind in produced_at:
                # Usually reuse the live instance, but sometimes make a
                # second one — many bugs need two objects of the same
                # kind (a listener and a connecting socket, two stream
                # configurations, …).
                if depth > 0 or self._rng.random() < 0.8:
                    return produced_at[kind]
            if depth > 4:
                return produced_at.get(kind)
            producer_calls = self._make_producer(kind)
            if not producer_calls:
                return produced_at.get(kind)
            index = None
            for producer in producer_calls:
                emit(producer, depth + 1)
                if self._produced_kind(producer) == kind:
                    index = produced_at.get(kind)
            return index if index is not None else produced_at.get(kind)

        def emit(call: Call, depth: int = 0) -> None:
            fixed_args = []
            for arg in call.args:
                fixed_args.append(self._fix_value(arg, ensure, depth))
            call.args = tuple(fixed_args)
            out.append(call)
            kind = self._produced_kind(call)
            if kind:
                produced_at[kind] = len(out) - 1

        for call in calls:
            emit(call)
        program = Program(out)
        program.validate()
        return program

    def _fix_value(self, value, ensure, depth: int):
        if isinstance(value, ResourceRef) and value.index == UNRESOLVED:
            index = ensure(value.kind, depth)
            if index is None:
                # No producer available: degrade to a junk scalar.
                return gen_int(self._rng, 0, 64)
            return ResourceRef(index, value.kind)
        if isinstance(value, StructValue):
            value.values = {
                key: self._fix_value(inner, ensure, depth)
                for key, inner in value.values.items()}
            # Struct fields must stay int/bytes/ref.
            value.values = {k: (v if isinstance(v, (int, bytes, ResourceRef))
                                else 0)
                            for k, v in value.values.items()}
        return value

    def _produced_kind(self, call: Call) -> str | None:
        if call.is_hal:
            return f"hal:{call.label}"
        desc = self._registry.get(call.desc)
        if desc is not None and desc.produces:
            return desc.produces
        return None

    def _make_producer(self, kind: str) -> list[Call]:
        """Call sequence that defines resource ``kind``.

        Most resources take one call.  Rendezvous identifiers produced
        by ``bind`` additionally need a ``listen`` on the same socket to
        be consumable — a syzkaller-style multi-call setup template.
        """
        if kind.startswith("hal:"):
            label = kind[len("hal:"):]
            if self._hal_model is None:
                return []
            model = self._hal_model.get(label)
            if model is None:
                return []
            return [self._instantiate_hal(model)]
        producers = self._registry.producers_of(kind)
        if not producers:
            return []
        # Prefer simple producers (opens before ioctls) to keep prefixes
        # short; fall back to any.
        opens = [d for d in producers if d.kind in ("open", "socket")]
        desc = self._rng.choice(opens or producers)
        calls = [self._instantiate_syscall(desc)]
        if desc.kind == "bind" and desc.produce_field:
            # Rendezvous setup template: a *dedicated* socket, bound and
            # listening, so the consumer's own socket stays distinct.
            sock_descs = [d for d in self._registry.producers_of(
                desc.fd_resource) if d.kind == "socket"]
            if sock_descs:
                calls.insert(0, self._instantiate_syscall(sock_descs[0]))
            listen = self._registry.get(
                desc.name.replace("bind$", "listen$"))
            if listen is not None:
                calls.append(self._instantiate_syscall(listen))
        return calls
