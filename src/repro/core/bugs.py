"""Crash triage: deduplication and bug reports (paper §V-B).

Crashes are deduplicated by their stable title (the splat headline on a
real device: ``WARNING in rt1711_i2c_probe``, ``KASAN: … in
bt_accept_unlink``, ``Native crash in Camera HAL``), which is exactly
how kernel-fuzzing dashboards bucket reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.model import Program
from repro.dsl.text import serialize_program


@dataclass
class BugReport:
    """One deduplicated bug."""

    title: str
    kind: str
    component: str
    device: str
    first_clock: float
    count: int = 1
    reproducer: str = ""

    def is_hal(self) -> bool:
        """True for HAL-layer bugs."""
        return self.component == "hal"


@dataclass
class BugTracker:
    """Per-campaign bug ledger."""

    device: str
    reports: dict[str, BugReport] = field(default_factory=dict)
    #: Crashes folded into an existing report (telemetry: dedup rate).
    dup_hits: int = 0
    #: Virtual clock of the first unique bug (telemetry: time-to-first).
    first_bug_clock: float | None = None

    def record(self, crashes: list[dict[str, str]], clock: float,
               program: Program | None = None) -> list[BugReport]:
        """Fold in crash dicts from the broker; returns the *new* bugs."""
        fresh: list[BugReport] = []
        for crash in crashes:
            title = crash["title"]
            existing = self.reports.get(title)
            if existing is not None:
                existing.count += 1
                self.dup_hits += 1
                continue
            if self.first_bug_clock is None:
                self.first_bug_clock = clock
            report = BugReport(
                title=title,
                kind=crash.get("kind", "?"),
                component=crash.get("component", "kernel"),
                device=self.device,
                first_clock=clock,
                reproducer=(serialize_program(program)
                            if program is not None else ""),
            )
            self.reports[title] = report
            fresh.append(report)
        return fresh

    def dedup_rate(self) -> float:
        """Share of recorded crashes that deduplicated into an existing
        report (0.0 when nothing crashed yet)."""
        total = self.dup_hits + len(self.reports)
        return self.dup_hits / total if total else 0.0

    def all_reports(self) -> list[BugReport]:
        """Reports ordered by first discovery."""
        return sorted(self.reports.values(), key=lambda r: r.first_clock)

    def titles(self) -> set[str]:
        """Deduplicated crash titles."""
        return set(self.reports)

    def kernel_bugs(self) -> list[BugReport]:
        """Kernel-side bugs only."""
        return [r for r in self.all_reports() if not r.is_hal()]

    def hal_bugs(self) -> list[BugReport]:
        """HAL-side bugs only."""
        return [r for r in self.all_reports() if r.is_hal()]
