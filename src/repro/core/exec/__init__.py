"""Device-side execution agents (paper §IV-A).

The :class:`ExecutionBroker` receives DSL programs from its host-side
fuzzing engine (over the ADB surrogate), dispatches each element to the
:class:`NativeExecutor` (syscalls) or :class:`HalExecutor` (Binder
transactions), bonds the kernel and HAL feedback into one uniform
statistic, and reports crashes.
"""

from repro.core.exec.broker import ExecutionBroker, ExecOutcome, CallStatus
from repro.core.exec.native_executor import NativeExecutor
from repro.core.exec.hal_executor import HalExecutor

__all__ = ["ExecutionBroker", "ExecOutcome", "CallStatus",
           "NativeExecutor", "HalExecutor"]
