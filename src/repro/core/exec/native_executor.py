"""Native executor: runs syscall elements of a DSL program.

Borrowed conceptually from Syzkaller's executor (as the paper's
implementation borrows its native executor): it instantiates each
specialized syscall description with the call's concrete argument
values, resolving resource references against earlier results and
packing struct values using the description's field specs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.dsl.descriptions import DescriptionRegistry, SyscallDesc
from repro.dsl.model import ResourceRef, StructValue, SyscallCall
from repro.kernel.ioctl import FieldSpec, pack_fields

if TYPE_CHECKING:
    from repro.device.device import AndroidDevice


def fields_for_spec(registry: DescriptionRegistry,
                    spec_name: str) -> tuple[FieldSpec, ...]:
    """Field layout a :class:`StructValue` with ``spec_name`` packs to."""
    desc = registry.get(spec_name)
    if desc is None:
        return ()
    if desc.kind == "ioctl":
        return desc.fields
    if desc.kind in ("bind", "connect"):
        return desc.addr_fields
    if desc.kind == "setsockopt":
        return desc.opt_fields
    if desc.kind == "write":
        return desc.write_fields
    return ()


class NativeExecutor:
    """Executes :class:`SyscallCall` elements in one kernel task."""

    def __init__(self, device: "AndroidDevice",
                 registry: DescriptionRegistry, comm: str = "df_native") -> None:
        self._device = device
        self._registry = registry
        self._task = device.new_process(comm)

    @property
    def pid(self) -> int:
        """Kernel pid of the executor task (kcov is enabled on it)."""
        return self._task.pid

    def respawn(self) -> None:
        """Re-create the executor task (after a device reboot)."""
        self._task = self._device.new_process("df_native")

    # ------------------------------------------------------------------

    def _resolve(self, value: Any, results: list[int]) -> Any:
        if isinstance(value, ResourceRef):
            if 0 <= value.index < len(results):
                produced = results[value.index]
                return produced if produced is not None else -1
            return -1
        return value

    def _pack_struct(self, struct_value: StructValue,
                     default_fields: tuple[FieldSpec, ...],
                     results: list[int]) -> bytes:
        fields = fields_for_spec(self._registry, struct_value.spec)
        if not fields:
            fields = default_fields
        resolved = {key: self._resolve(val, results)
                    for key, val in struct_value.values.items()}
        return pack_fields(fields, resolved)

    def _arg_bytes(self, value: Any, default_fields: tuple[FieldSpec, ...],
                   results: list[int]) -> Any:
        if isinstance(value, StructValue):
            return self._pack_struct(value, default_fields, results)
        return self._resolve(value, results)

    # ------------------------------------------------------------------

    def run(self, call: SyscallCall,
            results: list[int]) -> tuple[int, int | None]:
        """Execute one syscall element.

        Returns ``(ret, produced_resource_value)``.
        """
        desc = self._registry.get(call.desc)
        if desc is None:
            return -38, None  # ENOSYS for an unknown description
        args = call.args
        handler = getattr(self, f"_run_{desc.kind}", None)
        if handler is None:
            return -38, None
        return handler(desc, args, results)

    def _sys(self, name: str, *args):
        return self._device.syscall(self._task.pid, name, *args)

    @staticmethod
    def _int_arg(args: tuple, index: int, default: int) -> int:
        if index < len(args) and isinstance(args[index], int):
            return args[index]
        return default

    def _fd(self, args: tuple, results: list[int]) -> int:
        if args and isinstance(args[0], (ResourceRef, int)):
            value = self._resolve(args[0], results)
            return value if isinstance(value, int) else -1
        return -1

    # -- per-kind handlers ------------------------------------------------

    def _run_open(self, desc: SyscallDesc, args, results):
        flags = self._int_arg(args, 0, 2)
        out = self._sys("openat", desc.path, flags)
        return out.ret, (out.ret if out.ret >= 0 else None)

    def _run_close(self, desc, args, results):
        return self._sys("close", self._fd(args, results)).ret, None

    def _run_dup(self, desc, args, results):
        out = self._sys("dup", self._fd(args, results))
        return out.ret, (out.ret if out.ret >= 0 else None)

    def _run_read(self, desc, args, results):
        size = self._int_arg(args, 1, 64)
        return self._sys("read", self._fd(args, results), size).ret, None

    def _run_write(self, desc, args, results):
        data = b""
        if len(args) > 1:
            data = self._arg_bytes(args[1], desc.write_fields, results)
        if not isinstance(data, (bytes, bytearray)):
            data = b""
        return self._sys("write", self._fd(args, results),
                         bytes(data)).ret, None

    def _run_ioctl(self, desc, args, results):
        arg_value: Any = None
        if len(args) > 1:
            arg_value = self._arg_bytes(args[1], desc.fields, results)
        out = self._sys("ioctl", self._fd(args, results), desc.request,
                        arg_value)
        produced = None
        if out.ret >= 0 and desc.produces:
            if desc.produce_offset >= 0 and out.data is not None:
                chunk = out.data[desc.produce_offset:desc.produce_offset + 4]
                if len(chunk) == 4:
                    produced = int.from_bytes(chunk, "little")
            else:
                produced = out.ret
        return out.ret, produced

    def _run_ioctl_raw(self, desc, args, results):
        """Untyped ioctl: the request value is a program argument."""
        request = self._resolve(args[1], results) if len(args) > 1 else 0
        if not isinstance(request, int):
            request = 0
        arg_value: Any = None
        if len(args) > 2:
            arg_value = self._arg_bytes(args[2], (), results)
        out = self._sys("ioctl", self._fd(args, results), request, arg_value)
        return out.ret, None

    def _run_mmap(self, desc, args, results):
        length = self._int_arg(args, 1, 4096)
        offset = self._resolve(args[2], results) if len(args) > 2 else 0
        if not isinstance(offset, int):
            offset = 0
        out = self._sys("mmap", self._fd(args, results), length, 3, 1, offset)
        return out.ret, None

    def _run_socket(self, desc, args, results):
        sock_type = self._int_arg(args, 0, desc.sock_types[0]
                                  if desc.sock_types else 1)
        protocol = self._int_arg(args, 1, desc.protocols[0]
                                 if desc.protocols else 0)
        out = self._sys("socket", desc.domain, sock_type, protocol)
        return out.ret, (out.ret if out.ret >= 0 else None)

    def _run_bind(self, desc, args, results):
        addr = b""
        produced = None
        if len(args) > 1:
            addr = self._arg_bytes(args[1], desc.addr_fields, results)
            if (desc.produce_field and isinstance(args[1], StructValue)):
                value = self._resolve(
                    args[1].values.get(desc.produce_field, 0), results)
                if isinstance(value, int):
                    produced = value
        if not isinstance(addr, (bytes, bytearray)):
            addr = b""
        ret = self._sys("bind", self._fd(args, results), bytes(addr)).ret
        return ret, (produced if ret == 0 else None)

    def _run_connect(self, desc, args, results):
        addr = b""
        if len(args) > 1:
            addr = self._arg_bytes(args[1], desc.addr_fields, results)
        if not isinstance(addr, (bytes, bytearray)):
            addr = b""
        return self._sys("connect", self._fd(args, results),
                         bytes(addr)).ret, None

    def _run_listen(self, desc, args, results):
        backlog = self._int_arg(args, 1, 1)
        return self._sys("listen", self._fd(args, results), backlog).ret, None

    def _run_accept(self, desc, args, results):
        out = self._sys("accept", self._fd(args, results))
        return out.ret, (out.ret if out.ret >= 0 else None)

    def _run_setsockopt(self, desc, args, results):
        optval = b""
        if len(args) > 1:
            optval = self._arg_bytes(args[1], desc.opt_fields, results)
        if not isinstance(optval, (bytes, bytearray)):
            optval = b""
        return self._sys("setsockopt", self._fd(args, results), desc.level,
                         desc.optname, bytes(optval)).ret, None

    def _run_getsockopt(self, desc, args, results):
        return self._sys("getsockopt", self._fd(args, results), desc.level,
                         desc.optname).ret, None

    def _run_sendto(self, desc, args, results):
        data = args[1] if len(args) > 1 else b""
        data = self._resolve(data, results)
        if not isinstance(data, (bytes, bytearray)):
            data = b""
        return self._sys("sendto", self._fd(args, results), bytes(data),
                         None).ret, None

    def _run_recvfrom(self, desc, args, results):
        size = self._int_arg(args, 1, 64)
        return self._sys("recvfrom", self._fd(args, results),
                         size).ret, None
