"""HAL executor: runs Binder-transaction elements of a DSL program.

For each HAL call it (1) installs the eBPF syscall probe filtered to the
service's host process, (2) enables remote kcov on that process, (3)
performs the transaction, and (4) returns the reply status together
with the ordered specialized-syscall observations — the raw material of
the cross-boundary feedback (§IV-D).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import DeadObjectError, DeviceError
from repro.core.feedback.syscall_table import SpecializedSyscallTable
from repro.dsl.model import HalCall, ResourceRef
from repro.kernel.tracepoints import SyscallRecord

if TYPE_CHECKING:
    from repro.device.device import AndroidDevice

#: Status returned when the transaction killed the hosting process.
HAL_CRASH_STATUS = -32  # DEAD_OBJECT

_COERCERS = {
    "i32": lambda v: int(v) if isinstance(v, (int, float, bool)) else 0,
    "u32": lambda v: int(v) & 0xFFFFFFFF if isinstance(v, (int, float, bool)) else 0,
    "i64": lambda v: int(v) if isinstance(v, (int, float, bool)) else 0,
    "f32": lambda v: float(v) if isinstance(v, (int, float, bool)) else 0.0,
    "bool": lambda v: bool(v),
    "str": lambda v: v if isinstance(v, str) else "",
    "bytes": lambda v: bytes(v) if isinstance(v, (bytes, bytearray)) else b"",
}


class HalExecutor:
    """Executes :class:`HalCall` elements with tracing."""

    def __init__(self, device: "AndroidDevice",
                 table: SpecializedSyscallTable,
                 comm: str = "df_hal") -> None:
        self._device = device
        self._table = table
        self._task = device.new_process(comm)

    @property
    def pid(self) -> int:
        """Kernel pid the executor transacts from."""
        return self._task.pid

    def respawn(self) -> None:
        """Re-create the executor task (after a device reboot)."""
        self._task = self._device.new_process("df_hal")

    # ------------------------------------------------------------------

    def _resolve_args(self, call: HalCall, signature: tuple[str, ...],
                      results: list[int]) -> tuple[Any, ...]:
        resolved: list[Any] = []
        for index, tag in enumerate(signature):
            value = call.args[index] if index < len(call.args) else None
            if isinstance(value, ResourceRef):
                produced = (results[value.index]
                            if 0 <= value.index < len(results) else None)
                value = produced if produced is not None else -1
            coerce = _COERCERS.get(tag, lambda v: v)
            resolved.append(coerce(value))
        return tuple(resolved)

    def _capture_payload(self, record: SyscallRecord) -> tuple | None:
        """Recover a replayable payload from one HAL syscall observation.

        The eBPF probe can read the user buffers of the traced process,
        so writes yield ``("write", path, data)`` and ioctls yield
        ``("ioctl", path, request, arg)`` — vendor-valid payloads the
        fuzzer's own generation could never guess.
        """
        if record.name not in ("write", "ioctl") or not record.args:
            return None
        fd = record.args[0]
        proc = self._device.kernel.process(record.pid)
        if proc is None or not isinstance(fd, int):
            return None
        open_file = proc.fdtable.get(fd)
        if open_file is None:
            return None
        path = open_file.path
        if record.name == "write":
            data = record.args[1] if len(record.args) > 1 else b""
            if isinstance(data, (bytes, bytearray)) and len(data) <= 512:
                return ("write", path, bytes(data))
            return None
        request = record.args[1] if len(record.args) > 1 else 0
        arg = record.args[2] if len(record.args) > 2 else None
        if isinstance(arg, bytearray):
            arg = bytes(arg)
        if arg is not None and not isinstance(arg, (int, bytes)):
            return None
        if isinstance(arg, bytes) and len(arg) > 512:
            return None
        return ("ioctl", path, request, arg)

    def run(self, call: HalCall, results: list[int]
            ) -> tuple[int, int | None, list[int], list[tuple]]:
        """Execute one HAL element.

        Returns ``(status, produced_value, specialized_id_sequence,
        captured_payloads)``.  The sequence lists the syscalls the HAL
        issued while servicing the transaction, in order, as
        specialized IDs; the captures are replayable payloads recovered
        from the traced buffers.
        """
        service = self._device.hal_service(call.service)
        if service is None:
            return -38, None, [], []
        stub = service.method_by_name(call.method)
        if stub is None:
            return -74, None, [], []  # UNKNOWN_TRANSACTION

        process = self._device.hal_process(call.service)
        observed: list[SyscallRecord] = []
        handle = None
        if process is not None:
            if process.dead:
                process.restart()
                service.reset()
            self._device.kernel.kcov.enable(process.pid)  # KCOV_REMOTE
            handle = self._device.kernel.trace.attach(
                "sys_enter", observed.append, pid_filter=process.pid)
        args = self._resolve_args(call, stub.signature, results)
        status = HAL_CRASH_STATUS
        produced: int | None = None
        try:
            status, reply = self._device.hal_transact(
                self._task.pid, "df_hal", call.service, call.method, args)
            if status == 0:
                for tag in stub.returns:
                    if tag == "i32":
                        produced = reply.read_i32()
                    elif tag == "u32":
                        produced = reply.read_u32()
                    elif tag == "i64":
                        produced = reply.read_i64()
                    break
        except DeadObjectError:
            status = HAL_CRASH_STATUS
        except DeviceError:
            status = -38
        finally:
            if handle is not None:
                self._device.kernel.trace.detach(handle)
        sequence = [self._table.lookup(rec.name, rec.critical)
                    for rec in observed]
        captures = []
        for rec in observed[:32]:
            payload = self._capture_payload(rec)
            if payload is not None:
                captures.append(payload)
        return status, produced, sequence, captures

    def collect_remote_kcov(self, service_name: str) -> tuple[int, ...]:
        """Drain the remote kcov buffer of a service's host process."""
        process = self._device.hal_process(service_name)
        if process is None:
            return ()
        return self._device.kernel.kcov.collect(process.pid)
