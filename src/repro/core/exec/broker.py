"""Execution Broker (paper §IV-A).

The device-side coordinator: receives DSL programs from its parent
fuzzing engine over the ADB surrogate, holds the execution queue,
dispatches each element to the HAL or native executor by type, bonds
kernel kcov and HAL directional observations into one uniform feedback
statistic, and reports crashes and reboot requests back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.exec.hal_executor import HAL_CRASH_STATUS, HalExecutor
from repro.core.exec.native_executor import NativeExecutor
from repro.core.feedback.syscall_table import SpecializedSyscallTable
from repro.dsl.descriptions import DescriptionRegistry
from repro.dsl.model import Program
from repro.dsl.text import parse_program, serialize_program

if TYPE_CHECKING:
    from repro.device.device import AndroidDevice
    from repro.obs.metrics import MetricsRegistry


@dataclass
class CallStatus:
    """Result of one executed call.

    Treated as immutable; left unfrozen because instances are built once
    per executed call and the frozen ``object.__setattr__`` constructor
    is measurably slower on that path.
    """

    ret: int
    produced: int | None = None
    hal_crash: bool = False


@dataclass
class ExecOutcome:
    """Bonded feedback for one executed program."""

    statuses: list[CallStatus] = field(default_factory=list)
    kernel_pcs: frozenset[int] = frozenset()
    hal_sequence: tuple[int, ...] = ()
    #: Replayable HAL payloads: ("write", path, data) and
    #: ("ioctl", path, request, arg) tuples captured by the eBPF probe.
    captures: list[tuple] = field(default_factory=list)
    crashes: list[dict[str, str]] = field(default_factory=list)
    needs_reboot: bool = False
    clock: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """Wire form for the ADB RPC channel."""
        wire_captures = []
        for capture in self.captures:
            if capture[0] == "write":
                wire_captures.append(["write", capture[1],
                                      capture[2].hex()])
            else:
                _kind, path, request, arg = capture
                wire_arg: Any = arg
                if isinstance(arg, bytes):
                    wire_arg = {"hex": arg.hex()}
                wire_captures.append(["ioctl", path, request, wire_arg])
        return {
            "rets": [s.ret for s in self.statuses],
            "produced": [s.produced for s in self.statuses],
            "hal_crashes": [s.hal_crash for s in self.statuses],
            "kcov": sorted(self.kernel_pcs),
            "hal_seq": list(self.hal_sequence),
            "captures": wire_captures,
            "crashes": self.crashes,
            "needs_reboot": self.needs_reboot,
            "clock": self.clock,
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "ExecOutcome":
        """Parse the wire form."""
        statuses = [CallStatus(ret=r, produced=p, hal_crash=h)
                    for r, p, h in zip(payload["rets"], payload["produced"],
                                       payload["hal_crashes"])]
        captures: list[tuple] = []
        for entry in payload.get("captures", ()):
            if entry[0] == "write":
                captures.append(("write", entry[1], bytes.fromhex(entry[2])))
            else:
                arg = entry[3]
                if isinstance(arg, dict):
                    arg = bytes.fromhex(arg["hex"])
                captures.append(("ioctl", entry[1], entry[2], arg))
        return ExecOutcome(
            statuses=statuses,
            kernel_pcs=frozenset(payload["kcov"]),
            hal_sequence=tuple(payload["hal_seq"]),
            captures=captures,
            crashes=list(payload["crashes"]),
            needs_reboot=payload["needs_reboot"],
            clock=payload["clock"],
        )


class ExecutionBroker:
    """Device-side broker managing both executors.

    Args:
        device: the device under test.
        registry: syzlang-lite descriptions for the native executor.
        syscall_filter: optional seccomp-surrogate allowlist (used by the
            DroidFuzz-D variant to restrict everything to open/ioctl).
        metrics: optional telemetry registry; when given, the broker
            records wire payload sizes and per-program virtual time.
    """

    SOCKET_NAME = "droidfuzz-broker"

    #: Bound on the full-text parse cache before a wholesale flush.
    PARSE_CACHE_CAP = 4096

    def __init__(self, device: "AndroidDevice", registry: DescriptionRegistry,
                 syscall_filter: frozenset[str] | None = None,
                 metrics: "MetricsRegistry | None" = None,
                 fast_wire: bool = True) -> None:
        self._device = device
        self._registry = registry
        self.table = SpecializedSyscallTable(registry)
        self._native = NativeExecutor(device, registry)
        self._hal = HalExecutor(device, self.table)
        self._filter = syscall_filter
        self.programs_executed = 0
        #: Wire caches (gated so the legacy baseline stays measurable):
        #: full program text → pristine parsed Program, and per-line
        #: memo shared across programs that differ in a few calls.
        self._fast_wire = fast_wire
        self._parse_cache: dict[str, Program] = {}
        self._line_cache: dict[str, tuple] = {}
        self._m_programs = self._m_vtime = None
        self._m_payload = self._m_calls = self._m_rpcs = None
        if metrics is not None:
            self._m_programs = metrics.counter("broker.programs")
            self._m_rpcs = metrics.counter("broker.rpcs")
            self._m_vtime = metrics.histogram(
                "broker.exec_vtime", buckets=(1.0, 2.5, 5.0, 10.0, 25.0,
                                              50.0, 100.0, 250.0))
            self._m_payload = metrics.histogram(
                "broker.payload_bytes", buckets=(64, 128, 256, 512, 1024,
                                                 2048, 4096, 8192))
            self._m_calls = metrics.histogram(
                "broker.calls_per_program", buckets=(1, 2, 4, 8, 16, 32))
        self._apply_filter()

    # ------------------------------------------------------------------

    def _apply_filter(self) -> None:
        kernel = self._device.kernel
        if self._filter is None:
            return
        kernel.syscall_filters[self._native.pid] = self._filter
        for name in self._device.hal_services():
            process = self._device.hal_process(name)
            if process is not None:
                kernel.syscall_filters[process.pid] = self._filter

    def on_reboot(self) -> None:
        """Re-establish executor tasks and filters after a reboot."""
        self._native.respawn()
        self._hal.respawn()
        self._apply_filter()

    # ------------------------------------------------------------------

    def execute(self, program: Program) -> ExecOutcome:
        """Run one program; returns the bonded feedback."""
        device = self._device
        kernel = device.kernel
        kernel.kcov.enable(self._native.pid)
        self.programs_executed += 1
        vclock_start = device.clock
        if self._m_programs is not None:
            self._m_programs.inc()
            self._m_calls.observe(len(program.calls))

        statuses: list[CallStatus] = []
        results: list[int] = []
        kernel_pcs: set[int] = set()
        hal_sequence: list[int] = []
        captures: list[tuple] = []
        for call in program.calls:
            # `kernel.panicked or kernel.hung` is `not device.healthy`,
            # read directly: this check runs once per call.
            if kernel.panicked or kernel.hung:
                statuses.append(CallStatus(ret=-5))
                results.append(-1)
                continue
            if call.is_hal:
                if self._filter is not None:
                    self._apply_filter()  # HAL pids change across restarts
                status, produced, sequence, caught = self._hal.run(
                    call, results)
                statuses.append(CallStatus(
                    ret=status, produced=produced,
                    hal_crash=status == HAL_CRASH_STATUS))
                results.append(produced if produced is not None else status)
                hal_sequence.extend(sequence)
                captures.extend(caught)
                kernel_pcs.update(
                    self._hal.collect_remote_kcov(call.service))
            else:
                ret, produced = self._native.run(call, results)
                statuses.append(CallStatus(ret=ret, produced=produced))
                results.append(produced if produced is not None else ret)
                kernel_pcs.update(kernel.kcov.collect(self._native.pid))

        # Each program runs in a fresh child of the executor (syzkaller
        # style): tearing the task down closes its fds, which exercises
        # the drivers' release paths before crash collection.
        kernel.kcov.enable(self._native.pid)
        kernel.kill_process(self._native.pid)  # also drops its filter entry
        kernel_pcs.update(kernel.kcov.collect(self._native.pid))
        kernel.kcov.disable(self._native.pid)
        self._native.respawn()
        if self._filter is not None:
            kernel.syscall_filters[self._native.pid] = self._filter

        crashes = [{"kind": getattr(c, "kind", "NATIVE"),
                    "title": c.title,
                    "component": c.component}
                   for c in self._device.drain_crashes()]
        if self._m_vtime is not None:
            self._m_vtime.observe(self._device.clock - vclock_start)
        return ExecOutcome(
            statuses=statuses,
            kernel_pcs=frozenset(kernel_pcs),
            hal_sequence=tuple(hal_sequence),
            captures=captures,
            crashes=crashes,
            needs_reboot=not self._device.healthy,
            clock=self._device.clock,
        )

    # ------------------------------------------------------------------
    # ADB RPC surface
    # ------------------------------------------------------------------

    def execute_program(self, program: Program) -> ExecOutcome:
        """In-process fast path: run ``program`` without the text wire.

        Observably equivalent to ``rpc_handler(wire_program(program))``
        followed by ``ExecOutcome.from_dict``: execution is read-only on
        the program (mutation always happens on copies, in the mutator
        and minimizer), so running the caller's object directly matches
        running a freshly parsed private copy, and every outcome field
        round-trips the wire encoding unchanged.  Engines use this when
        broker and device share a process and no telemetry needs the
        payload sizes off the wire.
        """
        return self.execute(program)

    def _parse_wire(self, text: str) -> Program:
        """Parse an exec payload, through the wire caches when enabled."""
        if not self._fast_wire:
            return parse_program(text)
        cached = self._parse_cache.get(text)
        if cached is not None:
            return cached.copy()
        program = parse_program(text, line_cache=self._line_cache)
        if len(self._parse_cache) >= self.PARSE_CACHE_CAP:
            self._parse_cache.clear()
        self._parse_cache[text] = program.copy()
        return program

    def rpc_handler(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Handle one forwarded-socket request from the host engine."""
        command = payload.get("cmd")
        if self._m_rpcs is not None:
            self._m_rpcs.inc()
        if command == "exec":
            if self._m_payload is not None:
                self._m_payload.observe(len(payload["program"]))
            program = self._parse_wire(payload["program"])
            return self.execute(program).to_dict()
        if command == "ping":
            return {"pong": True, "clock": self._device.clock}
        if command == "table_size":
            return {"size": self.table.size()}
        return {"error": f"unknown command {command!r}"}

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """Quantile summaries of the broker's wire histograms.

        ``{"exec_vtime": {...}, "payload_bytes": {...}}`` with
        ``count``/``mean``/``max``/``p50``/``p90``/``p99`` per metric
        (empty histograms are omitted; ``{}`` without telemetry).
        Per-program virtual time is always recorded; payload sizes only
        when programs actually cross the text wire (``rpc_handler``),
        so a fast-path campaign reports vtime alone.
        """
        summary: dict[str, dict[str, float]] = {}
        for label, histogram in (("exec_vtime", self._m_vtime),
                                 ("payload_bytes", self._m_payload)):
            if histogram is None:
                continue
            stats = histogram.summary()
            if stats:
                summary[label] = stats
        return summary

    def wire_program(self, program: Program) -> dict[str, Any]:
        """Host-side helper: build the exec RPC payload.

        The serialized text is cached on the program object
        (``_wire_text``): programs are treated as frozen once handed to
        the broker, and mutation always works on fresh copies
        (``Program.copy()`` does not carry the attribute), so re-sent
        corpus seeds and reproducers skip re-serialization.
        """
        text = getattr(program, "_wire_text", None)
        if text is None or not self._fast_wire:
            text = serialize_program(program)
            program._wire_text = text
        return {"cmd": "exec", "program": text}
