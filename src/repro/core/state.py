"""Campaign state persistence.

The paper's Daemon "maintains persistent data, such as the seed corpus,
overall coverage statistics, and relation table" (§IV-A).  This module
saves and restores that state to a directory, so campaigns can be
interrupted and resumed, and a corpus distilled on one run can bootstrap
the next.

Layout of a state directory::

    <dir>/relations.json    the relation graph snapshot
    <dir>/corpus.txt        seed programs in the textual DSL
    <dir>/coverage.json     cumulative joint/kernel coverage elements
    <dir>/bugs.json         the deduplicated bug ledger
"""

from __future__ import annotations

import json
import pathlib

from repro.core.bugs import BugReport, BugTracker
from repro.core.corpus import Corpus
from repro.core.engine import FuzzingEngine
from repro.core.relations import RelationGraph


def save_state(engine: FuzzingEngine, directory: str | pathlib.Path) -> None:
    """Persist an engine's campaign state."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / "relations.json").write_text(
        json.dumps(engine.relations.to_dict(), indent=1))
    (path / "corpus.txt").write_text(engine.corpus.dump())
    (path / "coverage.json").write_text(json.dumps({
        "seen": sorted(engine.coverage.seen),
        "kernel_seen": sorted(engine.coverage.kernel_seen),
    }))
    (path / "bugs.json").write_text(json.dumps([
        {"title": b.title, "kind": b.kind, "component": b.component,
         "device": b.device, "first_clock": b.first_clock,
         "count": b.count, "reproducer": b.reproducer}
        for b in engine.bugs.all_reports()], indent=1))


def load_state(engine: FuzzingEngine, directory: str | pathlib.Path) -> None:
    """Restore persisted campaign state into a fresh engine.

    The engine must already be constructed for the same device profile;
    corpus programs are re-admitted with their recorded signatures
    dropped (they get re-evaluated naturally as mutation sources).
    """
    path = pathlib.Path(directory)
    relations_file = path / "relations.json"
    if relations_file.exists():
        engine.relations = RelationGraph.from_dict(
            json.loads(relations_file.read_text()))
        engine.generator._relations = engine.relations
        engine.mutator._generator._relations = engine.relations
    corpus_file = path / "corpus.txt"
    if corpus_file.exists():
        engine.corpus = Corpus()
        for program in Corpus.load(corpus_file.read_text()):
            engine.corpus.add(program, frozenset(), 0.0)
            engine.generator.record_history(program)
    coverage_file = path / "coverage.json"
    if coverage_file.exists():
        payload = json.loads(coverage_file.read_text())
        engine.coverage.seen = set(payload.get("seen", ()))
        engine.coverage.kernel_seen = set(payload.get("kernel_seen", ()))
    bugs_file = path / "bugs.json"
    if bugs_file.exists():
        engine.bugs = BugTracker(engine.device.profile.ident)
        for entry in json.loads(bugs_file.read_text()):
            engine.bugs.reports[entry["title"]] = BugReport(
                title=entry["title"], kind=entry["kind"],
                component=entry["component"], device=entry["device"],
                first_clock=entry["first_clock"], count=entry["count"],
                reproducer=entry.get("reproducer", ""))
