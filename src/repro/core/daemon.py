"""The DroidFuzz Daemon (paper §IV-A).

The root process: boots one device per profile, spawns a fuzzing engine
per device, runs their campaigns, and maintains the persistent campaign
artifacts — aggregated bug ledger, coverage statistics, the per-device
relation tables, and (when a telemetry directory is configured) one
recorded trace per campaign plus a fleet-wide throughput rollup.

Fleet runs dispatch through :class:`repro.fleet.FleetScheduler`: with
``jobs > 1`` campaigns shard across a worker pool (the paper's seven
devices run concurrently), while ``jobs=1`` executes inline through the
same code path.  Campaigns are seed-deterministic and independent per
device, so the merged ``results``/``rollups`` are identical either way;
result keys are reserved at submit time, which keeps naming race-free
no matter in which order workers finish.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.bugs import BugReport
from repro.core.config import FuzzerConfig
from repro.core.engine import CampaignResult, FuzzingEngine
from repro.device.device import AndroidDevice, DeviceCosts
from repro.device.profiles import DeviceProfile
from repro.fleet.jobs import CampaignJob, FleetJobError
from repro.fleet.scheduler import FLEET_FILE, FleetScheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import CampaignMonitor
from repro.obs.telemetry import Telemetry


@dataclass
class Daemon:
    """Coordinates fuzzing campaigns across a fleet of devices."""

    config: FuzzerConfig
    costs: DeviceCosts = field(default_factory=DeviceCosts)
    results: dict[str, CampaignResult] = field(default_factory=dict)
    #: When set, each campaign records its telemetry under
    #: ``<telemetry_dir>/<campaign key>/``.
    telemetry_dir: str | pathlib.Path | None = None
    #: Per-campaign monitor rollups, keyed like :attr:`results`.
    rollups: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Worker pool width for :meth:`run_fleet` (1: inline execution).
    jobs: int = 1
    #: Remote ``host:port`` worker-server addresses; when non-empty,
    #: fleet jobs dispatch over TCP (``repro worker serve`` peers)
    #: instead of the local pool.  Results are byte-identical either
    #: way — campaigns are seed-deterministic and merged by index.
    workers: list = field(default_factory=list)
    #: Real seconds without a worker heartbeat before the watchdog
    #: kills and requeues the job.
    watchdog_seconds: float = 300.0
    #: Re-executions allowed per job after its first attempt.
    max_retries: int = 2
    #: Size-based trace rotation threshold handed to each campaign's
    #: telemetry (None: unbounded ``trace.jsonl``).
    max_trace_bytes: int | None = None
    #: Fleet-level scheduler metrics (jobs queued/retried/failed,
    #: per-worker exec/s, wall vs virtual seconds).
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Scheduler summary of the last :meth:`run_fleet` call.
    fleet_stats: dict[str, Any] = field(default_factory=dict)
    #: Keys handed out but possibly not yet completed (reserved at
    #: submit time so concurrent dispatch cannot collide).
    _reserved: set[str] = field(default_factory=set, repr=False)

    def _campaign_key(self, profile: DeviceProfile,
                      config: FuzzerConfig) -> str:
        """Reserve and return a unique result key: ``ident#seed``,
        suffixed with a run ordinal when the same profile+seed is
        re-run.  Reservation happens here — at submit time — so keys
        stay unique when jobs are dispatched concurrently and finish
        out of order."""
        base = f"{profile.ident}#{config.seed}"

        def taken(candidate: str) -> bool:
            return candidate in self.results or candidate in self._reserved

        key = base
        if taken(key):
            ordinal = 2
            while taken(f"{base}.r{ordinal}"):
                ordinal += 1
            key = f"{base}.r{ordinal}"
        self._reserved.add(key)
        return key

    def run_device(self, profile: DeviceProfile,
                   seed: int | None = None) -> CampaignResult:
        """Boot one device, run one campaign, keep the result."""
        config = self.config
        if seed is not None:
            config = config.variant(seed=seed)
        key = self._campaign_key(profile, config)
        telemetry = None
        if self.telemetry_dir is not None:
            telemetry = Telemetry(
                directory=pathlib.Path(self.telemetry_dir) / key,
                interval=config.sample_interval,
                max_trace_bytes=self.max_trace_bytes)
        device = AndroidDevice(profile, costs=self.costs)
        engine = FuzzingEngine(device, config, telemetry=telemetry)
        result = engine.run()
        if telemetry is not None:
            self.rollups[key] = telemetry.rollup()
            telemetry.close()
        self.results[key] = result
        return result

    # ------------------------------------------------------------------
    # fleet orchestration
    # ------------------------------------------------------------------

    def _job_specs(self, profiles: list[DeviceProfile],
                   seed: int | None) -> list[CampaignJob]:
        """Reserve keys and build picklable job specs, in fleet order."""
        config = self.config
        if seed is not None:
            config = config.variant(seed=seed)
        telemetry_dir = (str(self.telemetry_dir)
                         if self.telemetry_dir is not None else None)
        return [CampaignJob(key=self._campaign_key(profile, config),
                            index=index, profile=profile, config=config,
                            costs=self.costs, telemetry_dir=telemetry_dir,
                            max_trace_bytes=self.max_trace_bytes)
                for index, profile in enumerate(profiles)]

    def run_fleet(self, profiles: list[DeviceProfile],
                  seed: int | None = None, jobs: int | None = None,
                  progress: Callable[[dict[str, Any]], None] | None = None,
                  ) -> list[CampaignResult]:
        """One campaign per device profile (the paper's 7-device run).

        With ``jobs > 1`` the campaigns shard across a worker pool;
        results, rollups and aggregates are merged in submission order
        and are identical to a sequential run.  Jobs whose retries are
        exhausted raise :class:`FleetJobError` *after* every other
        campaign's result has been merged.
        """
        width = self.jobs if jobs is None else jobs
        specs = self._job_specs(profiles, seed)
        scheduler = FleetScheduler(
            jobs=width, watchdog_seconds=self.watchdog_seconds,
            max_retries=self.max_retries, metrics=self.metrics,
            progress=progress, workers=list(self.workers))
        outcomes = scheduler.run(specs)
        failures: dict[str, str] = {}
        for outcome in outcomes:  # already in submission order
            if not outcome.ok:
                failures[outcome.key] = outcome.error or "unknown failure"
                continue
            self.results[outcome.key] = outcome.result
            if outcome.rollup:
                self.rollups[outcome.key] = outcome.rollup
        self.fleet_stats = scheduler.last_summary
        if self.telemetry_dir is not None:
            root = pathlib.Path(self.telemetry_dir)
            root.mkdir(parents=True, exist_ok=True)
            (root / FLEET_FILE).write_text(
                json.dumps(self.fleet_stats, indent=1, sort_keys=True))
        if failures:
            raise FleetJobError(failures)
        return [outcome.result for outcome in outcomes]

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def all_bugs(self) -> list[BugReport]:
        """Deduplicated bugs across all campaigns, by discovery time."""
        seen: dict[tuple[str, str], BugReport] = {}
        for result in self.results.values():
            for bug in result.bugs:
                key = (bug.device, bug.title)
                if key not in seen or bug.first_clock < seen[key].first_clock:
                    seen[key] = bug
        return sorted(seen.values(),
                      key=lambda b: (b.device, b.first_clock))

    def coverage_summary(self) -> dict[str, int]:
        """Final kernel coverage per campaign key."""
        return {key: result.kernel_coverage
                for key, result in sorted(self.results.items())}

    def fleet_rollup(self) -> dict[str, Any]:
        """Aggregate throughput across all monitored campaigns."""
        return CampaignMonitor.fleet_rollup(self.rollups)
