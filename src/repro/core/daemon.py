"""The DroidFuzz Daemon (paper §IV-A).

The root process: boots one device per profile, spawns a fuzzing engine
per device, runs their campaigns, and maintains the persistent campaign
artifacts — aggregated bug ledger, coverage statistics, the per-device
relation tables, and (when a telemetry directory is configured) one
recorded trace per campaign plus a fleet-wide throughput rollup.

Fleet runs dispatch through :class:`repro.fleet.FleetScheduler`: with
``jobs > 1`` campaigns shard across a worker pool (the paper's seven
devices run concurrently), while ``jobs=1`` executes inline through the
same code path.  Campaigns are seed-deterministic and independent per
device, so the merged ``results``/``rollups`` are identical either way;
result keys are reserved at submit time, which keeps naming race-free
no matter in which order workers finish.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.bugs import BugReport
from repro.core.config import FuzzerConfig
from repro.core.engine import CampaignResult, FuzzingEngine
from repro.core.results import (
    CampaignRecord,
    FleetResult,
    coverage_summary,
    dedupe_bugs,
)
from repro.device.device import AndroidDevice, DeviceCosts
from repro.device.profiles import DeviceProfile
from repro.fleet.jobs import CampaignJob, FleetJobError
from repro.fleet.scheduler import FLEET_FILE, FleetScheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import CampaignMonitor
from repro.obs.telemetry import Telemetry
from repro.obs.trace import SamplingPolicy


@dataclass
class Daemon:
    """Coordinates fuzzing campaigns across a fleet of devices."""

    config: FuzzerConfig
    costs: DeviceCosts = field(default_factory=DeviceCosts)
    results: dict[str, CampaignResult] = field(default_factory=dict)
    #: When set, each campaign records its telemetry under
    #: ``<telemetry_dir>/<campaign key>/``.
    telemetry_dir: str | pathlib.Path | None = None
    #: Typed per-campaign records (result + rollup + telemetry path),
    #: keyed like :attr:`results`.
    records: dict[str, CampaignRecord] = field(default_factory=dict)
    #: Live-telemetry stream sink (a ``repro.obs.stream.StreamSink``),
    #: *borrowed*: the daemon scopes it per campaign and never closes
    #: it — the CLI (or whoever built it) owns its lifecycle.
    stream: Any = None
    #: Per-campaign monitor rollups, keyed like :attr:`results`.
    rollups: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Worker pool width for :meth:`run_fleet` (1: inline execution).
    jobs: int = 1
    #: Remote ``host:port`` worker-server addresses; when non-empty,
    #: fleet jobs dispatch over TCP (``repro worker serve`` peers)
    #: instead of the local pool.  Results are byte-identical either
    #: way — campaigns are seed-deterministic and merged by index.
    workers: list = field(default_factory=list)
    #: Real seconds without a worker heartbeat before the watchdog
    #: kills and requeues the job.
    watchdog_seconds: float = 300.0
    #: Re-executions allowed per job after its first attempt.
    max_retries: int = 2
    #: Size-based trace rotation threshold handed to each campaign's
    #: telemetry (None: unbounded ``trace.jsonl``).
    max_trace_bytes: int | None = None
    #: Span-sampling rates (``{"execute": 0.01}``) applied to every
    #: campaign's telemetry; each campaign gets a fresh policy seeded
    #: from its own config seed (None: record every span).
    trace_sample: dict[str, float] | None = None
    #: Fleet-level scheduler metrics (jobs queued/retried/failed,
    #: per-worker exec/s, wall vs virtual seconds).
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Scheduler summary of the last :meth:`run_fleet` call.
    fleet_stats: dict[str, Any] = field(default_factory=dict)
    #: Keys handed out but possibly not yet completed (reserved at
    #: submit time so concurrent dispatch cannot collide).
    _reserved: set[str] = field(default_factory=set, repr=False)

    def _campaign_key(self, profile: DeviceProfile,
                      config: FuzzerConfig) -> str:
        """Reserve and return a unique result key: ``ident#seed``,
        suffixed with a run ordinal when the same profile+seed is
        re-run.  Reservation happens here — at submit time — so keys
        stay unique when jobs are dispatched concurrently and finish
        out of order."""
        base = f"{profile.ident}#{config.seed}"

        def taken(candidate: str) -> bool:
            return candidate in self.results or candidate in self._reserved

        key = base
        if taken(key):
            ordinal = 2
            while taken(f"{base}.r{ordinal}"):
                ordinal += 1
            key = f"{base}.r{ordinal}"
        self._reserved.add(key)
        return key

    def run_device(self, profile: DeviceProfile,
                   seed: int | None = None) -> CampaignResult:
        """Boot one device, run one campaign, keep the result."""
        config = self.config
        if seed is not None:
            config = config.variant(seed=seed)
        key = self._campaign_key(profile, config)
        telemetry = None
        telemetry_path = (pathlib.Path(self.telemetry_dir) / key
                          if self.telemetry_dir is not None else None)
        if telemetry_path is not None or self.stream is not None:
            sampling = (SamplingPolicy(self.trace_sample, seed=config.seed)
                        if self.trace_sample else None)
            telemetry = Telemetry(
                directory=telemetry_path,
                interval=config.sample_interval,
                max_trace_bytes=self.max_trace_bytes,
                stream=self._scoped_stream(key), sampling=sampling)
        device = AndroidDevice(profile, costs=self.costs)
        engine = FuzzingEngine(device, config, telemetry=telemetry)
        result = engine.run()
        if telemetry is not None:
            self.rollups[key] = telemetry.rollup()
            telemetry.close()
        self.results[key] = result
        self.records[key] = CampaignRecord(
            key=key, result=result,
            rollup=self.rollups.get(key, {}),
            telemetry_path=(str(telemetry_path)
                            if telemetry_path is not None else None))
        return result

    def _scoped_stream(self, key: str):
        """The live stream scoped to one campaign key (None when off)."""
        if self.stream is None:
            return None
        scoped = getattr(self.stream, "scoped", None)
        return scoped(key) if scoped is not None else self.stream

    # ------------------------------------------------------------------
    # fleet orchestration
    # ------------------------------------------------------------------

    def _job_specs(self, profiles: list[DeviceProfile],
                   seed: int | None) -> list[CampaignJob]:
        """Reserve keys and build picklable job specs, in fleet order."""
        config = self.config
        if seed is not None:
            config = config.variant(seed=seed)
        telemetry_dir = (str(self.telemetry_dir)
                         if self.telemetry_dir is not None else None)
        return [CampaignJob(key=self._campaign_key(profile, config),
                            index=index, profile=profile, config=config,
                            costs=self.costs, telemetry_dir=telemetry_dir,
                            max_trace_bytes=self.max_trace_bytes,
                            trace_sample=self.trace_sample)
                for index, profile in enumerate(profiles)]

    def run_fleet(self, profiles: list[DeviceProfile],
                  seed: int | None = None, jobs: int | None = None,
                  progress: Callable[[dict[str, Any]], None] | None = None,
                  ) -> FleetResult:
        """One campaign per device profile (the paper's 7-device run).

        With ``jobs > 1`` the campaigns shard across a worker pool;
        results, rollups and aggregates are merged in submission order
        and are identical to a sequential run.  Returns a
        :class:`~repro.core.results.FleetResult` (sequence-compatible
        with the ``list[CampaignResult]`` it replaced).  Jobs whose
        retries are exhausted raise :class:`FleetJobError` *after*
        every other campaign's result has been merged.
        """
        width = self.jobs if jobs is None else jobs
        specs = self._job_specs(profiles, seed)
        scheduler = FleetScheduler(
            jobs=width, watchdog_seconds=self.watchdog_seconds,
            max_retries=self.max_retries, metrics=self.metrics,
            progress=progress, workers=list(self.workers),
            stream=self.stream)
        outcomes = scheduler.run(specs)
        failures: dict[str, str] = {}
        fleet_records: list[CampaignRecord] = []
        for outcome in outcomes:  # already in submission order
            if not outcome.ok:
                failures[outcome.key] = outcome.error or "unknown failure"
                continue
            self.results[outcome.key] = outcome.result
            if outcome.rollup:
                self.rollups[outcome.key] = outcome.rollup
            record = CampaignRecord(
                key=outcome.key, result=outcome.result,
                rollup=outcome.rollup or {},
                telemetry_path=(
                    str(pathlib.Path(self.telemetry_dir) / outcome.key)
                    if self.telemetry_dir is not None else None),
                worker_id=outcome.worker_id,
                attempts=outcome.attempts,
                wall_seconds=outcome.wall_seconds)
            self.records[outcome.key] = record
            fleet_records.append(record)
        self.fleet_stats = scheduler.last_summary
        if self.stream is not None:
            self.stream.emit({"type": "fleet-summary",
                              **self.fleet_stats})
        if self.telemetry_dir is not None:
            root = pathlib.Path(self.telemetry_dir)
            root.mkdir(parents=True, exist_ok=True)
            (root / FLEET_FILE).write_text(
                json.dumps(self.fleet_stats, indent=1, sort_keys=True))
        if failures:
            raise FleetJobError(failures)
        return FleetResult(records=fleet_records,
                           fleet_stats=self.fleet_stats)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def all_bugs(self) -> list[BugReport]:
        """Deduplicated bugs across all campaigns, by discovery time."""
        return dedupe_bugs(self.results.values())

    def coverage_summary(self) -> dict[str, int]:
        """Final kernel coverage per campaign key."""
        return coverage_summary(self.results)

    def fleet_rollup(self) -> dict[str, Any]:
        """Aggregate throughput across all monitored campaigns."""
        return CampaignMonitor.fleet_rollup(self.rollups)

    def fleet_result(self) -> FleetResult:
        """Typed view over *everything* this daemon has completed.

        Unlike the :meth:`run_fleet` return value, this also covers
        :meth:`run_device` campaigns and the partial state left behind
        when a fleet raised :class:`FleetJobError` — the CLI renders
        from it in both the success and the failure path.
        """
        return FleetResult(records=list(self.records.values()),
                           fleet_stats=dict(self.fleet_stats))
