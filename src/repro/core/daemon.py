"""The DroidFuzz Daemon (paper §IV-A).

The root process: boots one device per profile, spawns a fuzzing engine
per device, runs their campaigns, and maintains the persistent campaign
artifacts — aggregated bug ledger, coverage statistics, and the per-
device relation tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bugs import BugReport
from repro.core.config import FuzzerConfig
from repro.core.engine import CampaignResult, FuzzingEngine
from repro.device.device import AndroidDevice, DeviceCosts
from repro.device.profiles import DeviceProfile


@dataclass
class Daemon:
    """Coordinates fuzzing campaigns across a fleet of devices."""

    config: FuzzerConfig
    costs: DeviceCosts = field(default_factory=DeviceCosts)
    results: dict[str, CampaignResult] = field(default_factory=dict)

    def run_device(self, profile: DeviceProfile,
                   seed: int | None = None) -> CampaignResult:
        """Boot one device, run one campaign, keep the result."""
        config = self.config
        if seed is not None:
            config = config.variant(seed=seed)
        device = AndroidDevice(profile, costs=self.costs)
        engine = FuzzingEngine(device, config)
        result = engine.run()
        self.results[f"{profile.ident}#{config.seed}"] = result
        return result

    def run_fleet(self, profiles: list[DeviceProfile],
                  seed: int | None = None) -> list[CampaignResult]:
        """One campaign per device profile (the paper's 7-device run)."""
        return [self.run_device(profile, seed=seed) for profile in profiles]

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def all_bugs(self) -> list[BugReport]:
        """Deduplicated bugs across all campaigns, by discovery time."""
        seen: dict[tuple[str, str], BugReport] = {}
        for result in self.results.values():
            for bug in result.bugs:
                key = (bug.device, bug.title)
                if key not in seen or bug.first_clock < seen[key].first_clock:
                    seen[key] = bug
        return sorted(seen.values(),
                      key=lambda b: (b.device, b.first_clock))

    def coverage_summary(self) -> dict[str, int]:
        """Final kernel coverage per campaign key."""
        return {key: result.kernel_coverage
                for key, result in sorted(self.results.items())}
