"""The DroidFuzz Daemon (paper §IV-A).

The root process: boots one device per profile, spawns a fuzzing engine
per device, runs their campaigns, and maintains the persistent campaign
artifacts — aggregated bug ledger, coverage statistics, the per-device
relation tables, and (when a telemetry directory is configured) one
recorded trace per campaign plus a fleet-wide throughput rollup.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.bugs import BugReport
from repro.core.config import FuzzerConfig
from repro.core.engine import CampaignResult, FuzzingEngine
from repro.device.device import AndroidDevice, DeviceCosts
from repro.device.profiles import DeviceProfile
from repro.obs.monitor import CampaignMonitor
from repro.obs.telemetry import Telemetry


@dataclass
class Daemon:
    """Coordinates fuzzing campaigns across a fleet of devices."""

    config: FuzzerConfig
    costs: DeviceCosts = field(default_factory=DeviceCosts)
    results: dict[str, CampaignResult] = field(default_factory=dict)
    #: When set, each campaign records its telemetry under
    #: ``<telemetry_dir>/<campaign key>/``.
    telemetry_dir: str | pathlib.Path | None = None
    #: Per-campaign monitor rollups, keyed like :attr:`results`.
    rollups: dict[str, dict[str, Any]] = field(default_factory=dict)

    def _campaign_key(self, profile: DeviceProfile,
                      config: FuzzerConfig) -> str:
        """A unique result key: ``ident#seed``, suffixed with a run
        ordinal when the same profile+seed is re-run."""
        base = f"{profile.ident}#{config.seed}"
        if base not in self.results:
            return base
        ordinal = 2
        while f"{base}.r{ordinal}" in self.results:
            ordinal += 1
        return f"{base}.r{ordinal}"

    def run_device(self, profile: DeviceProfile,
                   seed: int | None = None) -> CampaignResult:
        """Boot one device, run one campaign, keep the result."""
        config = self.config
        if seed is not None:
            config = config.variant(seed=seed)
        key = self._campaign_key(profile, config)
        telemetry = None
        if self.telemetry_dir is not None:
            telemetry = Telemetry(
                directory=pathlib.Path(self.telemetry_dir) / key,
                interval=config.sample_interval)
        device = AndroidDevice(profile, costs=self.costs)
        engine = FuzzingEngine(device, config, telemetry=telemetry)
        result = engine.run()
        if telemetry is not None:
            self.rollups[key] = telemetry.rollup()
            telemetry.close()
        self.results[key] = result
        return result

    def run_fleet(self, profiles: list[DeviceProfile],
                  seed: int | None = None) -> list[CampaignResult]:
        """One campaign per device profile (the paper's 7-device run)."""
        return [self.run_device(profile, seed=seed) for profile in profiles]

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def all_bugs(self) -> list[BugReport]:
        """Deduplicated bugs across all campaigns, by discovery time."""
        seen: dict[tuple[str, str], BugReport] = {}
        for result in self.results.values():
            for bug in result.bugs:
                key = (bug.device, bug.title)
                if key not in seen or bug.first_clock < seen[key].first_clock:
                    seen[key] = bug
        return sorted(seen.values(),
                      key=lambda b: (b.device, b.first_clock))

    def coverage_summary(self) -> dict[str, int]:
        """Final kernel coverage per campaign key."""
        return {key: result.kernel_coverage
                for key, result in sorted(self.results.items())}

    def fleet_rollup(self) -> dict[str, Any]:
        """Aggregate throughput across all monitored campaigns."""
        return CampaignMonitor.fleet_rollup(self.rollups)
