"""Typed campaign/fleet result surface (the external result contract).

:class:`~repro.core.engine.CampaignResult` is what one engine run
produces; this module adds the daemon-level shapes around it:

* :class:`CampaignRecord` — one completed campaign *as the daemon saw
  it*: the result plus its key, monitor rollup, telemetry path, and
  scheduling facts (worker, attempts).  Keeping these outside
  ``CampaignResult`` preserves the invariant the equality tests lean
  on — identical seeds produce *equal* results no matter which key,
  worker, or telemetry directory they ran under.
* :class:`FleetResult` — the value :meth:`Daemon.run_fleet` returns.
  It is a sequence of ``CampaignResult`` in submission order (so
  ``len()`` / iteration / indexing keep working for existing callers)
  with the typed records, fleet stats, and aggregate helpers hanging
  off it.

Everything serializes via ``to_dict()`` for JSON artifacts and
back-compat consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.bugs import BugReport
from repro.core.engine import CampaignResult
from repro.obs.monitor import CampaignMonitor


def dedupe_bugs(results: Iterable[CampaignResult]) -> list[BugReport]:
    """Deduplicated bugs across campaigns, by device then discovery
    time; the earliest sighting of a (device, title) pair wins."""
    seen: dict[tuple[str, str], BugReport] = {}
    for result in results:
        for bug in result.bugs:
            key = (bug.device, bug.title)
            if key not in seen or bug.first_clock < seen[key].first_clock:
                seen[key] = bug
    return sorted(seen.values(),
                  key=lambda b: (b.device, b.first_clock))


def coverage_summary(
        results: dict[str, CampaignResult]) -> dict[str, int]:
    """Final kernel coverage per campaign key, key-sorted."""
    return {key: result.kernel_coverage
            for key, result in sorted(results.items())}


@dataclass(frozen=True)
class CampaignRecord:
    """One completed campaign with its daemon-side context."""

    key: str
    result: CampaignResult
    rollup: dict[str, Any] = field(default_factory=dict)
    #: Directory holding this campaign's recorded telemetry (trace,
    #: snapshots, metrics), when one was configured.
    telemetry_path: str | None = None
    worker_id: int = 0
    attempts: int = 1
    wall_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "result": self.result.to_dict(),
            "rollup": dict(self.rollup),
            "telemetry_path": self.telemetry_path,
            "worker_id": self.worker_id,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class FleetResult:
    """Typed return value of a fleet run.

    Sequence-compatible with the ``list[CampaignResult]`` it replaced:
    ``len(fleet)``, ``fleet[i]`` and iteration yield the campaign
    results in submission order.
    """

    records: list[CampaignRecord] = field(default_factory=list)
    fleet_stats: dict[str, Any] = field(default_factory=dict)

    # -- sequence of CampaignResult (back-compat) ----------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CampaignResult]:
        return (record.result for record in self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [record.result for record in self.records[index]]
        return self.records[index].result

    # -- typed views ---------------------------------------------------

    def results(self) -> list[CampaignResult]:
        return [record.result for record in self.records]

    def by_key(self) -> dict[str, CampaignResult]:
        return {record.key: record.result for record in self.records}

    def rollups(self) -> dict[str, dict[str, Any]]:
        return {record.key: record.rollup for record in self.records
                if record.rollup}

    def latency_by_key(self) -> dict[str, dict[str, dict[str, float]]]:
        """Broker latency quantiles per campaign key.

        ``{key: {"exec_vtime": {...}, "payload_bytes": {...}}}``,
        holding only campaigns that ran with telemetry (the latency
        field is empty otherwise).
        """
        return {record.key: record.result.latency
                for record in self.records if record.result.latency}

    def record(self, key: str) -> CampaignRecord:
        for candidate in self.records:
            if candidate.key == key:
                return candidate
        raise KeyError(key)

    # -- aggregates ----------------------------------------------------

    def all_bugs(self) -> list[BugReport]:
        """Deduplicated bugs across the fleet, by discovery time."""
        return dedupe_bugs(self.results())

    def coverage_summary(self) -> dict[str, int]:
        """Final kernel coverage per campaign key."""
        return coverage_summary(self.by_key())

    def rollup(self) -> dict[str, Any]:
        """Aggregate throughput across all monitored campaigns."""
        return CampaignMonitor.fleet_rollup(self.rollups())

    def to_dict(self) -> dict[str, Any]:
        return {
            "campaigns": [record.to_dict() for record in self.records],
            "fleet_stats": dict(self.fleet_stats),
            "rollup": self.rollup(),
            "coverage": self.coverage_summary(),
            "bugs": len(self.all_bugs()),
        }


__all__ = ["CampaignRecord", "FleetResult", "dedupe_bugs",
           "coverage_summary"]
