"""Kernel-user relation graph (paper §IV-C)."""

from repro.core.relations.graph import RelationGraph

__all__ = ["RelationGraph"]
