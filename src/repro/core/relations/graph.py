"""The relation graph G_rel = (V, E) of paper §IV-C.

Vertices are individual system calls and HAL interfaces, each carrying a
fixed weight in (0, 1) — the probability mass with which it is chosen as
a *base invocation* during generation.  Edges are directed and weighted;
``a → b`` records the learned dependency "b follows a", with the weight
expressing confidence.

Learning: when a minimized program with new coverage contains the
adjacent pair (a, b), Eq. (1) applies::

    w_(a,b) = 1 - Σ_{e=(x,b), x≠a} w_(x,b) / 2

and every other edge ending at ``b`` has its weight halved — newly
confirmed relations dominate, older ones fade but persist.

Exploration: :meth:`decay` periodically multiplies all edge weights by a
factor < 1 so the walk does not get stuck in a local optimum.
"""

from __future__ import annotations

import random


class RelationGraph:
    """Directed, weighted relation graph over call labels."""

    def __init__(self) -> None:
        self._vertex_weight: dict[str, float] = {}
        #: dst -> {src -> weight}; kept keyed by destination because
        #: Eq. (1) renormalizes over the in-edges of one destination.
        self._in_edges: dict[str, dict[str, float]] = {}
        #: src -> {dst -> weight}; mirror for O(out-degree) traversal.
        self._out_edges: dict[str, dict[str, float]] = {}
        self.updates = 0

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------

    def add_vertex(self, label: str, weight: float) -> None:
        """Register a call label with its base-invocation weight."""
        self._vertex_weight[label] = min(max(weight, 1e-4), 0.9999)

    def has_vertex(self, label: str) -> bool:
        return label in self._vertex_weight

    def vertex_weight(self, label: str) -> float:
        """The base-invocation weight of a vertex (0 if unknown)."""
        return self._vertex_weight.get(label, 0.0)

    def vertices(self) -> list[str]:
        """All labels, sorted."""
        return sorted(self._vertex_weight)

    def pick_base(self, rng: random.Random) -> str:
        """Weighted choice of a base invocation over vertex weights."""
        labels = sorted(self._vertex_weight)
        if not labels:
            raise ValueError("relation graph has no vertices")
        weights = [self._vertex_weight[label] for label in labels]
        return rng.choices(labels, weights=weights, k=1)[0]

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------

    def edge_weight(self, src: str, dst: str) -> float:
        """Current weight of the edge ``src → dst`` (0 if absent)."""
        return self._in_edges.get(dst, {}).get(src, 0.0)

    def edge_count(self) -> int:
        """Number of live edges."""
        return sum(len(edges) for edges in self._in_edges.values())

    def out_edges(self, src: str) -> dict[str, float]:
        """``dst → weight`` map of a vertex's outgoing edges."""
        return dict(self._out_edges.get(src, {}))

    def learn(self, src: str, dst: str) -> None:
        """Record a confirmed relation ``src → dst`` per Eq. (1)."""
        if src == dst:
            return
        if src not in self._vertex_weight or dst not in self._vertex_weight:
            return
        incoming = self._in_edges.setdefault(dst, {})
        others_sum = sum(w for s, w in incoming.items() if s != src)
        new_weight = 1.0 - others_sum / 2.0
        new_weight = min(max(new_weight, 0.01), 1.0)
        # Halve every other edge with the same endpoint.
        for other in list(incoming):
            if other != src:
                incoming[other] /= 2.0
                self._out_edges[other][dst] /= 2.0
        incoming[src] = new_weight
        self._out_edges.setdefault(src, {})[dst] = new_weight
        self.updates += 1

    def learn_program(self, labels: list[str]) -> None:
        """Record all adjacent pairs of a minimized program."""
        for src, dst in zip(labels, labels[1:]):
            self.learn(src, dst)

    def decay(self, factor: float = 0.8) -> None:
        """Multiply all edge weights by ``factor`` (< 1): exploration.

        Edges that fall below a floor are pruned so the graph does not
        accumulate dead relations forever.
        """
        floor = 0.005
        for dst in list(self._in_edges):
            incoming = self._in_edges[dst]
            for src in list(incoming):
                incoming[src] *= factor
                self._out_edges[src][dst] *= factor
                if incoming[src] < floor:
                    del incoming[src]
                    del self._out_edges[src][dst]
            if not incoming:
                del self._in_edges[dst]

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (the daemon's relation table)."""
        return {
            "vertices": dict(self._vertex_weight),
            "edges": [[src, dst, weight]
                      for dst, incoming in sorted(self._in_edges.items())
                      for src, weight in sorted(incoming.items())],
            "updates": self.updates,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RelationGraph":
        """Restore a snapshot produced by :meth:`to_dict`."""
        graph = cls()
        for label, weight in payload.get("vertices", {}).items():
            graph.add_vertex(label, weight)
        for src, dst, weight in payload.get("edges", ()):
            graph._in_edges.setdefault(dst, {})[src] = weight
            graph._out_edges.setdefault(src, {})[dst] = weight
        graph.updates = payload.get("updates", 0)
        return graph

    def walk(self, start: str, rng: random.Random,
             max_steps: int = 8, stop_probability: float = 0.3) -> list[str]:
        """Relation-guided walk from ``start`` (§IV-C generation).

        At each vertex: stop with ``stop_probability``, otherwise move to
        an out-neighbour chosen with probability proportional to edge
        weight.  Dead ends stop the walk.  Returns the visited labels
        including ``start``.
        """
        path = [start]
        current = start
        for _ in range(max_steps):
            if rng.random() < stop_probability:
                break
            neighbours = self._out_edges.get(current)
            if not neighbours:
                break
            dsts = sorted(neighbours)
            weights = [neighbours[d] for d in dsts]
            if sum(weights) <= 0:
                break
            current = rng.choices(dsts, weights=weights, k=1)[0]
            path.append(current)
        return path
