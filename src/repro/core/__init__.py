"""DroidFuzz core: the paper's primary contribution.

* :mod:`repro.core.probe` — pre-testing HAL driver probing (§IV-B),
* :mod:`repro.core.relations` — kernel-user relation graph (§IV-C),
* :mod:`repro.core.generation` — relational payload generation (§IV-C),
* :mod:`repro.core.feedback` — cross-boundary execution state feedback (§IV-D),
* :mod:`repro.core.exec` — device-side broker and executors (§IV-A),
* :mod:`repro.core.engine` / :mod:`repro.core.daemon` — the fuzzing loop.

Import the submodules directly (they are not re-exported here to keep
the substrate importable without pulling in the whole engine).
"""
