"""Seed corpus: interesting programs and their coverage signatures."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dsl.model import Program
from repro.dsl.text import parse_program, serialize_program


@dataclass
class Seed:
    """One corpus entry."""

    program: Program
    signature: frozenset[int]
    added_at: float
    mutations: int = 0


@dataclass
class Corpus:
    """The evolving seed set of one campaign."""

    seeds: list[Seed] = field(default_factory=list)
    #: Cached cumulative ``1/(1+len)`` weights for :meth:`choose`,
    #: invalidated whenever the seed set changes.  ``random.choices``
    #: with ``cum_weights`` draws exactly the picks the per-call weights
    #: list produced (it accumulates left-to-right the same way), so the
    #: cache is determinism-neutral.
    _cum_weights: list[float] | None = field(
        default=None, repr=False, compare=False)

    def add(self, program: Program, signature: frozenset[int],
            clock: float) -> Seed:
        """Admit a program that produced new coverage."""
        seed = Seed(program=program.copy(), signature=signature,
                    added_at=clock)
        self.seeds.append(seed)
        self._cum_weights = None
        return seed

    def __len__(self) -> int:
        return len(self.seeds)

    def choose(self, rng: random.Random) -> Seed | None:
        """Pick a seed to mutate: biased to recent and small entries."""
        if not self.seeds:
            return None
        if rng.random() < 0.5:
            # Recency bias: the newest quarter of the corpus.
            lo = max(0, len(self.seeds) - max(1, len(self.seeds) // 4))
            seed = self.seeds[rng.randrange(lo, len(self.seeds))]
        else:
            if self._cum_weights is None:
                total = 0.0
                cum = []
                for s in self.seeds:
                    total += 1.0 / (1 + len(s.program))
                    cum.append(total)
                self._cum_weights = cum
            seed = rng.choices(self.seeds, cum_weights=self._cum_weights,
                               k=1)[0]
        seed.mutations += 1
        return seed

    def donor(self, rng: random.Random) -> Program | None:
        """A random program to splice from."""
        if not self.seeds:
            return None
        return rng.choice(self.seeds).program

    # -- persistence -------------------------------------------------------

    def dump(self) -> str:
        """Serialize the corpus (programs only) for the daemon."""
        chunks = []
        for seed in self.seeds:
            chunks.append(serialize_program(seed.program))
        return "\n---\n".join(chunks)

    @staticmethod
    def load(text: str) -> list[Program]:
        """Parse a dumped corpus back into programs."""
        programs = []
        for chunk in text.split("\n---\n"):
            chunk = chunk.strip()
            if chunk:
                programs.append(parse_program(chunk))
        return programs
