"""Seed corpus: interesting programs and their coverage signatures."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dsl.model import Program
from repro.dsl.text import parse_program, serialize_program


@dataclass
class Seed:
    """One corpus entry."""

    program: Program
    signature: frozenset[int]
    added_at: float
    mutations: int = 0


@dataclass
class Corpus:
    """The evolving seed set of one campaign."""

    seeds: list[Seed] = field(default_factory=list)

    def add(self, program: Program, signature: frozenset[int],
            clock: float) -> Seed:
        """Admit a program that produced new coverage."""
        seed = Seed(program=program.copy(), signature=signature,
                    added_at=clock)
        self.seeds.append(seed)
        return seed

    def __len__(self) -> int:
        return len(self.seeds)

    def choose(self, rng: random.Random) -> Seed | None:
        """Pick a seed to mutate: biased to recent and small entries."""
        if not self.seeds:
            return None
        if rng.random() < 0.5:
            # Recency bias: the newest quarter of the corpus.
            lo = max(0, len(self.seeds) - max(1, len(self.seeds) // 4))
            seed = self.seeds[rng.randrange(lo, len(self.seeds))]
        else:
            weights = [1.0 / (1 + len(s.program)) for s in self.seeds]
            seed = rng.choices(self.seeds, weights=weights, k=1)[0]
        seed.mutations += 1
        return seed

    def donor(self, rng: random.Random) -> Program | None:
        """A random program to splice from."""
        if not self.seeds:
            return None
        return rng.choice(self.seeds).program

    # -- persistence -------------------------------------------------------

    def dump(self) -> str:
        """Serialize the corpus (programs only) for the daemon."""
        chunks = []
        for seed in self.seeds:
            chunks.append(serialize_program(seed.program))
        return "\n---\n".join(chunks)

    @staticmethod
    def load(text: str) -> list[Program]:
        """Parse a dumped corpus back into programs."""
        programs = []
        for chunk in text.split("\n---\n"):
            chunk = chunk.strip()
            if chunk:
                programs.append(parse_program(chunk))
        return programs
