"""The probed model of a device's HAL interfaces.

This is everything the fuzzer knows about the proprietary HALs: it was
*observed*, not read from source.  Method signatures come from watching
parcel type tracks on Binder transactions; weights from counting
occurrences while replaying framework usage; resource links from the
prober's differential experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HalMethodModel:
    """One probed HAL interface method.

    Attributes:
        service: instance name the method lives on.
        name: method name recovered from interface metadata.
        code: Binder transaction code.
        signature: parcel type tags observed for the arguments.
        weight: normalized occurrence weight in (0, 1] (§IV-B).
        reply_ints: count of integer values seen in the reply after the
            status (candidate resource producers).
        links: argument position → (producer service, producer method)
            inferred by the prober's differential pass.
        seen_args: argument tuples recovered from observed framework
            traffic (the prober decodes the raw IPC buffers) — the
            fuzzer's source of *valid* vendor argument values.
    """

    service: str
    name: str
    code: int
    signature: tuple[str, ...] = ()
    weight: float = 0.1
    reply_ints: int = 0
    links: dict[int, tuple[str, str]] = field(default_factory=dict)
    seen_args: list[tuple] = field(default_factory=list)

    def remember_args(self, values: tuple, cap: int = 24) -> None:
        """Record one observed argument tuple (bounded, deduplicated)."""
        if values in self.seen_args:
            return
        self.seen_args.append(values)
        if len(self.seen_args) > cap:
            self.seen_args.pop(0)

    @property
    def label(self) -> str:
        """Vertex identity in the relation graph."""
        return f"{self.service}.{self.name}"


@dataclass
class HalInterfaceModel:
    """All probed interfaces of one device."""

    methods: dict[str, HalMethodModel] = field(default_factory=dict)
    #: Canonical call flows distilled from observed framework traffic:
    #: ordered (label, args) sequences per service — the fuzzer's seed
    #: programs (the daemon's persistent seed corpus, §IV-A).
    flows: list[list[tuple[str, tuple]]] = field(default_factory=list)

    def add(self, model: HalMethodModel) -> None:
        """Register a probed method."""
        self.methods[model.label] = model

    def get(self, label: str) -> HalMethodModel | None:
        """Method model by ``service.method`` label."""
        return self.methods.get(label)

    def labels(self) -> list[str]:
        """All probed method labels, sorted."""
        return sorted(self.methods)

    def by_service(self, service: str) -> list[HalMethodModel]:
        """All methods of one service."""
        return [m for m in self.methods.values() if m.service == service]

    def services(self) -> list[str]:
        """All probed service names, sorted."""
        return sorted({m.service for m in self.methods.values()})

    def interface_count(self) -> int:
        """Total number of probed interfaces."""
        return len(self.methods)
