"""The native prober utility (paper §IV-B, Figure 3).

Runs natively on the device (no framework abstractions).  It:

1. enumerates running HALs (``lshal`` / ServiceManager),
2. inserts an eBPF probe on Binder transactions filtered to the Poke
   app's pid,
3. has the Poke app conduct a short trial of every exposed interface,
   recovering per-method argument type signatures from the recorded IPC,
4. replays framework usage flows and computes each interface's
   *normalized occurrence* weight, and
5. runs a differential experiment to infer resource links — which
   integer arguments want the reply value of which producer method.

The output is a :class:`HalInterfaceModel`, the only HAL knowledge the
fuzzer gets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.probe.interface_model import HalInterfaceModel, HalMethodModel
from repro.core.probe.poke_app import PokeApp
from repro.kernel.tracepoints import BinderRecord

if TYPE_CHECKING:
    from repro.device.device import AndroidDevice

#: Weight floor/ceiling so every vertex weight lands in (0, 1).
_W_MIN = 0.05
_W_MAX = 0.95

#: Differential-link experiment: offset added to a candidate resource
#: value to produce an almost-certainly-invalid one.
_POISON_OFFSET = 7777


class Prober:
    """Pre-testing HAL driver probing pass."""

    def __init__(self, device: "AndroidDevice") -> None:
        self._device = device
        self._poke = PokeApp(device)
        self._records: list[BinderRecord] = []

    # ------------------------------------------------------------------

    def probe(self, infer_links: bool = True) -> HalInterfaceModel:
        """Run the full probing pass; returns the interface model."""
        model = HalInterfaceModel()
        hals = self._poke.list_hals()

        handle = self._device.kernel.trace.attach(
            "binder_transaction", self._records.append,
            pid_filter=self._poke.pid)
        try:
            for service_name, _descriptor in hals:
                self._trial_service(model, service_name)
            counts = self._measure_weights(model, hals)
        finally:
            self._device.kernel.trace.detach(handle)

        self._assign_weights(model, counts)
        if infer_links:
            self._infer_links(model)
        return model

    # ------------------------------------------------------------------

    def _trial_service(self, model: HalInterfaceModel,
                       service_name: str) -> None:
        """Short trial of every exposed interface; record signatures."""
        for code, name in self._poke.reflect_methods(service_name):
            before = len(self._records)
            self._poke.invoke(service_name, name)
            signature: tuple[str, ...] = ()
            seen: tuple | None = None
            for record in self._records[before:]:
                if record.service == service_name and record.code == code:
                    signature = record.payload_types
                    if record.reply_ok:
                        seen = record.payload_values
                    break
            method = HalMethodModel(service=service_name, name=name,
                                    code=code, signature=signature)
            if seen is not None:
                method.remember_args(seen)
            model.add(method)

    def _measure_weights(self, model: HalInterfaceModel,
                         hals: list[tuple[str, str]]) -> dict[str, int]:
        """Replay framework flows; count per-interface occurrences.

        Besides the occurrence counts (weights), the observed traffic is
        distilled into canonical call *flows* — ordered per-service call
        sequences with their argument values — which seed the fuzzer's
        corpus with known-good stateful orderings.
        """
        before = len(self._records)
        for service_name, _descriptor in hals:
            self._poke.run_framework_flows(service_name)
        counts: dict[str, int] = {}
        flow: list[tuple[str, tuple]] = []
        flow_service: str | None = None
        for record in self._records[before:]:
            method = model.get(f"{record.service}.{record.method}")
            if method is None:
                continue
            counts[method.label] = counts.get(method.label, 0) + 1
            if record.reply_ok:
                method.remember_args(record.payload_values)
            if record.service != flow_service or len(flow) >= 12:
                if len(flow) >= 2:
                    model.flows.append(flow)
                flow = []
                flow_service = record.service
            flow.append((method.label, record.payload_values))
        if len(flow) >= 2:
            model.flows.append(flow)
        return counts

    def _assign_weights(self, model: HalInterfaceModel,
                        counts: dict[str, int]) -> None:
        """Normalized occurrence → vertex weight in (0, 1) (§IV-B)."""
        peak = max(counts.values(), default=0)
        for method in model.methods.values():
            if peak == 0:
                method.weight = 0.3
                continue
            occurrence = counts.get(method.label, 0)
            method.weight = (_W_MIN
                             + (occurrence / peak) * (_W_MAX - _W_MIN))

    # ------------------------------------------------------------------

    def _infer_links(self, model: HalInterfaceModel) -> None:
        """Differential resource-link inference within each service.

        For every (producer, consumer) pair where the producer's trial
        reply carried an integer and the consumer takes integer
        arguments: call the producer, feed its reply value into each int
        argument position of the consumer, and compare against a
        poisoned value.  Success-with-value but failure-with-poison is
        strong evidence of a handle relationship.
        """
        for service_name in model.services():
            methods = model.by_service(service_name)
            producers = [m for m in methods
                         if self._warmed_producer_value(m) is not None]
            for producer in producers:
                for consumer in methods:
                    if consumer.label == producer.label:
                        continue
                    self._test_link(producer, consumer)

    def _warmed_producer_value(self, method: HalMethodModel) -> int | None:
        """Producer probe with adaptive warm-up.

        Services are stateful: a producer may fail simply because the
        trial pass left the service torn down (e.g. the camera session
        closed).  Invoke sibling interfaces one at a time until the
        producer starts succeeding, mirroring how a prober nudges a
        stateful HAL back into a usable state.
        """
        value = self._producer_value(method)
        if value is not None:
            return value
        for _code, name in self._poke.reflect_methods(method.service):
            if name == method.name:
                continue
            self._poke.invoke(method.service, name)
            value = self._producer_value(method)
            if value is not None:
                return value
        return None

    def _producer_value(self, method: HalMethodModel) -> int | None:
        """Invoke a candidate producer; return its first reply int."""
        service = self._device.hal_service(method.service)
        if service is None:
            return None
        args = service.sample_args(method.name)
        result = self._poke.invoke_with_reply(method.service, method.name,
                                              args)
        if result is None:
            return None
        status, reply = result
        if status != 0:
            return None
        stub = service.method_by_name(method.name)
        if stub is None or not stub.returns:
            return None
        for tag in stub.returns:
            if tag in ("i32", "u32", "i64"):
                method.reply_ints += 1
                reader = {"i32": reply.read_i32, "u32": reply.read_u32,
                          "i64": reply.read_i64}[tag]
                try:
                    return reader()
                except Exception:
                    return None
            break
        return None

    def _test_link(self, producer: HalMethodModel,
                   consumer: HalMethodModel) -> None:
        service = self._device.hal_service(consumer.service)
        if service is None:
            return
        stub = service.method_by_name(consumer.name)
        if stub is None:
            return
        int_positions = [i for i, tag in enumerate(stub.signature)
                         if tag in ("i32", "u32", "i64")]
        for position in int_positions:
            value = self._warmed_producer_value(producer)
            if value is None:
                return
            base = list(service.sample_args(consumer.name))
            if position >= len(base):
                continue
            good = list(base)
            good[position] = value
            status_good = self._poke.invoke(consumer.service, consumer.name,
                                            tuple(good))
            poisoned = list(base)
            poisoned[position] = value + _POISON_OFFSET
            status_bad = self._poke.invoke(consumer.service, consumer.name,
                                           tuple(poisoned))
            if status_good is None or status_bad is None:
                continue
            if status_good == 0 and status_bad != 0:
                consumer.links[position] = (producer.service, producer.name)
            elif status_good != status_bad and status_bad != 0:
                # Both failed, but *differently*: the service told a real
                # handle apart from a fabricated one (e.g. a state error
                # versus BAD_VALUE) — still strong evidence of a handle.
                consumer.links[position] = (producer.service, producer.name)
