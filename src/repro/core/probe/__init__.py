"""Pre-testing HAL driver probing (paper §IV-B)."""

from repro.core.probe.interface_model import HalInterfaceModel, HalMethodModel
from repro.core.probe.poke_app import PokeApp
from repro.core.probe.prober import Prober

__all__ = ["HalInterfaceModel", "HalMethodModel", "PokeApp", "Prober"]
