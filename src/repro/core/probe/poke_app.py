"""The Poke application (paper §IV-B, Figure 3).

A framework-level app installed on the device.  It resolves HAL services
through the ServiceManager, reflects their interface stubs (on real
Android: the HIDL/AIDL-generated classes), and performs two kinds of
driving on the prober's behalf:

* a *short trial* of every exposed interface with benign marshaled
  parameters, so the prober can record argument types from the IPC; and
* replay of *framework usage flows* (what high-level Android APIs would
  do), so the prober can count per-interface occurrence for weighting.

The Poke app never inspects HAL internals — everything it touches is
reachable from an unprivileged app with the framework's stubs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import DeadObjectError

if TYPE_CHECKING:
    from repro.device.device import AndroidDevice


class PokeApp:
    """Framework-level trial driver."""

    def __init__(self, device: "AndroidDevice") -> None:
        self._device = device
        self._task = device.new_process("com.droidfuzz.poke")

    @property
    def pid(self) -> int:
        """The app's kernel pid (what the eBPF probe filters on)."""
        return self._task.pid

    def list_hals(self) -> list[tuple[str, str]]:
        """Enumerate running HALs (lshal through the framework)."""
        return self._device.service_manager.list_hals()

    def reflect_methods(self, service_name: str) -> list[tuple[int, str]]:
        """(code, name) pairs reflected from the interface stubs."""
        service = self._device.hal_service(service_name)
        if service is None:
            return []
        return [(m.code, m.name) for m in service.methods()]

    def invoke(self, service_name: str, method_name: str,
               args: tuple[Any, ...] | None = None) -> int | None:
        """Invoke one HAL method through Binder; returns the status.

        ``args=None`` uses the stub's benign sample arguments.  Returns
        ``None`` when the transaction could not complete (dead service).
        """
        service = self._device.hal_service(service_name)
        if service is None:
            return None
        method = service.method_by_name(method_name)
        if method is None:
            return None
        if args is None:
            args = service.sample_args(method_name)
        try:
            status, _reply = self._device.hal_transact(
                self.pid, "com.droidfuzz.poke", service_name, method_name,
                tuple(args))
        except DeadObjectError:
            return None
        return status

    def invoke_with_reply(self, service_name: str, method_name: str,
                          args: tuple[Any, ...]):
        """Invoke and return ``(status, reply_parcel)`` or ``None``."""
        try:
            return self._device.hal_transact(
                self.pid, "com.droidfuzz.poke", service_name, method_name,
                tuple(args))
        except DeadObjectError:
            return None

    def run_framework_flows(self, service_name: str) -> int:
        """Replay the framework usage flows for one service.

        Returns the number of steps executed.  On real hardware this is
        "use the camera app / play audio / toggle hotspot" while the
        probe records; here the flows come from the framework stubs.
        """
        service = self._device.hal_service(service_name)
        if service is None:
            return 0
        steps = 0
        for scenario in service.framework_scenarios():
            for method_name, args in scenario:
                self.invoke(service_name, method_name, tuple(args))
                steps += 1
        return steps
