"""Textual DSL form: serialization and parsing.

One call per line; every call is assigned a result variable so that
later calls can reference it::

    r0 = openat$video0()
    r1 = ioctl$VIDIOC_REQBUFS(r0, struct<ioctl$VIDIOC_REQBUFS>{count=4, type=1, memory=1})
    r2 = hal$vendor.camera.provider.openSession(0)

Value syntax: ints (decimal or ``0x``), ``f(1.5)`` floats, ``true`` /
``false``, ``none``, ``"strings"``, ``hex"AABB"`` byte blobs, ``rN``
resource references, and ``struct<spec>{field=value, ...}`` structs.

The text form is the wire format between the host-side engine and the
device-side broker (over the ADB surrogate) and the on-disk corpus
format, so parse/serialize must round-trip exactly.
"""

from __future__ import annotations

import re

from repro.errors import DslParseError
from repro.dsl.model import (
    ArgValue,
    HalCall,
    Program,
    ResourceRef,
    StructValue,
    SyscallCall,
)

_CALL_RE = re.compile(
    r"^r(?P<idx>\d+)\s*=\s*(?P<name>[A-Za-z0-9_$.]+)\((?P<args>.*)\)\s*$")

#: Bound on caller-provided line caches before a wholesale flush.
_LINE_CACHE_CAP = 16384
_HAL_NAME_RE = re.compile(r"^hal\$(?P<service>[A-Za-z0-9_.]+)\."
                          r"(?P<method>[A-Za-z0-9_]+)$")


def _serialize_value(value: ArgValue) -> str:
    if value is None:
        return "none"
    if isinstance(value, ResourceRef):
        return f"r{value.index}"
    if isinstance(value, StructValue):
        inner = ", ".join(f"{k}={_serialize_value(v)}"
                          for k, v in value.values.items())
        return f"struct<{value.spec}>{{{inner}}}"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return hex(value) if value >= 0x1000 else str(value)
    if isinstance(value, float):
        return f"f({value!r})"
    if isinstance(value, str):
        # Strings containing line breaks (anything str.splitlines
        # treats as one) or other control characters would corrupt the
        # line-oriented format; carry those as encoded utf-8 instead.
        if any(ch < " " or ch in "\x7f\x85\u2028\u2029" for ch in value):
            return f'utf8"{value.encode("utf-8").hex().upper()}"'
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (bytes, bytearray)):
        return f'hex"{bytes(value).hex().upper()}"'
    raise DslParseError(f"unserializable value: {value!r}")


def serialize_program(program: Program) -> str:
    """Render a program in the textual DSL form."""
    lines = []
    for index, call in enumerate(program.calls):
        args = ", ".join(_serialize_value(a) for a in call.args)
        if call.is_hal:
            name = f"hal${call.service}.{call.method}"
        else:
            name = call.desc
        lines.append(f"r{index} = {name}({args})")
    return "\n".join(lines)


class _Scanner:
    """Cursor-based scanner over one argument list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        self._skip_ws()
        return self.pos >= len(self.text)

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def expect(self, char: str) -> None:
        self._skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != char:
            raise DslParseError(
                f"expected {char!r} at {self.pos} in {self.text!r}")
        self.pos += 1

    def peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def match(self, token: str) -> bool:
        self._skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def take_while(self, pattern: str) -> str:
        self._skip_ws()
        m = re.match(pattern, self.text[self.pos:])
        if m is None:
            raise DslParseError(
                f"bad token at {self.pos} in {self.text!r}")
        self.pos += m.end()
        return m.group(0)

    def value(self) -> ArgValue:
        self._skip_ws()
        if self.match("none"):
            return None
        if self.match("true"):
            return True
        if self.match("false"):
            return False
        if self.match('hex"'):
            raw = self.take_while(r"[0-9A-Fa-f]*")
            self.expect('"')
            return bytes.fromhex(raw)
        if self.match('utf8"'):
            raw = self.take_while(r"[0-9A-Fa-f]*")
            self.expect('"')
            return bytes.fromhex(raw).decode("utf-8")
        if self.match("f("):
            num = self.take_while(r"[-+0-9.eE]+")
            self.expect(")")
            return float(num)
        if self.match("struct<"):
            spec = self.take_while(r"[A-Za-z0-9_$.]+")
            self.expect(">")
            self.expect("{")
            values: dict[str, int | bytes | ResourceRef] = {}
            while self.peek() != "}":
                key = self.take_while(r"[A-Za-z0-9_]+")
                self.expect("=")
                inner = self.value()
                if not isinstance(inner, (int, bytes, ResourceRef)):
                    raise DslParseError(
                        f"struct field {key} has bad type {type(inner)}")
                values[key] = inner
                if self.peek() == ",":
                    self.expect(",")
            self.expect("}")
            return StructValue(spec, values)
        if self.peek() == '"':
            self.expect('"')
            out = []
            while self.pos < len(self.text):
                char = self.text[self.pos]
                self.pos += 1
                if char == "\\" and self.pos < len(self.text):
                    out.append(self.text[self.pos])
                    self.pos += 1
                elif char == '"':
                    return "".join(out)
                else:
                    out.append(char)
            raise DslParseError("unterminated string")
        if self.peek() == "r" and re.match(
                r"r\d+", self.text[self.pos:]):
            token = self.take_while(r"r\d+")
            return ResourceRef(int(token[1:]))
        token = self.take_while(r"-?(0x[0-9A-Fa-f]+|\d+)")
        return int(token, 0)


def _parse_args(text: str) -> tuple[ArgValue, ...]:
    scanner = _Scanner(text)
    args: list[ArgValue] = []
    while not scanner.eof():
        args.append(scanner.value())
        if not scanner.eof():
            scanner.expect(",")
    return tuple(args)


def parse_program(text: str, line_cache: dict | None = None) -> Program:
    """Parse the textual DSL form back into a :class:`Program`.

    Args:
        text: program in textual DSL form.
        line_cache: optional memo of previously parsed lines
            (``line text → (index, pristine call)``).  Every line embeds
            its own result index (``rN = …``), so a cached entry is
            valid exactly when that index matches the current position —
            the numbering check below then holds by construction.
            Mutated and minimized programs share most lines with their
            seed, which makes this cache very warm on the broker's
            exec path.

    Raises:
        DslParseError: malformed line, bad value, or wrong numbering.
    """
    program = Program()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line_cache is not None:
            entry = line_cache.get(line)
            if entry is not None and entry[0] == len(program.calls):
                program.calls.append(entry[1].copy())
                continue
        m = _CALL_RE.match(line)
        if m is None:
            raise DslParseError(f"unparsable line: {line!r}")
        index = int(m.group("idx"))
        if index != len(program.calls):
            raise DslParseError(
                f"expected r{len(program.calls)}, got r{index}")
        args = _parse_args(m.group("args"))
        name = m.group("name")
        hal = _HAL_NAME_RE.match(name)
        if hal is not None:
            call = HalCall(hal.group("service"), hal.group("method"), args)
        else:
            call = SyscallCall(name, args)
        program.calls.append(call)
        if line_cache is not None:
            if len(line_cache) >= _LINE_CACHE_CAP:
                line_cache.clear()
            line_cache[line] = (index, call.copy())
    program.validate()
    return program
