"""Program model for the test-case DSL.

A :class:`Program` is an ordered list of calls.  Each call is either a
:class:`SyscallCall` (named after a syzlang-lite description, e.g.
``ioctl$VIDIOC_S_FMT``) or a :class:`HalCall` (a Binder transaction on a
probed HAL interface).  Arguments are plain Python values plus two
structured forms:

* :class:`ResourceRef` — the value produced by an earlier call in the
  same program (fd, handle, session id, …);
* :class:`StructValue` — a struct argument kept in field form so that
  mutation can edit fields; the executor packs it using the description's
  field specs at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import DslError


@dataclass(frozen=True)
class ResourceRef:
    """Reference to the resource produced by call ``index`` (0-based)."""

    index: int
    kind: str = ""

    def __repr__(self) -> str:
        return f"r{self.index}" + (f":{self.kind}" if self.kind else "")


@dataclass
class StructValue:
    """A struct argument kept as named field values.

    ``spec`` names the owning description (or write-spec); the executor
    looks up the field layout there.  Field values may themselves be
    :class:`ResourceRef`.
    """

    spec: str
    values: dict[str, Union[int, bytes, "ResourceRef"]] = field(
        default_factory=dict)

    def copy(self) -> "StructValue":
        """Shallow-copy (field dict duplicated)."""
        return StructValue(self.spec, dict(self.values))


ArgValue = Union[int, float, bool, str, bytes, None, ResourceRef, StructValue]


@dataclass
class SyscallCall:
    """One kernel syscall invocation, named by its description."""

    desc: str
    args: tuple[ArgValue, ...] = ()

    @property
    def is_hal(self) -> bool:
        return False

    @property
    def label(self) -> str:
        """Identity used by relation learning / vertices."""
        return self.desc

    def copy(self) -> "SyscallCall":
        return SyscallCall(self.desc, tuple(
            a.copy() if isinstance(a, StructValue) else a for a in self.args))


@dataclass
class HalCall:
    """One Binder transaction on a HAL interface."""

    service: str
    method: str
    args: tuple[ArgValue, ...] = ()

    @property
    def is_hal(self) -> bool:
        return True

    @property
    def label(self) -> str:
        """Identity used by relation learning / vertices."""
        return f"{self.service}.{self.method}"

    def copy(self) -> "HalCall":
        return HalCall(self.service, self.method, tuple(
            a.copy() if isinstance(a, StructValue) else a for a in self.args))


Call = Union[SyscallCall, HalCall]


def _refs_of(value: ArgValue):
    if isinstance(value, ResourceRef):
        yield value
    elif isinstance(value, StructValue):
        for inner in value.values.values():
            if isinstance(inner, ResourceRef):
                yield inner


@dataclass
class Program:
    """An ordered test case: the unit of generation, mutation, execution."""

    calls: list[Call] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.calls)

    def copy(self) -> "Program":
        """Deep-enough copy for safe mutation."""
        return Program([c.copy() for c in self.calls])

    def labels(self) -> list[str]:
        """Call identities in order (for relation learning)."""
        return [c.label for c in self.calls]

    def validate(self) -> None:
        """Check that every resource reference points backwards.

        Raises:
            DslError: a forward or self reference exists.
        """
        for position, call in enumerate(self.calls):
            for ref in self.arg_refs(call):
                if not 0 <= ref.index < position:
                    raise DslError(
                        f"call {position} ({call.label}) references "
                        f"r{ref.index}, which is not an earlier call")

    @staticmethod
    def arg_refs(call: Call) -> list[ResourceRef]:
        """All resource references appearing in a call's arguments."""
        refs: list[ResourceRef] = []
        for arg in call.args:
            refs.extend(_refs_of(arg))
        return refs

    def drop_call(self, index: int) -> "Program":
        """A copy with call ``index`` removed and references fixed up.

        Calls that referenced the dropped call are removed too (and so
        on transitively), which is what program minimization needs.
        """
        doomed = {index}
        for position in range(index + 1, len(self.calls)):
            if any(ref.index in doomed
                   for ref in self.arg_refs(self.calls[position])):
                doomed.add(position)
        remap: dict[int, int] = {}
        kept: list[Call] = []

        def fix(value: ArgValue) -> ArgValue:
            if isinstance(value, ResourceRef):
                return ResourceRef(remap[value.index], value.kind)
            if isinstance(value, StructValue):
                value.values = {k: (ResourceRef(remap[v.index], v.kind)
                                    if isinstance(v, ResourceRef) else v)
                                for k, v in value.values.items()}
            return value

        for position, call in enumerate(self.calls):
            if position in doomed:
                continue
            remap[position] = len(kept)
            if position < index:
                # Calls before the drop point keep their indices and all
                # their (backward) references; they are shared, not
                # copied — safe because mutation always works on copies.
                kept.append(call)
            else:
                call = call.copy()
                call.args = tuple(fix(a) for a in call.args)
                kept.append(call)
        return Program(kept)
