"""Test-case DSL.

DroidFuzz test cases are sequences of HAL interface and kernel syscall
invocations in a domain-specific language (§IV-A of the paper).  This
package provides the program model (:mod:`repro.dsl.model`), the
syzlang-lite description registry derived from driver interface specs
(:mod:`repro.dsl.descriptions`), and the textual form used for corpus
persistence and the host↔device channel (:mod:`repro.dsl.text`).
"""

from repro.dsl.model import (
    HalCall,
    Program,
    ResourceRef,
    StructValue,
    SyscallCall,
)
from repro.dsl.descriptions import DescriptionRegistry, SyscallDesc, build_descriptions
from repro.dsl.text import parse_program, serialize_program

__all__ = [
    "HalCall",
    "Program",
    "ResourceRef",
    "StructValue",
    "SyscallCall",
    "DescriptionRegistry",
    "SyscallDesc",
    "build_descriptions",
    "parse_program",
    "serialize_program",
]
