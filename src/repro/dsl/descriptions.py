"""Syzlang-lite: syscall descriptions derived from driver interface specs.

Syzkaller ships hand-written syscall descriptions; our virtual drivers
publish equivalent machine-readable specs (:class:`IoctlSpec`,
:class:`SocketSpec`, :class:`WriteSpec`).  This module compiles a device
profile's driver set into a :class:`DescriptionRegistry` of *specialized*
syscalls — ``openat$tcpc0``, ``ioctl$VIDIOC_S_FMT``, ``socket$bt_l2cap``
— with typed arguments and resource production/consumption, the same
information syzlang encodes.

All fuzzers in the evaluation (DroidFuzz, Syzkaller-lite, Difuze-lite)
consume this registry, so none gets an unfair description advantage; the
differences under test are HAL access, relation learning, and feedback.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.kernel.drivers import build_driver
from repro.kernel.ioctl import FieldSpec, IoctlSpec, SocketSpec
from repro.device.profiles import DeviceProfile


def sanitize(token: str) -> str:
    """Make a path/name safe for use in a description name."""
    return re.sub(r"[^A-Za-z0-9]+", "_", token).strip("_")


@dataclass(frozen=True)
class SyscallDesc:
    """One specialized syscall description.

    ``kind`` selects the argument shape the executor/generator uses:
    ``open``, ``close``, ``dup``, ``ioctl``, ``read``, ``write``,
    ``mmap``, ``socket``, ``bind``, ``connect``, ``listen``, ``accept``,
    ``setsockopt``, ``getsockopt``, ``sendto``, ``recvfrom``.
    """

    name: str
    kind: str
    syscall: str
    driver: str = ""
    path: str = ""
    fd_resource: str = ""
    #: When set, a successful call *defines* ``produces`` with the value
    #: of this input-struct field (rendezvous identifiers like PSMs).
    produce_field: str = ""
    request: int = 0
    arg: str = "none"
    fields: tuple[FieldSpec, ...] = ()
    int_kind: FieldSpec | None = None
    produces: str = ""
    produce_offset: int = -1
    domain: int = 0
    sock_types: tuple[int, ...] = ()
    protocols: tuple[int, ...] = ()
    addr_fields: tuple[FieldSpec, ...] = ()
    level: int = 0
    optname: int = 0
    opt_fields: tuple[FieldSpec, ...] = ()
    write_fields: tuple[FieldSpec, ...] = ()
    doc: str = ""


@dataclass
class DescriptionRegistry:
    """All specialized syscall descriptions for one device profile."""

    descs: dict[str, SyscallDesc] = field(default_factory=dict)
    #: resource kind -> names of descriptions producing it.
    producers: dict[str, list[str]] = field(default_factory=dict)

    def add(self, desc: SyscallDesc) -> None:
        """Register a description (names must be unique)."""
        if desc.name in self.descs:
            raise ValueError(f"duplicate description: {desc.name}")
        self.descs[desc.name] = desc
        if desc.produces:
            self.producers.setdefault(desc.produces, []).append(desc.name)

    def get(self, name: str) -> SyscallDesc | None:
        """Description by name."""
        return self.descs.get(name)

    def names(self) -> list[str]:
        """All description names, sorted."""
        return sorted(self.descs)

    def by_kind(self, kind: str) -> list[SyscallDesc]:
        """All descriptions of one argument shape."""
        return [d for d in self.descs.values() if d.kind == kind]

    def producers_of(self, kind: str) -> list[SyscallDesc]:
        """Descriptions that produce resource ``kind``."""
        return [self.descs[n] for n in self.producers.get(kind, [])]

    def resource_kinds(self) -> list[str]:
        """All producible resource kinds, sorted."""
        return sorted(self.producers)


def _consumed_resources(desc: SyscallDesc) -> list[str]:
    kinds = []
    if desc.fd_resource:
        kinds.append(desc.fd_resource)
    for f in desc.fields + desc.opt_fields + (
            (desc.int_kind,) if desc.int_kind else ()):
        if f is not None and f.kind == "resource":
            kinds.append(f.resource)
    return kinds


def consumed_resources(desc: SyscallDesc) -> list[str]:
    """Resource kinds a description needs as inputs."""
    return _consumed_resources(desc)


def _add_chardev_descs(registry: DescriptionRegistry, driver,
                       vendor_interfaces: bool) -> None:
    typed = vendor_interfaces or not driver.vendor_specific
    for path in driver.paths:
        short = sanitize(path.removeprefix("/dev/"))
        fd_kind = f"fd_{short}"
        registry.add(SyscallDesc(
            name=f"openat${short}", kind="open", syscall="openat",
            driver=driver.name, path=path, produces=fd_kind,
            doc=f"open {path}"))
        registry.add(SyscallDesc(
            name=f"close${short}", kind="close", syscall="close",
            driver=driver.name, path=path, fd_resource=fd_kind,
            doc=f"close {path}"))
        registry.add(SyscallDesc(
            name=f"dup${short}", kind="dup", syscall="dup",
            driver=driver.name, path=path, fd_resource=fd_kind,
            produces=fd_kind, doc=f"dup an fd of {path}"))
        registry.add(SyscallDesc(
            name=f"read${short}", kind="read", syscall="read",
            driver=driver.name, path=path, fd_resource=fd_kind,
            doc=f"read {path}"))
        write_fields: tuple[FieldSpec, ...] = ()
        if typed and hasattr(driver, "write_spec"):
            write_fields = driver.write_spec().fields
        registry.add(SyscallDesc(
            name=f"write${short}", kind="write", syscall="write",
            driver=driver.name, path=path, fd_resource=fd_kind,
            write_fields=write_fields, doc=f"write {path}"))
        registry.add(SyscallDesc(
            name=f"mmap${short}", kind="mmap", syscall="mmap",
            driver=driver.name, path=path, fd_resource=fd_kind,
            doc=f"mmap {path}"))
        # Untyped escape hatch: ioctl with a caller-chosen request value.
        # Hopeless with random requests, potent with captured ones.
        registry.add(SyscallDesc(
            name=f"ioctl$raw_{short}", kind="ioctl_raw", syscall="ioctl",
            driver=driver.name, path=path, fd_resource=fd_kind,
            doc=f"raw ioctl on {path}"))
        if typed and hasattr(driver, "ioctl_specs"):
            for spec in driver.ioctl_specs():
                if spec.vendor and not vendor_interfaces:
                    continue
                registry.add(_ioctl_desc(driver.name, path, fd_kind, spec))


def _ioctl_desc(driver_name: str, path: str, fd_kind: str,
                spec: IoctlSpec) -> SyscallDesc:
    return SyscallDesc(
        name=f"ioctl${spec.name}", kind="ioctl", syscall="ioctl",
        driver=driver_name, path=path, fd_resource=fd_kind,
        request=spec.request, arg=spec.arg, fields=spec.fields,
        int_kind=spec.int_kind, produces=spec.produces,
        produce_offset=spec.produce_offset, doc=spec.doc)


def _add_socket_descs(registry: DescriptionRegistry, family) -> None:
    spec: SocketSpec = family.socket_spec()
    short = sanitize(spec.name)
    sock_kind = f"sock_{short}"
    registry.add(SyscallDesc(
        name=f"socket${short}", kind="socket", syscall="socket",
        driver=family.name, domain=spec.domain, sock_types=spec.types,
        protocols=spec.protocols, produces=sock_kind, doc=spec.doc))
    # Rendezvous fields: bind *defines* the identifier (enum form),
    # connect *consumes* it (resource form).
    bind_fields = tuple(
        FieldSpec(f.name, f.fmt, "enum", values=f.values)
        if f.kind == "resource" and f.values else f
        for f in spec.addr_fields)
    rendezvous = next((f for f in spec.addr_fields
                       if f.kind == "resource"), None)
    registry.add(SyscallDesc(
        name=f"bind${short}", kind="bind", syscall="bind",
        driver=family.name, fd_resource=sock_kind,
        addr_fields=bind_fields,
        produces=rendezvous.resource if rendezvous else "",
        produce_field=rendezvous.name if rendezvous else "",
        doc=f"bind a {spec.name} socket"))
    registry.add(SyscallDesc(
        name=f"connect${short}", kind="connect", syscall="connect",
        driver=family.name, fd_resource=sock_kind,
        addr_fields=spec.addr_fields, doc=f"connect a {spec.name} socket"))
    registry.add(SyscallDesc(
        name=f"listen${short}", kind="listen", syscall="listen",
        driver=family.name, fd_resource=sock_kind, doc="listen"))
    registry.add(SyscallDesc(
        name=f"accept${short}", kind="accept", syscall="accept",
        driver=family.name, fd_resource=sock_kind, produces=sock_kind,
        doc="accept a pending connection"))
    registry.add(SyscallDesc(
        name=f"sendto${short}", kind="sendto", syscall="sendto",
        driver=family.name, fd_resource=sock_kind, doc="send data"))
    registry.add(SyscallDesc(
        name=f"recvfrom${short}", kind="recvfrom", syscall="recvfrom",
        driver=family.name, fd_resource=sock_kind, doc="receive data"))
    registry.add(SyscallDesc(
        name=f"close${short}", kind="close", syscall="close",
        driver=family.name, fd_resource=sock_kind, doc="close the socket"))
    for opt in spec.sockopts:
        registry.add(SyscallDesc(
            name=f"setsockopt${short}_{sanitize(opt.name)}",
            kind="setsockopt", syscall="setsockopt", driver=family.name,
            fd_resource=sock_kind, level=opt.level, optname=opt.optname,
            opt_fields=opt.fields, doc=opt.doc))
        registry.add(SyscallDesc(
            name=f"getsockopt${short}_{sanitize(opt.name)}",
            kind="getsockopt", syscall="getsockopt", driver=family.name,
            fd_resource=sock_kind, level=opt.level, optname=opt.optname,
            doc=opt.doc))


def build_descriptions(profile: DeviceProfile,
                       vendor_interfaces: bool = False) -> DescriptionRegistry:
    """Compile the syzlang-lite registry for one device profile.

    Instantiates throwaway driver objects (interface specs do not depend
    on quirk flags) and collects their published interfaces.

    Args:
        vendor_interfaces: when False (the realistic default), drivers
            marked ``vendor_specific`` — and vendor-flagged commands of
            standard drivers — contribute only *generic* descriptions
            (open/read/write/mmap plus an untyped raw ioctl): public
            syzlang has no typed descriptions for proprietary
            interfaces.  Difuze's static-analysis surrogate passes True
            because it recovers them from the firmware itself.
    """
    registry = DescriptionRegistry()
    for name in sorted(profile.drivers):
        driver = build_driver(name)
        if hasattr(driver, "socket_spec"):
            _add_socket_descs(registry, driver)
        else:
            _add_chardev_descs(registry, driver, vendor_interfaces)
    return registry
