"""Device profiles for the seven boards of Table I.

A profile is pure data: identity (vendor/arch/AOSP/kernel), the driver
set with vendor quirk flags (the firmware revisions carrying Table II's
bugs), and the HAL service set with theirs.  The firmware builder turns
a profile into a booted :class:`repro.device.device.AndroidDevice`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeviceProfile:
    """Identity and firmware composition of one embedded Android device."""

    ident: str
    name: str
    vendor: str
    arch: str
    aosp: int
    kernel: str
    drivers: dict[str, dict[str, bool]] = field(default_factory=dict)
    hals: dict[str, dict[str, bool]] = field(default_factory=dict)
    #: Table II bug numbers planted in this firmware (ground truth for
    #: evaluation only; the fuzzer never reads this).
    planted_bugs: tuple[int, ...] = ()


DEVICE_PROFILES: tuple[DeviceProfile, ...] = (
    DeviceProfile(
        ident="A1", name="Phone Dev Board", vendor="Xiaomi",
        arch="aarch64", aosp=15, kernel="6.6",
        drivers={
            "rt1711_tcpc": {"quirk_warn_probe": True,
                            "quirk_warn_role_swap": True},
            "drm_gpu": {"quirk_lockdep_subclass": True},
            "mtk_vcodec": {},
            "bt_hci": {},
            "bt_l2cap": {},
            "audio_pcm": {},
            "input_touch": {},
            "ion": {},
            "iio_sensors": {},
            "gpiochip": {},
        },
        hals={
            "graphics": {"quirk_present_crash": True},
            "media": {},
            "audio": {},
            "bluetooth": {},
            "sensors": {},
            "usb": {},
            "thermal": {},
        },
        planted_bugs=(1, 2, 3, 4),
    ),
    DeviceProfile(
        ident="A2", name="Tablet Dev Board", vendor="Xiaomi",
        arch="aarch64", aosp=15, kernel="6.6",
        drivers={
            "rt1711_tcpc": {},
            "drm_gpu": {},
            "mtk_vcodec": {"quirk_drain_loop": True},
            "bt_hci": {"quirk_codecs_uaf": True},
            "bt_l2cap": {},
            "audio_pcm": {},
            "input_touch": {},
            "ion": {},
            "iio_sensors": {},
            "gpiochip": {},
        },
        hals={
            "graphics": {},
            "media": {"quirk_csd_oob": True},
            "audio": {},
            "bluetooth": {},
            "sensors": {},
            "usb": {},
            "thermal": {},
        },
        planted_bugs=(5, 6, 7),
    ),
    DeviceProfile(
        ident="B", name="Pi 5", vendor="Raspberry Pi",
        arch="aarch64", aosp=15, kernel="6.6",
        drivers={
            "drm_gpu": {},
            "v4l2_camera": {},
            "bt_hci": {},
            "bt_l2cap": {"quirk_warn_disconn": True},
            "audio_pcm": {},
            "ion": {},
            "gpiochip": {},
        },
        hals={
            "graphics": {},
            "camera": {},
            "audio": {},
            "bluetooth": {},
            "thermal": {},
        },
        planted_bugs=(8,),
    ),
    DeviceProfile(
        ident="C1", name="Commercial Tablet", vendor="Sunmi",
        arch="aarch64", aosp=13, kernel="5.15",
        drivers={
            "drm_gpu": {},
            "v4l2_camera": {},
            "audio_pcm": {},
            "input_touch": {},
            "ion": {},
            "iio_sensors": {},
            "gpiochip": {},
        },
        hals={
            "graphics": {},
            "camera": {"quirk_stale_stream_crash": True},
            "audio": {},
            "sensors": {},
            "thermal": {},
        },
        planted_bugs=(9,),
    ),
    DeviceProfile(
        ident="C2", name="Cashier Kiosk", vendor="Sunmi",
        arch="aarch64", aosp=13, kernel="5.15",
        drivers={
            "drm_gpu": {},
            "mac80211": {"quirk_warn_rate_init": True},
            "audio_pcm": {},
            "input_touch": {},
            "ion": {},
            "gpiochip": {},
        },
        hals={
            "graphics": {},
            "wifi": {},
            "audio": {},
            "thermal": {},
        },
        planted_bugs=(10,),
    ),
    DeviceProfile(
        ident="D", name="LubanCat 5", vendor="EmbedFire",
        arch="aarch64", aosp=13, kernel="5.10",
        drivers={
            "drm_gpu": {},
            "bt_hci": {},
            "bt_l2cap": {"quirk_accept_uaf": True},
            "iio_sensors": {},
            "ion": {},
            "gpiochip": {},
        },
        hals={
            "graphics": {},
            "bluetooth": {},
            "sensors": {},
            "thermal": {},
        },
        planted_bugs=(11,),
    ),
    DeviceProfile(
        ident="E", name="UP Core Plus", vendor="AAEON",
        arch="amd64", aosp=13, kernel="5.10",
        drivers={
            "drm_gpu": {},
            "v4l2_camera": {"quirk_warn_querycap": True},
            "audio_pcm": {},
            "input_touch": {},
            "ion": {},
            "gpiochip": {},
        },
        hals={
            "graphics": {},
            "camera": {},
            "audio": {},
            "thermal": {},
        },
        planted_bugs=(12,),
    ),
)


def profile_by_id(ident: str) -> DeviceProfile:
    """Look up a Table I profile by its id (``A1`` … ``E``).

    Raises:
        KeyError: unknown device id.
    """
    for profile in DEVICE_PROFILES:
        if profile.ident == ident:
            return profile
    raise KeyError(f"unknown device id: {ident}")
