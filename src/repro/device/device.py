"""The virtual embedded Android device.

:class:`AndroidDevice` boots a profile's firmware (kernel drivers + HAL
services), owns the virtual clock, exposes the two execution surfaces a
fuzzer uses (raw syscalls and Binder transactions), and implements the
crash lifecycle: crash records accumulate from dmesg and HAL tombstones,
and :meth:`reboot` restores a clean boot state (costing virtual time,
like a real watchdog reboot during a campaign).

Virtual time: every syscall and Binder transaction advances the clock by
a per-operation cost.  Campaign durations ("48 hours") are therefore
deterministic op budgets; see EXPERIMENTS.md for the scale mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import DeviceError
from repro.hal.binder import BinderProxy
from repro.hal.process import HalProcess, Tombstone
from repro.hal.service import HalService, marshal_args
from repro.hal.service_manager import ServiceManager
from repro.hal.services import build_hal
from repro.kernel.chardev import SocketFamily
from repro.kernel.dmesg import CrashRecord
from repro.kernel.drivers import build_driver
from repro.kernel.kernel import VirtualKernel
from repro.kernel.syscalls import SyscallOutcome
from repro.device.profiles import DeviceProfile
from repro.device.snapshot import DeviceCheckpoint


@dataclass(frozen=True)
class DeviceCosts:
    """Virtual-time cost model for device operations (seconds)."""

    syscall: float = 0.5
    binder: float = 2.0
    reboot: float = 90.0
    shell: float = 1.0


class AndroidDevice:
    """A booted virtual embedded Android device.

    Args:
        profile: the Table I profile to build firmware for.
        costs: virtual-time cost model.
        checkpoint: capture a :class:`DeviceCheckpoint` of the clean
            first-boot state so :meth:`reboot` restores it instead of
            re-running every driver/service reset (snapshot fuzzing).
            Byte-identical to the legacy path; disable to benchmark or
            bisect against the reset-based reboot.
    """

    def __init__(self, profile: DeviceProfile,
                 costs: DeviceCosts | None = None,
                 checkpoint: bool = True) -> None:
        self.profile = profile
        self.costs = costs or DeviceCosts()
        self.clock = 0.0
        self.boot_count = 0
        self.kernel: VirtualKernel = VirtualKernel(name=profile.ident)
        self.service_manager: ServiceManager = ServiceManager(self.kernel)
        self._hal_processes: dict[str, HalProcess] = {}
        self._services: dict[str, HalService] = {}
        #: (service, pid, comm) -> BinderProxy.  Proxies are stateless
        #: 3-field handles; reusing them keeps hal_transact allocation
        #: free on the hot path.  Nodes survive reboots, so the cache
        #: never needs invalidation.
        self._proxies: dict[tuple[str, int, str], BinderProxy] = {}
        self._build_firmware()
        self.checkpoint: DeviceCheckpoint | None = (
            DeviceCheckpoint(self) if checkpoint else None)
        self.boot_count = 1

    # ------------------------------------------------------------------
    # firmware / boot
    # ------------------------------------------------------------------

    def _build_firmware(self) -> None:
        for name, quirks in self.profile.drivers.items():
            driver = build_driver(name, **quirks)
            if isinstance(driver, SocketFamily):
                self.kernel.register_socket_family(driver)
            else:
                self.kernel.register_driver(driver)
        for name, quirks in self.profile.hals.items():
            service = build_hal(name, **quirks)
            process = HalProcess(self.kernel,
                                 f"{service.instance_name}-service")
            service.attach(self.kernel, process)
            self.service_manager.add_service(service)
            self._hal_processes[service.instance_name] = process
            self._services[service.instance_name] = service

    def reboot(self) -> None:
        """Watchdog/crash reboot: back to a clean boot state in place.

        Charges the same virtual time either way; with a checkpoint the
        clean state is *restored* rather than re-derived, which is what
        makes reboot-heavy campaigns cheap in real time.
        """
        self.clock += self.costs.reboot
        if self.checkpoint is not None:
            self.checkpoint.restore(self)
        else:
            self.kernel.soft_reset()
            for name, service in self._services.items():
                process = self._hal_processes[name]
                process.restart()
                service.reset()
        self.boot_count += 1

    @property
    def healthy(self) -> bool:
        """False when the kernel panicked or hung (reboot required)."""
        return not (self.kernel.panicked or self.kernel.hung)

    # ------------------------------------------------------------------
    # execution surfaces
    # ------------------------------------------------------------------

    def new_process(self, comm: str):
        """Spawn a userspace task (e.g. the on-device broker/executors)."""
        return self.kernel.new_process(comm)

    def syscall(self, pid: int, name: str, *args: Any) -> SyscallOutcome:
        """Raw syscall surface, charging virtual time."""
        self.clock += self.costs.syscall
        return self.kernel.syscall(pid, name, *args)

    def hal_services(self) -> list[str]:
        """Registered HAL instance names."""
        return self.service_manager.list_services()

    def hal_service(self, name: str) -> HalService | None:
        """Service object by instance name (device-internal)."""
        return self._services.get(name)

    def services(self) -> dict[str, HalService]:
        """All services by instance name, in registration order."""
        return dict(self._services)

    def hal_process(self, name: str) -> HalProcess | None:
        """Host process of a service."""
        return self._hal_processes.get(name)

    def hal_transact(self, client_pid: int, client_comm: str,
                     service_name: str, method_name: str,
                     args: tuple[Any, ...]):
        """Invoke one HAL method over Binder, charging virtual time.

        Returns ``(status_int, reply_parcel)``.  A dead service process
        is restarted lazily by init before the next call; the call that
        killed it raises :class:`DeadObjectError` to the caller, exactly
        like binder does.
        """
        self.clock += self.costs.binder
        service = self._services.get(service_name)
        if service is None:
            raise DeviceError(f"no such HAL service: {service_name}")
        process = self._hal_processes[service_name]
        if process.dead:
            # init restarted the service since the crash.
            process.restart()
            service.reset()
        method = service.method_by_name(method_name)
        if method is None:
            raise DeviceError(
                f"{service_name} has no method {method_name}")
        key = (service_name, client_pid, client_comm)
        proxy = self._proxies.get(key)
        if proxy is None:
            proxy = self.service_manager.get_service(
                service_name, client_pid, client_comm)
            self._proxies[key] = proxy
        parcel = marshal_args(method, args)
        reply = proxy.transact(method.code, parcel)
        status = reply.read_i32()
        return status, reply

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def drain_crashes(self) -> list[CrashRecord | Tombstone]:
        """All crash records (kernel splats + HAL tombstones) since last
        drain."""
        out: list[CrashRecord | Tombstone] = []
        # Empty-drain guards: this runs once per executed program and
        # crashes are rare, so avoid allocating drained lists for the
        # overwhelmingly common nothing-pending case.
        if self.kernel.dmesg._crashes:
            out.extend(self.kernel.dmesg.drain_crashes())
        for process in self._hal_processes.values():
            if process._tombstones:
                out.extend(process.drain_tombstones())
        return out

    def peek_crashes(self) -> list[CrashRecord | Tombstone]:
        """Pending crash records without clearing them."""
        out: list[CrashRecord | Tombstone] = []
        out.extend(self.kernel.dmesg.peek_crashes())
        for process in self._hal_processes.values():
            out.extend(process.peek_tombstones())
        return out

    def coverage_blocks(self) -> int:
        """Cumulative kernel coverage blocks (kcov total)."""
        return self.kernel.kcov.total_blocks()

    def per_driver_coverage(self) -> dict[str, int]:
        """Cumulative covered blocks grouped by driver."""
        return self.kernel.kcov.per_driver()

    def driver_block_estimates(self) -> dict[str, int]:
        """Approximate total blocks per driver (for percentage stats)."""
        return {drv.name: drv.coverage_block_count()
                for drv in self.kernel.drivers()}
