"""ADB transport surrogate.

The paper's host-side fuzzing engine talks to its device-side broker over
the Android Debug Bridge.  This module provides the same two facilities:

* ``shell`` — the handful of commands the tooling uses (``lshal``,
  ``dmesg``, ``getprop``, ``reboot``, ``ls /dev``);
* forwarded sockets — a device-side component registers an RPC handler
  under a socket name (``adb forward`` surrogate) and the host calls it
  with dict payloads.

Every interaction charges virtual time, modelling USB/TCP transport
latency that a real campaign pays on every program execution.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.errors import AdbError
from repro.device.device import AndroidDevice

RpcHandler = Callable[[dict[str, Any]], dict[str, Any]]


class AdbConnection:
    """One ``adb`` connection to a virtual device."""

    def __init__(self, device: AndroidDevice) -> None:
        self.device = device
        self._forwards: dict[str, RpcHandler] = {}

    # ------------------------------------------------------------------

    def shell(self, cmd: str) -> str:
        """Run a shell command on the device; returns stdout."""
        self.device.clock += self.device.costs.shell
        parts = cmd.split()
        if not parts:
            raise AdbError("empty shell command")
        if parts[0] == "lshal":
            return "\n".join(f"{iface}\t{name}" for name, iface
                             in self.device.service_manager.list_hals())
        if parts[0] == "service" and parts[1:2] == ["list"]:
            return "\n".join(self.device.service_manager.list_services())
        if parts[0] == "dmesg":
            return "\n".join(self.device.kernel.dmesg.lines())
        if parts[0] == "logcat":
            lines = []
            for name in self.device.hal_services():
                process = self.device.hal_process(name)
                for stone in process.peek_tombstones():
                    lines.append(f"F/{stone.process}: Fatal signal "
                                 f"({stone.signal}): {stone.title}")
            return "\n".join(lines)
        if parts[0] == "getprop":
            props = {
                "ro.product.vendor.name": self.device.profile.vendor,
                "ro.build.version.release": str(self.device.profile.aosp),
                "ro.kernel.version": self.device.profile.kernel,
                "ro.product.cpu.abi": self.device.profile.arch,
            }
            if len(parts) > 1:
                return props.get(parts[1], "")
            return "\n".join(f"[{k}]: [{v}]" for k, v in sorted(props.items()))
        if parts[0] == "reboot":
            self.device.reboot()
            return ""
        if parts[0] == "ls" and parts[1:2] == ["/dev"]:
            return "\n".join(self.device.kernel.device_paths())
        raise AdbError(f"unsupported shell command: {cmd}")

    # ------------------------------------------------------------------

    def forward(self, socket_name: str, handler: RpcHandler) -> None:
        """Register a device-side RPC handler (``adb forward`` surrogate)."""
        self._forwards[socket_name] = handler

    def rpc(self, socket_name: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Host-side call into a forwarded device socket.

        A forwarded socket carries bytes, so both directions round-trip
        the JSON framing a real ``adb forward`` channel would ship —
        payloads must stay JSON-safe (the broker's wire forms are built
        for this).  Engines that colocate broker and device can skip the
        framing entirely via ``ExecutionBroker.execute_program``.

        Raises:
            AdbError: the socket is not forwarded.
        """
        handler = self._forwards.get(socket_name)
        if handler is None:
            raise AdbError(f"socket not forwarded: {socket_name}")
        request = json.dumps(payload).encode("utf-8")
        response = json.dumps(handler(json.loads(request))).encode("utf-8")
        return json.loads(response)

    def wait_for_device(self) -> None:
        """Block until the device is responsive (reboot if wedged)."""
        if not self.device.healthy:
            self.device.reboot()
