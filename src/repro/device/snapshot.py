"""Snapshot-restore device checkpointing.

A campaign pays for every watchdog reboot twice: once in virtual time
(the 90 s reboot charge, faithfully kept) and once in *real* time — the
host re-runs every driver ``reset()`` and every HAL ``service.reset()``
on each reboot.  Snapshot fuzzing recovers the real-time cost: after the
first clean boot :class:`AndroidDevice` captures a
:class:`DeviceCheckpoint` of the clean kernel and HAL state, and
``reboot()`` *restores* that checkpoint instead of re-deriving it.

Equivalence contract (equality-tested, like PR 2's fleet merge): a
checkpoint restore must be byte-identical to the legacy
``soft_reset()`` + per-service restart path —

* drivers and socket families come back in exactly their
  post-``reset()`` state;
* the slab heap, process table, dmesg ring and crash latches are reset
  through the *same* code (``VirtualKernel.reset_core``) so monotonic
  counters (``_next_id``, ``alloc_count``, ``free_count``) advance
  identically;
* HAL processes are restarted through ``HalProcess.restart()`` in the
  same order, so pid allocation and seccomp-filter cleanup match;
* kcov attribution and the PC interner survive, as on the legacy path.

Drivers and services may implement a ``snapshot() -> token`` /
``restore(token)`` pair for a cheap typed capture; everything else gets
a generic capture of its ``__dict__`` (minus excluded infrastructure
attributes) — pickled once at capture time when the state allows it
(``pickle.loads`` per restore is several times cheaper than a
``copy.deepcopy``), deep-copied otherwise.  Tokens are treated as
immutable: ``restore`` may run any number of times from the same token.
"""

from __future__ import annotations

import copy
import pickle
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.device.device import AndroidDevice

#: HalService attributes that wire the service into the device rather
#: than carry state: never captured, never deleted on restore.
SERVICE_INFRA_ATTRS = frozenset(
    {"process", "_kernel", "_by_code", "_by_name", "_handlers", "_readers",
     "_ret_writers"})

_GENERIC = object()  # marker: token produced by the deep-copy fallback
_PICKLED = object()  # marker: generic state frozen as a pickle blob


def has_snapshot_protocol(obj: Any) -> bool:
    """True when ``obj`` implements the snapshot()/restore() pair."""
    return (callable(getattr(obj, "snapshot", None))
            and callable(getattr(obj, "restore", None)))


def capture_state(obj: Any, exclude: frozenset[str] = frozenset()) -> tuple:
    """Capture ``obj``'s restorable state.

    Uses the object's own ``snapshot()`` when the protocol is
    implemented, else deep-copies its ``__dict__`` minus ``exclude``.
    """
    if has_snapshot_protocol(obj):
        return ("custom", obj.snapshot())
    state = {key: value for key, value in vars(obj).items()
             if key not in exclude}
    try:
        return (_PICKLED, pickle.dumps(state, pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable state (open handles, lambdas, ...)
        return (_GENERIC, copy.deepcopy(state))


def restore_state(obj: Any, token: tuple,
                  exclude: frozenset[str] = frozenset()) -> None:
    """Restore ``obj`` to the state captured by :func:`capture_state`.

    The generic path deletes attributes the object grew since capture
    (so lazily-added state does not leak across "reboots") and rebinds
    every captured attribute to a fresh deep copy, keeping the token
    pristine for the next restore.
    """
    kind, state = token
    if kind == "custom":
        obj.restore(state)
        return
    if kind is _PICKLED:
        fresh = pickle.loads(state)
    else:
        fresh = {key: copy.deepcopy(value) for key, value in state.items()}
    live = vars(obj)
    for key in [k for k in live if k not in fresh and k not in exclude]:
        del live[key]
    live.update(fresh)


def _restore_thunk(obj: Any, exclude: frozenset[str] = frozenset()):
    """Capture ``obj`` now; return a no-argument restore callable.

    Custom snapshot protocols resolve straight to the bound ``restore``
    method, so a checkpoint restore of a protocol-implementing object
    costs one call — the same shape as the ``reset()`` it replaces.
    """
    token = capture_state(obj, exclude)
    kind, state = token
    if kind == "custom":
        restore = obj.restore
        return lambda: restore(state)
    return lambda: restore_state(obj, token, exclude)


class DeviceCheckpoint:
    """Clean-boot state of one :class:`AndroidDevice`.

    Captured once after the first boot; :meth:`restore` replays it in
    the exact order the legacy reboot path mutates the device, so the
    two paths are interchangeable mid-campaign.
    """

    def __init__(self, device: "AndroidDevice") -> None:
        # Restore thunks are pre-bound at capture time so the per-reboot
        # loop is a row of plain calls (restore runs once per watchdog
        # reboot; capture runs once per campaign).
        self._drivers = [_restore_thunk(driver)
                         for driver in device.kernel.drivers()]
        # Host processes persist across reboots (restart() swaps the
        # kernel task inside), so their restart methods can be bound
        # once here too.
        self._services = [
            (device.hal_process(name).restart,
             _restore_thunk(service, exclude=SERVICE_INFRA_ATTRS))
            for name, service in device.services().items()]

    def restore(self, device: "AndroidDevice") -> None:
        """Put the device back into its clean-boot state.

        Mirrors ``VirtualKernel.soft_reset()`` + the device's service
        restart loop step for step; only the per-object ``reset()``
        calls are replaced by checkpoint restores.
        """
        for restore_driver in self._drivers:
            restore_driver()
        device.kernel.reset_core()
        for restart_process, restore_service in self._services:
            restart_process()
            restore_service()
