"""Virtual embedded Android devices.

Combines the kernel and HAL substrates into bootable devices matching
Table I of the paper, with an ADB-like transport on top.
"""

from repro.device.profiles import DEVICE_PROFILES, DeviceProfile, profile_by_id
from repro.device.device import AndroidDevice
from repro.device.adb import AdbConnection

__all__ = [
    "DEVICE_PROFILES",
    "DeviceProfile",
    "profile_by_id",
    "AndroidDevice",
    "AdbConnection",
]
