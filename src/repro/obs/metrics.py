"""Always-on metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately minimal — flat string names, no label
machinery — so instrumentation on the hot execution path costs a dict
lookup and an integer add.  Instrumented components cache the metric
object once (``self._execs = registry.counter("engine.execs")``) and
touch only that on each operation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any

#: Default histogram bucket upper bounds (virtual seconds / sizes); the
#: final implicit bucket is +inf.
DEFAULT_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                   500.0, 1000.0)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (corpus size, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram of observations.

    Args:
        name: metric name.
        buckets: sorted upper bounds; observations above the last bound
            land in an implicit +inf bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count",
                 "minimum", "maximum")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(buckets)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the bucket bound containing rank ``q``."""
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return bound
        return self.maximum

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class MetricsRegistry:
    """Get-or-create registry for all three metric kinds.

    Names are flat dotted strings (``engine.execs``,
    ``driver.ops.ion_alloc``).  Requesting an existing name returns the
    same object; requesting it as a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def with_prefix(self, prefix: str) -> dict[str, Any]:
        """All metrics under ``prefix.``, mapped name → metric object."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {name: metric for name, metric in self._metrics.items()
                if name.startswith(dotted)}

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable dump of every metric."""
        return {name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)}
