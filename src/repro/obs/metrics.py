"""Always-on metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately minimal — flat string names, no label
machinery — so instrumentation on the hot execution path costs a dict
lookup and an integer add.  Instrumented components cache the metric
object once (``self._execs = registry.counter("engine.execs")``) and
touch only that on each operation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any

#: Default histogram bucket upper bounds (virtual seconds / sizes); the
#: final implicit bucket is +inf.
DEFAULT_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                   500.0, 1000.0)

#: Quantiles surfaced by :meth:`Histogram.summary` and downstream
#: latency reports (``repro compare``, ``CampaignResult.latency``).
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def bucket_quantile(bounds, counts, q: float,
                    minimum: float, maximum: float) -> float:
    """Quantile ``q`` of a fixed-bucket histogram, interpolated.

    Observations inside the containing bucket are assumed uniformly
    distributed, so the estimate is the linear position of rank ``q``
    between the bucket's edges — not the upper bound, which biases
    every quantile high (p50 of uniform data landed a full bucket
    above the true median before interpolation).

    Edges are clamped to the observed ``minimum``/``maximum``: the
    first bucket's lower edge is the observed minimum (the histogram
    has no lower bound of its own), and the implicit +inf bucket
    interpolates between the last finite bound and the observed
    maximum, so extreme quantiles stay inside the data's range.

    Args:
        bounds: sorted finite bucket upper bounds.
        counts: ``len(bounds) + 1`` observation counts; the final
            entry is the implicit +inf bucket.
        q: quantile in ``[0, 1]`` (clamped).
        minimum: smallest observed value.
        maximum: largest observed value.

    Returns:
        0.0 for an empty histogram.
    """
    total = sum(counts)
    if not total:
        return 0.0
    q = min(max(q, 0.0), 1.0)
    rank = q * total
    if rank <= 0:
        return minimum
    cumulative = 0
    lower = minimum
    for index, count in enumerate(counts):
        upper = bounds[index] if index < len(bounds) else maximum
        upper = min(upper, maximum)
        if count:
            if cumulative + count >= rank:
                lower = max(lower, minimum)
                if upper <= lower:
                    return upper
                within = (rank - cumulative) / count
                return lower + (upper - lower) * within
            cumulative += count
        lower = max(upper, lower)
    return maximum


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (corpus size, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram of observations.

    Args:
        name: metric name.
        buckets: sorted upper bounds; observations above the last bound
            land in an implicit +inf bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count",
                 "minimum", "maximum")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(buckets)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile ``q``, interpolated within its bucket.

        Returns 0.0 for an empty histogram; see :func:`bucket_quantile`
        for the interpolation and clamping rules.
        """
        if not self.count:
            return 0.0
        return bucket_quantile(self.bounds, self.counts, q,
                               self.minimum, self.maximum)

    def summary(self, quantiles: tuple[float, ...] = SUMMARY_QUANTILES,
                digits: int = 4) -> dict[str, float]:
        """Compact quantile summary (``{"p50": …, "p90": …, …}``).

        Includes ``count``, ``mean`` and ``max`` alongside the
        requested quantiles; empty histograms summarize to ``{}`` so
        callers can treat "no summary" and "no data" uniformly.
        """
        if not self.count:
            return {}
        summary: dict[str, float] = {"count": self.count,
                                     "mean": round(self.mean(), digits),
                                     "max": round(self.maximum, digits)}
        for q in quantiles:
            label = f"{q * 100:g}".replace(".", "_")
            summary[f"p{label}"] = round(self.quantile(q), digits)
        return summary

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class MetricsRegistry:
    """Get-or-create registry for all three metric kinds.

    Names are flat dotted strings (``engine.execs``,
    ``driver.ops.ion_alloc``).  Requesting an existing name returns the
    same object; requesting it as a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def with_prefix(self, prefix: str) -> dict[str, Any]:
        """All metrics under ``prefix.``, mapped name → metric object."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {name: metric for name, metric in self._metrics.items()
                if name.startswith(dotted)}

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable dump of every metric."""
        return {name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)}
