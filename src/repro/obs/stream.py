"""Live telemetry streaming: the ``repro watch`` feed (DESIGN §10).

A :class:`StreamSink` turns a running campaign into a tiny localhost
telemetry server: monitor snapshots, fleet scheduler progress events,
and bug arrivals are published to every attached ``repro watch``
client as length-prefixed ``DFRW`` frames carrying JSON record
payloads (:func:`~repro.fleet.remote.framing.pack_record`).

The cardinal rule is that **watchers can never slow the fuzz loop**:

* ``emit()`` does no socket I/O.  It serializes the record once and
  enqueues the frame on each client's *bounded* send queue with
  ``put_nowait``; a slow or stalled client overflows its own queue and
  the frame is **dropped and counted** (``obs.stream.dropped``) —
  never waited on.  A dedicated sender thread per client drains the
  queue.
* Dropping is per-client: one wedged watcher loses frames while a
  healthy one alongside it receives everything.
* File telemetry is unaffected: the sink only ever sees *copies* of
  the records the JSONL sinks write, so artifacts are byte-identical
  with streaming on or off.

Every streamed record carries both clocks: ``t`` (virtual seconds,
deterministic, already present on snapshots/events) and ``wall``
(``time.time()`` stamped at emit, for dashboards).  The wall stamp
exists *only* on the streamed copy — recorded artifacts stay
deterministic and replayable.

A new client first receives a ``meta``/``hello`` record and the sticky
header (campaign announcements), then the live feed from the next
record onward — reconnecting mid-campaign resumes at the next
snapshot, it does not replay history.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
import time
from typing import Any, Callable, Iterator

from repro.fleet.remote.framing import (
    RemoteProtocolError,
    encode_frame,
    pack_record,
    read_frame,
    unpack_record,
)
from repro.fleet.remote.framing import VERSION as FRAME_VERSION
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import Sink

#: Default per-client send-queue bound (records).  Snapshots are rare
#: (one per monitor interval), so even a briefly stalled client rides
#: this out; a truly wedged one overflows it and drops.
DEFAULT_QUEUE_RECORDS = 256
#: Per-frame send budget; a client that cannot accept a frame for this
#: long is disconnected (its queue keeps absorbing drops meanwhile).
_SEND_TIMEOUT = 5.0
#: Sticky header records retained for late joiners.
_MAX_HEADER = 64


def parse_address(spec: str) -> tuple[str, int]:
    """``"host:port"`` (or bare ``"port"``) → ``(host, port)``."""
    text = str(spec).strip()
    host, separator, port_text = text.rpartition(":")
    if not separator:
        host, port_text = "127.0.0.1", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"not a stream address: {spec!r} "
                         f"(expected HOST:PORT)") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"stream port out of range: {spec!r}")
    return host, port


class _Client:
    """One attached watcher: socket + bounded queue + sender thread."""

    def __init__(self, conn: socket.socket, peer: str,
                 queue_records: int) -> None:
        self.conn = conn
        self.peer = peer
        self.frames: queue_module.Queue[bytes] = queue_module.Queue(
            maxsize=max(queue_records, 1))
        self.dropped = 0
        self.alive = True
        self.thread: threading.Thread | None = None

    def offer(self, frame: bytes) -> bool:
        """Enqueue without blocking; False (and counted) when full."""
        try:
            self.frames.put_nowait(frame)
            return True
        except queue_module.Full:
            self.dropped += 1
            return False

    def shutdown(self) -> None:
        self.alive = False
        try:
            self.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass


class StreamSink(Sink):
    """Publish telemetry records to live TCP watchers.

    Args:
        host: bind address (loopback by default; the feed is read-only
            JSON but still campaign-internal — keep it on a trusted
            interface).
        port: bind port; 0 picks a free one (see :attr:`address`).
        queue_records: per-client send-queue bound; overflow drops.
        metrics: optional registry receiving ``obs.stream.*`` counters.
        send_buffer: explicit ``SO_SNDBUF`` for client sockets (tests
            shrink it to force the drop path deterministically).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 queue_records: int = DEFAULT_QUEUE_RECORDS,
                 metrics: MetricsRegistry | None = None,
                 send_buffer: int | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue_records = queue_records
        self._send_buffer = send_buffer
        self._lock = threading.Lock()
        self._clients: list[_Client] = []
        self._header: list[bytes] = []
        self._stopping = threading.Event()
        self.delivered = 0
        self.dropped = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="obs-stream-accept", daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Sink protocol
    # ------------------------------------------------------------------

    def emit(self, record: dict[str, Any], sticky: bool = False) -> None:
        """Publish one record to every attached client, never blocking.

        The record is *copied* before the wall-clock stamp is added, so
        a sink tee-ing the same dict into a JSONL file stays
        byte-identical to a no-stream run.  ``sticky`` records are also
        retained and replayed to clients that connect later (campaign
        announcements).
        """
        stamped = dict(record)
        stamped.setdefault("wall", round(time.time(), 6))
        if "t" not in stamped and "clock" in stamped:
            stamped["t"] = stamped["clock"]
        frame = encode_frame(pack_record(stamped))
        with self._lock:
            if sticky:
                if len(self._header) < _MAX_HEADER:
                    self._header.append(frame)
            clients = list(self._clients)
        for client in clients:
            if client.offer(frame):
                self.delivered += 1
            else:
                self.dropped += 1
                self.metrics.counter("obs.stream.dropped").inc()
        self.metrics.counter("obs.stream.records").inc()

    def flush(self) -> None:
        """No-op: queues drain asynchronously; blocking here could
        stall the campaign on a slow watcher, the one forbidden
        behaviour."""

    def close(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            clients = list(self._clients)
            self._clients.clear()
        for client in clients:
            client.shutdown()
            if client.thread is not None:
                client.thread.join(timeout=2.0)
        self._accept_thread.join(timeout=1.0)

    # ------------------------------------------------------------------

    def scoped(self, source: str) -> "ScopedStreamSink":
        """A view of this sink that stamps ``source`` on each record.

        The scoped view is what campaign telemetry holds: its
        ``close()`` is a no-op, so one shared stream server outlives
        the many campaigns of a ``hunt``."""
        return ScopedStreamSink(self, source)

    def stats(self) -> dict[str, Any]:
        """Live counters for the CLI's end-of-run report."""
        with self._lock:
            clients = len(self._clients)
        return {"clients": clients, "delivered": self.delivered,
                "dropped": self.dropped}

    @property
    def client_count(self) -> int:
        with self._lock:
            return len(self._clients)

    # ------------------------------------------------------------------
    # server internals
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            if self._send_buffer is not None:
                conn.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF,
                                self._send_buffer)
            conn.settimeout(_SEND_TIMEOUT)
            client = _Client(conn, "%s:%d" % peer[:2],
                             self._queue_records)
            hello = encode_frame(pack_record({
                "type": "meta", "kind": "hello", "proto": FRAME_VERSION,
                "wall": round(time.time(), 6)}))
            with self._lock:
                # Preload greeting + sticky header, then register for
                # the live feed — a record emitted concurrently lands
                # after the header, preserving order.
                client.offer(hello)
                for frame in self._header:
                    client.offer(frame)
                self._clients.append(client)
            self.metrics.counter("obs.stream.connections").inc()
            client.thread = threading.Thread(
                target=self._send_loop, args=(client,),
                name="obs-stream-send", daemon=True)
            client.thread.start()

    def _send_loop(self, client: _Client) -> None:
        try:
            while client.alive and not self._stopping.is_set():
                try:
                    frame = client.frames.get(timeout=0.2)
                except queue_module.Empty:
                    continue
                client.conn.sendall(frame)
        except OSError:
            pass  # watcher went away (or stalled past the send budget)
        self._drop_client(client)

    def _drop_client(self, client: _Client) -> None:
        client.shutdown()
        with self._lock:
            if client in self._clients:
                self._clients.remove(client)
                self.metrics.counter("obs.stream.disconnects").inc()


class ScopedStreamSink(Sink):
    """A per-campaign view of a shared :class:`StreamSink`.

    Stamps ``source`` (the campaign key) on every record so the watch
    dashboard can keep one row per device, and ignores ``close()`` —
    the server is owned by whoever built it, not by any one campaign's
    telemetry."""

    def __init__(self, stream: StreamSink, source: str) -> None:
        self.stream = stream
        self.source = source

    def emit(self, record: dict[str, Any], sticky: bool = False) -> None:
        scoped = dict(record)
        scoped.setdefault("source", self.source)
        self.stream.emit(scoped, sticky=sticky)

    def scoped(self, source: str) -> "ScopedStreamSink":
        return ScopedStreamSink(self.stream, source)

    def close(self) -> None:  # borrowed reference: never close the server
        pass


# ----------------------------------------------------------------------
# client side (``repro watch``)
# ----------------------------------------------------------------------

class StreamClient:
    """Blocking reader for one stream connection.

    Args:
        address: ``"host:port"`` string or ``(host, port)`` tuple.
        connect_timeout: TCP connect budget in real seconds.
    """

    def __init__(self, address: str | tuple[str, int],
                 connect_timeout: float = 5.0) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self.address = address
        self.connect_timeout = connect_timeout
        self._conn: socket.socket | None = None
        self._closed = False

    def connect(self) -> "StreamClient":
        self._conn = socket.create_connection(
            self.address, timeout=self.connect_timeout)
        self._conn.settimeout(0.5)
        return self

    def records(self, deadline: float | None = None,
                stop: Callable[[], bool] | None = None,
                ) -> Iterator[dict[str, Any]]:
        """Yield records until clean EOF, ``deadline``
        (``time.monotonic()`` instant), or ``stop()`` turns true.

        Stream faults raise :class:`RemoteProtocolError` / ``OSError``
        so callers can distinguish a finished campaign (clean return)
        from a torn connection (reconnect candidate).
        """
        assert self._conn is not None, "connect() first"
        conn = self._conn

        def read(count: int) -> bytes:
            while True:
                if self._closed:
                    return b""
                try:
                    return conn.recv(count)
                except socket.timeout:
                    if deadline is not None \
                            and time.monotonic() >= deadline:
                        raise TimeoutError from None
                    if stop is not None and stop():
                        raise TimeoutError from None
                    continue

        while True:
            try:
                payload = read_frame(read)
            except TimeoutError:
                return
            if payload is None:
                return  # clean EOF: campaign over / server closed
            yield unpack_record(payload)

    def close(self) -> None:
        self._closed = True
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None


__all__ = ["StreamSink", "ScopedStreamSink", "StreamClient",
           "parse_address", "RemoteProtocolError"]
