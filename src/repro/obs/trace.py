"""Structured event trace keyed to the virtual device clock.

Two record shapes flow to the sink:

* **spans** — campaign phases (probe, seed, generate, mutate, execute,
  minimize, triage, reboot) with start clock and virtual duration::

      {"type": "span", "phase": "execute", "t": 12.5, "dur": 4.0, ...}

* **events** — discrete occurrences (new-coverage, crash, corpus-admit,
  relation-decay, dmesg)::

      {"type": "event", "kind": "crash", "t": 16.5, ...}

Timestamps are *virtual seconds* from the device clock, so traces are
fully deterministic for a given seed and can be diffed across runs.
Nested spans (an ``execute`` inside a ``minimize``) each emit their own
record; readers aggregating per-phase time should treat ``minimize`` as
inclusive of its inner executions.
"""

from __future__ import annotations

from typing import Any, Callable

#: Canonical campaign phases, in pipeline order.
PHASES = ("probe", "seed", "generate", "mutate", "execute", "minimize",
          "triage", "reboot")


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **fields) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span; emits its record when the ``with`` block exits."""

    __slots__ = ("_tracer", "_phase", "_fields", "_start", "_depth")

    def __init__(self, tracer: "Tracer", phase: str,
                 fields: dict[str, Any]) -> None:
        self._tracer = tracer
        self._phase = phase
        self._fields = fields

    def __enter__(self) -> "_Span":
        self._start = self._tracer.clock()
        self._depth = self._tracer.depth
        self._tracer.depth += 1
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer.depth -= 1
        end = self._tracer.clock()
        record = {"type": "span", "phase": self._phase,
                  "t": self._start, "dur": end - self._start,
                  "depth": self._depth}
        if self._fields:
            record.update(self._fields)
        self._tracer.sink.emit(record)
        return False

    def note(self, **fields) -> None:
        """Attach extra fields to the span before it closes."""
        self._fields.update(fields)


class Tracer:
    """Span/event emitter bound to a sink and a virtual-clock source.

    Args:
        sink: where records go; a :class:`~repro.obs.sinks.NullSink`
            makes every call near-zero cost.
        clock: zero-argument callable returning the current virtual
            time; bind one with :meth:`bind_clock` once the device
            exists.
    """

    def __init__(self, sink, clock: Callable[[], float] | None = None) -> None:
        self.sink = sink
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.enabled: bool = getattr(sink, "enabled", True)
        #: Current span nesting depth; recorded on each span so readers
        #: can compute exclusive top-level phase breakdowns.
        self.depth = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a device's virtual clock."""
        self.clock = clock

    def span(self, phase: str, **fields):
        """Context manager timing one phase occurrence."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, phase, fields)

    def event(self, kind: str, **fields) -> None:
        """Emit one discrete event at the current virtual time."""
        if not self.enabled:
            return
        record = {"type": "event", "kind": kind, "t": self.clock()}
        if fields:
            record.update(fields)
        self.sink.emit(record)
