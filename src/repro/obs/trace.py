"""Structured event trace keyed to the virtual device clock.

Two record shapes flow to the sink:

* **spans** — campaign phases (probe, seed, generate, mutate, execute,
  minimize, triage, reboot) with start clock and virtual duration::

      {"type": "span", "phase": "execute", "t": 12.5, "dur": 4.0, ...}

* **events** — discrete occurrences (new-coverage, crash, corpus-admit,
  relation-decay, dmesg)::

      {"type": "event", "kind": "crash", "t": 16.5, ...}

Timestamps are *virtual seconds* from the device clock, so traces are
fully deterministic for a given seed and can be diffed across runs.
Nested spans (an ``execute`` inside a ``minimize``) each emit their own
record; readers aggregating per-phase time should treat ``minimize`` as
inclusive of its inner executions.

**Span sampling.** High-frequency spans (one ``execute`` per program at
5k+ execs/sec) can swamp the trace file; a :class:`SamplingPolicy`
records only a configured fraction of each named span/event while the
tracer keeps *exact* per-name counts in the metrics registry
(``trace.spans.<phase>`` / ``trace.spans_dropped.<phase>``), so rate
accounting never degrades.  Sampling decisions come from dedicated
per-name RNG streams seeded from the campaign seed — never from the
campaign RNG or the wall clock — so a sampled trace is a
*deterministic subset* of the unsampled one: same seed + same campaign
⇒ byte-identical sampled JSONL.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Mapping

#: Canonical campaign phases, in pipeline order.
PHASES = ("probe", "seed", "generate", "mutate", "execute", "minimize",
          "triage", "reboot")

#: CLI shorthand → canonical span name (``--trace-sample exec=0.01``).
SAMPLE_ALIASES = {"exec": "execute", "min": "minimize"}


def parse_sample_spec(spec: str) -> dict[str, float]:
    """Parse a ``--trace-sample`` spec into ``{name: rate}``.

    The spec is comma-separated ``name=rate`` pairs
    (``"exec=0.01,mutate=0.1"``); rates must be in ``[0, 1]`` and the
    aliases in :data:`SAMPLE_ALIASES` are canonicalized.  An empty
    spec parses to ``{}`` (no sampling).

    Raises:
        ValueError: malformed pair or out-of-range rate.
    """
    rates: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, separator, value = part.partition("=")
        name = name.strip()
        if not separator or not name:
            raise ValueError(
                f"malformed sample spec {part!r} (expected name=rate)")
        try:
            rate = float(value)
        except ValueError:
            raise ValueError(
                f"malformed sample rate in {part!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"sample rate for {name!r} must be in [0, 1], got {rate}")
        rates[SAMPLE_ALIASES.get(name, name)] = rate
    return rates


class SamplingPolicy:
    """Deterministic keep/drop decisions for named spans and events.

    Each sampled name gets its own ``random.Random`` stream seeded
    from ``(seed, name)`` (string seeding hashes via SHA-512, so the
    stream is identical across processes and platforms).  Decisions
    therefore depend only on the campaign seed and the deterministic
    order of instrumentation calls — the campaign RNG and wall clock
    are never touched, preserving the telemetry-determinism
    guarantees.  Names without a configured rate are always kept.
    """

    def __init__(self, rates: Mapping[str, float], seed: int = 0) -> None:
        self.rates = {name: float(rate) for name, rate in rates.items()}
        self.seed = seed
        self._streams = {name: random.Random(f"trace-sample:{seed}:{name}")
                         for name, rate in self.rates.items()
                         if 0.0 < rate < 1.0}

    def keep(self, name: str) -> bool:
        """Decide whether this occurrence of ``name`` is recorded."""
        rate = self.rates.get(name)
        if rate is None or rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._streams[name].random() < rate

    def to_dict(self) -> dict[str, float]:
        """The configured rates (for artifact metadata)."""
        return dict(sorted(self.rates.items()))


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **fields) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _DroppedSpan:
    """A sampled-out span: tracks depth, emits nothing.

    Depth bookkeeping must stay identical to the unsampled run so the
    ``depth`` field of every *recorded* span matches — that is what
    makes the sampled trace a byte-identical subset.  Stateless per
    entry, so one shared instance per tracer handles nesting.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> "_DroppedSpan":
        self._tracer.depth += 1
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer.depth -= 1
        return False

    def note(self, **fields) -> None:
        pass


class _Span:
    """A live span; emits its record when the ``with`` block exits."""

    __slots__ = ("_tracer", "_phase", "_fields", "_start", "_depth")

    def __init__(self, tracer: "Tracer", phase: str,
                 fields: dict[str, Any]) -> None:
        self._tracer = tracer
        self._phase = phase
        self._fields = fields

    def __enter__(self) -> "_Span":
        self._start = self._tracer.clock()
        self._depth = self._tracer.depth
        self._tracer.depth += 1
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer.depth -= 1
        end = self._tracer.clock()
        record = {"type": "span", "phase": self._phase,
                  "t": self._start, "dur": end - self._start,
                  "depth": self._depth}
        if self._fields:
            record.update(self._fields)
        self._tracer.sink.emit(record)
        return False

    def note(self, **fields) -> None:
        """Attach extra fields to the span before it closes."""
        self._fields.update(fields)


class Tracer:
    """Span/event emitter bound to a sink and a virtual-clock source.

    Args:
        sink: where records go; a :class:`~repro.obs.sinks.NullSink`
            makes every call near-zero cost.
        clock: zero-argument callable returning the current virtual
            time; bind one with :meth:`bind_clock` once the device
            exists.
        sampling: optional :class:`SamplingPolicy`; sampled-out spans
            and events still count in ``metrics`` but emit no record.
        metrics: optional metrics registry for exact per-name span and
            event counts (``trace.spans.<phase>``,
            ``trace.spans_dropped.<phase>``, ``trace.events.<kind>``,
            ``trace.events_dropped.<kind>``) — the rate accounting
            that survives sampling.
    """

    def __init__(self, sink, clock: Callable[[], float] | None = None,
                 sampling: "SamplingPolicy | None" = None,
                 metrics=None) -> None:
        self.sink = sink
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.enabled: bool = getattr(sink, "enabled", True)
        #: Current span nesting depth; recorded on each span so readers
        #: can compute exclusive top-level phase breakdowns.
        self.depth = 0
        self.sampling = sampling
        self._metrics = metrics
        self._dropped_span = _DroppedSpan(self)
        #: name → (total counter, dropped counter), cached so the hot
        #: path pays one dict lookup, not a registry get-or-create.
        self._span_counters: dict[str, tuple] = {}
        self._event_counters: dict[str, tuple] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a device's virtual clock."""
        self.clock = clock

    def _counters(self, cache: dict, family: str, name: str) -> tuple:
        counters = cache.get(name)
        if counters is None:
            counters = (self._metrics.counter(f"trace.{family}.{name}"),
                        self._metrics.counter(
                            f"trace.{family}_dropped.{name}"))
            cache[name] = counters
        return counters

    def span(self, phase: str, **fields):
        """Context manager timing one phase occurrence."""
        if not self.enabled:
            return _NOOP_SPAN
        dropped = None
        if self._metrics is not None:
            total, dropped = self._counters(self._span_counters, "spans",
                                            phase)
            total.inc()
        if self.sampling is not None and not self.sampling.keep(phase):
            if dropped is not None:
                dropped.inc()
            return self._dropped_span
        return _Span(self, phase, fields)

    def event(self, kind: str, **fields) -> None:
        """Emit one discrete event at the current virtual time."""
        if not self.enabled:
            return
        dropped = None
        if self._metrics is not None:
            total, dropped = self._counters(self._event_counters, "events",
                                            kind)
            total.inc()
        if self.sampling is not None and not self.sampling.keep(kind):
            if dropped is not None:
                dropped.inc()
            return
        record = {"type": "event", "kind": kind, "t": self.clock()}
        if fields:
            record.update(fields)
        self.sink.emit(record)
