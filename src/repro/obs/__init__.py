"""Observability layer: metrics, structured traces, campaign monitoring.

The paper's Daemon "maintains persistent campaign artifacts — aggregated
bug ledger, coverage statistics" (§IV-A).  This package is the
reproduction's equivalent of syzkaller's ``/stats`` page: a cheap
always-on metrics registry, a structured JSONL event trace keyed to the
*virtual device clock*, and a campaign monitor emitting periodic
snapshots (exec/s, coverage growth, corpus size, reboots) through a
pluggable sink.

Everything is designed so that a telemetry-disabled campaign is
behaviourally identical to one that never imported this package: no
virtual time is charged, no RNG is consumed, and the no-op sink path is
near-zero cost.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.monitor import CampaignMonitor, Snapshot
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    StdoutSink,
    TeeSink,
    open_sink,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import PHASES, Tracer

# repro.obs.stream / repro.obs.watch are deliberately NOT imported
# eagerly: they pull in socket + wire-framing machinery that the
# disabled-telemetry path never needs.  ``open_sink("stream:...")``
# loads them on demand.

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "CampaignMonitor", "Snapshot",
    "Sink", "JsonlSink", "MemorySink", "NullSink", "StdoutSink",
    "TeeSink", "open_sink",
    "Telemetry", "Tracer", "PHASES",
]
