"""Observability layer: metrics, structured traces, campaign monitoring.

The paper's Daemon "maintains persistent campaign artifacts — aggregated
bug ledger, coverage statistics" (§IV-A).  This package is the
reproduction's equivalent of syzkaller's ``/stats`` page: a cheap
always-on metrics registry, a structured JSONL event trace keyed to the
*virtual device clock*, and a campaign monitor emitting periodic
snapshots (exec/s, coverage growth, corpus size, reboots) through a
pluggable sink.

Everything is designed so that a telemetry-disabled campaign is
behaviourally identical to one that never imported this package: no
virtual time is charged, no RNG is consumed, and the no-op sink path is
near-zero cost.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.monitor import CampaignMonitor, Snapshot
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, StdoutSink
from repro.obs.telemetry import Telemetry
from repro.obs.trace import PHASES, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "CampaignMonitor", "Snapshot",
    "JsonlSink", "MemorySink", "NullSink", "StdoutSink",
    "Telemetry", "Tracer", "PHASES",
]
