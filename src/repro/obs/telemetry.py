"""The telemetry facade: one object bundling metrics + trace + monitor.

Construction decides the cost model:

* ``Telemetry.disabled()`` (or constructing with no directory and no
  sinks) wires everything to :class:`~repro.obs.sinks.NullSink`; every
  instrumentation call short-circuits, so an uninstrumented campaign
  and a disabled-telemetry campaign behave identically.
* ``Telemetry(directory=...)`` records ``trace.jsonl`` (spans +
  events), ``snapshots.jsonl`` (monitor samples) and, on close,
  ``metrics.json`` — the layout ``repro stats`` reads back.

Telemetry never touches the virtual clock or the campaign RNG: enabling
it cannot change fuzzing behaviour, only observe it.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.obs.bridge import DeviceBridge
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import CampaignMonitor
from repro.obs.sinks import JsonlSink, NullSink, Sink, StdoutSink, TeeSink
from repro.obs.trace import Tracer

TRACE_FILE = "trace.jsonl"
SNAPSHOT_FILE = "snapshots.jsonl"
METRICS_FILE = "metrics.json"
#: Fleet-level scheduler summary, at the *root* of a fleet telemetry
#: directory (the per-campaign files above live one level below it).
FLEET_FILE = "fleet.json"


class _BorrowedSink(Sink):
    """Forwarding view that shields a shared sink from ``close()``.

    A stream server outlives any one campaign's telemetry; tee-ing it
    behind this wrapper lets ``Telemetry.close()`` close its own file
    sinks without tearing the server down."""

    def __init__(self, sink) -> None:
        self.sink = sink
        self.enabled = getattr(sink, "enabled", True)

    def emit(self, record: dict[str, Any]) -> None:
        self.sink.emit(record)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        pass


class Telemetry:
    """Telemetry context for one campaign (or one fleet member).

    Args:
        directory: when set, record the JSONL trace + snapshots there.
        trace_sink: explicit span/event sink (overrides ``directory``).
        snapshot_sink: explicit monitor sink (overrides ``directory``).
        interval: virtual seconds between monitor snapshots.
        echo: also print each snapshot to stdout (interactive runs).
        max_trace_bytes: size-based ``trace.jsonl`` rotation threshold;
            full segments shelve to ``trace.1.jsonl``, ``trace.2.jsonl``
            … (None: one unbounded file).
        stream: live-telemetry sink (usually a
            ``StreamSink.scoped(key)`` view); monitor snapshots are
            tee'd into it and campaign events go through
            :meth:`stream_record`.  The stream sink is *borrowed*: it
            is never closed here, and the JSONL artifacts it rides
            along with stay byte-identical whether it is attached or
            not.
        sampling: optional
            :class:`~repro.obs.trace.SamplingPolicy` bounding
            high-frequency trace spans; exact span/event counts stay
            in the metrics registry regardless.  Build one *per
            campaign* (its RNG streams are stateful) seeded from the
            campaign seed so sampled traces stay deterministic.
    """

    def __init__(self, directory: str | pathlib.Path | None = None,
                 trace_sink=None, snapshot_sink=None,
                 interval: float = 1800.0, echo: bool = False,
                 max_trace_bytes: int | None = None,
                 stream=None, sampling=None) -> None:
        self.directory = pathlib.Path(directory) if directory else None
        if stream is not None and not getattr(stream, "enabled", True):
            stream = None
        self.stream = stream
        if trace_sink is None:
            trace_sink = (JsonlSink(self.directory / TRACE_FILE,
                                    max_bytes=max_trace_bytes)
                          if self.directory else NullSink())
        if snapshot_sink is None:
            snapshot_sink = (JsonlSink(self.directory / SNAPSHOT_FILE)
                             if self.directory else NullSink())
        if echo:
            snapshot_sink = TeeSink(snapshot_sink, StdoutSink())
        if stream is not None:
            # TeeSink drops disabled members, so a stream-only
            # Telemetry (no directory) still samples snapshots.  The
            # borrowed wrapper keeps monitor-sink close() from
            # tearing down a stream server shared across campaigns.
            snapshot_sink = TeeSink(snapshot_sink, _BorrowedSink(stream))
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(trace_sink, sampling=sampling,
                             metrics=self.metrics)
        self.monitor = CampaignMonitor(snapshot_sink, interval)
        self.enabled: bool = self.tracer.enabled or self.monitor.enabled
        self._bridges: list[DeviceBridge] = []
        self._closed = False

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The no-op context used when no telemetry was requested."""
        return cls()

    # ------------------------------------------------------------------

    def attach_device(self, device) -> DeviceBridge | None:
        """Bind the virtual clock and attach kernel/dmesg probes."""
        if not self.enabled:
            return None
        self.tracer.bind_clock(lambda: device.clock)
        bridge = DeviceBridge(device, self.metrics, self.tracer)
        self._bridges.append(bridge)
        return bridge

    def poll(self) -> None:
        """Drain bridged device channels (cheap; call at sample points)."""
        for bridge in self._bridges:
            bridge.poll_dmesg()

    def stream_record(self, record: dict[str, Any],
                      sticky: bool = False) -> None:
        """Publish one event to live watchers only (never to files).

        No-op without an attached stream, so instrumented call sites
        (campaign start, bug arrivals) cost one attribute check on the
        recorded-artifacts path — determinism and byte-identity of the
        JSONL outputs are untouched.
        """
        if self.stream is None:
            return
        try:
            self.stream.emit(record, sticky=sticky)
        except TypeError:  # plain Sink without sticky support
            self.stream.emit(record)

    # ------------------------------------------------------------------

    def rollup(self) -> dict[str, Any]:
        """Campaign aggregate (monitor rollup + headline metrics)."""
        return self.monitor.rollup()

    def close(self) -> None:
        """Flush sinks, persist the metrics dump, detach probes."""
        if self._closed:
            return
        self._closed = True
        for bridge in self._bridges:
            bridge.poll_dmesg()
            bridge.detach()
        if self.directory is not None and self.enabled:
            self.directory.mkdir(parents=True, exist_ok=True)
            (self.directory / METRICS_FILE).write_text(
                json.dumps(self.metrics.snapshot(), indent=1,
                           sort_keys=True))
        self.tracer.sink.close()
        self.monitor.sink.close()
