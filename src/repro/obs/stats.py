"""Reader/renderer for recorded telemetry directories.

Loads the layout :class:`~repro.obs.telemetry.Telemetry` writes
(``trace.jsonl``, ``snapshots.jsonl``, ``metrics.json``), aggregates it
into a :class:`TraceSummary`, and renders the ``repro stats`` terminal
view: headline rates, an exec/s sparkline, the per-phase virtual-time
breakdown, and the top drivers by attributed virtual-time cost.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.stats import histogram_summary
from repro.analysis.tables import render_table
from repro.obs.telemetry import (
    FLEET_FILE,
    METRICS_FILE,
    SNAPSHOT_FILE,
    TRACE_FILE,
)

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass
class PhaseStat:
    """Aggregated span timing for one campaign phase."""

    count: int = 0
    virtual_seconds: float = 0.0
    #: Time from depth-0 spans only (excludes e.g. execute-inside-
    #: minimize double counting).
    exclusive_seconds: float = 0.0


@dataclass
class TraceSummary:
    """Everything aggregated out of one telemetry directory."""

    directory: str = ""
    phases: dict[str, PhaseStat] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    snapshots: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def total_phase_seconds(self) -> float:
        """Accounted top-level virtual time across all phases."""
        return sum(p.exclusive_seconds for p in self.phases.values())

    def phase_shares(self) -> list[tuple[str, PhaseStat, float]]:
        """Phases with their share of accounted virtual time, sorted
        by descending share."""
        total = self.total_phase_seconds()
        rows = [(name, stat,
                 stat.exclusive_seconds / total * 100.0 if total else 0.0)
                for name, stat in self.phases.items()]
        rows.sort(key=lambda r: -r[2])
        return rows

    def driver_costs(self) -> list[tuple[str, float]]:
        """Drivers by attributed virtual-time cost, descending."""
        costs = []
        for name, metric in self.metrics.items():
            if name.startswith("driver.vtime."):
                costs.append((name.removeprefix("driver.vtime."),
                              float(metric.get("value", 0.0))))
        costs.sort(key=lambda c: (-c[1], c[0]))
        return costs

    def exec_rates(self) -> list[float]:
        """exec/s series over the campaign's snapshots."""
        return [float(s.get("execs_per_sec", 0.0))
                for s in self.snapshots[1:]]

    def coverage_series(self) -> list[float]:
        return [float(s.get("kernel_coverage", 0)) for s in self.snapshots]

    def latency_summaries(self) -> dict[str, dict[str, float]]:
        """Broker wire-latency quantiles, from metrics or snapshots.

        Prefers recomputing from the ``metrics.json`` histogram dumps
        (``broker.exec_vtime`` / ``broker.payload_bytes``); a stream
        capture has no metrics file, so the final snapshot's cumulative
        ``latency`` block stands in.
        """
        summaries: dict[str, dict[str, float]] = {}
        for name, label in (("broker.exec_vtime", "exec_vtime"),
                            ("broker.payload_bytes", "payload_bytes")):
            stats = histogram_summary(self.metrics.get(name) or {})
            if stats:
                summaries[label] = stats
        if not summaries and self.snapshots:
            last = self.snapshots[-1].get("latency") or {}
            summaries = {name: dict(stats)
                         for name, stats in sorted(last.items())}
        return summaries

    def sampled_spans(self) -> dict[str, tuple[int, int]]:
        """Per-phase ``(total, dropped)`` span counts under sampling.

        Only phases that actually dropped records appear; the totals
        are the *exact* counts the tracer kept in the metrics registry,
        which is what makes rate accounting survive ``--trace-sample``.
        """
        sampled: dict[str, tuple[int, int]] = {}
        prefix = "trace.spans_dropped."
        for name, metric in self.metrics.items():
            if not name.startswith(prefix):
                continue
            dropped = int(metric.get("value", 0))
            if not dropped:
                continue
            phase = name.removeprefix(prefix)
            total_metric = self.metrics.get(f"trace.spans.{phase}") or {}
            sampled[phase] = (int(total_metric.get("value", 0)), dropped)
        return sampled


def _read_jsonl(path: pathlib.Path) -> list[dict[str, Any]]:
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # tolerate a torn final line from a killed campaign
    return records


def trace_segments(directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Trace files of one campaign in chronological order.

    Size-based rotation shelves full segments as ``trace.1.jsonl``,
    ``trace.2.jsonl``, … (ascending index = older), with the live tail
    in ``trace.jsonl``; replay order is the rotated segments by index,
    then the tail.
    """
    path = pathlib.Path(directory)
    stem = pathlib.Path(TRACE_FILE).stem
    suffix = pathlib.Path(TRACE_FILE).suffix
    rotated = []
    for candidate in path.glob(f"{stem}.*{suffix}"):
        index = candidate.name[len(stem) + 1:-len(suffix)]
        if index.isdigit():
            rotated.append((int(index), candidate))
    ordered = [segment for _, segment in sorted(rotated)]
    tail = path / TRACE_FILE
    if tail.exists():
        ordered.append(tail)
    return ordered


def load_trace_dir(directory: str | pathlib.Path) -> TraceSummary:
    """Aggregate one telemetry directory into a :class:`TraceSummary`."""
    path = pathlib.Path(directory)
    summary = TraceSummary(directory=str(path))
    for segment in trace_segments(path):
        _fold_trace(summary, segment)
    summary.snapshots = _read_jsonl(path / SNAPSHOT_FILE)
    metrics_file = path / METRICS_FILE
    if metrics_file.exists():
        try:
            summary.metrics = json.loads(metrics_file.read_text())
        except json.JSONDecodeError:
            pass  # partial write from a killed campaign
    return summary


def _fold_trace(summary: TraceSummary, segment: pathlib.Path) -> None:
    for record in _read_jsonl(segment):
        if record.get("type") == "span":
            stat = summary.phases.setdefault(record.get("phase", "?"),
                                             PhaseStat())
            stat.count += 1
            duration = float(record.get("dur", 0.0))
            stat.virtual_seconds += duration
            if record.get("depth", 0) == 0:
                stat.exclusive_seconds += duration
        elif record.get("type") == "event":
            kind = record.get("kind", "?")
            summary.events[kind] = summary.events.get(kind, 0) + 1


def load_stream_file(path: str | pathlib.Path) -> list[TraceSummary]:
    """Fold a ``repro watch --sse`` NDJSON capture into summaries.

    The capture interleaves records from every streaming campaign;
    they are regrouped by their ``source`` (falling back to ``key``,
    then a single anonymous campaign) into one :class:`TraceSummary`
    each, so ``repro stats capture.ndjson`` renders the same
    sparkline view as a recorded telemetry directory.  Returns ``[]``
    when the file holds no snapshot/bug records at all.
    """
    path = pathlib.Path(path)
    summaries: dict[str, TraceSummary] = {}

    def summary_for(record: dict[str, Any]) -> TraceSummary:
        source = str(record.get("source") or record.get("key")
                     or "campaign")
        if source not in summaries:
            summaries[source] = TraceSummary(
                directory=f"{path} [{source}]")
        return summaries[source]

    for record in _read_jsonl(path):
        record_type = record.get("type")
        if record_type == "snapshot":
            summary_for(record).snapshots.append(record)
        elif record_type in ("bug", "crash"):
            events = summary_for(record).events
            events["crash"] = events.get("crash", 0) + 1
    return [summaries[source] for source in sorted(summaries)]


def _holds_telemetry(path: pathlib.Path) -> bool:
    names = (TRACE_FILE, SNAPSHOT_FILE, METRICS_FILE)
    return (any((path / name).exists() for name in names)
            or bool(trace_segments(path)))


def find_trace_dirs(directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Telemetry directories at ``directory`` or one level below it."""
    path = pathlib.Path(directory)
    if _holds_telemetry(path):
        return [path]
    if not path.is_dir():
        return []
    return sorted(child for child in path.iterdir()
                  if child.is_dir() and _holds_telemetry(child))


def load_fleet_summary(
        directory: str | pathlib.Path) -> dict[str, Any] | None:
    """The scheduler's ``fleet.json`` at a fleet telemetry root."""
    path = pathlib.Path(directory) / FLEET_FILE
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def render_fleet_summary(summary: dict[str, Any]) -> str:
    """Terminal view of a fleet run: job counts, parallel efficiency."""
    lines = ["# Fleet", ""]
    lines.append(
        f"{summary.get('jobs', 0)} job(s) on "
        f"{summary.get('workers', 0)} worker(s): "
        f"{summary.get('completed', 0)} completed, "
        f"{summary.get('retried', 0)} retried, "
        f"{summary.get('failed', 0)} failed")
    wall = float(summary.get("wall_seconds", 0.0))
    worker_wall = float(summary.get("worker_wall_seconds", 0.0))
    virtual = float(summary.get("virtual_seconds", 0.0))
    lines.append(
        f"wall {wall:.2f}s, worker-wall {worker_wall:.2f}s, "
        f"virtual {virtual:.0f}s "
        f"({virtual / wall:.0f}x virtual/wall)" if wall > 0 else
        f"wall {wall:.2f}s")
    lines.append(
        f"parallel speedup {summary.get('speedup', 0.0):.2f}x, "
        f"efficiency {summary.get('efficiency', 0.0) * 100:.0f}%")
    per_worker = summary.get("per_worker") or {}
    if per_worker:
        rows = [[f"w{worker}", stats.get("jobs", 0),
                 stats.get("executions", 0),
                 f"{stats.get('wall_seconds', 0.0):.2f}",
                 f"{stats.get('execs_per_sec', 0.0):.1f}"]
                for worker, stats in sorted(per_worker.items())]
        lines.append("")
        lines.append(render_table(
            ["worker", "jobs", "execs", "wall s", "exec/s"], rows,
            title="Per-worker throughput (real time)"))
    lines.append("")
    return "\n".join(lines)


def sparkline(values: list[float], width: int = 48) -> str:
    """Render a series as a unicode block sparkline."""
    if not values:
        return "(no samples)"
    if len(values) > width:
        # Downsample by averaging fixed-size chunks.
        chunk = len(values) / width
        values = [sum(values[int(i * chunk):max(int((i + 1) * chunk),
                                                int(i * chunk) + 1)])
                  / max(int((i + 1) * chunk) - int(i * chunk), 1)
                  for i in range(width)]
    top = max(values)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    return "".join(
        _SPARK_LEVELS[min(int(v / top * (len(_SPARK_LEVELS) - 1)),
                          len(_SPARK_LEVELS) - 1)]
        for v in values)


def render_summary(summary: TraceSummary) -> str:
    """The ``repro stats`` terminal view for one telemetry directory."""
    lines = [f"# Telemetry: {summary.directory}", ""]

    if summary.snapshots:
        last = summary.snapshots[-1]
        hours = float(last.get("t", 0.0)) / 3600.0
        rates = summary.exec_rates()
        mean_rate = sum(rates) / len(rates) if rates else 0.0
        lines.append(
            f"{hours:.1f} virtual hours, "
            f"{last.get('executions', 0)} executions "
            f"({mean_rate:.2f} exec/s mean), "
            f"coverage {last.get('kernel_coverage', 0)}, "
            f"corpus {last.get('corpus_size', 0)}, "
            f"{last.get('reboots', 0)} reboot(s), "
            f"{last.get('bugs', 0)} bug(s)")
        lines.append(f"exec/s   {sparkline(rates)}")
        lines.append(f"coverage {sparkline(summary.coverage_series())}")
        lines.append("")

    if summary.phases:
        rows = [[name, stat.count, f"{stat.virtual_seconds:.0f}",
                 f"{stat.exclusive_seconds:.0f}", f"{share:.1f}%"]
                for name, stat, share in summary.phase_shares()]
        lines.append(render_table(
            ["phase", "spans", "vsec", "vsec(excl)", "share"], rows,
            title="Virtual time by campaign phase"))
        lines.append("")

    sampled = summary.sampled_spans()
    if sampled:
        parts = [f"{phase} {total - dropped}/{total} recorded"
                 for phase, (total, dropped) in sorted(sampled.items())]
        lines.append("span sampling active: " + ", ".join(parts)
                     + " (counts above are exact; recorded spans are "
                       "a deterministic subset)")
        lines.append("")

    latency = summary.latency_summaries()
    if latency:
        rows = [[name, int(stats.get("count", 0)),
                 f"{stats.get('mean', 0.0):g}",
                 f"{stats.get('p50', 0.0):g}",
                 f"{stats.get('p90', 0.0):g}",
                 f"{stats.get('p99', 0.0):g}",
                 f"{stats.get('max', 0.0):g}"]
                for name, stats in sorted(latency.items())]
        lines.append(render_table(
            ["metric", "count", "mean", "p50", "p90", "p99", "max"],
            rows, title="Wire latency quantiles"))
        lines.append("")

    drivers = summary.driver_costs()
    if drivers:
        rows = [[name, f"{cost:.0f}"] for name, cost in drivers[:5]]
        lines.append(render_table(
            ["driver", "attributed vsec"], rows,
            title="Top drivers by virtual-time cost"))
        lines.append("")

    if summary.events:
        rows = [[kind, count]
                for kind, count in sorted(summary.events.items())]
        lines.append(render_table(["event", "count"], rows,
                                  title="Events"))
        lines.append("")
    if len(lines) == 2:
        lines.append("(no telemetry records found)")
    return "\n".join(lines)
