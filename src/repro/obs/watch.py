"""The ``repro watch`` live dashboard: state folding + rendering.

:class:`WatchState` folds the stream of records from a
:class:`~repro.obs.stream.StreamClient` into a per-source (campaign
key / device) table; :func:`render_dashboard` turns that state into
the terminal view — one row per device with exec-rate and coverage
sparklines, a fleet rollup footer, and the most recent bug arrivals.
:func:`run_watch` is the CLI driver, including the ``--sse``
newline-delimited-JSON mode and bounded reconnect-on-tear logic.

All numbers shown are *virtual-time* figures from the campaign
(deterministic, replayable); the wall-clock stamps on each record are
used only for the "last update" staleness column.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

from repro.analysis.tables import render_table
from repro.obs.stats import render_fleet_summary, sparkline

#: History depth for the per-source sparklines.
_HISTORY = 96
#: Recent-bug lines shown in the footer.
_MAX_BUGS = 8


@dataclass
class SourceState:
    """Live view of one campaign (one dashboard row)."""

    source: str
    device: str = ""
    tool: str = ""
    status: str = "running"
    t: float = 0.0
    executions: int = 0
    execs_per_sec: float = 0.0
    kernel_coverage: int = 0
    corpus_size: int = 0
    reboots: int = 0
    bugs: int = 0
    wall: float = 0.0
    rate_history: list[float] = field(default_factory=list)
    coverage_history: list[float] = field(default_factory=list)

    def _remember(self, rate: float, coverage: float) -> None:
        self.rate_history.append(rate)
        self.coverage_history.append(coverage)
        del self.rate_history[:-_HISTORY]
        del self.coverage_history[:-_HISTORY]

    def apply_snapshot(self, record: dict[str, Any]) -> None:
        self.t = float(record.get("t", self.t))
        self.executions = int(record.get("executions", self.executions))
        self.execs_per_sec = float(
            record.get("execs_per_sec", self.execs_per_sec))
        self.kernel_coverage = int(
            record.get("kernel_coverage", self.kernel_coverage))
        self.corpus_size = int(record.get("corpus_size", self.corpus_size))
        self.reboots = int(record.get("reboots", self.reboots))
        self.bugs = int(record.get("bugs", self.bugs))
        self.wall = float(record.get("wall", self.wall))
        self._remember(self.execs_per_sec, float(self.kernel_coverage))

    def apply_fleet_event(self, record: dict[str, Any]) -> None:
        kind = record.get("kind", "")
        if kind == "start":
            self.status = "running"
            worker = record.get("worker")
            if worker is not None:
                self.status = f"running w{worker}"
        elif kind == "hb":
            previous_execs, previous_t = self.executions, self.t
            self.executions = int(record.get("executions", self.executions))
            coverage = int(record.get("coverage",
                                      self.kernel_coverage))
            self.kernel_coverage = coverage
            clock = float(record.get("clock", self.t))
            if clock > previous_t:
                # Heartbeats carry totals, not rates: derive one.
                self.execs_per_sec = ((self.executions - previous_execs)
                                      / (clock - previous_t))
            self.t = clock
            self._remember(self.execs_per_sec, float(coverage))
        elif kind == "done":
            self.status = "done"
            self.executions = int(record.get("executions", self.executions))
            self.kernel_coverage = int(
                record.get("coverage", self.kernel_coverage))
            self.bugs = int(record.get("bugs", self.bugs))
        elif kind == "retry":
            self.status = f"retry {record.get('attempt', '?')}"
        elif kind == "fail":
            self.status = "FAILED"
        elif kind == "worker_lost":
            self.status = "worker lost"
        self.wall = float(record.get("wall", self.wall))


@dataclass
class WatchState:
    """Everything the dashboard knows, folded from the record stream."""

    sources: dict[str, SourceState] = field(default_factory=dict)
    bug_log: list[dict[str, Any]] = field(default_factory=list)
    fleet_summary: dict[str, Any] = field(default_factory=dict)
    hello: dict[str, Any] = field(default_factory=dict)
    records_seen: int = 0
    by_type: dict[str, int] = field(default_factory=dict)

    def _source(self, record: dict[str, Any]) -> SourceState:
        name = str(record.get("source") or record.get("key")
                   or "campaign")
        if name not in self.sources:
            self.sources[name] = SourceState(source=name)
        return self.sources[name]

    def apply(self, record: dict[str, Any]) -> None:
        """Fold one stream record into the dashboard state."""
        self.records_seen += 1
        record_type = str(record.get("type", ""))
        self.by_type[record_type] = self.by_type.get(record_type, 0) + 1
        if record_type == "snapshot":
            self._source(record).apply_snapshot(record)
        elif record_type == "fleet":
            self._source(record).apply_fleet_event(record)
        elif record_type == "fleet-summary":
            self.fleet_summary = {
                k: v for k, v in record.items()
                if k not in ("type", "wall", "source")}
        elif record_type == "bug":
            self.bug_log.append(record)
            del self.bug_log[:-_MAX_BUGS * 4]
            source = self._source(record)
            source.bugs = max(source.bugs + 1,
                              int(record.get("total", 0)))
        elif record_type == "campaign":
            source = self._source(record)
            source.device = str(record.get("device", source.device))
            source.tool = str(record.get("tool", source.tool))
        elif record_type == "meta":
            self.hello = dict(record)

    # ------------------------------------------------------------------

    def rollup(self) -> dict[str, int | float]:
        """Fleet-wide totals across every source row."""
        rows = list(self.sources.values())
        return {
            "campaigns": len(rows),
            "executions": sum(r.executions for r in rows),
            "kernel_coverage": sum(r.kernel_coverage for r in rows),
            "bugs": sum(r.bugs for r in rows),
            "reboots": sum(r.reboots for r in rows),
        }


def _age(wall: float, now: float) -> str:
    if wall <= 0:
        return "-"
    seconds = max(now - wall, 0.0)
    if seconds < 120:
        return f"{seconds:.0f}s"
    return f"{seconds / 60:.1f}m"


def render_dashboard(state: WatchState, width: int = 100) -> str:
    """The terminal dashboard for the current watch state."""
    now = time.time()
    lines = ["# repro watch — live campaign telemetry", ""]
    if not state.sources:
        lines.append("(waiting for snapshots ... "
                     f"{state.records_seen} record(s) so far)")
        return "\n".join(lines)
    spark_width = max(min(width // 5, 24), 8)
    rows = []
    for name in sorted(state.sources):
        source = state.sources[name]
        rows.append([
            name,
            source.device or source.tool or "-",
            source.status,
            f"{source.t / 3600.0:.2f}",
            f"{source.executions}",
            f"{source.execs_per_sec:.1f}",
            sparkline(source.rate_history, width=spark_width),
            f"{source.kernel_coverage}",
            sparkline(source.coverage_history, width=spark_width),
            f"{source.bugs}",
            _age(source.wall, now),
        ])
    lines.append(render_table(
        ["campaign", "device", "status", "vh", "execs", "exec/s",
         "rate", "cov", "growth", "bugs", "age"], rows))
    rollup = state.rollup()
    lines.append("")
    lines.append(
        f"fleet: {rollup['campaigns']} campaign(s), "
        f"{rollup['executions']} execs, "
        f"{rollup['kernel_coverage']} kernel cov (summed), "
        f"{rollup['bugs']} bug(s), {rollup['reboots']} reboot(s)")
    if state.fleet_summary:
        lines.append("")
        lines.append(render_fleet_summary(state.fleet_summary))
    if state.bug_log:
        lines.append("")
        lines.append("recent bugs:")
        for bug in state.bug_log[-_MAX_BUGS:]:
            source = bug.get("source", "?")
            clock = float(bug.get("t", 0.0))
            lines.append(f"  [{source} @ {clock / 3600.0:.2f}vh] "
                         f"{bug.get('title', '(untitled)')}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI driver
# ----------------------------------------------------------------------

def run_watch(address: str, *, sse: bool = False, interval: float = 1.0,
              duration: float = 0.0, max_records: int = 0,
              follow: bool = False, connect_timeout: float = 5.0,
              reconnects: int = 5, out: TextIO | None = None,
              clear: bool | None = None,
              stop: Callable[[], bool] | None = None) -> int:
    """Attach to a ``--stream`` campaign and render it until it ends.

    Args:
        address: ``host:port`` of the campaign's stream server.
        sse: emit newline-delimited JSON records instead of the
            dashboard (for piping into external UIs).
        interval: minimum real seconds between dashboard redraws.
        duration: stop after this many real seconds (0 = until the
            stream ends).
        max_records: stop after this many records (0 = unlimited).
        follow: reconnect and keep watching after a clean stream end.
        connect_timeout / reconnects: connection budget; a torn
            connection mid-campaign is always retried (resuming from
            the next record), ``reconnects`` bounds consecutive
            failures.
        out: output stream (defaults to stdout).
        clear: clear the screen between redraws; default auto-detects
            a TTY.
        stop: optional callable polled between reads; truthy = exit.

    Returns a process exit code: 0 once any records were received,
    1 when the server could never be reached.
    """
    from repro.obs.stream import StreamClient

    out = out if out is not None else sys.stdout
    if clear is None:
        clear = (not sse) and out.isatty()
    state = WatchState()
    deadline = time.monotonic() + duration if duration > 0 else None
    received = 0
    failures = 0
    last_draw = 0.0

    def expired() -> bool:
        if deadline is not None and time.monotonic() >= deadline:
            return True
        return bool(stop and stop())

    def draw(force: bool = False) -> None:
        nonlocal last_draw
        if sse:
            return
        now = time.monotonic()
        if not force and now - last_draw < interval:
            return
        last_draw = now
        if clear:
            out.write("\x1b[H\x1b[2J")
        out.write(render_dashboard(state) + "\n")
        out.flush()

    while True:
        client = StreamClient(address, connect_timeout=connect_timeout)
        try:
            client.connect()
        except OSError as error:
            failures += 1
            if failures > reconnects or expired():
                if received == 0:
                    print(f"watch: cannot reach {address}: {error}",
                          file=sys.stderr)
                    return 1
                break
            time.sleep(min(0.2 * failures, 2.0))
            continue
        failures = 0
        ended_clean = False
        try:
            for record in client.records(deadline=deadline, stop=stop):
                received += 1
                if sse:
                    out.write(json.dumps(record, sort_keys=True) + "\n")
                    out.flush()
                else:
                    state.apply(record)
                    draw()
                if max_records and received >= max_records:
                    client.close()
                    draw(force=True)
                    return 0
            ended_clean = True
        except Exception:  # torn connection: reconnect, resume live
            pass
        finally:
            client.close()
        if expired():
            break
        if ended_clean and not follow:
            break
    draw(force=True)
    if received == 0:
        print(f"watch: no records received from {address}",
              file=sys.stderr)
        return 1
    return 0


__all__ = ["WatchState", "SourceState", "render_dashboard", "run_watch"]
