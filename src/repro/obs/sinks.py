"""Pluggable record sinks for traces and monitor snapshots.

A sink consumes flat JSON-serializable dicts.  Four implementations:

* :class:`NullSink` — discards everything; the disabled-telemetry path.
* :class:`MemorySink` — keeps records in a list (tests, fleet rollups).
* :class:`JsonlSink` — appends one JSON object per line to a file.
* :class:`StdoutSink` — prints a compact ``key=value`` line (the
  syzkaller-console experience for interactive runs).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, TextIO


class NullSink:
    """Discards every record; ``enabled`` is False so emitters can skip
    building records entirely."""

    enabled = False

    def emit(self, record: dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Accumulates records in memory."""

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def by_type(self, record_type: str) -> list[dict[str, Any]]:
        """Records whose ``type`` field matches."""
        return [r for r in self.records if r.get("type") == record_type]


class JsonlSink:
    """Writes records as JSON lines to ``path`` (opened lazily).

    The file is truncated on first emit so a re-run into the same
    telemetry directory replaces the previous trace instead of silently
    concatenating two campaigns; stale rotated segments from the
    previous run are removed at the same point.

    Args:
        path: destination file.
        max_bytes: when set, rotate once the current segment reaches
            this size: ``trace.jsonl`` is renamed to ``trace.1.jsonl``
            (then ``.2``, …— ascending index = older) and a fresh file
            begins.  Multi-day campaigns stay bounded per segment and
            readers can replay segments in index order.
    """

    enabled = True

    def __init__(self, path: str | pathlib.Path,
                 max_bytes: int | None = None) -> None:
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self._handle: TextIO | None = None
        self._opened = False
        self._bytes = 0
        self._segments = 0

    def _rotated_name(self, index: int) -> pathlib.Path:
        return self.path.with_name(
            f"{self.path.stem}.{index}{self.path.suffix}")

    def emit(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if not self._opened:
                for stale in self.path.parent.glob(
                        f"{self.path.stem}.*{self.path.suffix}"):
                    stale.unlink(missing_ok=True)
            self._handle = self.path.open(
                "a" if self._opened else "w", encoding="utf-8")
            self._opened = True
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        self._handle.write(line)
        self._bytes += len(line)
        if self.max_bytes is not None and self._bytes >= self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Close the full segment and shelve it under the next index."""
        self._handle.close()
        self._handle = None
        self._segments += 1
        self.path.rename(self._rotated_name(self._segments))
        self._bytes = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class StdoutSink:
    """Prints each record as one compact ``k=v`` line."""

    enabled = True

    def emit(self, record: dict[str, Any]) -> None:
        parts = []
        for key in sorted(record):
            value = record[key]
            if isinstance(value, float):
                value = f"{value:g}"
            elif isinstance(value, dict):
                value = json.dumps(value, sort_keys=True)
            parts.append(f"{key}={value}")
        print(" ".join(parts), flush=True)

    def close(self) -> None:
        pass


class TeeSink:
    """Fans one record out to several sinks."""

    enabled = True

    def __init__(self, *sinks) -> None:
        self.sinks = [s for s in sinks if getattr(s, "enabled", True)]

    def emit(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
