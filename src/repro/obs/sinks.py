"""Pluggable record sinks for traces and monitor snapshots.

Every sink conforms to the :class:`Sink` protocol — ``emit(record)`` /
``flush()`` / ``close()`` plus context-manager support — and consumes
flat JSON-serializable dicts.  Implementations:

* :class:`NullSink` — discards everything; the disabled-telemetry path.
* :class:`MemorySink` — keeps records in a list (tests, fleet rollups).
* :class:`JsonlSink` — appends one JSON object per line to a file.
* :class:`StdoutSink` — prints a compact ``key=value`` line (the
  syzkaller-console experience for interactive runs).
* :class:`TeeSink` — fans one record out to several sinks.
* :class:`~repro.obs.stream.StreamSink` — publishes records to live
  ``repro watch`` clients over TCP (defined in its own module; its
  socket machinery should not load on the disabled path).

:func:`open_sink` builds any of them from a compact spec string
(``"jsonl:trace.jsonl"``, ``"stream:127.0.0.1:7799"``,
``"tee:jsonl:a.jsonl,stdout"``) so the CLI and the Daemon construct
sinks through one factory instead of ad-hoc wiring.
"""

from __future__ import annotations

import abc
import json
import pathlib
from typing import Any, TextIO


class Sink(abc.ABC):
    """The sink protocol every record destination implements.

    A sink consumes flat JSON-serializable dicts via :meth:`emit`.
    ``enabled`` is advisory: emitters may skip building records
    entirely when it is False (the :class:`NullSink` fast path).
    Sinks are context managers — leaving the ``with`` block closes
    them.
    """

    #: When False, emitters may skip record construction entirely.
    enabled: bool = True

    @abc.abstractmethod
    def emit(self, record: dict[str, Any]) -> None:
        """Consume one record."""

    def flush(self) -> None:
        """Push buffered records to their destination (default no-op)."""

    def close(self) -> None:
        """Release resources; the sink must not be emitted to after."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(Sink):
    """Discards every record; ``enabled`` is False so emitters can skip
    building records entirely."""

    enabled = False

    def emit(self, record: dict[str, Any]) -> None:
        pass


class MemorySink(Sink):
    """Accumulates records in memory."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def by_type(self, record_type: str) -> list[dict[str, Any]]:
        """Records whose ``type`` field matches."""
        return [r for r in self.records if r.get("type") == record_type]


class JsonlSink(Sink):
    """Writes records as JSON lines to ``path`` (opened lazily).

    The file is truncated on first emit so a re-run into the same
    telemetry directory replaces the previous trace instead of silently
    concatenating two campaigns; stale rotated segments from the
    previous run are removed at the same point.

    Args:
        path: destination file.
        max_bytes: when set, rotate once the current segment reaches
            this size: ``trace.jsonl`` is renamed to ``trace.1.jsonl``
            (then ``.2``, …— ascending index = older) and a fresh file
            begins.  Multi-day campaigns stay bounded per segment and
            readers can replay segments in index order.
    """

    def __init__(self, path: str | pathlib.Path,
                 max_bytes: int | None = None) -> None:
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self._handle: TextIO | None = None
        self._opened = False
        self._bytes = 0
        self._segments = 0

    def _rotated_name(self, index: int) -> pathlib.Path:
        return self.path.with_name(
            f"{self.path.stem}.{index}{self.path.suffix}")

    def emit(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if not self._opened:
                for stale in self.path.parent.glob(
                        f"{self.path.stem}.*{self.path.suffix}"):
                    stale.unlink(missing_ok=True)
            self._handle = self.path.open(
                "a" if self._opened else "w", encoding="utf-8")
            self._opened = True
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        self._handle.write(line)
        self._bytes += len(line)
        if self.max_bytes is not None and self._bytes >= self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Close the full segment and shelve it under the next index."""
        self._handle.close()
        self._handle = None
        self._segments += 1
        self.path.rename(self._rotated_name(self._segments))
        self._bytes = 0

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class StdoutSink(Sink):
    """Prints each record as one compact ``k=v`` line."""

    def emit(self, record: dict[str, Any]) -> None:
        parts = []
        for key in sorted(record):
            value = record[key]
            if isinstance(value, float):
                value = f"{value:g}"
            elif isinstance(value, dict):
                value = json.dumps(value, sort_keys=True)
            parts.append(f"{key}={value}")
        print(" ".join(parts), flush=True)


class TeeSink(Sink):
    """Fans one record out to several sinks."""

    def __init__(self, *sinks) -> None:
        self.sinks = [s for s in sinks if getattr(s, "enabled", True)]

    def emit(self, record: dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# spec factory
# ----------------------------------------------------------------------

def open_sink(spec: str | Sink | None) -> Sink:
    """Build a sink from a spec string.

    Specs::

        null                     NullSink (also: "" or None)
        memory                   MemorySink
        stdout                   StdoutSink
        jsonl:PATH               JsonlSink(PATH)
        stream:HOST:PORT         StreamSink bound to HOST:PORT
        stream:PORT              StreamSink on 127.0.0.1:PORT
        tee:SPEC,SPEC,...        TeeSink over comma-separated sub-specs

    A :class:`Sink` instance passes through unchanged, so call sites
    can accept "spec or sink" uniformly.  Unknown specs raise
    ``ValueError`` naming the offender.
    """
    if spec is None or spec == "" or spec == "null":
        return NullSink()
    if isinstance(spec, Sink):
        return spec
    if not isinstance(spec, str):
        raise ValueError(f"not a sink spec: {spec!r}")
    if spec == "memory":
        return MemorySink()
    if spec == "stdout":
        return StdoutSink()
    kind, _, rest = spec.partition(":")
    if kind == "jsonl" and rest:
        return JsonlSink(rest)
    if kind == "stream" and rest:
        # Imported lazily: the stream sink drags in socket + framing
        # machinery that the disabled-telemetry path never needs.
        from repro.obs.stream import StreamSink, parse_address
        host, port = parse_address(rest)
        return StreamSink(host=host, port=port)
    if kind == "tee" and rest:
        return TeeSink(*(open_sink(part.strip())
                         for part in rest.split(",") if part.strip()))
    raise ValueError(f"unknown sink spec: {spec!r}")
