"""Campaign monitor: periodic syzkaller-style status snapshots.

Every ``interval`` virtual seconds the monitor computes rates against
the previous snapshot — exec/s over virtual time, coverage growth per
virtual hour, per-driver coverage deltas — and emits one ``snapshot``
record to its sink.  Snapshots are also retained in memory so a daemon
can aggregate a fleet rollup after its campaigns finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Snapshot:
    """One periodic campaign status sample (all times virtual)."""

    t: float
    executions: int
    execs_per_sec: float
    kernel_coverage: int
    coverage_growth_per_hour: float
    corpus_size: int
    reboots: int
    bugs: int
    per_driver_delta: dict[str, int] = field(default_factory=dict)
    #: Broker wire-latency quantiles at sample time (``exec_vtime`` /
    #: ``payload_bytes`` → count/mean/max/p50/p90/p99); cumulative
    #: over the campaign so far, {} when the broker has no metrics.
    latency: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "type": "snapshot", "t": self.t,
            "executions": self.executions,
            "execs_per_sec": round(self.execs_per_sec, 4),
            "kernel_coverage": self.kernel_coverage,
            "coverage_growth_per_hour": round(
                self.coverage_growth_per_hour, 2),
            "corpus_size": self.corpus_size,
            "reboots": self.reboots,
            "bugs": self.bugs,
        }
        if self.per_driver_delta:
            record["per_driver_delta"] = dict(
                sorted(self.per_driver_delta.items()))
        if self.latency:
            record["latency"] = {name: dict(stats) for name, stats
                                 in sorted(self.latency.items())}
        return record


class CampaignMonitor:
    """Rate-computing snapshot producer for one campaign.

    Args:
        sink: snapshot record destination.
        interval: virtual seconds between snapshots.
    """

    def __init__(self, sink, interval: float = 1800.0) -> None:
        self.sink = sink
        self.interval = interval
        self.enabled: bool = getattr(sink, "enabled", True)
        self.snapshots: list[Snapshot] = []
        self._next_due = 0.0
        self._last_t = 0.0
        self._last_executions = 0
        self._last_coverage = 0
        self._last_per_driver: dict[str, int] = {}

    def start(self, clock: float) -> None:
        """Anchor rate computation at the campaign start clock."""
        self._next_due = clock
        self._last_t = clock

    def due(self, clock: float) -> bool:
        """True when a snapshot should be taken at ``clock``."""
        return self.enabled and clock >= self._next_due

    def sample(self, clock: float, *, executions: int, kernel_coverage: int,
               corpus_size: int, reboots: int, bugs: int,
               per_driver: dict[str, int] | None = None,
               latency: dict[str, dict[str, float]] | None = None,
               ) -> Snapshot | None:
        """Take one snapshot now; returns it (None when disabled)."""
        if not self.enabled:
            return None
        elapsed = clock - self._last_t
        exec_delta = executions - self._last_executions
        cov_delta = kernel_coverage - self._last_coverage
        per_driver = per_driver or {}
        driver_delta = {
            name: covered - self._last_per_driver.get(name, 0)
            for name, covered in per_driver.items()
            if covered - self._last_per_driver.get(name, 0) > 0}
        snapshot = Snapshot(
            t=clock,
            executions=executions,
            execs_per_sec=exec_delta / elapsed if elapsed > 0 else 0.0,
            kernel_coverage=kernel_coverage,
            coverage_growth_per_hour=(cov_delta / elapsed * 3600.0
                                      if elapsed > 0 else 0.0),
            corpus_size=corpus_size,
            reboots=reboots,
            bugs=bugs,
            per_driver_delta=driver_delta,
            latency=latency or {},
        )
        self.snapshots.append(snapshot)
        self.sink.emit(snapshot.to_dict())
        # Snapshots are rare (one per interval), so flushing each one
        # is cheap and keeps live consumers — ``tail -f`` on the JSONL
        # or an attached ``repro watch`` — current instead of a
        # buffer-flush behind.
        flush = getattr(self.sink, "flush", None)
        if flush is not None:
            flush()
        self._last_t = clock
        self._last_executions = executions
        self._last_coverage = kernel_coverage
        self._last_per_driver = dict(per_driver)
        while self._next_due <= clock:
            self._next_due += self.interval
        return snapshot

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def rollup(self) -> dict[str, Any]:
        """Campaign-level aggregate of all snapshots taken."""
        if not self.snapshots:
            return {"snapshots": 0}
        last = self.snapshots[-1]
        first = self.snapshots[0]
        elapsed = last.t - first.t
        rates = [s.execs_per_sec for s in self.snapshots[1:]] or [0.0]
        rollup = {
            "snapshots": len(self.snapshots),
            "virtual_seconds": elapsed,
            "executions": last.executions,
            "mean_execs_per_sec": (last.executions - first.executions)
            / elapsed if elapsed > 0 else 0.0,
            "peak_execs_per_sec": max(rates),
            "kernel_coverage": last.kernel_coverage,
            "corpus_size": last.corpus_size,
            "reboots": last.reboots,
            "bugs": last.bugs,
        }
        if last.latency:
            # The final snapshot's quantiles are cumulative, so they
            # are the campaign's latency summary.
            rollup["latency"] = {name: dict(stats) for name, stats
                                 in sorted(last.latency.items())}
        return rollup

    @staticmethod
    def fleet_rollup(rollups: dict[str, dict[str, Any]]) -> dict[str, Any]:
        """Aggregate several campaign rollups into fleet totals."""
        campaigns = [r for r in rollups.values() if r.get("snapshots")]
        totals = {
            "campaigns": len(rollups),
            "executions": sum(r.get("executions", 0) for r in campaigns),
            "kernel_coverage": sum(r.get("kernel_coverage", 0)
                                   for r in campaigns),
            "bugs": sum(r.get("bugs", 0) for r in campaigns),
            "reboots": sum(r.get("reboots", 0) for r in campaigns),
            "mean_execs_per_sec": 0.0,
        }
        if campaigns:
            totals["mean_execs_per_sec"] = (
                sum(r.get("mean_execs_per_sec", 0.0) for r in campaigns)
                / len(campaigns))
        return totals
