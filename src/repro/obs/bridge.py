"""Bridge from the virtual device's native observation channels into
the telemetry layer.

The substrate already emits rich signals — ``sys_enter`` /
``binder_transaction`` tracepoints (:mod:`repro.kernel.tracepoints`) and
the dmesg ring buffer — but nothing aggregated them.  The bridge
attaches eBPF-surrogate probes that:

* count syscalls by name and Binder transactions by service;
* attribute virtual-time cost to the *driver* behind each file
  descriptor (an fd→driver map maintained from ``openat``/``socket``
  returns, the way a real eBPF profiler walks ``struct file``), feeding
  the "top-N slowest drivers" profile;
* surface new dmesg splat lines as discrete trace events when polled.

The bridge is only constructed when telemetry is enabled, so disabled
campaigns never pay for the probes.
"""

from __future__ import annotations

from repro.kernel.tracepoints import BinderRecord, SyscallRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: Syscalls whose first argument is a file descriptor.
_FD_SYSCALLS = frozenset({
    "close", "dup", "fcntl", "read", "write", "ioctl", "mmap", "bind",
    "connect", "listen", "accept", "setsockopt", "getsockopt", "sendto",
    "recvfrom",
})

#: dmesg splat prefixes worth surfacing as trace events.
_SPLAT_PREFIXES = ("[WARNING]", "[BUG]", "[KASAN]", "[PANIC]", "[HANG]")


class DeviceBridge:
    """Probe attachments for one device, feeding one telemetry context."""

    def __init__(self, device, metrics: MetricsRegistry,
                 tracer: Tracer) -> None:
        self._device = device
        self._metrics = metrics
        self._tracer = tracer
        self._fd_owner: dict[tuple[int, int], str] = {}
        self._dmesg = device.kernel.dmesg
        self._dmesg_seen = 0
        kernel = device.kernel
        self._syscall_cost = device.costs.syscall
        self._handles = [
            kernel.trace.attach("sys_enter", self._on_sys_enter),
            kernel.trace.attach("sys_exit", self._on_sys_exit),
            kernel.trace.attach("binder_transaction", self._on_binder),
        ]

    # ------------------------------------------------------------------
    # probe callbacks
    # ------------------------------------------------------------------

    def _on_sys_enter(self, record: SyscallRecord) -> None:
        self._metrics.counter(f"device.syscalls.{record.name}").inc()
        if record.name in _FD_SYSCALLS and record.args:
            fd = record.args[0]
            if isinstance(fd, int):
                owner = self._fd_owner.get((record.pid, fd))
                if owner is not None:
                    self._metrics.counter(f"driver.ops.{owner}").inc()
                    self._metrics.counter(f"driver.vtime.{owner}").inc(
                        self._syscall_cost)
                    if record.name == "close":
                        self._fd_owner.pop((record.pid, fd), None)

    def _on_sys_exit(self, record: SyscallRecord) -> None:
        if record.ret is None or record.ret < 0:
            return
        if record.name == "openat" and record.args:
            driver = self._device.kernel.driver_for_path(record.args[0])
            if driver is not None:
                self._fd_owner[(record.pid, record.ret)] = driver.name
        elif record.name == "socket" and record.args:
            domain = record.args[0]
            for drv in self._device.kernel.drivers():
                if getattr(drv, "domain", None) == domain:
                    self._fd_owner[(record.pid, record.ret)] = drv.name
                    break

    def _on_binder(self, record: BinderRecord) -> None:
        self._metrics.counter(f"binder.txns.{record.service}").inc()
        if not record.reply_ok:
            self._metrics.counter("binder.failed_txns").inc()

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------

    def poll_dmesg(self) -> int:
        """Surface dmesg splat lines logged since the last poll.

        Reboot replaces the ring buffer object, so the cursor resets
        whenever the kernel's ``dmesg`` identity changes.  Returns the
        number of new lines examined.
        """
        dmesg = self._device.kernel.dmesg
        if dmesg is not self._dmesg:
            self._dmesg = dmesg
            self._dmesg_seen = 0
        lines = dmesg.lines()
        fresh = lines[self._dmesg_seen:]
        self._dmesg_seen = len(lines)
        if fresh:
            self._metrics.counter("device.dmesg_lines").inc(len(fresh))
            for line in fresh:
                if line.startswith(_SPLAT_PREFIXES):
                    self._tracer.event("dmesg", line=line)
        return len(fresh)

    # ------------------------------------------------------------------

    def detach(self) -> None:
        """Remove all probes; idempotent."""
        for handle in self._handles:
            self._device.kernel.trace.detach(handle)
        self._handles = []
