"""Fleet scheduler: worker pool, watchdog supervisor, deterministic reduce.

The paper's evaluation drives seven physical devices *concurrently*
from one host daemon; this module is that orchestration for the virtual
fleet.  A :class:`FleetScheduler` shards :class:`CampaignJob` specs
across ``multiprocessing`` workers, supervises them with per-job
heartbeats and a configurable watchdog (hung or crashed workers are
killed and requeued with bounded, backed-off retries), and reduces the
:class:`CampaignOutcome` stream back into submission order so the
merged results are identical regardless of completion order.

With ``workers=["host:port", ...]`` the same scheduler dispatches over
:class:`~repro.fleet.remote.transport.RemoteWorkerTransport` links to
``repro worker serve`` pools instead of forking locally: the job /
heartbeat / done / error message shapes, the watchdog, the retry
budget, and the deterministic merge are all shared, so remote output
is byte-identical to local-pool and sequential output.  Job re-dispatch
after a timeout or reconnect is idempotent — servers deduplicate by
job key and replay cached outcomes, and the merge guards by campaign
index — so a retried job can never double-count.

All scheduling-path time flows through one injected
:class:`~repro.fleet.clock.Clock` (watchdog deadlines, retry backoff,
progress bookkeeping); tests inject a
:class:`~repro.fleet.clock.ManualClock` to make timeout behaviour
deterministic with zero real waiting.

Degradation is graceful: ``jobs=1``, a single job, or a pool that
cannot start all fall back to inline in-process execution through the
*same* :func:`~repro.fleet.worker.execute_job` code path, so parallel
and sequential runs produce byte-identical campaign artifacts (the
campaigns themselves are seed-deterministic and independent).

The ``fork`` start method is preferred when the platform offers it:
forked workers inherit the parent's string-hash seed, which keeps any
incidental set-iteration order identical across the pool.

Each worker writes to its *own* result queue.  A queue with a single
writer never takes the contended ``_wlock`` path in its feeder thread;
with one queue shared across forked writers that path was observed to
deadlock (feeders parked in ``wacquire()`` with no live holder) on
some kernels.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue as queue_module
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.fleet.clock import Clock, SystemClock
from repro.fleet.jobs import CampaignJob, CampaignOutcome
from repro.fleet.worker import execute_job, resolve_hook, worker_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FLEET_FILE

__all__ = ["FleetScheduler", "FLEET_FILE"]

#: Seconds a worker may be observed dead before it is declared crashed
#: (grace for its final queue message to arrive).
_DEAD_GRACE = 1.0


@dataclass
class _Pending:
    job: CampaignJob
    attempt: int = 1
    not_before: float = 0.0


@dataclass
class _RemoteRunning:
    """One job out on a remote worker link."""

    job: CampaignJob
    transport: Any
    attempt: int
    last_seen: float


@dataclass
class _Running:
    job: CampaignJob
    process: Any
    #: This worker's private message queue (single writer — see the
    #: module docstring for why queues are never shared).
    channel: Any
    worker_id: int
    attempt: int
    last_seen: float
    dead_since: float | None = None


@dataclass
class FleetScheduler:
    """Parallel campaign orchestrator with watchdog supervision.

    Args:
        jobs: worker pool width; ``<=1`` executes inline.
        watchdog_seconds: real seconds without a heartbeat before a
            worker is declared hung, killed, and its job requeued.
        heartbeat_seconds: worker heartbeat period (real seconds).
        max_retries: re-executions allowed per job after its first try.
        retry_backoff: base real-seconds delay before attempt ``n``
            requeues (scaled by the attempt number).
        metrics: optional registry receiving ``fleet.*`` metrics.
        progress: optional callable receiving lifecycle event dicts
            (``kind`` in start/hb/done/retry/fail) as they happen.
        workers: remote ``host:port`` worker-server addresses (or
            pre-built transport objects); when non-empty, jobs dispatch
            over TCP instead of the local pool.
        clock: time source for every scheduling decision (watchdog,
            backoff, summaries); inject a ManualClock in tests.
        connect_timeout: per-worker TCP connect + handshake budget.
        max_reconnects: stream-fault reconnects allowed per worker
            before its in-flight jobs are retried elsewhere.
        reconnect_backoff: base delay between reconnect attempts
            (doubles per attempt).
    """

    jobs: int = 1
    watchdog_seconds: float = 300.0
    heartbeat_seconds: float = 2.0
    max_retries: int = 2
    retry_backoff: float = 0.5
    metrics: MetricsRegistry | None = None
    progress: Callable[[dict[str, Any]], None] | None = None
    workers: list[Any] = field(default_factory=list)
    clock: Clock = field(default_factory=SystemClock)
    connect_timeout: float = 5.0
    max_reconnects: int = 5
    reconnect_backoff: float = 0.2
    #: Live-telemetry sink (``repro.obs.stream.StreamSink``): every
    #: lifecycle event is also published to it as a ``{"type":
    #: "fleet", ...}`` record, and inline jobs additionally stream
    #: their monitor snapshots through a per-key scoped view.
    #: Borrowed — never closed here.
    stream: Any = None
    #: Summary of the last :meth:`run` (wall time, retries, per-worker).
    last_summary: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def run(self, job_list: list[CampaignJob]) -> list[CampaignOutcome]:
        """Execute every job; outcomes return in submission order.

        Failed jobs (retries exhausted) come back with ``error`` set and
        ``result`` None — the other campaigns' outcomes are never lost.
        """
        started = self.clock.perf_counter()
        self._counts = {"queued": len(job_list), "completed": 0,
                        "retried": 0, "failed": 0}
        self._count("fleet.jobs.queued", len(job_list))
        width = max(int(self.jobs), 1)
        if self.workers:
            outcomes = self._run_remote(job_list)
            width = self._remote_width
        elif width <= 1 or len(job_list) <= 1:
            outcomes = self._run_inline(job_list)
        else:
            outcomes = self._run_pool(job_list, width)
        outcomes.sort(key=lambda outcome: outcome.index)
        wall = self.clock.perf_counter() - started
        self.last_summary = self._summarize(outcomes, wall, width)
        return outcomes

    # ------------------------------------------------------------------
    # inline path (jobs=1 and pool fallback)
    # ------------------------------------------------------------------

    def _run_inline(self,
                    job_list: list[CampaignJob]) -> list[CampaignOutcome]:
        outcomes = []
        for pending in job_list:
            outcomes.append(self._execute_inline(pending))
        return outcomes

    def _execute_inline(self, job: CampaignJob) -> CampaignOutcome:
        attempt = 1
        while True:
            self._emit({"kind": "start", "key": job.key, "worker": 0,
                        "attempt": attempt})
            try:
                if job.hook:
                    resolve_hook(job.hook)(job)
                outcome = execute_job(
                    job, stream=self._scoped_stream(job.key))
            except Exception:
                reason = traceback.format_exc()
                if attempt > self.max_retries:
                    return self._fail(job, attempt, reason)
                self._retry(job, attempt, reason)
                self.clock.sleep(min(self.retry_backoff * attempt, 30.0))
                attempt += 1
                continue
            outcome.worker_id = 0
            outcome.attempts = attempt
            self._complete(outcome)
            return outcome

    # ------------------------------------------------------------------
    # pool path
    # ------------------------------------------------------------------

    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None)

    def _run_pool(self, job_list: list[CampaignJob],
                  width: int) -> list[CampaignOutcome]:
        try:
            ctx = self._context()
        except (OSError, ValueError):
            return self._run_inline(job_list)
        pending: list[_Pending] = [_Pending(job) for job in job_list]
        running: dict[str, _Running] = {}
        done: dict[int, CampaignOutcome] = {}
        free_slots = list(range(1, width + 1))
        heapq.heapify(free_slots)
        pool_ok = True

        while pending or running:
            now = self.clock.monotonic()
            if pool_ok:
                pool_ok = self._launch_ready(ctx, pending, running,
                                             free_slots, now)
            elif not running:
                # Pool is broken and drained: degrade to inline.
                for entry in pending:
                    outcome = self._execute_inline(entry.job)
                    done[outcome.index] = outcome
                pending.clear()
                break
            self._drain(running, pending, done, free_slots)
            self._patrol(running, pending, done, free_slots)
            self._gauge("fleet.jobs.running", len(running))
            if pending or running:
                self.clock.sleep(0.02)
        return [done[index] for index in sorted(done)]

    def _launch_ready(self, ctx, pending: list[_Pending],
                      running: dict[str, _Running], free_slots: list[int],
                      now: float) -> bool:
        """Start every ready pending job a slot exists for.

        Returns False when the platform refuses to start a process —
        the caller then degrades the remaining jobs to inline runs.
        """
        while pending and free_slots:
            ready = next((entry for entry in pending
                          if entry.not_before <= now), None)
            if ready is None:
                return True
            worker_id = heapq.heappop(free_slots)
            try:
                channel = ctx.Queue()
                process = ctx.Process(
                    target=worker_main,
                    args=(worker_id, ready.job, channel,
                          self.heartbeat_seconds),
                    daemon=True)
                process.start()
            except OSError:
                heapq.heappush(free_slots, worker_id)
                return False
            pending.remove(ready)
            running[ready.job.key] = _Running(
                job=ready.job, process=process, channel=channel,
                worker_id=worker_id, attempt=ready.attempt,
                last_seen=self.clock.monotonic())
        return True

    def _drain(self, running: dict[str, _Running],
               pending: list[_Pending], done: dict[int, CampaignOutcome],
               free_slots: list[int]) -> None:
        """Consume every queued message from every running worker."""
        for run in list(running.values()):
            while run.job.key in running:
                try:
                    message = run.channel.get_nowait()
                except (queue_module.Empty, OSError, ValueError):
                    break
                run.last_seen = self.clock.monotonic()
                run.dead_since = None
                if message.kind in ("start", "hb"):
                    self._emit({"kind": message.kind, "key": message.key,
                                "attempt": run.attempt, **message.data})
                elif message.kind == "done":
                    outcome: CampaignOutcome = message.data["outcome"]
                    self._retire(run, running, free_slots)
                    if outcome.index not in done:
                        outcome.attempts = run.attempt
                        done[outcome.index] = outcome
                        self._complete(outcome)
                elif message.kind == "error":
                    self._retire(run, running, free_slots)
                    self._requeue_or_fail(run,
                                          message.data.get("error", "?"),
                                          pending, done)

    def _patrol(self, running: dict[str, _Running], pending: list[_Pending],
                done: dict[int, CampaignOutcome],
                free_slots: list[int]) -> None:
        """Watchdog sweep: kill hung workers, reap silent deaths."""
        now = self.clock.monotonic()
        for run in list(running.values()):
            if now - run.last_seen > self.watchdog_seconds:
                self._retire(run, running, free_slots)
                self._requeue_or_fail(
                    run, f"watchdog: no heartbeat for "
                         f"{self.watchdog_seconds:g}s", pending, done)
            elif not run.process.is_alive():
                if run.dead_since is None:
                    run.dead_since = now
                elif now - run.dead_since > _DEAD_GRACE:
                    self._retire(run, running, free_slots)
                    self._requeue_or_fail(
                        run, f"worker exited (code "
                             f"{run.process.exitcode})", pending, done)

    def _retire(self, run: _Running, running: dict[str, _Running],
                free_slots: list[int]) -> None:
        """Remove a job from the running table and reclaim its slot."""
        process = run.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        else:
            process.join(timeout=0.5)
        run.channel.close()
        running.pop(run.job.key, None)
        heapq.heappush(free_slots, run.worker_id)

    def _requeue_or_fail(self, run: _Running, reason: str,
                         pending: list[_Pending],
                         done: dict[int, CampaignOutcome]) -> None:
        self._requeue_job(run.job, run.attempt, reason, pending, done)

    def _requeue_job(self, job: CampaignJob, attempt: int, reason: str,
                     pending: list[_Pending],
                     done: dict[int, CampaignOutcome]) -> None:
        """Shared retry-or-fail decision for pool and remote paths."""
        if attempt <= self.max_retries:
            self._retry(job, attempt, reason)
            pending.append(_Pending(
                job=job, attempt=attempt + 1,
                not_before=self.clock.monotonic()
                + min(self.retry_backoff * attempt, 30.0)))
            return
        done[job.index] = self._fail(job, attempt, reason)

    # ------------------------------------------------------------------
    # remote path (workers=["host:port", ...])
    # ------------------------------------------------------------------

    def _connect_workers(self) -> list[Any]:
        """Build and connect one transport per configured worker.

        Address strings become connected
        :class:`~repro.fleet.remote.transport.RemoteWorkerTransport`
        links; pre-built transport objects (tests, custom transports)
        pass through as-is.  Unreachable workers are skipped with a
        ``worker_lost`` progress event; no reachable worker at all is a
        typed :class:`RemoteConnectError`.
        """
        from repro.fleet.remote.transport import (
            RemoteConnectError,
            RemoteWorkerTransport,
        )
        transports: list[Any] = []
        for spec in self.workers:
            if not isinstance(spec, str):
                transports.append(spec)
                continue
            transport = RemoteWorkerTransport(
                spec, metrics=self.metrics,
                heartbeat_seconds=self.heartbeat_seconds,
                connect_timeout=self.connect_timeout,
                max_reconnects=self.max_reconnects,
                reconnect_backoff=self.reconnect_backoff)
            try:
                transport.connect()
            except RemoteConnectError as error:
                self._count("fleet.workers.unreachable")
                self._emit({"kind": "worker_lost", "key": spec,
                            "reason": str(error)})
                continue
            transports.append(transport)
        if not transports:
            raise RemoteConnectError(
                "no fleet workers reachable: "
                + ", ".join(str(spec) for spec in self.workers))
        return transports

    def _run_remote(self,
                    job_list: list[CampaignJob]) -> list[CampaignOutcome]:
        transports = self._connect_workers()
        self._remote_width = sum(t.slots for t in transports)
        pending: list[_Pending] = [_Pending(job) for job in job_list]
        running: dict[str, _RemoteRunning] = {}
        done: dict[int, CampaignOutcome] = {}
        try:
            while pending or running:
                now = self.clock.monotonic()
                # Drain before the liveness check so the typed errors a
                # dying transport queued for its in-flight jobs are
                # surfaced instead of overwritten by the generic
                # stranded-fleet failure.
                for transport in transports:
                    self._drain_remote(transport, pending, running, done)
                alive = [t for t in transports if t.alive]
                if not alive:
                    self._fail_stranded(transports, pending, running, done)
                    break
                self._dispatch_remote(alive, pending, running, now)
                self._patrol_remote(pending, running, done, now)
                self._gauge("fleet.jobs.running", len(running))
                if pending or running:
                    self.clock.sleep(0.02)
        finally:
            for transport in transports:
                transport.close()
        return [done[index] for index in sorted(done)]

    def _dispatch_remote(self, alive: list[Any], pending: list[_Pending],
                         running: dict[str, "_RemoteRunning"],
                         now: float) -> None:
        """Fill every free remote slot with a ready pending job."""
        for transport in alive:
            while transport.load < transport.slots:
                ready = next((entry for entry in pending
                              if entry.not_before <= now), None)
                if ready is None:
                    return
                pending.remove(ready)
                transport.dispatch(ready.job, ready.attempt)
                running[ready.job.key] = _RemoteRunning(
                    job=ready.job, transport=transport,
                    attempt=ready.attempt, last_seen=now)

    def _drain_remote(self, transport: Any, pending: list[_Pending],
                      running: dict[str, "_RemoteRunning"],
                      done: dict[int, CampaignOutcome]) -> None:
        """Consume every message the transport has queued."""
        while True:
            try:
                message = transport.messages.get_nowait()
            except queue_module.Empty:
                return
            run = running.get(message.key)
            if message.kind in ("start", "hb"):
                # Ownership check (mirrors the "done" guard): after a
                # watchdog requeue moved the key to another transport,
                # a still-running stale copy's heartbeats must not
                # refresh last_seen and shield a hung replacement.
                if run is not None and run.transport is transport:
                    run.last_seen = self.clock.monotonic()
                    self._emit({"kind": message.kind, "key": message.key,
                                "attempt": run.attempt, **message.data})
            elif message.kind == "done":
                outcome: CampaignOutcome = message.data["outcome"]
                if run is not None:
                    running.pop(message.key, None)
                    if run.transport is not transport:
                        # A requeued copy is still out elsewhere; the
                        # result is already in hand, so cancel it.
                        run.transport.cancel(message.key)
                # A late/duplicate done for a merged campaign falls
                # through both guards and is dropped — by construction
                # a job can never double-count.
                if outcome.index not in done:
                    if run is not None:
                        outcome.attempts = run.attempt
                    done[outcome.index] = outcome
                    self._discard_pending(pending, message.key)
                    self._complete(outcome)
            elif message.kind == "error":
                if run is not None:
                    running.pop(message.key, None)
                    self._requeue_job(run.job, run.attempt,
                                      message.data.get("error", "?"),
                                      pending, done)

    def _patrol_remote(self, pending: list[_Pending],
                       running: dict[str, "_RemoteRunning"],
                       done: dict[int, CampaignOutcome],
                       now: float) -> None:
        """Watchdog sweep over remote jobs: cancel and requeue."""
        for run in list(running.values()):
            if now - run.last_seen > self.watchdog_seconds:
                run.transport.cancel(run.job.key)
                running.pop(run.job.key, None)
                self._requeue_job(
                    run.job, run.attempt,
                    f"watchdog: no remote heartbeat for "
                    f"{self.watchdog_seconds:g}s", pending, done)

    def _fail_stranded(self, transports: list[Any],
                       pending: list[_Pending],
                       running: dict[str, "_RemoteRunning"],
                       done: dict[int, CampaignOutcome]) -> None:
        """Every worker is gone: fail the remaining jobs loudly."""
        addresses = ", ".join(str(getattr(t, "address", t))
                              for t in transports)
        reason = ("RemoteWorkerLost: all fleet workers unreachable "
                  f"(reconnects exhausted): {addresses}")
        for entry in pending:
            if entry.job.index not in done:
                done[entry.job.index] = self._fail(
                    entry.job, entry.attempt, reason)
        pending.clear()
        for run in running.values():
            if run.job.index not in done:
                done[run.job.index] = self._fail(
                    run.job, run.attempt, reason)
        running.clear()

    @staticmethod
    def _discard_pending(pending: list[_Pending], key: str) -> None:
        """Drop requeued copies of a job whose result just arrived."""
        pending[:] = [entry for entry in pending
                      if entry.job.key != key]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def _complete(self, outcome: CampaignOutcome) -> None:
        self._counts["completed"] += 1
        self._count("fleet.jobs.completed")
        if outcome.wall_seconds > 0 and outcome.result is not None:
            self._gauge(
                f"fleet.worker.{outcome.worker_id}.execs_per_sec",
                outcome.result.executions / outcome.wall_seconds)
        summary = {}
        if outcome.result is not None:
            summary = {"coverage": outcome.result.kernel_coverage,
                       "executions": outcome.result.executions,
                       "bugs": len(outcome.result.bugs)}
        self._emit({"kind": "done", "key": outcome.key,
                    "worker": outcome.worker_id,
                    "attempt": outcome.attempts, **summary})

    def _retry(self, job: CampaignJob, attempt: int, reason: str) -> None:
        self._counts["retried"] += 1
        self._count("fleet.jobs.retried")
        self._emit({"kind": "retry", "key": job.key, "attempt": attempt,
                    "reason": reason.strip().splitlines()[-1]})

    def _fail(self, job: CampaignJob, attempts: int,
              reason: str) -> CampaignOutcome:
        self._counts["failed"] += 1
        self._count("fleet.jobs.failed")
        self._emit({"kind": "fail", "key": job.key, "attempt": attempts,
                    "reason": reason.strip().splitlines()[-1]})
        return CampaignOutcome(key=job.key, index=job.index, result=None,
                               attempts=attempts, error=reason)

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def _emit(self, event: dict[str, Any]) -> None:
        if self.stream is not None:
            # ``key`` doubles as the dashboard row ("source"); the
            # stream sink stamps wall time and mirrors ``clock`` (on
            # heartbeats) into the virtual ``t``.
            self.stream.emit({"type": "fleet", **event})
        if self.progress is not None:
            self.progress(event)

    def _scoped_stream(self, key: str):
        """Per-campaign stream view for inline execution (None off)."""
        if self.stream is None:
            return None
        scoped = getattr(self.stream, "scoped", None)
        return scoped(key) if scoped is not None else self.stream

    def _summarize(self, outcomes: list[CampaignOutcome], wall: float,
                   width: int) -> dict[str, Any]:
        """The fleet rollup ``repro stats`` renders parallel efficiency
        from: real wall-clock vs per-worker busy time vs the campaigns'
        summed virtual time."""
        good = [outcome for outcome in outcomes if outcome.ok]
        worker_wall = sum(outcome.wall_seconds for outcome in good)
        virtual = sum(outcome.result.duration_hours * 3600.0
                      for outcome in good)
        per_worker: dict[str, dict[str, Any]] = {}
        for outcome in good:
            slot = per_worker.setdefault(
                str(outcome.worker_id),
                {"jobs": 0, "executions": 0, "wall_seconds": 0.0})
            slot["jobs"] += 1
            slot["executions"] += outcome.result.executions
            slot["wall_seconds"] += outcome.wall_seconds
        for slot in per_worker.values():
            slot["execs_per_sec"] = (
                slot["executions"] / slot["wall_seconds"]
                if slot["wall_seconds"] > 0 else 0.0)
        speedup = worker_wall / wall if wall > 0 else 0.0
        summary = {
            "jobs": self._counts["queued"],
            "workers": width,
            "completed": self._counts["completed"],
            "retried": self._counts["retried"],
            "failed": self._counts["failed"],
            "wall_seconds": wall,
            "worker_wall_seconds": worker_wall,
            "virtual_seconds": virtual,
            "speedup": speedup,
            "efficiency": speedup / width if width > 0 else 0.0,
            "per_worker": dict(sorted(per_worker.items())),
        }
        self._gauge("fleet.wall_seconds", wall)
        self._gauge("fleet.virtual_seconds", virtual)
        return summary
