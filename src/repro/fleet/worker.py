"""Fleet worker: campaign execution inside a pool process.

:func:`execute_job` is the single campaign runner shared by the inline
path (``jobs=1`` / pool fallback) and the worker processes, so both
execution modes are the *same code* and stay byte-identical.

:func:`worker_main` is the process entry point: it reports lifecycle
messages (``start`` / ``hb`` / ``done`` / ``error``) on the shared
result queue.  Heartbeats come from a daemon thread started *after* the
test-only fault hook runs, so a hook that hangs produces a worker that
goes silent after ``start`` — exactly what the supervisor's watchdog is
there to catch.
"""

from __future__ import annotations

import importlib
import pathlib
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.config import FuzzerConfig
from repro.core.engine import FuzzingEngine
from repro.device.device import AndroidDevice
from repro.fleet.jobs import CampaignJob, CampaignOutcome
from repro.obs.telemetry import Telemetry
from repro.obs.trace import SamplingPolicy


@dataclass
class WorkerMessage:
    """One supervisor-bound message from a worker process."""

    kind: str  # start | hb | done | error
    key: str
    data: dict[str, Any] = field(default_factory=dict)


def build_engine(device: AndroidDevice, config: FuzzerConfig,
                 telemetry: Telemetry | None = None):
    """Engine for one campaign, dispatched on the configured tool name.

    Mirrors :func:`repro.baselines.make_engine` but takes a finished
    config, so daemon-customized configurations survive the trip
    through a job spec unchanged.
    """
    # Imported here: baselines pull in the full engine stack, which the
    # parent may not need when it only schedules.
    if config.name == "syzkaller":
        from repro.baselines.syzkaller import SyzkallerEngine
        return SyzkallerEngine(device, config, telemetry=telemetry)
    if config.name == "difuze":
        from repro.baselines.difuze import DifuzeEngine
        return DifuzeEngine(device, config, telemetry=telemetry)
    return FuzzingEngine(device, config, telemetry=telemetry)


def resolve_hook(spec: str) -> Callable[[CampaignJob], None]:
    """Import a ``"module.path:callable"`` fault-injection hook."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(f"malformed hook spec: {spec!r}")
    return getattr(importlib.import_module(module_name), attr)


def execute_job(job: CampaignJob,
                holder: dict[str, Any] | None = None,
                stream: Any = None) -> CampaignOutcome:
    """Run one campaign from its spec; shared by inline and pool paths.

    Args:
        job: the campaign spec.
        holder: optional dict the live engine/device are published into
            (``engine`` / ``device`` keys) so a heartbeat thread can
            report progress mid-campaign.
        stream: optional live-telemetry sink (already scoped to this
            job's key) for inline fleet execution; pool/remote workers
            leave it None — their progress streams via heartbeat
            events from the parent instead, since a socket can't cross
            the pickle boundary.
    """
    started = time.perf_counter()
    telemetry = None
    if job.telemetry_dir or stream is not None:
        sampling = (SamplingPolicy(job.trace_sample, seed=job.config.seed)
                    if job.trace_sample else None)
        telemetry = Telemetry(
            directory=(pathlib.Path(job.telemetry_dir) / job.key
                       if job.telemetry_dir else None),
            interval=job.config.sample_interval,
            max_trace_bytes=job.max_trace_bytes,
            stream=stream, sampling=sampling)
    device = AndroidDevice(job.profile, costs=job.costs)
    engine = build_engine(device, job.config, telemetry)
    if holder is not None:
        holder["device"] = device
        holder["engine"] = engine
    result = engine.run()
    rollup: dict[str, Any] = {}
    if telemetry is not None:
        rollup = telemetry.rollup()
        telemetry.close()
    return CampaignOutcome(
        key=job.key, index=job.index, result=result, rollup=rollup,
        wall_seconds=time.perf_counter() - started)


def _progress_of(holder: dict[str, Any]) -> dict[str, Any]:
    """Best-effort live campaign stats for a heartbeat payload."""
    engine = holder.get("engine")
    device = holder.get("device")
    payload: dict[str, Any] = {}
    if engine is not None:
        payload["executions"] = getattr(engine, "executions", 0)
        coverage = getattr(engine, "coverage", None)
        if coverage is not None and hasattr(coverage, "kernel_total"):
            payload["coverage"] = coverage.kernel_total()
    if device is not None:
        payload["clock"] = device.clock
    return payload


def worker_main(worker_id: int, job: CampaignJob, queue,
                heartbeat_seconds: float) -> None:
    """Process entry point: run one job, report on the shared queue."""
    try:
        queue.put(WorkerMessage("start", job.key, {"worker": worker_id}))
        # Fault hook runs before heartbeats start: a hanging hook makes
        # this worker go silent, which is what the watchdog tests need.
        if job.hook:
            resolve_hook(job.hook)(job)
        holder: dict[str, Any] = {}
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(heartbeat_seconds):
                payload = {"worker": worker_id}
                payload.update(_progress_of(holder))
                try:
                    queue.put(WorkerMessage("hb", job.key, payload))
                except Exception:
                    return  # queue torn down mid-shutdown

        pulse = threading.Thread(target=beat, daemon=True)
        pulse.start()
        outcome = execute_job(job, holder)
        stop.set()
        outcome.worker_id = worker_id
        queue.put(WorkerMessage("done", job.key,
                                {"worker": worker_id, "outcome": outcome}))
    except BaseException:
        try:
            queue.put(WorkerMessage(
                "error", job.key,
                {"worker": worker_id, "error": traceback.format_exc()}))
        except Exception:
            pass
