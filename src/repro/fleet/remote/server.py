"""Remote fleet worker server: a local pool behind a TCP socket.

``repro worker serve`` runs one of these on any host.  A
:class:`WorkerServer` accepts scheduler connections, receives ``job``
frames, runs each campaign through the *same*
:func:`~repro.fleet.worker.worker_main` entry point the local pool
uses (a killable child process with heartbeats; inline thread fallback
when the platform refuses processes), and streams the resulting
``start`` / ``hb`` / ``done`` / ``error`` messages back as frames.

Dispatch is **idempotent by job key within a scheduler session**: the
hello carries a per-transport session nonce, and completed outcomes
are cached under ``session:key``, so a scheduler that re-sends a job
after a watchdog timeout or a reconnect gets the cached ``done`` back
instead of a second execution — a retried job can never double-count
in the merged campaign.  A job key that is still running is simply
re-attached to the newest connection; two copies never run at once.
Because the scope is the session, a *later* scheduler run that reuses
a job key (the CLI's keys are deterministic) always executes its own
job spec — a long-lived server never replays a previous run's
outcomes.  The cache itself is a bounded LRU, so an indefinitely
running daemon cannot grow without bound.

Shutdown is a graceful drain by default: the listener closes first, in
flight campaigns finish and report, then the connection threads wind
down.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue as queue_module
import socket
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from repro.fleet.jobs import CampaignJob, CampaignOutcome
from repro.fleet.remote.framing import (
    RemoteProtocolError,
    pack_message,
    read_frame,
    unpack_message,
    write_frame,
)
from repro.fleet.worker import WorkerMessage, worker_main
from repro.obs.metrics import MetricsRegistry

#: Seconds a dead worker process may stay silent before the server
#: synthesizes an ``error`` message for its job.
_DEAD_GRACE = 1.0
#: Forwarder poll period while waiting on a worker's message queue.
_POLL = 0.1
#: Per-frame send budget.  Sends share the connection's socket timeout
#: with the 0.5 s read poll; without this a send of a large outcome
#: could expire mid-frame on a healthy link.
_SEND_TIMEOUT = 30.0


class _ServerJob:
    """One in-flight campaign on the server."""

    def __init__(self, job: CampaignJob, scoped_key: str,
                 send: Callable[[WorkerMessage], None]) -> None:
        self.job = job
        #: ``session:key`` — the dedup-table key for this job.
        self.scoped_key = scoped_key
        self.send = send  # retargeted when the scheduler reconnects
        self.process: Any = None
        self.cancelled = False


class WorkerServer:
    """Host a fleet worker pool behind a length-prefixed TCP socket.

    Args:
        host: bind address (default loopback; the wire uses pickle, so
            expose it only to a trusted fleet network).
        port: bind port; 0 picks a free one (see :attr:`address`).
        slots: concurrent campaign width of this host's pool.
        metrics: optional registry receiving ``remote.server.*``.
        completed_cache: completed outcomes retained for idempotent
            replay (LRU; oldest entries evicted — safe, because the
            scheduler's merge also guards by campaign index and
            campaigns are deterministic).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 slots: int | None = None,
                 metrics: MetricsRegistry | None = None,
                 completed_cache: int = 1024) -> None:
        self.slots = max(int(slots if slots is not None
                             else (os.cpu_count() or 1)), 1)
        self._metrics = metrics
        self._lock = threading.Lock()
        # Both tables are keyed by "session:key" (see _handle_job).
        self._running: dict[str, _ServerJob] = {}
        self._completed: OrderedDict[str, CampaignOutcome] = OrderedDict()
        self._completed_cap = max(int(completed_cache), 1)
        self._free_ids = list(range(1, self.slots + 1))
        heapq.heapify(self._free_ids)
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "WorkerServer":
        """Begin accepting scheduler connections (returns self)."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down; ``drain`` lets running campaigns finish first."""
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        deadline = time.monotonic() + timeout
        if drain:
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._running:
                        break
                time.sleep(_POLL)
        with self._lock:
            entries = list(self._running.values())
        for entry in entries:
            entry.cancelled = True
            process = entry.process
            if process is not None and process.is_alive():
                process.terminate()
        for thread in list(self._threads):
            thread.join(timeout=max(deadline - time.monotonic(), 0.1))
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            self._count("remote.server.connections")
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="fleet-conn", daemon=True)
            # Keep only live connection threads: the daemon may accept
            # connections indefinitely.
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(0.5)
        send_lock = threading.Lock()
        # The session defaults to a connection-unique nonce and is
        # replaced by the scheduler's nonce from the hello, so a
        # reconnecting transport lands back in its own dedup scope
        # while distinct scheduler runs can never share cache entries.
        state = {"heartbeat": 2.0, "session": os.urandom(8).hex()}

        def send(message: WorkerMessage) -> None:
            payload = pack_message(message)
            with send_lock:
                try:
                    conn.settimeout(_SEND_TIMEOUT)
                    sent = write_frame(
                        lambda data: conn.sendall(data), payload)
                    conn.settimeout(0.5)
                except (OSError, RemoteProtocolError):
                    # A failed send may strand a partial frame on a
                    # healthy socket; shut the link down so the
                    # scheduler's reader faults and reconnects now
                    # instead of stalling on a desynchronized stream.
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    raise
            self._count("remote.server.frames_sent")
            self._count("remote.server.bytes_sent", sent)

        def read(count: int) -> bytes:
            while True:
                try:
                    return conn.recv(count)
                except socket.timeout:
                    if self._stopping.is_set():
                        return b""
                    continue

        try:
            while True:
                try:
                    payload = read_frame(read)
                except RemoteProtocolError:
                    break  # corrupt/truncated stream: drop the link
                if payload is None:
                    break  # clean EOF
                self._count("remote.server.frames_received")
                self._count("remote.server.bytes_received", len(payload))
                message = unpack_message(payload)
                if message.kind == "hello":
                    state["heartbeat"] = float(
                        message.data.get("heartbeat_seconds", 2.0))
                    session = message.data.get("session")
                    if isinstance(session, str) and session:
                        state["session"] = session
                    send(WorkerMessage("hello", "", {
                        "slots": self.slots, "pid": os.getpid()}))
                elif message.kind == "job":
                    self._handle_job(message.data["job"], send,
                                     state["heartbeat"],
                                     state["session"])
                elif message.kind == "cancel":
                    self._handle_cancel(state["session"], message.key)
                elif message.kind == "ping":
                    send(WorkerMessage("pong", "", dict(message.data)))
                elif message.kind == "bye":
                    break
        except (OSError, RemoteProtocolError):
            pass  # connection died; jobs keep running for the reconnect
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------

    def _handle_job(self, job: CampaignJob,
                    send: Callable[[WorkerMessage], None],
                    heartbeat_seconds: float, session: str) -> None:
        scoped = f"{session}:{job.key}"
        with self._lock:
            cached = self._completed.get(scoped)
            if cached is not None:
                # Idempotent re-dispatch: replay, never re-run.
                self._completed.move_to_end(scoped)
                self._count("remote.server.jobs_cached")
                send(WorkerMessage("done", job.key, {
                    "worker": cached.worker_id, "outcome": cached,
                    "cached": True}))
                return
            entry = self._running.get(scoped)
            if entry is not None:
                # Already running: point its messages at this link.
                entry.send = send
                return
            entry = _ServerJob(job, scoped, send)
            self._running[scoped] = entry
        self._count("remote.server.jobs_accepted")
        # Job threads are daemonic and reaped through _running, so
        # they are deliberately not tracked in _threads.
        thread = threading.Thread(
            target=self._run_job, args=(entry, heartbeat_seconds),
            name=f"fleet-job-{job.key}", daemon=True)
        thread.start()

    def _handle_cancel(self, session: str, key: str) -> None:
        with self._lock:
            entry = self._running.pop(f"{session}:{key}", None)
        if entry is None:
            return
        self._count("remote.server.jobs_cancelled")
        entry.cancelled = True
        process = entry.process
        if process is not None and process.is_alive():
            process.terminate()

    def _claim_slot(self, entry: _ServerJob) -> int | None:
        while True:
            with self._lock:
                if entry.cancelled:
                    return None
                if self._free_ids:
                    return heapq.heappop(self._free_ids)
            time.sleep(_POLL)

    def _run_job(self, entry: _ServerJob,
                 heartbeat_seconds: float) -> None:
        worker_id = self._claim_slot(entry)
        if worker_id is None:
            return
        try:
            self._supervise(entry, worker_id, heartbeat_seconds)
        finally:
            with self._lock:
                heapq.heappush(self._free_ids, worker_id)
                if self._running.get(entry.scoped_key) is entry:
                    del self._running[entry.scoped_key]

    def _supervise(self, entry: _ServerJob, worker_id: int,
                   heartbeat_seconds: float) -> None:
        """Run one campaign in a child and forward its messages."""
        job = entry.job
        try:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else None)
            channel: Any = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, job, channel, heartbeat_seconds),
                daemon=True)
            process.start()
            entry.process = process
        except (OSError, ValueError):
            # Platform refuses processes: run inline in a nested thread
            # through the identical worker_main code path.
            channel = queue_module.Queue()
            runner = threading.Thread(
                target=worker_main,
                args=(worker_id, job, channel, heartbeat_seconds),
                daemon=True)
            runner.start()
            process = None

        dead_since: float | None = None
        while True:
            try:
                message: WorkerMessage = channel.get(timeout=_POLL)
            except (queue_module.Empty, OSError, ValueError):
                if entry.cancelled:
                    return
                if process is not None and not process.is_alive():
                    if dead_since is None:
                        dead_since = time.monotonic()
                    elif time.monotonic() - dead_since > _DEAD_GRACE:
                        self._forward(entry, WorkerMessage(
                            "error", job.key,
                            {"worker": worker_id,
                             "error": f"worker process exited with code "
                                      f"{process.exitcode}"}))
                        return
                continue
            dead_since = None
            if message.kind == "done":
                outcome: CampaignOutcome = message.data["outcome"]
                with self._lock:
                    self._completed[entry.scoped_key] = outcome
                    self._completed.move_to_end(entry.scoped_key)
                    while len(self._completed) > self._completed_cap:
                        self._completed.popitem(last=False)
                self._count("remote.server.jobs_completed")
            if not entry.cancelled:
                self._forward(entry, message)
            if message.kind in ("done", "error"):
                if process is not None:
                    process.join(timeout=2.0)
                return

    def _forward(self, entry: _ServerJob, message: WorkerMessage) -> None:
        """Best-effort send; a dead link is fine — completed outcomes
        stay cached and replay when the scheduler re-dispatches."""
        try:
            entry.send(message)
        except (OSError, RemoteProtocolError):
            self._count("remote.server.frames_lost")

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)
