"""Remote fleet workers over a length-prefixed TCP transport.

* :mod:`repro.fleet.remote.framing` — versioned, CRC-checked frame
  layer and the typed :class:`RemoteProtocolError` hierarchy.
* :mod:`repro.fleet.remote.server` — :class:`WorkerServer`, the
  ``repro worker serve`` daemon hosting a local pool on any host with
  idempotent, key-deduplicated job dispatch.
* :mod:`repro.fleet.remote.transport` —
  :class:`RemoteWorkerTransport`, the scheduler-side link with
  timeouts, bounded-backoff reconnect, and in-flight re-dispatch.
"""

from repro.fleet.remote.framing import (
    MAX_FRAME,
    VERSION,
    FrameCorruptError,
    FrameDecoder,
    FrameMagicError,
    FrameTooLargeError,
    FrameTruncatedError,
    FrameVersionError,
    RemoteProtocolError,
    encode_frame,
    pack_message,
    read_frame,
    unpack_message,
    write_frame,
)
from repro.fleet.remote.server import WorkerServer
from repro.fleet.remote.transport import (
    RemoteConnectError,
    RemoteWorkerLost,
    RemoteWorkerTransport,
    parse_address,
)

__all__ = [
    "MAX_FRAME",
    "VERSION",
    "FrameCorruptError",
    "FrameDecoder",
    "FrameMagicError",
    "FrameTooLargeError",
    "FrameTruncatedError",
    "FrameVersionError",
    "RemoteProtocolError",
    "RemoteConnectError",
    "RemoteWorkerLost",
    "RemoteWorkerTransport",
    "WorkerServer",
    "encode_frame",
    "pack_message",
    "parse_address",
    "read_frame",
    "unpack_message",
    "write_frame",
]
