"""Scheduler-side transport to one remote :class:`WorkerServer`.

A :class:`RemoteWorkerTransport` plugs into
:class:`~repro.fleet.scheduler.FleetScheduler` beside the in-process
pool: ``dispatch()`` sends ``job`` frames, a reader thread turns
incoming frames back into the familiar
:class:`~repro.fleet.worker.WorkerMessage` stream on :attr:`messages`,
and the scheduler's shared watchdog / merge / retry logic never knows
whether a worker was a forked process or a host across the network.

Robustness lives here:

* connect and read timeouts — a silent peer cannot wedge the scheduler;
* sends get their own generous budget, and any send failure tears the
  socket down — a partial frame can never desynchronize a healthy
  stream; the reader sees the fault at once and reconnects instead of
  waiting out the scheduler watchdog;
* bounded exponential-backoff reconnect on any stream fault (EOF,
  truncated frame, bad CRC), with every in-flight job re-dispatched
  after the link returns (safe: the server deduplicates by job key
  *within this transport's session* — the hello carries a session
  nonce, so a later scheduler run reusing the same keys can never be
  answered from a previous run's cache);
* when reconnects exhaust, every in-flight job is surfaced as a typed
  ``error`` message so the scheduler can retry it elsewhere or fail it
  loudly — the transport never hangs and never drops a job silently.

Per-worker observability flows into the scheduler's metrics registry:
``fleet.remote.<label>.{reconnects, redispatches, frames_sent,
frames_received, bytes_sent, bytes_received, jobs_dispatched}``
counters and an ``rtt_seconds`` histogram (hello round-trip plus
dispatch→start latency per job).
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.fleet.remote.framing import (
    FrameDecoder,
    RemoteProtocolError,
    pack_message,
    unpack_message,
    write_frame,
)
from repro.fleet.worker import WorkerMessage

if TYPE_CHECKING:
    from repro.fleet.jobs import CampaignJob
    from repro.obs.metrics import MetricsRegistry

#: Histogram buckets for wire round-trip times (seconds).
RTT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
               0.5, 1.0, 2.5)

#: Socket timeout while the reader polls for frames (also how often it
#: notices a close request).
_READ_POLL = 0.2
#: Per-frame send budget.  Sends share the socket timeout with reads,
#: so without this a 0.2 s poll timeout could expire mid-``sendall``
#: and strand half a frame on an otherwise healthy link.
_SEND_TIMEOUT = 30.0


class RemoteConnectError(ReproError):
    """A fleet worker address could not be reached."""


class RemoteWorkerLost(ReproError):
    """A connected fleet worker went away and reconnects exhausted."""


def parse_address(address: str) -> tuple[str, int]:
    """Split ``host:port`` (the port is mandatory)."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise RemoteConnectError(
            f"malformed worker address {address!r} (expected host:port)")
    return host, int(port)


class RemoteWorkerTransport:
    """One scheduler↔worker-server link with reconnect supervision.

    Args:
        address: ``host:port`` of a running ``repro worker serve``.
        metrics: scheduler registry for the per-worker counters.
        heartbeat_seconds: heartbeat period requested from the server.
        connect_timeout: seconds allowed per TCP connect + hello.
        max_reconnects: stream-fault reconnect attempts before the
            worker is declared lost.
        reconnect_backoff: base delay before reconnect attempt ``n``
            (doubles each attempt, capped at 5 s).
    """

    def __init__(self, address: str,
                 metrics: "MetricsRegistry | None" = None,
                 heartbeat_seconds: float = 2.0,
                 connect_timeout: float = 5.0,
                 max_reconnects: int = 5,
                 reconnect_backoff: float = 0.2) -> None:
        self.address = address
        self._host, self._port = parse_address(address)
        self._metrics = metrics
        self._label = address.replace(".", "-")
        self._heartbeat_seconds = heartbeat_seconds
        self._connect_timeout = connect_timeout
        self._max_reconnects = max(int(max_reconnects), 0)
        self._backoff = reconnect_backoff
        #: Messages for the scheduler, in arrival order.
        self.messages: queue.Queue[WorkerMessage] = queue.Queue()
        #: Scopes the server's idempotency cache to this transport's
        #: lifetime: reconnects replay cached outcomes (same nonce),
        #: while a later scheduler run reusing the same job keys gets
        #: fresh executions, never a stale replay.
        self._session = os.urandom(8).hex()
        #: Concurrent jobs the server advertises (hello exchange).
        self.slots = 1
        self.alive = False
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._closing = threading.Event()
        self._reader: threading.Thread | None = None
        #: key → (job, attempt) awaiting a terminal message; re-sent
        #: verbatim after every reconnect (server-side idempotent).
        self._in_flight: dict[str, tuple["CampaignJob", int]] = {}
        self._dispatched_at: dict[str, float] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def connect(self) -> "RemoteWorkerTransport":
        """Establish the link and exchange hellos (returns self)."""
        self._establish()
        self.alive = True
        self._reader = threading.Thread(
            target=self._read_loop, name=f"fleet-link-{self.address}",
            daemon=True)
        self._reader.start()
        return self

    def _establish(self) -> None:
        # A previous socket may survive a failed reconnect attempt
        # (e.g. the post-handshake re-dispatch send blew up); reclaim
        # its descriptor before opening the next one.
        stale, self._sock = self._sock, None
        if stale is not None:
            try:
                stale.close()
            except OSError:
                pass
        started = time.perf_counter()
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout)
        except OSError as error:
            raise RemoteConnectError(
                f"cannot reach fleet worker {self.address}: "
                f"{error}") from error
        sock.settimeout(self._connect_timeout)
        try:
            payload = pack_message(WorkerMessage("hello", "", {
                "heartbeat_seconds": self._heartbeat_seconds,
                "session": self._session}))
            sent = write_frame(lambda data: sock.sendall(data), payload)
            self._count("frames_sent")
            self._count("bytes_sent", sent)
            hello = self._read_one(sock)
        except (OSError, RemoteProtocolError) as error:
            sock.close()
            raise RemoteConnectError(
                f"handshake with fleet worker {self.address} failed: "
                f"{error}") from error
        if hello is None or hello.kind != "hello":
            sock.close()
            raise RemoteConnectError(
                f"fleet worker {self.address} answered the hello with "
                f"{getattr(hello, 'kind', 'EOF')!r}")
        self.slots = max(int(hello.data.get("slots", 1)), 1)
        self._observe_rtt(time.perf_counter() - started)
        sock.settimeout(_READ_POLL)
        # Publish only a fully-established link: a concurrent
        # dispatch() can never slip a job frame ahead of the hello.
        self._sock = sock

    def _read_one(self, sock: socket.socket) -> WorkerMessage | None:
        """Blocking single-message read used only for the handshake."""
        decoder = FrameDecoder()
        while True:
            data = sock.recv(65536)
            if not data:
                decoder.close()  # raises if mid-frame
                return None
            payloads = decoder.feed(data)
            if payloads:
                self._count("frames_received", len(payloads))
                self._count("bytes_received", sum(map(len, payloads)))
                return unpack_message(payloads[0])

    def close(self) -> None:
        """Graceful drain: say goodbye, stop reading, drop the socket."""
        self._closing.set()
        try:
            self._send(WorkerMessage("bye", "", {}))
        except (OSError, RemoteProtocolError):
            pass
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        if self._reader is not None:
            self._reader.join(timeout=2.0)
        self.alive = False

    # ------------------------------------------------------------------
    # scheduler surface
    # ------------------------------------------------------------------

    @property
    def load(self) -> int:
        """Jobs currently awaiting a terminal message."""
        return len(self._in_flight)

    def dispatch(self, job: "CampaignJob", attempt: int) -> None:
        """Send one job; survives a mid-reconnect link (re-sent later)."""
        self._in_flight[job.key] = (job, attempt)
        self._dispatched_at[job.key] = time.perf_counter()
        self._count("jobs_dispatched")
        try:
            self._send(WorkerMessage("job", job.key,
                                     {"job": job, "attempt": attempt}))
        except (OSError, RemoteProtocolError):
            # _send tore the socket down, so the reader faults
            # immediately, reconnects, and re-dispatches this job.
            pass

    def cancel(self, key: str) -> None:
        """Stop tracking ``key``; best-effort remote cancellation."""
        self._in_flight.pop(key, None)
        self._dispatched_at.pop(key, None)
        try:
            self._send(WorkerMessage("cancel", key, {}))
        except (OSError, RemoteProtocolError):
            pass

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------

    def _send(self, message: WorkerMessage) -> None:
        payload = pack_message(message)
        with self._send_lock:
            sock = self._sock
            if sock is None:
                raise RemoteProtocolError(
                    f"link to {self.address} is down")
            try:
                sock.settimeout(_SEND_TIMEOUT)
                sent = write_frame(lambda data: sock.sendall(data),
                                   payload)
                sock.settimeout(_READ_POLL)
            except (OSError, RemoteProtocolError):
                # A failed send may have left a partial frame on a
                # socket that is otherwise healthy; shut it down so
                # the reader faults and reconnects *now* rather than
                # idling on a desynchronized stream until the
                # scheduler watchdog fires.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                raise
        self._count("frames_sent")
        self._count("bytes_sent", sent)

    def _read_loop(self) -> None:
        decoder = FrameDecoder()
        while not self._closing.is_set():
            sock = self._sock
            if sock is None:
                break
            try:
                data = sock.recv(65536)
                if not data:
                    raise ConnectionError("peer closed the stream")
                for payload in decoder.feed(data):
                    self._count("frames_received")
                    self._count("bytes_received", len(payload))
                    self._deliver(unpack_message(payload))
            except socket.timeout:
                continue
            except (OSError, RemoteProtocolError, ConnectionError) as error:
                if self._closing.is_set():
                    break
                if self._reconnect(error):
                    decoder = FrameDecoder()
                    continue
                self._fail_in_flight(error)
                break

    def _deliver(self, message: WorkerMessage) -> None:
        if message.kind == "pong":
            sent = message.data.get("t")
            if isinstance(sent, float):
                self._observe_rtt(time.perf_counter() - sent)
            return
        if message.kind == "start":
            sent_at = self._dispatched_at.pop(message.key, None)
            if sent_at is not None:
                self._observe_rtt(time.perf_counter() - sent_at)
        elif message.kind in ("done", "error"):
            self._in_flight.pop(message.key, None)
            self._dispatched_at.pop(message.key, None)
        self.messages.put(message)

    def _reconnect(self, cause: Exception) -> bool:
        """Bounded exponential-backoff reconnect; re-dispatch on success."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        for attempt in range(self._max_reconnects):
            time.sleep(min(self._backoff * (2 ** attempt), 5.0))
            if self._closing.is_set():
                return False
            try:
                self._establish()
                self._count("reconnects")
                for key, (job, job_attempt) in list(
                        self._in_flight.items()):
                    self._count("redispatches")
                    self._send(WorkerMessage(
                        "job", key, {"job": job, "attempt": job_attempt}))
            except (RemoteConnectError, OSError, RemoteProtocolError):
                continue  # counts against the same bounded budget
            return True
        return False

    def _fail_in_flight(self, cause: Exception) -> None:
        """Surface the dead link as typed errors the scheduler can act
        on; the transport leaves the rotation (``alive`` False)."""
        self.alive = False
        reason = (f"{RemoteWorkerLost.__name__}: fleet worker "
                  f"{self.address} unreachable after "
                  f"{self._max_reconnects} reconnect attempt(s): {cause}")
        for key in list(self._in_flight):
            self._in_flight.pop(key, None)
            self.messages.put(WorkerMessage(
                "error", key, {"worker": -1, "error": reason,
                               "transport": self.address}))

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                f"fleet.remote.{self._label}.{name}").inc(amount)

    def _observe_rtt(self, seconds: float) -> None:
        if self._metrics is not None:
            self._metrics.histogram(
                f"fleet.remote.{self._label}.rtt_seconds",
                buckets=RTT_BUCKETS).observe(seconds)
