"""Length-prefixed, versioned frame layer for the remote fleet wire.

One frame carries one fleet message (the same ``job`` / ``start`` /
``hb`` / ``done`` / ``error`` shapes the in-process queues move) over a
byte stream:

    +-------+---------+-------+--------+------------------+
    | magic | version | crc32 | length |     payload      |
    | 4 B   | 2 B     | 4 B   | 4 B    | ``length`` bytes |
    +-------+---------+-------+--------+------------------+

All header fields are big-endian (``!4sHII``).  The magic pins the
protocol (a stray client talking HTTP fails immediately, not
confusingly), the version gates compatibility (mismatches are rejected
with a clear error naming both sides), the CRC detects truncated or
corrupted payloads before they are unpickled, and the length bounds
the read.  Every decode failure raises a *typed* error derived from
:class:`RemoteProtocolError` — transports treat them as connection
faults and reconnect; nothing is ever silently resynchronized.

:class:`FrameDecoder` is incremental: feed it arbitrary byte chunks
(TCP segments split wherever they like) and complete payloads come out
as they close.  :func:`write_frame` loops over short writes, so a
writer that accepts one byte at a time still emits a well-formed
frame.

Two payload kinds ride inside the same frame:

* **fleet messages** — pickled
  :class:`~repro.fleet.worker.WorkerMessage` objects, the same
  serialization the ``multiprocessing`` queues already use, so local
  and remote workers move identical shapes.  Pickle implies a
  *trusted* network: bind servers to loopback or a private fleet LAN,
  exactly like the broker's ADB surrogate channel.
* **record-stream payloads** — JSON-encoded telemetry records tagged
  with :data:`RECORD_TAG`, the ``repro.obs.stream`` live-dashboard
  feed (:func:`pack_record` / :func:`unpack_record`).  JSON (not
  pickle) because watchers are read-only consumers that may be
  external UIs; the tag keeps a fleet peer that dials a stream port
  (or vice versa) failing with a typed error instead of a confusing
  unpickle/parse error.
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib
from typing import Any, Callable

from repro.errors import ReproError
from repro.fleet.worker import WorkerMessage

#: Frame header: magic, protocol version, payload CRC32, payload length.
HEADER = struct.Struct("!4sHII")
MAGIC = b"DFRW"
VERSION = 1
#: Upper bound on one payload; a length beyond this is treated as
#: stream corruption, not an allocation request.
MAX_FRAME = 64 * 1024 * 1024


class RemoteProtocolError(ReproError):
    """Base for every remote-fleet wire failure."""


class FrameMagicError(RemoteProtocolError):
    """The stream does not start with the fleet frame magic."""


class FrameVersionError(RemoteProtocolError):
    """The peer speaks an incompatible frame version."""


class FrameTooLargeError(RemoteProtocolError):
    """Declared payload length exceeds :data:`MAX_FRAME`."""


class FrameCorruptError(RemoteProtocolError):
    """Payload bytes do not match the header CRC."""


class FrameTruncatedError(RemoteProtocolError):
    """The stream ended (or the writer stalled) mid-frame."""


class RecordPayloadError(RemoteProtocolError):
    """A frame payload is not a well-formed telemetry record."""


def encode_frame(payload: bytes) -> bytes:
    """One wire frame wrapping ``payload``."""
    if len(payload) > MAX_FRAME:
        raise FrameTooLargeError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte frame bound")
    return HEADER.pack(MAGIC, VERSION, zlib.crc32(payload),
                       len(payload)) + payload


def _check_header(magic: bytes, version: int, length: int) -> None:
    if magic != MAGIC:
        raise FrameMagicError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}); "
            f"peer is not speaking the fleet protocol")
    if version != VERSION:
        raise FrameVersionError(
            f"peer speaks frame version {version}, this build speaks "
            f"version {VERSION}; upgrade one side")
    if length > MAX_FRAME:
        raise FrameTooLargeError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_FRAME}-byte frame bound (corrupt stream?)")


class FrameDecoder:
    """Incremental frame parser tolerant of arbitrary read splits."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every payload completed by it."""
        self._buffer.extend(data)
        payloads: list[bytes] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return payloads
            magic, version, crc, length = HEADER.unpack_from(self._buffer)
            _check_header(magic, version, length)
            end = HEADER.size + length
            if len(self._buffer) < end:
                return payloads
            payload = bytes(self._buffer[HEADER.size:end])
            if zlib.crc32(payload) != crc:
                raise FrameCorruptError(
                    f"payload CRC mismatch on a {length}-byte frame")
            del self._buffer[:end]
            payloads.append(payload)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def close(self) -> None:
        """Signal EOF; raises if a frame was left half-read."""
        if self._buffer:
            raise FrameTruncatedError(
                f"stream ended with {len(self._buffer)} bytes of an "
                f"unfinished frame")


def read_frame(read: Callable[[int], bytes]) -> bytes | None:
    """Read one payload from a blocking ``read(n)`` source.

    Returns None on clean EOF at a frame boundary; raises
    :class:`FrameTruncatedError` on EOF mid-frame.  Short reads are
    looped over, so split TCP segments are transparent.
    """
    header = _read_exact(read, HEADER.size, allow_eof=True)
    if header is None:
        return None
    magic, version, crc, length = HEADER.unpack(header)
    _check_header(magic, version, length)
    payload = _read_exact(read, length, allow_eof=False)
    if zlib.crc32(payload) != crc:
        raise FrameCorruptError(
            f"payload CRC mismatch on a {length}-byte frame")
    return payload


def _read_exact(read: Callable[[int], bytes], count: int,
                allow_eof: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = read(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise FrameTruncatedError(
                f"stream ended {remaining} byte(s) short of a "
                f"{count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(write: Callable[[bytes], int | None],
                payload: bytes) -> int:
    """Emit one frame through ``write``, looping over partial writes.

    ``write`` may consume everything (returning None, like
    ``socket.sendall``) or report a byte count (like ``os.write``);
    both are handled.  Returns the total frame size sent.
    """
    data = encode_frame(payload)
    view = memoryview(data)
    while view:
        sent = write(view)
        if sent is None:
            break  # sendall-style writer took the rest
        if sent <= 0:
            raise FrameTruncatedError(
                f"writer accepted 0 bytes with {len(view)} still to send")
        view = view[sent:]
    return len(data)


# ----------------------------------------------------------------------
# message payloads
# ----------------------------------------------------------------------

def pack_message(message: WorkerMessage) -> bytes:
    """Serialize one fleet message for the wire."""
    return pickle.dumps((message.kind, message.key, message.data),
                        protocol=pickle.HIGHEST_PROTOCOL)


def unpack_message(payload: bytes) -> WorkerMessage:
    """Parse a wire payload back into a :class:`WorkerMessage`."""
    try:
        kind, key, data = pickle.loads(payload)
    except Exception as error:
        raise RemoteProtocolError(
            f"undecodable fleet message payload: {error}") from error
    if not isinstance(kind, str) or not isinstance(key, str) \
            or not isinstance(data, dict):
        raise RemoteProtocolError(
            f"malformed fleet message shape: {type(kind).__name__}/"
            f"{type(key).__name__}/{type(data).__name__}")
    return WorkerMessage(kind, key, data)


# ----------------------------------------------------------------------
# record-stream payloads (the live telemetry feed, DESIGN §10)
# ----------------------------------------------------------------------

#: Leading tag of a record-stream payload.  Pickled fleet messages
#: start with the pickle protocol opcode (``b"\x80"``), so the two
#: payload kinds can never be confused inside the shared frame layer.
RECORD_TAG = b"DFRC"


def pack_record(record: dict[str, Any]) -> bytes:
    """Serialize one telemetry record for the stream wire."""
    return RECORD_TAG + json.dumps(
        record, sort_keys=True, default=str).encode("utf-8")


def unpack_record(payload: bytes) -> dict[str, Any]:
    """Parse a stream payload back into a record dict.

    Raises :class:`RecordPayloadError` when the payload is missing the
    record tag (e.g. a fleet worker answered on this port), is not
    valid JSON, or does not decode to an object.
    """
    if not payload.startswith(RECORD_TAG):
        raise RecordPayloadError(
            f"payload does not carry the {RECORD_TAG!r} record tag; "
            f"peer is not a telemetry stream")
    try:
        record = json.loads(payload[len(RECORD_TAG):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise RecordPayloadError(
            f"undecodable stream record: {error}") from error
    if not isinstance(record, dict):
        raise RecordPayloadError(
            f"stream record decodes to {type(record).__name__}, "
            f"not an object")
    return record
