"""Picklable fleet job specifications and outcomes.

A :class:`CampaignJob` is everything a worker process needs to rebuild
one campaign from scratch — the device profile, the fuzzer
configuration, the cost model, and the pre-reserved result key.  The
worker constructs its own :class:`~repro.device.device.AndroidDevice`
and engine from the spec, runs the campaign, and ships back a
:class:`CampaignOutcome` carrying the result, the telemetry rollup and
bookkeeping (worker slot, attempts, real wall time).

Both shapes cross a ``multiprocessing`` boundary, so they hold only
plain data: dataclasses, dicts, strings.  Keys are reserved by the
submitter *before* dispatch, which makes result naming race-free no
matter in which order campaigns finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.config import FuzzerConfig
from repro.core.engine import CampaignResult
from repro.device.device import DeviceCosts
from repro.device.profiles import DeviceProfile
from repro.errors import ReproError


class FleetJobError(ReproError):
    """One or more fleet jobs exhausted their retries.

    The scheduler keeps every other campaign's outcome; this error
    carries the per-key failure reasons for the jobs that did not make
    it.
    """

    def __init__(self, failures: dict[str, str]) -> None:
        self.failures = dict(failures)
        keys = ", ".join(sorted(self.failures))
        super().__init__(
            f"{len(self.failures)} fleet job(s) failed after retries: "
            f"{keys}")


@dataclass(frozen=True)
class CampaignJob:
    """One schedulable campaign: a picklable engine construction spec."""

    #: Pre-reserved result key (``ident#seed`` with optional ``.rN``).
    key: str
    #: Submission ordinal; the reducer merges outcomes in this order.
    index: int
    profile: DeviceProfile
    config: FuzzerConfig
    costs: DeviceCosts = field(default_factory=DeviceCosts)
    #: Fleet telemetry root; the worker records under ``<dir>/<key>/``.
    telemetry_dir: str | None = None
    #: Size-based ``trace.jsonl`` rotation threshold (None: unbounded).
    max_trace_bytes: int | None = None
    #: Span-sampling rates (``{"execute": 0.01}``); the worker builds a
    #: fresh SamplingPolicy seeded from ``config.seed`` (None: record
    #: every span).
    trace_sample: dict[str, float] | None = None
    #: Test-only fault-injection hook, ``"module.path:callable"``;
    #: resolved and invoked with the job inside the worker before the
    #: campaign starts (and before heartbeats, so a hanging hook looks
    #: like a wedged worker to the watchdog).
    hook: str | None = None
    #: Opaque argument for the hook (e.g. a sentinel-file path).
    hook_arg: str = ""


@dataclass
class CampaignOutcome:
    """What one job produced, in picklable form."""

    key: str
    index: int
    result: CampaignResult | None = None
    #: Telemetry monitor rollup ({} when telemetry was off).
    rollup: dict[str, Any] = field(default_factory=dict)
    #: Worker slot that ran the final attempt (0: inline).
    worker_id: int = 0
    #: Execution attempts consumed (1 = first try succeeded).
    attempts: int = 1
    #: Real seconds the successful attempt spent in the worker.
    wall_seconds: float = 0.0
    #: Failure reason after retry exhaustion (result is None then).
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None
