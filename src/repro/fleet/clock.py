"""Injectable clock for the fleet scheduling path.

The scheduler's watchdog, retry backoff, and progress bookkeeping all
consume time through one :class:`Clock` object instead of reading
``time.monotonic()`` directly.  Production uses :class:`SystemClock`;
tests that want to exercise watchdog timeouts or remote-latency
behaviour deterministically inject a :class:`ManualClock`, whose
``sleep()`` *advances* virtual time instead of blocking — a scheduler
loop that would take minutes of wall-clock waiting runs in
milliseconds and fires its timeouts at exact, reproducible instants.

Campaign execution itself is untouched: the device simulation has its
own virtual clock, and worker wall-time accounting stays real.
"""

from __future__ import annotations

import time


class Clock:
    """Time source protocol for scheduling decisions.

    ``monotonic()`` orders events and drives timeouts;
    ``perf_counter()`` measures wall durations for summaries;
    ``sleep()`` yields between scheduler iterations.
    """

    def monotonic(self) -> float:
        raise NotImplementedError

    def perf_counter(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock (default)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def perf_counter(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class ManualClock(Clock):
    """A test clock that only moves when told (or slept) to.

    ``sleep()`` advances the clock by the requested amount, so a
    scheduler polling loop naturally marches virtual time forward and
    watchdog deadlines fire after a deterministic number of
    iterations, with zero real waiting.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def monotonic(self) -> float:
        return self.now

    def perf_counter(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += max(float(seconds), 0.0)

    def advance(self, seconds: float) -> None:
        """Move time forward explicitly (alias of :meth:`sleep`)."""
        self.sleep(seconds)
