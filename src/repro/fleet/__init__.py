"""Parallel fleet orchestration (paper §IV-A's concurrent 7-device run).

* :mod:`repro.fleet.jobs` — picklable :class:`CampaignJob` specs,
  :class:`CampaignOutcome` results, :class:`FleetJobError`.
* :mod:`repro.fleet.worker` — the pool-process campaign runner shared
  with the inline fallback path.
* :mod:`repro.fleet.scheduler` — :class:`FleetScheduler`: worker pool,
  heartbeat watchdog with bounded retries, deterministic result merge,
  and remote dispatch over ``workers=["host:port", ...]``.
* :mod:`repro.fleet.clock` — the injected :class:`Clock` every
  scheduling decision reads time through.
* :mod:`repro.fleet.remote` — the length-prefixed TCP transport:
  :class:`~repro.fleet.remote.server.WorkerServer` (``repro worker
  serve``) and
  :class:`~repro.fleet.remote.transport.RemoteWorkerTransport`.
"""

from repro.fleet.clock import Clock, ManualClock, SystemClock
from repro.fleet.jobs import CampaignJob, CampaignOutcome, FleetJobError
from repro.fleet.scheduler import FLEET_FILE, FleetScheduler
from repro.fleet.worker import build_engine, execute_job

__all__ = ["CampaignJob", "CampaignOutcome", "Clock", "FleetJobError",
           "FleetScheduler", "FLEET_FILE", "ManualClock", "SystemClock",
           "build_engine", "execute_job"]
