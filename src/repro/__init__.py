"""DroidFuzz reproduction: proprietary driver fuzzing for embedded
Android devices, on a fully virtual device substrate.

Public entry points:

* :class:`repro.device.AndroidDevice` / :func:`repro.device.profile_by_id`
  — boot one of the paper's seven devices (Table I).
* :class:`repro.core.engine.FuzzingEngine` +
  :class:`repro.core.config.FuzzerConfig` — run a DroidFuzz campaign.
* :func:`repro.baselines.make_engine` — any evaluation tool by name
  (``droidfuzz``, ``droidfuzz-d``, ``df-norel``, ``df-nohcov``,
  ``syzkaller``, ``difuze``).

See README.md for a tour and DESIGN.md for the paper-to-code map.
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
