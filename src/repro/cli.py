"""Command-line interface: ``python -m repro <command>``.

Subcommands::

    list-devices              print the Table I fleet
    probe    <device>         run the pre-testing HAL probing pass
    fuzz     <device>         run one campaign (tool/seed/hours options)
    hunt                      fleet-wide bug hunt across all devices
    fleet                     parallel multi-device fleet via the daemon
    compare  <device>         run several tools and compare coverage
    stats    <trace-dir>      summarize a recorded telemetry trace
    watch    <host:port>      live dashboard for a --stream campaign
    worker serve              host a remote fleet worker pool over TCP

The campaign commands (``fuzz``/``hunt``/``fleet``/``compare``) share
three option groups, declared once as argparse *parent parsers* so new
flags land on every command consistently:

* campaign options — ``--seed``, ``--hours`` (per-command defaults);
* telemetry options — ``--telemetry DIR`` records a JSONL trace,
  periodic monitor snapshots, and a metrics dump that ``stats`` reads
  back; ``--stream HOST:PORT`` additionally serves the live feed for
  ``repro watch`` (``:0`` picks a free port, printed at startup);
  ``--trace-max-mb`` bounds each ``trace.jsonl`` by rotating segments;
  ``--trace-sample PHASE=RATE`` records only a deterministic fraction
  of high-frequency spans while metrics keep exact counts;
* pool options — ``--jobs N`` shards independent campaigns across a
  worker pool (``fuzz`` needs ``--seeds`` > 1 to have anything to
  parallelize); ``--workers host:port,...`` dispatches to
  ``repro worker serve`` pools on other hosts instead, byte-identical
  to local runs; ``--watchdog-seconds`` bounds worker silence
  (``--watchdog`` remains as a deprecated alias).

Every command operates on the virtual fleet; see README.md.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.analysis.plots import ascii_chart
from repro.analysis.report import fleet_report
from repro.analysis.tables import render_table
from repro.baselines import TOOLS, config_for, make_engine
from repro.core.daemon import Daemon
from repro.core.probe import Prober
from repro.core.state import save_state
from repro.device.device import AndroidDevice
from repro.device.profiles import DEVICE_PROFILES, profile_by_id
from repro.fleet import CampaignJob, FleetJobError, FleetScheduler
from repro.obs.sinks import open_sink
from repro.obs.stats import (
    find_trace_dirs,
    load_fleet_summary,
    load_stream_file,
    load_trace_dir,
    render_fleet_summary,
    render_summary,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import SamplingPolicy, parse_sample_spec


def _trace_bytes(args) -> int | None:
    """``--trace-max-mb`` as a byte threshold (None: unbounded)."""
    limit = getattr(args, "trace_max_mb", 0.0)
    return int(limit * 1024 * 1024) if limit else None


def _sample_rates(args) -> dict[str, float] | None:
    """``--trace-sample`` as ``{name: rate}`` (None when off)."""
    rates = getattr(args, "trace_sample", None)
    return rates or None


def _worker_list(args) -> list[str]:
    """``--workers`` as a list of ``host:port`` strings ([] when off)."""
    spec = getattr(args, "workers", "") or ""
    return [part.strip() for part in spec.split(",") if part.strip()]


def _open_stream(args):
    """The live-telemetry server for ``--stream``, or None when off."""
    spec = getattr(args, "stream", "") or ""
    if not spec:
        return None
    sink = open_sink(f"stream:{spec}")
    host, port = sink.address
    print(f"streaming live telemetry on {host}:{port} "
          f"(attach with: repro watch {host}:{port})", flush=True)
    return sink


def _close_stream(stream) -> None:
    """Report drop counters and shut the stream server down."""
    if stream is None:
        return
    stats = stream.stats()
    if stats.get("dropped"):
        print(f"stream: dropped {stats['dropped']} record(s) to slow "
              f"watcher(s) (delivered {stats['delivered']})", flush=True)
    stream.close()


def _make_telemetry(directory: str | None, subdir: str | None = None,
                    max_trace_bytes: int | None = None,
                    stream=None, source: str = "",
                    trace_sample: dict[str, float] | None = None,
                    sample_seed: int = 0) -> Telemetry | None:
    """A recording and/or streaming telemetry context, or None.

    Built when either a ``--telemetry`` directory or a ``--stream``
    sink is present; with a stream only, nothing is written to disk
    but snapshots still reach live watchers.  ``trace_sample`` builds
    a fresh per-campaign :class:`SamplingPolicy` seeded from
    ``sample_seed`` (pass the campaign seed so sampled traces stay
    deterministic).
    """
    scoped = (stream.scoped(source) if stream is not None and source
              else stream)
    sampling = (SamplingPolicy(trace_sample, seed=sample_seed)
                if trace_sample else None)
    if not directory:
        if scoped is None:
            return None
        return Telemetry(stream=scoped, sampling=sampling)
    path = pathlib.Path(directory)
    if subdir:
        path = path / subdir
    return Telemetry(directory=path, max_trace_bytes=max_trace_bytes,
                     stream=scoped, sampling=sampling)


def _fleet_progress(event: dict) -> None:
    """Render one scheduler lifecycle event as a progress line."""
    kind = event.get("kind")
    key = event.get("key", "?")
    if kind == "start":
        print(f"[w{event.get('worker', '?')}] {key} start "
              f"(attempt {event.get('attempt', 1)})", flush=True)
    elif kind == "done":
        print(f"[w{event.get('worker', '?')}] {key} done: "
              f"cov {event.get('coverage', '?')}, "
              f"{event.get('executions', '?')} execs, "
              f"{event.get('bugs', 0)} bug(s)", flush=True)
    elif kind == "retry":
        print(f"[--] {key} retry: {event.get('reason', '')}", flush=True)
    elif kind == "fail":
        print(f"[--] {key} FAILED: {event.get('reason', '')}", flush=True)
    elif kind == "worker_lost":
        print(f"[--] worker {key} unreachable: "
              f"{event.get('reason', '')}", flush=True)


def _cmd_list_devices(_args) -> int:
    rows = [[p.ident, p.name, p.vendor, p.arch, p.aosp, p.kernel,
             ", ".join(sorted(p.drivers)), ", ".join(sorted(p.hals))]
            for p in DEVICE_PROFILES]
    print(render_table(
        ["ID", "Device", "Vendor", "Arch", "AOSP", "Kernel", "Drivers",
         "HALs"], rows, title="Virtual device fleet (paper Table I)"))
    return 0


def _cmd_probe(args) -> int:
    device = AndroidDevice(profile_by_id(args.device))
    model = Prober(device).probe(infer_links=not args.no_links)
    print(f"{model.interface_count()} interfaces probed on {args.device}")
    for label in model.labels():
        method = model.methods[label]
        links = "".join(f"  arg{i}<-{s}.{m}"
                        for i, (s, m) in sorted(method.links.items()))
        print(f"  {label:<50} w={method.weight:.2f} "
              f"({', '.join(method.signature)}){links}")
    print(f"{len(model.flows)} framework flows distilled")
    return 0


def _cmd_fuzz(args) -> int:
    stream = _open_stream(args)
    try:
        if args.seeds > 1 or _worker_list(args):
            return _fuzz_fleet(args, stream)
        device = AndroidDevice(profile_by_id(args.device))
        telemetry = _make_telemetry(
            args.telemetry, max_trace_bytes=_trace_bytes(args),
            stream=stream, source=f"{args.device}#{args.seed}",
            trace_sample=_sample_rates(args), sample_seed=args.seed)
        engine = make_engine(args.tool, device, seed=args.seed,
                             campaign_hours=args.hours,
                             telemetry=telemetry)
        result = engine.run()
        print(f"{args.tool} on {args.device}: coverage "
              f"{result.kernel_coverage}, {result.executions} executions, "
              f"{result.reboots} reboots")
        for bug in result.bugs:
            print(f"  [{bug.component}] {bug.title} "
                  f"(first at {bug.first_clock / 3600:.1f}h)")
            if args.repro and bug.reproducer:
                for line in bug.reproducer.splitlines():
                    print(f"      {line}")
        if args.state_dir and args.tool not in ("difuze",):
            save_state(engine, args.state_dir)
            print(f"state saved to {args.state_dir}")
        if telemetry is not None:
            telemetry.close()
            if telemetry.directory is not None:
                print(f"telemetry written to {telemetry.directory}")
        return 0
    finally:
        _close_stream(stream)


def _fuzz_fleet(args, stream=None) -> int:
    """``fuzz --seeds N``: one campaign per seed, optionally parallel."""
    profile = profile_by_id(args.device)
    specs = [CampaignJob(
        key=f"{args.device}-s{seed}", index=index, profile=profile,
        config=config_for(args.tool, seed=seed, campaign_hours=args.hours),
        telemetry_dir=args.telemetry or None,
        max_trace_bytes=_trace_bytes(args),
        trace_sample=_sample_rates(args))
        for index, seed in enumerate(
            range(args.seed, args.seed + args.seeds))]
    scheduler = FleetScheduler(jobs=max(args.jobs, 1),
                               workers=_worker_list(args),
                               watchdog_seconds=args.watchdog_seconds,
                               progress=_fleet_progress, stream=stream)
    outcomes = scheduler.run(specs)
    failed = 0
    for outcome in outcomes:
        if not outcome.ok:
            failed += 1
            continue
        result = outcome.result
        print(f"{args.tool} on {outcome.key}: coverage "
              f"{result.kernel_coverage}, {result.executions} executions, "
              f"{result.reboots} reboots")
        for bug in result.bugs:
            print(f"  [{bug.component}] {bug.title} "
                  f"(first at {bug.first_clock / 3600:.1f}h)")
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 1 if failed else 0


def _cmd_hunt(args) -> int:
    stream = _open_stream(args)
    try:
        if args.jobs > 1 or _worker_list(args):
            return _hunt_fleet(args, stream)
        total = []
        for profile in DEVICE_PROFILES:
            for seed in range(args.seed, args.seed + args.seeds):
                device = AndroidDevice(profile)
                key = f"{profile.ident}-s{seed}"
                telemetry = _make_telemetry(
                    args.telemetry, key,
                    max_trace_bytes=_trace_bytes(args),
                    stream=stream, source=key,
                    trace_sample=_sample_rates(args), sample_seed=seed)
                engine = make_engine("droidfuzz", device, seed=seed,
                                     campaign_hours=args.hours,
                                     telemetry=telemetry)
                result = engine.run()
                if telemetry is not None:
                    telemetry.close()
                print(f"{profile.ident} seed {seed}: "
                      f"cov {result.kernel_coverage}, "
                      f"{len(result.bugs)} bug(s)", flush=True)
                total.extend((profile.ident, b.title, b.component)
                             for b in result.bugs)
        unique = sorted(set(total))
        rows = [[i, ident, title, comp]
                for i, (ident, title, comp) in enumerate(unique, 1)]
        print(render_table(
            ["No", "Device", "Bug", "Component"], rows,
            title=f"Hunt results ({len(unique)} unique bugs)"))
        if args.telemetry:
            print(f"telemetry written to {args.telemetry}")
        return 0
    finally:
        _close_stream(stream)


def _hunt_fleet(args, stream=None) -> int:
    """``hunt --jobs N``: the profile×seed grid on a worker pool."""
    specs = []
    for profile in DEVICE_PROFILES:
        for seed in range(args.seed, args.seed + args.seeds):
            specs.append(CampaignJob(
                key=f"{profile.ident}-s{seed}", index=len(specs),
                profile=profile,
                config=config_for("droidfuzz", seed=seed,
                                  campaign_hours=args.hours),
                telemetry_dir=args.telemetry or None,
                max_trace_bytes=_trace_bytes(args),
                trace_sample=_sample_rates(args)))
    scheduler = FleetScheduler(jobs=args.jobs,
                               workers=_worker_list(args),
                               watchdog_seconds=args.watchdog_seconds,
                               progress=_fleet_progress, stream=stream)
    outcomes = scheduler.run(specs)
    total = []
    failed = 0
    for outcome in outcomes:  # submission order, as the inline loop prints
        if not outcome.ok:
            failed += 1
            continue
        result = outcome.result
        ident, _, seed = outcome.key.rpartition("-s")
        print(f"{ident} seed {seed}: cov {result.kernel_coverage}, "
              f"{len(result.bugs)} bug(s)", flush=True)
        total.extend((ident, b.title, b.component) for b in result.bugs)
    unique = sorted(set(total))
    rows = [[i, ident, title, comp]
            for i, (ident, title, comp) in enumerate(unique, 1)]
    print(render_table(["No", "Device", "Bug", "Component"], rows,
                       title=f"Hunt results ({len(unique)} unique bugs)"))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 1 if failed else 0


def _cmd_fleet(args) -> int:
    """Parallel multi-device fleet through :class:`Daemon.run_fleet`."""
    try:
        profiles = [profile_by_id(ident) for ident in args.devices]
    except KeyError as error:
        print(error.args[0])
        return 2
    stream = _open_stream(args)
    daemon = Daemon(config=config_for(args.tool, seed=args.seed,
                                      campaign_hours=args.hours),
                    telemetry_dir=args.telemetry or None,
                    jobs=args.jobs,
                    watchdog_seconds=args.watchdog_seconds,
                    workers=_worker_list(args),
                    max_trace_bytes=_trace_bytes(args),
                    trace_sample=_sample_rates(args),
                    stream=stream)
    try:
        daemon.run_fleet(profiles, progress=_fleet_progress)
    except FleetJobError as error:
        for key, reason in error.failures.items():
            print(f"[--] {key} FAILED: {reason.strip().splitlines()[-1]}")
    finally:
        _close_stream(stream)
    print(fleet_report(daemon.fleet_result()))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 1 if len(daemon.results) < len(profiles) else 0


def _compare_fleet(args, stream=None):
    """``compare --jobs N``: one worker per tool; None on any failure."""
    profile = profile_by_id(args.device)
    specs = [CampaignJob(
        key=tool, index=index, profile=profile,
        config=config_for(tool, seed=args.seed, campaign_hours=args.hours),
        telemetry_dir=args.telemetry or None,
        max_trace_bytes=_trace_bytes(args),
        trace_sample=_sample_rates(args))
        for index, tool in enumerate(args.tools)]
    outcomes = FleetScheduler(jobs=args.jobs,
                              workers=_worker_list(args),
                              watchdog_seconds=args.watchdog_seconds,
                              progress=_fleet_progress,
                              stream=stream).run(specs)
    bad = [outcome for outcome in outcomes if not outcome.ok]
    if bad:
        for outcome in bad:
            reason = (outcome.error or "?").strip().splitlines()[-1]
            print(f"[--] {outcome.key} FAILED: {reason}")
        return None
    return outcomes


def _cmd_compare(args) -> int:
    series = {}
    rows = []
    latencies: dict[str, dict[str, dict[str, float]]] = {}
    stream = _open_stream(args)
    try:
        if args.jobs > 1 or _worker_list(args):
            outcomes = _compare_fleet(args, stream)
            if outcomes is None:
                return 1
            for outcome in outcomes:
                result = outcome.result
                series[outcome.key] = [(t, float(c))
                                       for t, c in result.timeline]
                row = [outcome.key, result.kernel_coverage,
                       len(result.bugs)]
                if args.telemetry:
                    row.append(
                        f"{outcome.rollup.get('mean_execs_per_sec', 0.0):.2f}")
                rows.append(row)
                if result.latency:
                    latencies[outcome.key] = result.latency
        else:
            for tool in args.tools:
                device = AndroidDevice(profile_by_id(args.device))
                telemetry = _make_telemetry(
                    args.telemetry, tool,
                    max_trace_bytes=_trace_bytes(args),
                    stream=stream, source=tool,
                    trace_sample=_sample_rates(args),
                    sample_seed=args.seed)
                engine = make_engine(tool, device, seed=args.seed,
                                     campaign_hours=args.hours,
                                     telemetry=telemetry)
                result = engine.run()
                rollup = (engine.telemetry.rollup()
                          if args.telemetry else None)
                if telemetry is not None:
                    telemetry.close()
                series[tool] = [(t, float(c)) for t, c in result.timeline]
                row = [tool, result.kernel_coverage, len(result.bugs)]
                if rollup is not None:
                    row.append(
                        f"{rollup.get('mean_execs_per_sec', 0.0):.2f}")
                rows.append(row)
                if result.latency:
                    latencies[tool] = result.latency
    finally:
        _close_stream(stream)
    print(ascii_chart(series,
                      title=f"Coverage on {args.device}, "
                            f"{args.hours:g} virtual hours"))
    headers = ["Tool", "Coverage", "Bugs"]
    if args.telemetry:
        headers.append("exec/s")
    print(render_table(headers, rows))
    if latencies:
        print(_latency_table(latencies))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _latency_table(latencies: dict[str, dict[str, dict[str, float]]]) -> str:
    """Per-tool broker latency quantiles for ``repro compare``."""
    rows = []
    for tool in sorted(latencies):
        for metric in sorted(latencies[tool]):
            stats = latencies[tool][metric]
            rows.append([tool, metric, int(stats.get("count", 0)),
                         f"{stats.get('p50', 0.0):g}",
                         f"{stats.get('p90', 0.0):g}",
                         f"{stats.get('p99', 0.0):g}",
                         f"{stats.get('max', 0.0):g}"])
    return render_table(
        ["Tool", "metric", "count", "p50", "p90", "p99", "max"], rows,
        title="Wire latency quantiles (exec_vtime: virtual s/program; "
              "payload_bytes: bytes)")


def _cmd_watch(args) -> int:
    """Attach to a ``--stream`` campaign and render it live."""
    from repro.obs.watch import run_watch
    return run_watch(args.address, sse=args.sse, interval=args.interval,
                     duration=args.duration, max_records=args.max_records,
                     follow=args.follow,
                     connect_timeout=args.connect_timeout,
                     reconnects=args.reconnects)


def _cmd_worker_serve(args) -> int:
    """``worker serve``: host a fleet worker pool until interrupted."""
    from repro.fleet.remote.server import WorkerServer
    server = WorkerServer(host=args.host, port=args.port,
                          slots=args.slots or None)
    server.start()
    host, port = server.address
    print(f"fleet worker serving on {host}:{port} "
          f"({server.slots} slot(s)); Ctrl-C to drain and stop",
          flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining...", flush=True)
        server.stop(drain=True)
    return 0


def _cmd_bench_diff(args) -> int:
    """``bench diff``: gate fresh BENCH files on the trajectory."""
    from repro.analysis.trajectory import (
        parse_tolerance,
        render_diff,
        run_diff,
    )

    try:
        tolerance = parse_tolerance(args.tolerance)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    diffs, code = run_diff(args.root, trajectory_path=args.trajectory,
                           tolerance=tolerance)
    print(render_diff(diffs, tolerance))
    if code:
        regressed = [d.key for d in diffs if d.regressed]
        print(f"FAIL: {len(regressed)} gated metric(s) regressed beyond "
              f"{tolerance * 100:g}%: {', '.join(regressed)}")
    else:
        print("ok: no gated metric regressed")
    return code


def _cmd_bench_update(args) -> int:
    """``bench update``: append the current BENCH files as an entry."""
    from repro.analysis.trajectory import TRAJECTORY_FILE, run_update

    entry = run_update(args.root, trajectory_path=args.trajectory,
                       label=args.label)
    path = args.trajectory or str(
        pathlib.Path(args.root) / TRAJECTORY_FILE)
    print(f"appended {entry['label']!r} "
          f"({len(entry['values'])} metric(s)) to {path}")
    return 0


def _cmd_stats(args) -> int:
    path = pathlib.Path(args.trace_dir)
    if path.is_file():
        summaries = load_stream_file(path)
        if not summaries:
            print(f"no stream records found in {path}")
            return 1
        for summary in summaries:
            print(render_summary(summary))
        return 0
    fleet = load_fleet_summary(args.trace_dir)
    if fleet is not None:
        print(render_fleet_summary(fleet))
    directories = find_trace_dirs(args.trace_dir)
    if not directories:
        if fleet is not None:
            return 0
        print(f"no telemetry found under {args.trace_dir}")
        return 1
    for directory in directories:
        print(render_summary(load_trace_dir(directory)))
    return 0


class _DeprecatedAlias(argparse.Action):
    """Store into the canonical dest while warning that the flag moved."""

    def __init__(self, *args, replacement: str = "", **kwargs):
        self.replacement = replacement
        super().__init__(*args, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(f"warning: {option_string} is deprecated; use "
              f"{self.replacement}", file=sys.stderr)
        setattr(namespace, self.dest, values)


def _parent_parsers() -> dict[str, argparse.ArgumentParser]:
    """The shared option groups of the campaign commands.

    Declared once as argparse parents so a new flag (like ``--stream``)
    lands on ``fuzz``/``hunt``/``fleet``/``compare`` in one place.
    Per-command defaults (e.g. ``--hours``) are overridden with
    ``set_defaults`` at the subparser — which mutates the *shared*
    action objects, so every subparser must get its own fresh parent
    instances (call this once per ``add_parser``).
    """
    campaign = argparse.ArgumentParser(add_help=False)
    campaign.add_argument("--seed", type=int, default=0,
                          help="base RNG seed (campaigns are "
                               "seed-deterministic)")
    campaign.add_argument("--hours", type=float, default=24.0,
                          help="virtual campaign hours")

    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument("--telemetry", default="", metavar="DIR",
                           help="record JSONL trace + snapshots + "
                                "metrics under DIR")
    telemetry.add_argument("--stream", default="", metavar="HOST:PORT",
                           help="serve live telemetry here for "
                                "'repro watch' (:0 picks a free port; "
                                "slow watchers drop frames, never "
                                "slow the campaign)")
    telemetry.add_argument("--trace-max-mb", type=float, default=0.0,
                           metavar="MB",
                           help="rotate trace.jsonl past this size "
                                "(0: unbounded)")
    telemetry.add_argument("--trace-sample", type=parse_sample_spec,
                           default="", metavar="PHASE=RATE[,...]",
                           help="record only this fraction of each "
                                "named span/event (e.g. exec=0.01); "
                                "metrics keep exact counts and "
                                "sampling is seed-deterministic")

    pool = argparse.ArgumentParser(add_help=False)
    pool.add_argument("--jobs", type=int, default=1,
                      help="worker pool width (1: run inline)")
    pool.add_argument("--workers", default="", metavar="ADDRS",
                      help="comma-separated host:port of running "
                           "'repro worker serve' pools; campaigns "
                           "dispatch there instead of forking locally")
    pool.add_argument("--watchdog-seconds", type=float, default=300.0,
                      metavar="SECONDS",
                      help="kill+requeue a worker silent this long")
    pool.add_argument("--watchdog", dest="watchdog_seconds", type=float,
                      action=_DeprecatedAlias,
                      replacement="--watchdog-seconds",
                      help=argparse.SUPPRESS)
    return {"campaign": campaign, "telemetry": telemetry, "pool": pool}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DroidFuzz reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    def shared() -> list[argparse.ArgumentParser]:
        parents = _parent_parsers()
        return [parents["campaign"], parents["telemetry"],
                parents["pool"]]

    sub.add_parser("list-devices").set_defaults(func=_cmd_list_devices)

    probe = sub.add_parser("probe")
    probe.add_argument("device")
    probe.add_argument("--no-links", action="store_true")
    probe.set_defaults(func=_cmd_probe)

    fuzz = sub.add_parser("fuzz", parents=shared())
    fuzz.add_argument("device")
    fuzz.add_argument("--tool", choices=TOOLS, default="droidfuzz")
    fuzz.add_argument("--seeds", type=int, default=1,
                      help="campaigns to run, seeded --seed, --seed+1, …")
    fuzz.add_argument("--repro", action="store_true",
                      help="print bug reproducers")
    fuzz.add_argument("--state-dir", default="",
                      help="persist corpus/relations/bugs here")
    fuzz.set_defaults(func=_cmd_fuzz)

    hunt = sub.add_parser("hunt", parents=shared())
    hunt.add_argument("--seeds", type=int, default=1,
                      help="seeds per device, from --seed upward")
    hunt.set_defaults(func=_cmd_hunt, hours=48.0)

    fleet = sub.add_parser(
        "fleet", parents=shared(),
        help="parallel multi-device fleet via the daemon")
    fleet.add_argument("--devices", nargs="+", metavar="ID",
                       default=[p.ident for p in DEVICE_PROFILES])
    fleet.add_argument("--tool", choices=TOOLS, default="droidfuzz")
    fleet.set_defaults(func=_cmd_fleet)

    compare = sub.add_parser("compare", parents=shared())
    compare.add_argument("device")
    compare.add_argument("--tools", nargs="+", choices=TOOLS,
                         default=["droidfuzz", "syzkaller"])
    compare.set_defaults(func=_cmd_compare, hours=12.0)

    stats = sub.add_parser("stats")
    stats.add_argument("trace_dir",
                       help="telemetry directory (or a parent of several)")
    stats.set_defaults(func=_cmd_stats)

    watch = sub.add_parser(
        "watch", help="live dashboard for a --stream campaign")
    watch.add_argument("address", metavar="HOST:PORT",
                       help="the campaign's --stream address")
    watch.add_argument("--sse", action="store_true",
                       help="emit newline-delimited JSON records "
                            "instead of the terminal dashboard")
    watch.add_argument("--interval", type=float, default=1.0,
                       help="minimum real seconds between redraws")
    watch.add_argument("--duration", type=float, default=0.0,
                       help="stop after this many real seconds "
                            "(0: until the stream ends)")
    watch.add_argument("--max-records", type=int, default=0,
                       help="stop after this many records (0: no limit)")
    watch.add_argument("--follow", action="store_true",
                       help="reconnect after the stream ends and wait "
                            "for a new campaign")
    watch.add_argument("--connect-timeout", type=float, default=5.0)
    watch.add_argument("--reconnects", type=int, default=5,
                       help="consecutive connection failures tolerated")
    watch.set_defaults(func=_cmd_watch)

    bench = sub.add_parser(
        "bench", help="BENCH trajectory ratchet commands")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    def bench_common(command: argparse.ArgumentParser) -> None:
        command.add_argument("--root", default=".",
                             help="directory holding the BENCH_*.json "
                                  "files (default: cwd)")
        command.add_argument("--trajectory", default="",
                             metavar="PATH",
                             help="trajectory file (default: "
                                  "<root>/BENCH_trajectory.json)")

    bench_diff = bench_sub.add_parser(
        "diff", help="diff fresh BENCH files against the committed "
                     "trajectory; non-zero exit on gated regression")
    bench_common(bench_diff)
    bench_diff.add_argument("--tolerance", default="15%",
                            help="allowed relative slack before a gated "
                                 "metric fails ('15%%' or '0.15')")
    bench_diff.set_defaults(func=_cmd_bench_diff)

    bench_update = bench_sub.add_parser(
        "update", help="append the current BENCH files to the "
                       "trajectory (append-only)")
    bench_common(bench_update)
    bench_update.add_argument("--label", default="",
                              help="entry label (default: entry-N)")
    bench_update.set_defaults(func=_cmd_bench_update)

    worker = sub.add_parser("worker", help="remote fleet worker commands")
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    serve = worker_sub.add_parser(
        "serve", help="host a worker pool behind a TCP socket")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (keep on a trusted network; "
                            "the wire carries pickled job specs)")
    serve.add_argument("--port", type=int, default=7788,
                       help="bind port (0: pick a free one)")
    serve.add_argument("--slots", type=int, default=0,
                       help="concurrent campaigns (0: CPU count)")
    serve.set_defaults(func=_cmd_worker_serve)
    return parser


def warn_if_oversubscribed(jobs: int, cpus: int | None = None) -> str | None:
    """Warning line when ``--jobs`` exceeds the host's CPU count.

    Worker processes are CPU-bound; oversubscribing trades real wall
    time for context switches (``BENCH_fleet.json`` measured a 0.913×
    "speedup" from a 4-wide pool on a 1-CPU host).
    """
    cpus = cpus if cpus is not None else (os.cpu_count() or 1)
    if jobs <= cpus:
        return None
    return (f"warning: --jobs {jobs} exceeds the {cpus} available "
            f"CPU(s); workers are CPU-bound and oversubscribing "
            f"degrades real wall time (results are unaffected)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    warning = warn_if_oversubscribed(getattr(args, "jobs", 1))
    if warning is not None:
        print(warning, file=sys.stderr)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
