"""Command-line interface: ``python -m repro <command>``.

Subcommands::

    list-devices              print the Table I fleet
    probe    <device>         run the pre-testing HAL probing pass
    fuzz     <device>         run one campaign (tool/seed/hours options)
    hunt                      fleet-wide bug hunt across all devices
    compare  <device>         run several tools and compare coverage
    stats    <trace-dir>      summarize a recorded telemetry trace

``fuzz``, ``hunt``, and ``compare`` accept ``--telemetry DIR`` to record
a JSONL trace, periodic monitor snapshots, and a metrics dump that
``stats`` reads back.  Every command operates on the virtual fleet; see
README.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis.plots import ascii_chart
from repro.analysis.tables import render_table
from repro.baselines import TOOLS, make_engine
from repro.core.probe import Prober
from repro.core.state import save_state
from repro.device.device import AndroidDevice
from repro.device.profiles import DEVICE_PROFILES, profile_by_id
from repro.obs.stats import find_trace_dirs, load_trace_dir, render_summary
from repro.obs.telemetry import Telemetry


def _make_telemetry(directory: str | None,
                    subdir: str | None = None) -> Telemetry | None:
    """A recording telemetry context, or None when not requested."""
    if not directory:
        return None
    path = pathlib.Path(directory)
    if subdir:
        path = path / subdir
    return Telemetry(directory=path)


def _cmd_list_devices(_args) -> int:
    rows = [[p.ident, p.name, p.vendor, p.arch, p.aosp, p.kernel,
             ", ".join(sorted(p.drivers)), ", ".join(sorted(p.hals))]
            for p in DEVICE_PROFILES]
    print(render_table(
        ["ID", "Device", "Vendor", "Arch", "AOSP", "Kernel", "Drivers",
         "HALs"], rows, title="Virtual device fleet (paper Table I)"))
    return 0


def _cmd_probe(args) -> int:
    device = AndroidDevice(profile_by_id(args.device))
    model = Prober(device).probe(infer_links=not args.no_links)
    print(f"{model.interface_count()} interfaces probed on {args.device}")
    for label in model.labels():
        method = model.methods[label]
        links = "".join(f"  arg{i}<-{s}.{m}"
                        for i, (s, m) in sorted(method.links.items()))
        print(f"  {label:<50} w={method.weight:.2f} "
              f"({', '.join(method.signature)}){links}")
    print(f"{len(model.flows)} framework flows distilled")
    return 0


def _cmd_fuzz(args) -> int:
    device = AndroidDevice(profile_by_id(args.device))
    telemetry = _make_telemetry(args.telemetry)
    engine = make_engine(args.tool, device, seed=args.seed,
                         campaign_hours=args.hours, telemetry=telemetry)
    result = engine.run()
    print(f"{args.tool} on {args.device}: coverage "
          f"{result.kernel_coverage}, {result.executions} executions, "
          f"{result.reboots} reboots")
    for bug in result.bugs:
        print(f"  [{bug.component}] {bug.title} "
              f"(first at {bug.first_clock / 3600:.1f}h)")
        if args.repro and bug.reproducer:
            for line in bug.reproducer.splitlines():
                print(f"      {line}")
    if args.state_dir and args.tool not in ("difuze",):
        save_state(engine, args.state_dir)
        print(f"state saved to {args.state_dir}")
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry written to {telemetry.directory}")
    return 0


def _cmd_hunt(args) -> int:
    total = []
    for profile in DEVICE_PROFILES:
        for seed in range(args.seeds):
            device = AndroidDevice(profile)
            telemetry = _make_telemetry(args.telemetry,
                                        f"{profile.ident}-s{seed}")
            engine = make_engine("droidfuzz", device, seed=seed,
                                 campaign_hours=args.hours,
                                 telemetry=telemetry)
            result = engine.run()
            if telemetry is not None:
                telemetry.close()
            print(f"{profile.ident} seed {seed}: "
                  f"cov {result.kernel_coverage}, "
                  f"{len(result.bugs)} bug(s)", flush=True)
            total.extend((profile.ident, b.title, b.component)
                         for b in result.bugs)
    unique = sorted(set(total))
    rows = [[i, ident, title, comp]
            for i, (ident, title, comp) in enumerate(unique, 1)]
    print(render_table(["No", "Device", "Bug", "Component"], rows,
                       title=f"Hunt results ({len(unique)} unique bugs)"))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_compare(args) -> int:
    series = {}
    rows = []
    for tool in args.tools:
        device = AndroidDevice(profile_by_id(args.device))
        telemetry = _make_telemetry(args.telemetry, tool)
        engine = make_engine(tool, device, seed=args.seed,
                             campaign_hours=args.hours, telemetry=telemetry)
        result = engine.run()
        rollup = (engine.telemetry.rollup()
                  if telemetry is not None else None)
        if telemetry is not None:
            telemetry.close()
        series[tool] = [(t, float(c)) for t, c in result.timeline]
        row = [tool, result.kernel_coverage, len(result.bugs)]
        if rollup is not None:
            row.append(f"{rollup.get('mean_execs_per_sec', 0.0):.2f}")
        rows.append(row)
    print(ascii_chart(series,
                      title=f"Coverage on {args.device}, "
                            f"{args.hours:g} virtual hours"))
    headers = ["Tool", "Coverage", "Bugs"]
    if args.telemetry:
        headers.append("exec/s")
    print(render_table(headers, rows))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_stats(args) -> int:
    directories = find_trace_dirs(args.trace_dir)
    if not directories:
        print(f"no telemetry found under {args.trace_dir}")
        return 1
    for directory in directories:
        print(render_summary(load_trace_dir(directory)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DroidFuzz reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-devices").set_defaults(func=_cmd_list_devices)

    probe = sub.add_parser("probe")
    probe.add_argument("device")
    probe.add_argument("--no-links", action="store_true")
    probe.set_defaults(func=_cmd_probe)

    fuzz = sub.add_parser("fuzz")
    fuzz.add_argument("device")
    fuzz.add_argument("--tool", choices=TOOLS, default="droidfuzz")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--hours", type=float, default=24.0)
    fuzz.add_argument("--repro", action="store_true",
                      help="print bug reproducers")
    fuzz.add_argument("--state-dir", default="",
                      help="persist corpus/relations/bugs here")
    fuzz.add_argument("--telemetry", default="", metavar="DIR",
                      help="record JSONL trace + snapshots + metrics here")
    fuzz.set_defaults(func=_cmd_fuzz)

    hunt = sub.add_parser("hunt")
    hunt.add_argument("--hours", type=float, default=48.0)
    hunt.add_argument("--seeds", type=int, default=1)
    hunt.add_argument("--telemetry", default="", metavar="DIR",
                      help="record per-campaign telemetry under DIR")
    hunt.set_defaults(func=_cmd_hunt)

    compare = sub.add_parser("compare")
    compare.add_argument("device")
    compare.add_argument("--tools", nargs="+", choices=TOOLS,
                         default=["droidfuzz", "syzkaller"])
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--hours", type=float, default=12.0)
    compare.add_argument("--telemetry", default="", metavar="DIR",
                         help="record per-tool telemetry under DIR")
    compare.set_defaults(func=_cmd_compare)

    stats = sub.add_parser("stats")
    stats.add_argument("trace_dir",
                       help="telemetry directory (or a parent of several)")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
