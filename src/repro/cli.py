"""Command-line interface: ``python -m repro <command>``.

Subcommands::

    list-devices              print the Table I fleet
    probe    <device>         run the pre-testing HAL probing pass
    fuzz     <device>         run one campaign (tool/seed/hours options)
    hunt                      fleet-wide bug hunt across all devices
    fleet                     parallel multi-device fleet via the daemon
    compare  <device>         run several tools and compare coverage
    stats    <trace-dir>      summarize a recorded telemetry trace
    worker serve              host a remote fleet worker pool over TCP

``fuzz``, ``hunt``, and ``compare`` accept ``--telemetry DIR`` to record
a JSONL trace, periodic monitor snapshots, and a metrics dump that
``stats`` reads back, and ``--jobs N`` to shard independent campaigns
across a worker pool (``fuzz`` needs ``--seeds`` > 1 to have anything
to parallelize).  ``--workers host:port,...`` dispatches the same
campaigns to ``repro worker serve`` pools on other hosts instead —
results are byte-identical to local runs.  ``--trace-max-mb`` bounds
each ``trace.jsonl`` by rotating full segments.  Every command operates
on the virtual fleet; see README.md.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

from repro.analysis.plots import ascii_chart
from repro.analysis.tables import render_table
from repro.baselines import TOOLS, config_for, make_engine
from repro.core.daemon import Daemon
from repro.core.probe import Prober
from repro.core.state import save_state
from repro.device.device import AndroidDevice
from repro.device.profiles import DEVICE_PROFILES, profile_by_id
from repro.fleet import CampaignJob, FleetJobError, FleetScheduler
from repro.obs.stats import (
    find_trace_dirs,
    load_fleet_summary,
    load_trace_dir,
    render_fleet_summary,
    render_summary,
)
from repro.obs.telemetry import Telemetry


def _trace_bytes(args) -> int | None:
    """``--trace-max-mb`` as a byte threshold (None: unbounded)."""
    limit = getattr(args, "trace_max_mb", 0.0)
    return int(limit * 1024 * 1024) if limit else None


def _worker_list(args) -> list[str]:
    """``--workers`` as a list of ``host:port`` strings ([] when off)."""
    spec = getattr(args, "workers", "") or ""
    return [part.strip() for part in spec.split(",") if part.strip()]


def _make_telemetry(directory: str | None, subdir: str | None = None,
                    max_trace_bytes: int | None = None) -> Telemetry | None:
    """A recording telemetry context, or None when not requested."""
    if not directory:
        return None
    path = pathlib.Path(directory)
    if subdir:
        path = path / subdir
    return Telemetry(directory=path, max_trace_bytes=max_trace_bytes)


def _fleet_progress(event: dict) -> None:
    """Render one scheduler lifecycle event as a progress line."""
    kind = event.get("kind")
    key = event.get("key", "?")
    if kind == "start":
        print(f"[w{event.get('worker', '?')}] {key} start "
              f"(attempt {event.get('attempt', 1)})", flush=True)
    elif kind == "done":
        print(f"[w{event.get('worker', '?')}] {key} done: "
              f"cov {event.get('coverage', '?')}, "
              f"{event.get('executions', '?')} execs, "
              f"{event.get('bugs', 0)} bug(s)", flush=True)
    elif kind == "retry":
        print(f"[--] {key} retry: {event.get('reason', '')}", flush=True)
    elif kind == "fail":
        print(f"[--] {key} FAILED: {event.get('reason', '')}", flush=True)
    elif kind == "worker_lost":
        print(f"[--] worker {key} unreachable: "
              f"{event.get('reason', '')}", flush=True)


def _cmd_list_devices(_args) -> int:
    rows = [[p.ident, p.name, p.vendor, p.arch, p.aosp, p.kernel,
             ", ".join(sorted(p.drivers)), ", ".join(sorted(p.hals))]
            for p in DEVICE_PROFILES]
    print(render_table(
        ["ID", "Device", "Vendor", "Arch", "AOSP", "Kernel", "Drivers",
         "HALs"], rows, title="Virtual device fleet (paper Table I)"))
    return 0


def _cmd_probe(args) -> int:
    device = AndroidDevice(profile_by_id(args.device))
    model = Prober(device).probe(infer_links=not args.no_links)
    print(f"{model.interface_count()} interfaces probed on {args.device}")
    for label in model.labels():
        method = model.methods[label]
        links = "".join(f"  arg{i}<-{s}.{m}"
                        for i, (s, m) in sorted(method.links.items()))
        print(f"  {label:<50} w={method.weight:.2f} "
              f"({', '.join(method.signature)}){links}")
    print(f"{len(model.flows)} framework flows distilled")
    return 0


def _cmd_fuzz(args) -> int:
    if args.seeds > 1 or _worker_list(args):
        return _fuzz_fleet(args)
    device = AndroidDevice(profile_by_id(args.device))
    telemetry = _make_telemetry(args.telemetry,
                                max_trace_bytes=_trace_bytes(args))
    engine = make_engine(args.tool, device, seed=args.seed,
                         campaign_hours=args.hours, telemetry=telemetry)
    result = engine.run()
    print(f"{args.tool} on {args.device}: coverage "
          f"{result.kernel_coverage}, {result.executions} executions, "
          f"{result.reboots} reboots")
    for bug in result.bugs:
        print(f"  [{bug.component}] {bug.title} "
              f"(first at {bug.first_clock / 3600:.1f}h)")
        if args.repro and bug.reproducer:
            for line in bug.reproducer.splitlines():
                print(f"      {line}")
    if args.state_dir and args.tool not in ("difuze",):
        save_state(engine, args.state_dir)
        print(f"state saved to {args.state_dir}")
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry written to {telemetry.directory}")
    return 0


def _fuzz_fleet(args) -> int:
    """``fuzz --seeds N``: one campaign per seed, optionally parallel."""
    profile = profile_by_id(args.device)
    specs = [CampaignJob(
        key=f"{args.device}-s{seed}", index=index, profile=profile,
        config=config_for(args.tool, seed=seed, campaign_hours=args.hours),
        telemetry_dir=args.telemetry or None,
        max_trace_bytes=_trace_bytes(args))
        for index, seed in enumerate(
            range(args.seed, args.seed + args.seeds))]
    scheduler = FleetScheduler(jobs=max(args.jobs, 1),
                               workers=_worker_list(args),
                               progress=_fleet_progress)
    outcomes = scheduler.run(specs)
    failed = 0
    for outcome in outcomes:
        if not outcome.ok:
            failed += 1
            continue
        result = outcome.result
        print(f"{args.tool} on {outcome.key}: coverage "
              f"{result.kernel_coverage}, {result.executions} executions, "
              f"{result.reboots} reboots")
        for bug in result.bugs:
            print(f"  [{bug.component}] {bug.title} "
                  f"(first at {bug.first_clock / 3600:.1f}h)")
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 1 if failed else 0


def _cmd_hunt(args) -> int:
    if args.jobs > 1 or _worker_list(args):
        return _hunt_fleet(args)
    total = []
    for profile in DEVICE_PROFILES:
        for seed in range(args.seeds):
            device = AndroidDevice(profile)
            telemetry = _make_telemetry(args.telemetry,
                                        f"{profile.ident}-s{seed}",
                                        max_trace_bytes=_trace_bytes(args))
            engine = make_engine("droidfuzz", device, seed=seed,
                                 campaign_hours=args.hours,
                                 telemetry=telemetry)
            result = engine.run()
            if telemetry is not None:
                telemetry.close()
            print(f"{profile.ident} seed {seed}: "
                  f"cov {result.kernel_coverage}, "
                  f"{len(result.bugs)} bug(s)", flush=True)
            total.extend((profile.ident, b.title, b.component)
                         for b in result.bugs)
    unique = sorted(set(total))
    rows = [[i, ident, title, comp]
            for i, (ident, title, comp) in enumerate(unique, 1)]
    print(render_table(["No", "Device", "Bug", "Component"], rows,
                       title=f"Hunt results ({len(unique)} unique bugs)"))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _hunt_fleet(args) -> int:
    """``hunt --jobs N``: the profile×seed grid on a worker pool."""
    specs = []
    for profile in DEVICE_PROFILES:
        for seed in range(args.seeds):
            specs.append(CampaignJob(
                key=f"{profile.ident}-s{seed}", index=len(specs),
                profile=profile,
                config=config_for("droidfuzz", seed=seed,
                                  campaign_hours=args.hours),
                telemetry_dir=args.telemetry or None,
                max_trace_bytes=_trace_bytes(args)))
    scheduler = FleetScheduler(jobs=args.jobs,
                               workers=_worker_list(args),
                               progress=_fleet_progress)
    outcomes = scheduler.run(specs)
    total = []
    failed = 0
    for outcome in outcomes:  # submission order, as the inline loop prints
        if not outcome.ok:
            failed += 1
            continue
        result = outcome.result
        ident, _, seed = outcome.key.rpartition("-s")
        print(f"{ident} seed {seed}: cov {result.kernel_coverage}, "
              f"{len(result.bugs)} bug(s)", flush=True)
        total.extend((ident, b.title, b.component) for b in result.bugs)
    unique = sorted(set(total))
    rows = [[i, ident, title, comp]
            for i, (ident, title, comp) in enumerate(unique, 1)]
    print(render_table(["No", "Device", "Bug", "Component"], rows,
                       title=f"Hunt results ({len(unique)} unique bugs)"))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 1 if failed else 0


def _cmd_fleet(args) -> int:
    """Parallel multi-device fleet through :class:`Daemon.run_fleet`."""
    try:
        profiles = [profile_by_id(ident) for ident in args.devices]
    except KeyError as error:
        print(error.args[0])
        return 2
    daemon = Daemon(config=config_for(args.tool, seed=args.seed,
                                      campaign_hours=args.hours),
                    telemetry_dir=args.telemetry or None,
                    jobs=args.jobs, watchdog_seconds=args.watchdog,
                    workers=_worker_list(args),
                    max_trace_bytes=_trace_bytes(args))
    try:
        daemon.run_fleet(profiles, progress=_fleet_progress)
    except FleetJobError as error:
        for key, reason in error.failures.items():
            print(f"[--] {key} FAILED: {reason.strip().splitlines()[-1]}")
    rows = [[key, result.kernel_coverage, result.executions,
             result.reboots, len(result.bugs)]
            for key, result in sorted(daemon.results.items())]
    print(render_table(["Campaign", "Coverage", "Execs", "Reboots", "Bugs"],
                       rows, title="Fleet results"))
    bugs = daemon.all_bugs()
    if bugs:
        bug_rows = [[i, b.device, b.title, b.component]
                    for i, b in enumerate(bugs, 1)]
        print(render_table(["No", "Device", "Bug", "Component"], bug_rows,
                           title=f"{len(bugs)} unique bug(s)"))
    if daemon.fleet_stats:
        print(render_fleet_summary(daemon.fleet_stats))
    if daemon.rollups:
        rollup = daemon.fleet_rollup()
        print(f"fleet rollup: {rollup.get('campaigns', 0)} campaign(s), "
              f"{rollup.get('executions', 0)} executions, "
              f"{rollup.get('kernel_coverage', 0)} coverage, "
              f"{rollup.get('bugs', 0)} bug(s), "
              f"{rollup.get('mean_execs_per_sec', 0.0):.2f} exec/s mean")
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 1 if len(daemon.results) < len(profiles) else 0


def _compare_fleet(args):
    """``compare --jobs N``: one worker per tool; None on any failure."""
    profile = profile_by_id(args.device)
    specs = [CampaignJob(
        key=tool, index=index, profile=profile,
        config=config_for(tool, seed=args.seed, campaign_hours=args.hours),
        telemetry_dir=args.telemetry or None,
        max_trace_bytes=_trace_bytes(args))
        for index, tool in enumerate(args.tools)]
    outcomes = FleetScheduler(jobs=args.jobs,
                              workers=_worker_list(args),
                              progress=_fleet_progress).run(specs)
    bad = [outcome for outcome in outcomes if not outcome.ok]
    if bad:
        for outcome in bad:
            reason = (outcome.error or "?").strip().splitlines()[-1]
            print(f"[--] {outcome.key} FAILED: {reason}")
        return None
    return outcomes


def _cmd_compare(args) -> int:
    series = {}
    rows = []
    if args.jobs > 1 or _worker_list(args):
        outcomes = _compare_fleet(args)
        if outcomes is None:
            return 1
        for outcome in outcomes:
            result = outcome.result
            series[outcome.key] = [(t, float(c))
                                   for t, c in result.timeline]
            row = [outcome.key, result.kernel_coverage, len(result.bugs)]
            if args.telemetry:
                row.append(f"{outcome.rollup.get('mean_execs_per_sec', 0.0):.2f}")
            rows.append(row)
    else:
        for tool in args.tools:
            device = AndroidDevice(profile_by_id(args.device))
            telemetry = _make_telemetry(args.telemetry, tool,
                                        max_trace_bytes=_trace_bytes(args))
            engine = make_engine(tool, device, seed=args.seed,
                                 campaign_hours=args.hours,
                                 telemetry=telemetry)
            result = engine.run()
            rollup = (engine.telemetry.rollup()
                      if telemetry is not None else None)
            if telemetry is not None:
                telemetry.close()
            series[tool] = [(t, float(c)) for t, c in result.timeline]
            row = [tool, result.kernel_coverage, len(result.bugs)]
            if rollup is not None:
                row.append(f"{rollup.get('mean_execs_per_sec', 0.0):.2f}")
            rows.append(row)
    print(ascii_chart(series,
                      title=f"Coverage on {args.device}, "
                            f"{args.hours:g} virtual hours"))
    headers = ["Tool", "Coverage", "Bugs"]
    if args.telemetry:
        headers.append("exec/s")
    print(render_table(headers, rows))
    if args.telemetry:
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_worker_serve(args) -> int:
    """``worker serve``: host a fleet worker pool until interrupted."""
    from repro.fleet.remote.server import WorkerServer
    server = WorkerServer(host=args.host, port=args.port,
                          slots=args.slots or None)
    server.start()
    host, port = server.address
    print(f"fleet worker serving on {host}:{port} "
          f"({server.slots} slot(s)); Ctrl-C to drain and stop",
          flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining...", flush=True)
        server.stop(drain=True)
    return 0


def _cmd_stats(args) -> int:
    fleet = load_fleet_summary(args.trace_dir)
    if fleet is not None:
        print(render_fleet_summary(fleet))
    directories = find_trace_dirs(args.trace_dir)
    if not directories:
        if fleet is not None:
            return 0
        print(f"no telemetry found under {args.trace_dir}")
        return 1
    for directory in directories:
        print(render_summary(load_trace_dir(directory)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DroidFuzz reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-devices").set_defaults(func=_cmd_list_devices)

    probe = sub.add_parser("probe")
    probe.add_argument("device")
    probe.add_argument("--no-links", action="store_true")
    probe.set_defaults(func=_cmd_probe)

    def _pool_args(command, jobs_help: str) -> None:
        command.add_argument("--jobs", type=int, default=1,
                             help=jobs_help)
        command.add_argument("--workers", default="", metavar="ADDRS",
                             help="comma-separated host:port of running "
                                  "'repro worker serve' pools; campaigns "
                                  "dispatch there instead of forking "
                                  "locally")
        command.add_argument("--trace-max-mb", type=float, default=0.0,
                             metavar="MB",
                             help="rotate trace.jsonl past this size "
                                  "(0: unbounded)")

    fuzz = sub.add_parser("fuzz")
    fuzz.add_argument("device")
    fuzz.add_argument("--tool", choices=TOOLS, default="droidfuzz")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--seeds", type=int, default=1,
                      help="campaigns to run, seeded --seed, --seed+1, …")
    fuzz.add_argument("--hours", type=float, default=24.0)
    fuzz.add_argument("--repro", action="store_true",
                      help="print bug reproducers")
    fuzz.add_argument("--state-dir", default="",
                      help="persist corpus/relations/bugs here")
    fuzz.add_argument("--telemetry", default="", metavar="DIR",
                      help="record JSONL trace + snapshots + metrics here")
    _pool_args(fuzz, "worker pool width for --seeds > 1")
    fuzz.set_defaults(func=_cmd_fuzz)

    hunt = sub.add_parser("hunt")
    hunt.add_argument("--hours", type=float, default=48.0)
    hunt.add_argument("--seeds", type=int, default=1)
    hunt.add_argument("--telemetry", default="", metavar="DIR",
                      help="record per-campaign telemetry under DIR")
    _pool_args(hunt, "worker pool width for the profile×seed grid")
    hunt.set_defaults(func=_cmd_hunt)

    fleet = sub.add_parser(
        "fleet", help="parallel multi-device fleet via the daemon")
    fleet.add_argument("--devices", nargs="+", metavar="ID",
                       default=[p.ident for p in DEVICE_PROFILES])
    fleet.add_argument("--tool", choices=TOOLS, default="droidfuzz")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--hours", type=float, default=24.0)
    fleet.add_argument("--watchdog", type=float, default=300.0,
                       metavar="SECONDS",
                       help="kill+requeue a worker silent this long")
    fleet.add_argument("--telemetry", default="", metavar="DIR",
                       help="record per-campaign telemetry under DIR")
    _pool_args(fleet, "worker pool width (1: run inline)")
    fleet.set_defaults(func=_cmd_fleet)

    compare = sub.add_parser("compare")
    compare.add_argument("device")
    compare.add_argument("--tools", nargs="+", choices=TOOLS,
                         default=["droidfuzz", "syzkaller"])
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--hours", type=float, default=12.0)
    compare.add_argument("--telemetry", default="", metavar="DIR",
                         help="record per-tool telemetry under DIR")
    _pool_args(compare, "worker pool width (one worker per tool)")
    compare.set_defaults(func=_cmd_compare)

    stats = sub.add_parser("stats")
    stats.add_argument("trace_dir",
                       help="telemetry directory (or a parent of several)")
    stats.set_defaults(func=_cmd_stats)

    worker = sub.add_parser("worker", help="remote fleet worker commands")
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    serve = worker_sub.add_parser(
        "serve", help="host a worker pool behind a TCP socket")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (keep on a trusted network; "
                            "the wire carries pickled job specs)")
    serve.add_argument("--port", type=int, default=7788,
                       help="bind port (0: pick a free one)")
    serve.add_argument("--slots", type=int, default=0,
                       help="concurrent campaigns (0: CPU count)")
    serve.set_defaults(func=_cmd_worker_serve)
    return parser


def warn_if_oversubscribed(jobs: int, cpus: int | None = None) -> str | None:
    """Warning line when ``--jobs`` exceeds the host's CPU count.

    Worker processes are CPU-bound; oversubscribing trades real wall
    time for context switches (``BENCH_fleet.json`` measured a 0.913×
    "speedup" from a 4-wide pool on a 1-CPU host).
    """
    cpus = cpus if cpus is not None else (os.cpu_count() or 1)
    if jobs <= cpus:
        return None
    return (f"warning: --jobs {jobs} exceeds the {cpus} available "
            f"CPU(s); workers are CPU-bound and oversubscribing "
            f"degrades real wall time (results are unaffected)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    warning = warn_if_oversubscribed(getattr(args, "jobs", 1))
    if warning is not None:
        print(warning, file=sys.stderr)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
