"""Per-driver coverage accounting (paper §V-C).

The paper's headline coverage claim is per-driver: "through evaluating
per-driver coverage in the kernel, DroidFuzz achieves a 17% increase on
average" over Syzkaller.  These helpers compute that statistic from two
campaigns' per-driver covered-block maps.
"""

from __future__ import annotations


def per_driver_increase(ours: dict[str, int],
                        baseline: dict[str, int]) -> dict[str, float]:
    """Relative per-driver increase of ``ours`` over ``baseline``.

    Drivers the baseline never touched contribute their full relative
    gain against a floor of one block (they would otherwise divide by
    zero); drivers neither tool touched are omitted.
    """
    out: dict[str, float] = {}
    for driver in sorted(set(ours) | set(baseline)):
        a = ours.get(driver, 0)
        b = baseline.get(driver, 0)
        if a == 0 and b == 0:
            continue
        out[driver] = (a - b) / max(b, 1)
    return out


def average_increase(ours: dict[str, int],
                     baseline: dict[str, int]) -> float:
    """Mean of the per-driver relative increases."""
    increases = per_driver_increase(ours, baseline)
    if not increases:
        return 0.0
    return sum(increases.values()) / len(increases)
