"""Terminal-friendly rendering of coverage-over-time figures.

The benchmark harness regenerates the paper's Figures 4 and 5 as data
series; this module renders them as ASCII line charts for the terminal
plus CSV for external plotting.
"""

from __future__ import annotations


def ascii_chart(series: dict[str, list[tuple[float, float]]],
                width: int = 72, height: int = 18,
                title: str = "", y_label: str = "coverage") -> str:
    """Render named (t, y) series as an ASCII chart.

    Each series gets a distinct marker; markers overwrite blanks only,
    so overlapping curves stay readable.
    """
    markers = "*o+x#@%&"
    points_all = [p for pts in series.values() for p in pts]
    if not points_all:
        return f"{title}\n(no data)"
    t_max = max(p[0] for p in points_all) or 1.0
    y_max = max(p[1] for p in points_all) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        for t, y in points:
            col = min(int(t / t_max * (width - 1)), width - 1)
            row = height - 1 - min(int(y / y_max * (height - 1)), height - 1)
            if grid[row][col] == " ":
                grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (max={y_max:.0f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" 0 .. {t_max / 3600.0:.0f} hours")
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, name in enumerate(sorted(series)))
    lines.append(legend)
    return "\n".join(lines)


def timeline_csv(series: dict[str, list[tuple[float, float]]]) -> str:
    """CSV form: ``series,seconds,value`` rows."""
    lines = ["series,seconds,value"]
    for name in sorted(series):
        for t, y in series[name]:
            lines.append(f"{name},{t:.0f},{y:.0f}")
    return "\n".join(lines)
