"""Evaluation analysis utilities: statistics, tables, plots."""

from repro.analysis.stats import mann_whitney_u, mean, median
from repro.analysis.tables import render_table
from repro.analysis.plots import ascii_chart, timeline_csv
from repro.analysis.coverage import per_driver_increase

__all__ = ["mann_whitney_u", "mean", "median", "render_table",
           "ascii_chart", "timeline_csv", "per_driver_increase"]
