"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table (paper-style)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in cells:
        padded = [cell.ljust(widths[index])
                  for index, cell in enumerate(row)]
        lines.append(" | ".join(padded))
    return "\n".join(lines)
