"""Campaign report rendering.

Turns a :class:`CampaignResult` (plus optional engine internals) into a
human-readable markdown report: headline numbers, coverage by driver,
the bug ledger with reproducers, and the strongest learned relations.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.engine import CampaignResult
from repro.core.relations import RelationGraph


def strongest_relations(relations: RelationGraph,
                        limit: int = 15) -> list[tuple[str, str, float]]:
    """The ``limit`` heaviest learned edges, descending."""
    edges = []
    for src in relations.vertices():
        for dst, weight in relations.out_edges(src).items():
            edges.append((src, dst, weight))
    edges.sort(key=lambda e: -e[2])
    return edges[:limit]


def campaign_report(result: CampaignResult,
                    relations: RelationGraph | None = None) -> str:
    """Render a full markdown campaign report."""
    lines = [
        f"# Campaign report: {result.tool} on device {result.device}",
        "",
        f"* duration: {result.duration_hours:g} virtual hours "
        f"(seed {result.seed})",
        f"* programs executed: {result.executions}",
        f"* kernel coverage: {result.kernel_coverage} blocks "
        f"(joint: {result.joint_coverage})",
        f"* corpus: {result.corpus_size} seeds; "
        f"probed interfaces: {result.interface_count}; "
        f"reboots: {result.reboots}",
        "",
        "## Coverage by driver",
        "",
    ]
    rows = []
    for driver in sorted(result.per_driver):
        covered = result.per_driver[driver]
        total = result.driver_totals.get(driver, 0)
        percent = f"{covered / total * 100:.0f}%" if total else "?"
        rows.append([driver, covered, f"~{total}", percent])
    lines.append(render_table(["driver", "covered", "blocks", "share"],
                              rows))
    lines.append("")

    lines.append(f"## Bugs ({len(result.bugs)})")
    lines.append("")
    if not result.bugs:
        lines.append("none found")
    for bug in result.bugs:
        lines.append(f"### [{bug.component}] {bug.title}")
        lines.append(f"first seen at {bug.first_clock / 3600:.1f}h, "
                     f"{bug.count} occurrence(s)")
        if bug.reproducer:
            lines.append("")
            lines.append("```")
            lines.append(bug.reproducer)
            lines.append("```")
        lines.append("")

    if relations is not None and relations.edge_count():
        lines.append("## Strongest learned relations")
        lines.append("")
        rows = [[src, "->", dst, f"{weight:.2f}"]
                for src, dst, weight in strongest_relations(relations)]
        lines.append(render_table(["call", "", "depends on it", "w"], rows))
        lines.append("")
    return "\n".join(lines)
