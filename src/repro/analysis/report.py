"""Campaign report rendering.

Turns a :class:`CampaignResult` (plus optional engine internals) into a
human-readable markdown report: headline numbers, coverage by driver,
the bug ledger with reproducers, the strongest learned relations, and —
when a recorded telemetry trace is supplied — a profiling section with
the per-phase virtual-time breakdown and the most expensive drivers.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.engine import CampaignResult
from repro.core.relations import RelationGraph
from repro.core.results import FleetResult
from repro.obs.stats import TraceSummary, render_fleet_summary


def strongest_relations(relations: RelationGraph,
                        limit: int = 15) -> list[tuple[str, str, float]]:
    """The ``limit`` heaviest learned edges, descending."""
    edges = []
    for src in relations.vertices():
        for dst, weight in relations.out_edges(src).items():
            edges.append((src, dst, weight))
    edges.sort(key=lambda e: -e[2])
    return edges[:limit]


def profiling_section(summary: TraceSummary) -> list[str]:
    """Markdown lines for the telemetry profiling section."""
    lines = ["## Profiling", ""]
    shares = summary.phase_shares()
    if shares:
        rows = [[name, stat.count, f"{stat.exclusive_seconds:.0f}",
                 f"{share:.1f}%"]
                for name, stat, share in shares]
        lines.append(render_table(
            ["phase", "spans", "virtual s", "share"], rows))
        lines.append("")
    drivers = summary.driver_costs()
    if drivers:
        rows = [[name, f"{cost:.0f}"] for name, cost in drivers[:5]]
        lines.append("Top 5 drivers by attributed virtual-time cost:")
        lines.append("")
        lines.append(render_table(["driver", "virtual s"], rows))
        lines.append("")
    if summary.snapshots:
        rates = summary.exec_rates()
        if rates:
            lines.append(f"mean throughput: "
                         f"{sum(rates) / len(rates):.2f} exec/s over "
                         f"{len(summary.snapshots)} snapshot(s)")
            lines.append("")
    return lines


#: Display units for the broker latency metrics.
LATENCY_UNITS = {"exec_vtime": "virtual s/program",
                 "payload_bytes": "bytes/program"}


def latency_rows(latency: dict[str, dict[str, float]]) -> list[list]:
    """Table rows for a result's broker latency quantiles."""
    rows = []
    for name in sorted(latency):
        stats = latency[name]
        rows.append([name, LATENCY_UNITS.get(name, ""),
                     int(stats.get("count", 0)),
                     f"{stats.get('p50', 0.0):g}",
                     f"{stats.get('p90', 0.0):g}",
                     f"{stats.get('p99', 0.0):g}",
                     f"{stats.get('max', 0.0):g}"])
    return rows


def latency_section(latency: dict[str, dict[str, float]]) -> list[str]:
    """Markdown lines for the broker wire-latency section."""
    return ["## Wire latency", "",
            render_table(["metric", "unit", "count", "p50", "p90",
                          "p99", "max"], latency_rows(latency)),
            ""]


def campaign_report(result: CampaignResult,
                    relations: RelationGraph | None = None,
                    trace_summary: TraceSummary | None = None) -> str:
    """Render a full markdown campaign report."""
    lines = [
        f"# Campaign report: {result.tool} on device {result.device}",
        "",
        f"* duration: {result.duration_hours:g} virtual hours "
        f"(seed {result.seed})",
        f"* programs executed: {result.executions}",
        f"* kernel coverage: {result.kernel_coverage} blocks "
        f"(joint: {result.joint_coverage})",
        f"* corpus: {result.corpus_size} seeds; "
        f"probed interfaces: {result.interface_count}; "
        f"reboots: {result.reboots}",
        "",
        "## Coverage by driver",
        "",
    ]
    rows = []
    for driver in sorted(result.per_driver):
        covered = result.per_driver[driver]
        total = result.driver_totals.get(driver, 0)
        percent = f"{covered / total * 100:.0f}%" if total else "?"
        rows.append([driver, covered, f"~{total}", percent])
    lines.append(render_table(["driver", "covered", "blocks", "share"],
                              rows))
    lines.append("")

    lines.append(f"## Bugs ({len(result.bugs)})")
    lines.append("")
    if not result.bugs:
        lines.append("none found")
    for bug in result.bugs:
        lines.append(f"### [{bug.component}] {bug.title}")
        lines.append(f"first seen at {bug.first_clock / 3600:.1f}h, "
                     f"{bug.count} occurrence(s)")
        if bug.reproducer:
            lines.append("")
            lines.append("```")
            lines.append(bug.reproducer)
            lines.append("```")
        lines.append("")

    if relations is not None and relations.edge_count():
        lines.append("## Strongest learned relations")
        lines.append("")
        rows = [[src, "->", dst, f"{weight:.2f}"]
                for src, dst, weight in strongest_relations(relations)]
        lines.append(render_table(["call", "", "depends on it", "w"], rows))
        lines.append("")

    if result.latency:
        lines.extend(latency_section(result.latency))

    if trace_summary is not None and (trace_summary.phases
                                      or trace_summary.snapshots):
        lines.extend(profiling_section(trace_summary))
    return "\n".join(lines)


def fleet_report(fleet: FleetResult) -> str:
    """Terminal summary of a fleet run: per-campaign table, the
    deduplicated bug ledger, scheduler stats, and the monitor rollup.

    Consumes the typed :class:`~repro.core.results.FleetResult`
    surface (``Daemon.run_fleet`` return value or
    ``Daemon.fleet_result()`` after a partial failure).
    """
    lines = []
    rows = [[key, result.kernel_coverage, result.executions,
             result.reboots, len(result.bugs)]
            for key, result in sorted(fleet.by_key().items())]
    lines.append(render_table(
        ["Campaign", "Coverage", "Execs", "Reboots", "Bugs"], rows,
        title="Fleet results"))
    bugs = fleet.all_bugs()
    if bugs:
        bug_rows = [[i, b.device, b.title, b.component]
                    for i, b in enumerate(bugs, 1)]
        lines.append(render_table(
            ["No", "Device", "Bug", "Component"], bug_rows,
            title=f"{len(bugs)} unique bug(s)"))
    latencies = fleet.latency_by_key()
    if latencies:
        rows = []
        for key in sorted(latencies):
            for row in latency_rows(latencies[key]):
                rows.append([key] + row)
        lines.append(render_table(
            ["Campaign", "metric", "unit", "count", "p50", "p90", "p99",
             "max"], rows, title="Wire latency quantiles"))
    if fleet.fleet_stats:
        lines.append(render_fleet_summary(fleet.fleet_stats))
    if fleet.rollups():
        rollup = fleet.rollup()
        lines.append(
            f"fleet rollup: {rollup.get('campaigns', 0)} campaign(s), "
            f"{rollup.get('executions', 0)} executions, "
            f"{rollup.get('kernel_coverage', 0)} coverage, "
            f"{rollup.get('bugs', 0)} bug(s), "
            f"{rollup.get('mean_execs_per_sec', 0.0):.2f} exec/s mean")
    return "\n".join(lines)
