"""BENCH trajectory ratchet: committed perf history with a regression gate.

Each benchmark writes a point-in-time ``BENCH_*.json`` at the repo
root; this module folds the tracked metrics out of those files into a
committed, append-only ``BENCH_trajectory.json`` and diffs fresh
measurements against the trajectory's *reference* — the direction-aware
best value each metric has ever recorded.  ``repro bench diff`` exits
non-zero when a gated metric regresses beyond the tolerance, which is
what turns the committed history into a ratchet: perf can only move in
its annotated direction (plus noise allowance), never quietly slide
back.

Schema of ``BENCH_trajectory.json``::

    {
      "schema": 1,
      "metrics": {"exec.execs_per_second": {"direction": "higher",
                                            "gate": true,
                                            "source": "BENCH_exec.json",
                                            "path": "optimized.execs_per_second"},
                  ...},
      "entries": [{"label": "...", "recorded": "...",
                   "values": {"exec.execs_per_second": 5312.7, ...}},
                  ...]
    }

``entries`` is append-only (``repro bench update`` only ever adds);
``metrics`` carries the direction/gate annotations so a reader needs no
code to interpret the numbers.  Wall-clock-derived metrics that are too
noisy to gate on shared CI hosts (e.g. the restore microbenchmark) are
tracked with ``gate: false`` — recorded and reported, never failing.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from dataclasses import dataclass
from typing import Any

TRAJECTORY_FILE = "BENCH_trajectory.json"
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class MetricSpec:
    """One tracked benchmark metric."""

    key: str
    source: str  # BENCH file at the repo root
    path: str  # dotted path inside the file
    direction: str  # "higher" or "lower" is better
    #: Gated metrics fail ``bench diff`` on regression; ungated ones
    #: are tracked and reported only (too noisy for shared CI hosts).
    gate: bool = True


#: The ratcheted metric set.  ``transport_overhead_pct`` is deliberately
#: absent: it hovers around zero (the committed measurement is
#: negative), so a relative tolerance is ill-defined for it.
TRACKED_METRICS: tuple[MetricSpec, ...] = (
    MetricSpec("exec.execs_per_second", "BENCH_exec.json",
               "optimized.execs_per_second", "higher"),
    MetricSpec("exec.speedup_vs_legacy", "BENCH_exec.json",
               "speedup_vs_legacy", "higher"),
    MetricSpec("exec.restore_us", "BENCH_exec.json",
               "restore_vs_reboot_us.checkpoint_restore", "lower",
               gate=False),
    MetricSpec("fleet.virtual_makespan_speedup", "BENCH_fleet.json",
               "virtual_makespan_speedup", "higher"),
    MetricSpec("fleet.efficiency", "BENCH_fleet.json",
               "scheduler.efficiency", "higher"),
    MetricSpec("remote.reconnects", "BENCH_remote.json",
               "reconnects", "lower"),
    MetricSpec("remote.failed_jobs", "BENCH_remote.json",
               "scheduler.failed", "lower"),
)


@dataclass(frozen=True)
class MetricDiff:
    """One metric's position relative to the trajectory reference."""

    key: str
    direction: str
    gate: bool
    reference: float | None  # best-so-far (None: no history yet)
    current: float | None  # fresh measurement (None: source missing)
    change_pct: float | None  # signed, positive = moved the good way
    regressed: bool


def parse_tolerance(spec: str | float) -> float:
    """A tolerance spec (``"15%"``, ``"0.15"``, ``0.15``) as a ratio.

    Raises:
        ValueError: malformed or negative.
    """
    if isinstance(spec, (int, float)):
        ratio = float(spec)
    else:
        text = spec.strip()
        if text.endswith("%"):
            ratio = float(text[:-1]) / 100.0
        else:
            ratio = float(text)
    if ratio < 0:
        raise ValueError(f"tolerance must be non-negative, got {spec!r}")
    return ratio


def _dig(data: Any, path: str) -> float | None:
    """Resolve a dotted path; None when any step is missing."""
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def collect_values(root: str | pathlib.Path,
                   specs: tuple[MetricSpec, ...] = TRACKED_METRICS,
                   ) -> dict[str, float]:
    """Extract every tracked metric present under ``root``.

    Missing BENCH files (a partial benchmark run) simply omit their
    metrics; a present file with a missing path omits that metric.
    """
    root = pathlib.Path(root)
    cache: dict[str, Any] = {}
    values: dict[str, float] = {}
    for spec in specs:
        if spec.source not in cache:
            path = root / spec.source
            try:
                cache[spec.source] = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                cache[spec.source] = None
        data = cache[spec.source]
        if data is None:
            continue
        value = _dig(data, spec.path)
        if value is not None:
            values[spec.key] = value
    return values


def empty_trajectory(
        specs: tuple[MetricSpec, ...] = TRACKED_METRICS) -> dict[str, Any]:
    """A fresh trajectory skeleton with the metric annotations."""
    return {
        "schema": SCHEMA_VERSION,
        "metrics": {spec.key: {"direction": spec.direction,
                               "gate": spec.gate,
                               "source": spec.source,
                               "path": spec.path}
                    for spec in specs},
        "entries": [],
    }


def load_trajectory(path: str | pathlib.Path) -> dict[str, Any]:
    """The committed trajectory, or an empty skeleton when absent."""
    path = pathlib.Path(path)
    if not path.exists():
        return empty_trajectory()
    data = json.loads(path.read_text())
    data.setdefault("schema", SCHEMA_VERSION)
    data.setdefault("metrics", {})
    data.setdefault("entries", [])
    return data


def append_entry(trajectory: dict[str, Any], values: dict[str, float],
                 label: str = "",
                 recorded: str | None = None) -> dict[str, Any]:
    """Append one measurement entry (the only mutation ever allowed).

    Also refreshes the ``metrics`` annotations for any newly tracked
    keys, so an old trajectory picks up new metrics without rewriting
    its history.
    """
    for spec in TRACKED_METRICS:
        trajectory["metrics"].setdefault(
            spec.key, {"direction": spec.direction, "gate": spec.gate,
                       "source": spec.source, "path": spec.path})
    entry = {
        "label": label or f"entry-{len(trajectory['entries']) + 1}",
        "recorded": recorded or datetime.datetime.now(
            datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "values": {key: values[key] for key in sorted(values)},
    }
    trajectory["entries"].append(entry)
    return entry


def save_trajectory(trajectory: dict[str, Any],
                    path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(
        json.dumps(trajectory, indent=1, sort_keys=True) + "\n")


def reference_values(trajectory: dict[str, Any]) -> dict[str, float]:
    """Direction-aware best value per metric across all entries."""
    metrics = trajectory.get("metrics", {})
    best: dict[str, float] = {}
    for entry in trajectory.get("entries", ()):
        for key, value in entry.get("values", {}).items():
            direction = metrics.get(key, {}).get("direction", "higher")
            if key not in best:
                best[key] = float(value)
            elif direction == "lower":
                best[key] = min(best[key], float(value))
            else:
                best[key] = max(best[key], float(value))
    return best


def diff_values(trajectory: dict[str, Any], values: dict[str, float],
                tolerance: float) -> list[MetricDiff]:
    """Compare fresh measurements against the trajectory reference.

    A *gated* metric regresses when it lands beyond ``tolerance``
    (relative) on the wrong side of its reference; a reference of zero
    leaves no relative slack, so any movement in the bad direction
    regresses (``remote.reconnects`` is meant to stay exactly zero).
    Metrics with no history yet, or whose BENCH file was not produced
    this run, never regress — they are reported as unknown instead.
    """
    metrics = trajectory.get("metrics", {})
    reference = reference_values(trajectory)
    keys = sorted(set(metrics) | set(values) | set(reference))
    diffs: list[MetricDiff] = []
    for key in keys:
        annotation = metrics.get(key, {})
        direction = annotation.get("direction", "higher")
        gate = bool(annotation.get("gate", True))
        ref = reference.get(key)
        current = values.get(key)
        change_pct = None
        regressed = False
        if ref is not None and current is not None:
            delta = current - ref
            if direction == "lower":
                delta = -delta
            # Positive delta = moved the good way.
            change_pct = (delta / abs(ref) * 100.0) if ref else None
            allowance = abs(ref) * tolerance
            regressed = gate and delta < -allowance
            if ref == 0.0:
                change_pct = None
                regressed = gate and delta < 0.0
        diffs.append(MetricDiff(
            key=key, direction=direction, gate=gate, reference=ref,
            current=current, change_pct=change_pct, regressed=regressed))
    return diffs


def render_diff(diffs: list[MetricDiff], tolerance: float) -> str:
    """Terminal table for ``repro bench diff``."""
    from repro.analysis.tables import render_table

    rows = []
    for diff in diffs:
        if diff.change_pct is None:
            change = "?" if diff.current is None or diff.reference is None \
                else "0" if diff.current == diff.reference else "!"
        else:
            change = f"{diff.change_pct:+.1f}%"
        status = ("REGRESSED" if diff.regressed
                  else "missing" if diff.current is None
                  else "no-history" if diff.reference is None
                  else "ok" if diff.gate else "ok (ungated)")
        rows.append([
            diff.key, diff.direction,
            "-" if diff.reference is None else f"{diff.reference:g}",
            "-" if diff.current is None else f"{diff.current:g}",
            change, status])
    return render_table(
        ["metric", "better", "reference", "current", "change", "status"],
        rows,
        title=f"BENCH trajectory diff (tolerance {tolerance * 100:g}%)")


def run_diff(root: str | pathlib.Path,
             trajectory_path: str | pathlib.Path | None = None,
             tolerance: float = 0.15) -> tuple[list[MetricDiff], int]:
    """The ``repro bench diff`` core: diffs + process exit code."""
    root = pathlib.Path(root)
    trajectory = load_trajectory(trajectory_path or root / TRAJECTORY_FILE)
    values = collect_values(root)
    diffs = diff_values(trajectory, values, tolerance)
    failed = any(diff.regressed for diff in diffs)
    return diffs, 1 if failed else 0


def run_update(root: str | pathlib.Path,
               trajectory_path: str | pathlib.Path | None = None,
               label: str = "",
               recorded: str | None = None) -> dict[str, Any]:
    """The ``repro bench update`` core: append and persist an entry."""
    root = pathlib.Path(root)
    path = pathlib.Path(trajectory_path or root / TRAJECTORY_FILE)
    trajectory = load_trajectory(path)
    entry = append_entry(trajectory, collect_values(root), label=label,
                         recorded=recorded)
    save_trajectory(trajectory, path)
    return entry


__all__ = ["MetricSpec", "MetricDiff", "TRACKED_METRICS",
           "TRAJECTORY_FILE", "parse_tolerance", "collect_values",
           "empty_trajectory", "load_trajectory", "append_entry",
           "save_trajectory", "reference_values", "diff_values",
           "render_diff", "run_diff", "run_update"]
