"""Statistical helpers for the evaluation (paper §V-A).

The paper assesses significance with the Mann-Whitney U test over
repeated campaign runs.  SciPy is used when available; a self-contained
normal-approximation implementation (with tie correction) backs it so
the analysis also runs in minimal environments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:  # pragma: no cover - environment dependent
    from scipy.stats import mannwhitneyu as _scipy_mwu
except ImportError:  # pragma: no cover
    _scipy_mwu = None


def histogram_summary(data: dict, qs: tuple[float, ...] = (0.5, 0.9, 0.99),
                      digits: int = 4) -> dict[str, float]:
    """Quantile summary of a *serialized* histogram dict.

    Accepts the ``metrics.json`` dump shape produced by
    :meth:`repro.obs.metrics.Histogram.to_dict` (``bounds`` /
    ``counts`` / ``sum`` / ``count`` / ``min`` / ``max``) and returns
    the same ``{"count", "mean", "max", "p50", ...}`` summary a live
    :meth:`~repro.obs.metrics.Histogram.summary` would, so offline
    analysis of a recorded trace matches in-process reporting.
    Returns ``{}`` for empty or non-histogram input.
    """
    from repro.obs.metrics import bucket_quantile

    count = int(data.get("count", 0) or 0)
    if not count or data.get("type", "histogram") != "histogram":
        return {}
    bounds = tuple(data.get("bounds", ()))
    counts = list(data.get("counts", ()))
    minimum = float(data.get("min", 0.0))
    maximum = float(data.get("max", 0.0))
    summary: dict[str, float] = {
        "count": count,
        "mean": round(float(data.get("sum", 0.0)) / count, digits),
        "max": round(maximum, digits)}
    for q in qs:
        label = f"{q * 100:g}".replace(".", "_")
        summary[f"p{label}"] = round(
            bucket_quantile(bounds, counts, q, minimum, maximum), digits)
    return summary


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0


def median(values: list[float]) -> float:
    """Median (0.0 for empty input)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class MannWhitneyResult:
    """U statistic and two-sided p-value."""

    u: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the groups differ at level ``alpha``."""
        return self.p_value < alpha


def _rankdata(values: list[float]) -> list[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    return ranks


def mann_whitney_u(a: list[float], b: list[float]) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test.

    Raises:
        ValueError: either sample is empty.
    """
    if not a or not b:
        raise ValueError("both samples must be non-empty")
    if _scipy_mwu is not None:
        result = _scipy_mwu(a, b, alternative="two-sided")
        return MannWhitneyResult(u=float(result.statistic),
                                 p_value=float(result.pvalue))
    n1, n2 = len(a), len(b)
    ranks = _rankdata(list(a) + list(b))
    r1 = sum(ranks[:n1])
    u1 = r1 - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1
    u = min(u1, u2)
    # Normal approximation with tie correction.
    combined = list(a) + list(b)
    n = n1 + n2
    tie_term = 0.0
    for value in set(combined):
        t = combined.count(value)
        tie_term += t ** 3 - t
    sigma_sq = (n1 * n2 / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma_sq <= 0:
        return MannWhitneyResult(u=u, p_value=1.0)
    mu = n1 * n2 / 2.0
    z = (u - mu + 0.5) / math.sqrt(sigma_sq)
    p = 2.0 * 0.5 * math.erfc(abs(z) / math.sqrt(2.0))
    return MannWhitneyResult(u=u, p_value=min(p, 1.0))
